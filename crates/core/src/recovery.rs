//! Run-state codec for durable checkpoints (`FLUXRUN1`).
//!
//! [`ActiveRun::checkpoint`](crate::driver::ActiveRun::checkpoint) stores
//! the model itself through the store's versioned per-shard snapshot
//! (`flux_fl::snapshot`); everything *else* a run needs to resume — the
//! fingerprint identifying which run this is, the round index, the
//! simulated clock, per-round records, the assigner's utility tables, the
//! stale-profiling pipelines and (mid-round) the staged aggregator — rides
//! in the snapshot manifest's opaque `meta` blob, encoded here. The
//! manifest's trailing self-checksum covers the blob, so corruption is
//! detected before this module ever parses a byte.
//!
//! The format is little-endian and length-prefixed like every other Flux
//! codec; counts are bounded by plausibility caps so a damaged blob fails
//! with [`SnapshotError::Corrupt`] instead of attempting a huge
//! allocation.

use bytes::{BufMut, BytesMut};

use flux_fl::{PhaseTimes, RoundCostBreakdown, SnapshotError};
use flux_moe::checkpoint::{
    get_f32, get_f64, get_u32, get_u64, get_u8, get_vec, put_f64, put_vec, take,
};
use flux_moe::{ActivationProfile, ExpertKey};

use crate::assignment::ExpertUtility;
use crate::driver::{ExecutionMode, Method, PendingRound, RoundFaults, RoundRecord};

const MAGIC: &[u8; 8] = b"FLUXRUN1";
/// Version 2 adds the cohort-sampling fingerprint (cohort size and edge
/// aggregator count) after the participant count; version-1 blobs decode
/// with the full-participation defaults (`None`, 1 edge).
const VERSION: u32 = 2;
/// Plausibility cap on every decoded count (records, pids, experts…).
const MAX_COUNT: u64 = 1_000_000;

/// Everything the checkpoint persists about a run beyond the model shards.
pub(crate) struct RunState {
    pub(crate) seed: u64,
    pub(crate) method: Method,
    pub(crate) mode: ExecutionMode,
    pub(crate) rounds: u32,
    pub(crate) participants: u32,
    /// Clients sampled into each round's cohort (`None` = every registered
    /// client participates every round, the legacy behavior).
    pub(crate) cohort_size: Option<u32>,
    /// Edge aggregators pre-reducing each round (`1` = flat aggregation).
    pub(crate) aggregation_edges: u32,
    pub(crate) next_round: u32,
    pub(crate) elapsed_s: f64,
    pub(crate) phases: PhaseTimes,
    pub(crate) records: Vec<RoundRecord>,
    pub(crate) pending: Option<PendingRound>,
    pub(crate) utilities: Vec<(usize, ExpertUtility)>,
    /// Per-participant Flux profiling state: `(stale profile, refreshes)`.
    pub(crate) flux: Vec<(Option<ActivationProfile>, usize)>,
    /// Per-participant FMES activation profiles.
    pub(crate) fmes: Vec<Option<ActivationProfile>>,
    /// Mid-round only: the staged aggregator's wire form
    /// (`flux_fl::encode_staged_aggregator`).
    pub(crate) aggregator: Option<Vec<u8>>,
}

impl RunState {
    /// Rejects a checkpoint written by a different run: resuming someone
    /// else's shards would silently diverge instead of failing loudly.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn verify_fingerprint(
        &self,
        seed: u64,
        method: Method,
        mode: ExecutionMode,
        rounds: usize,
        participants: usize,
        cohort_size: Option<usize>,
        aggregation_edges: usize,
    ) -> Result<(), SnapshotError> {
        if self.seed != seed
            || self.method != method
            || self.mode != mode
            || self.rounds as usize != rounds
            || self.participants as usize != participants
            || self.cohort_size.map(|k| k as usize) != cohort_size
            || self.aggregation_edges as usize != aggregation_edges.max(1)
        {
            return Err(SnapshotError::Mismatch(format!(
                "checkpoint fingerprint (seed {}, {}, {:?}, {} rounds, {} participants, \
                 cohort {:?}, {} edges) does not match the run (seed {seed}, {}, {mode:?}, \
                 {rounds} rounds, {participants} participants, cohort {cohort_size:?}, \
                 {} edges)",
                self.seed,
                self.method.label(),
                self.mode,
                self.rounds,
                self.participants,
                self.cohort_size,
                self.aggregation_edges,
                method.label(),
                aggregation_edges.max(1),
            )));
        }
        Ok(())
    }
}

fn method_tag(method: Method) -> u8 {
    match method {
        Method::Flux => 0,
        Method::Fmd => 1,
        Method::Fmq => 2,
        Method::Fmes => 3,
    }
}

fn method_from_tag(tag: u8) -> Result<Method, SnapshotError> {
    match tag {
        0 => Ok(Method::Flux),
        1 => Ok(Method::Fmd),
        2 => Ok(Method::Fmq),
        3 => Ok(Method::Fmes),
        other => Err(corrupt(format!("unknown method tag {other}"))),
    }
}

fn mode_tag(mode: ExecutionMode) -> u8 {
    match mode {
        ExecutionMode::Barriered => 0,
        ExecutionMode::Pipelined => 1,
    }
}

fn mode_from_tag(tag: u8) -> Result<ExecutionMode, SnapshotError> {
    match tag {
        0 => Ok(ExecutionMode::Barriered),
        1 => Ok(ExecutionMode::Pipelined),
        other => Err(corrupt(format!("unknown execution-mode tag {other}"))),
    }
}

fn corrupt(message: impl Into<String>) -> SnapshotError {
    SnapshotError::Corrupt(message.into())
}

fn get_count(buf: &mut &[u8], what: &str) -> Result<usize, SnapshotError> {
    let count = u64::from(get_u32(buf)?);
    if count > MAX_COUNT {
        return Err(corrupt(format!("implausible {what} count {count}")));
    }
    Ok(count as usize)
}

fn put_breakdown(buf: &mut BytesMut, b: &RoundCostBreakdown) {
    put_f64(buf, b.profiling_s);
    put_f64(buf, b.merging_s);
    put_f64(buf, b.assignment_s);
    put_f64(buf, b.fine_tuning_s);
    put_f64(buf, b.offloading_s);
    put_f64(buf, b.communication_s);
}

fn get_breakdown(buf: &mut &[u8]) -> Result<RoundCostBreakdown, SnapshotError> {
    Ok(RoundCostBreakdown {
        profiling_s: get_f64(buf)?,
        merging_s: get_f64(buf)?,
        assignment_s: get_f64(buf)?,
        fine_tuning_s: get_f64(buf)?,
        offloading_s: get_f64(buf)?,
        communication_s: get_f64(buf)?,
    })
}

fn put_pids(buf: &mut BytesMut, pids: &[usize]) {
    buf.put_u32_le(pids.len() as u32);
    for &pid in pids {
        buf.put_u64_le(pid as u64);
    }
}

fn get_pids(buf: &mut &[u8]) -> Result<Vec<usize>, SnapshotError> {
    let count = get_count(buf, "pid")?;
    let mut pids = Vec::with_capacity(count);
    for _ in 0..count {
        pids.push(get_u64(buf)? as usize);
    }
    Ok(pids)
}

fn put_faults(buf: &mut BytesMut, faults: &RoundFaults) {
    put_pids(buf, &faults.dropped);
    put_pids(buf, &faults.retried);
    put_pids(buf, &faults.rejected);
}

fn get_faults(buf: &mut &[u8]) -> Result<RoundFaults, SnapshotError> {
    Ok(RoundFaults {
        dropped: get_pids(buf)?,
        retried: get_pids(buf)?,
        rejected: get_pids(buf)?,
    })
}

fn put_record(buf: &mut BytesMut, r: &RoundRecord) {
    buf.put_u64_le(r.round as u64);
    put_f64(buf, r.elapsed_hours);
    buf.put_f32_le(r.score);
    buf.put_f32_le(r.train_loss);
    put_f64(buf, r.round_seconds);
    buf.put_u64_le(r.tokens_trained as u64);
    buf.put_u64_le(r.upload_bytes_dense as u64);
    buf.put_u64_le(r.upload_bytes_compressed as u64);
    put_breakdown(buf, &r.breakdown);
    put_faults(buf, &r.faults);
}

fn get_record(buf: &mut &[u8]) -> Result<RoundRecord, SnapshotError> {
    Ok(RoundRecord {
        round: get_u64(buf)? as usize,
        elapsed_hours: get_f64(buf)?,
        score: get_f32(buf)?,
        train_loss: get_f32(buf)?,
        round_seconds: get_f64(buf)?,
        tokens_trained: get_u64(buf)? as usize,
        upload_bytes_dense: get_u64(buf)? as usize,
        upload_bytes_compressed: get_u64(buf)? as usize,
        breakdown: get_breakdown(buf)?,
        faults: get_faults(buf)?,
    })
}

fn put_pending(buf: &mut BytesMut, p: &PendingRound) {
    buf.put_u64_le(p.round as u64);
    put_f64(buf, p.elapsed_hours);
    buf.put_f32_le(p.train_loss);
    put_f64(buf, p.round_seconds);
    buf.put_u64_le(p.tokens_trained as u64);
    buf.put_u64_le(p.upload_bytes_dense as u64);
    buf.put_u64_le(p.upload_bytes_compressed as u64);
    put_breakdown(buf, &p.breakdown);
    put_faults(buf, &p.faults);
}

fn get_pending(buf: &mut &[u8]) -> Result<PendingRound, SnapshotError> {
    Ok(PendingRound {
        round: get_u64(buf)? as usize,
        elapsed_hours: get_f64(buf)?,
        train_loss: get_f32(buf)?,
        round_seconds: get_f64(buf)?,
        tokens_trained: get_u64(buf)? as usize,
        upload_bytes_dense: get_u64(buf)? as usize,
        upload_bytes_compressed: get_u64(buf)? as usize,
        breakdown: get_breakdown(buf)?,
        faults: get_faults(buf)?,
    })
}

fn put_profile(buf: &mut BytesMut, p: &ActivationProfile) {
    let layers = p.frequencies.len();
    buf.put_u32_le(layers as u32);
    for layer in 0..layers {
        put_vec(buf, &p.frequencies[layer]);
        put_vec(buf, &p.attention[layer]);
        let sets = &p.sample_sets[layer];
        buf.put_u32_le(sets.len() as u32);
        for set in sets {
            buf.put_u32_le(set.len() as u32);
            for &sample in set {
                buf.put_u64_le(sample as u64);
            }
        }
    }
}

fn get_profile(buf: &mut &[u8]) -> Result<ActivationProfile, SnapshotError> {
    let layers = get_count(buf, "layer")?;
    let mut frequencies = Vec::with_capacity(layers);
    let mut attention = Vec::with_capacity(layers);
    let mut sample_sets = Vec::with_capacity(layers);
    for _ in 0..layers {
        frequencies.push(get_vec(buf)?);
        attention.push(get_vec(buf)?);
        let experts = get_count(buf, "sample-set")?;
        let mut sets = Vec::with_capacity(experts);
        for _ in 0..experts {
            let samples = get_count(buf, "sample")?;
            let mut set = Vec::with_capacity(samples);
            for _ in 0..samples {
                set.push(get_u64(buf)? as usize);
            }
            sets.push(set);
        }
        sample_sets.push(sets);
    }
    Ok(ActivationProfile {
        frequencies,
        attention,
        sample_sets,
    })
}

fn put_opt_profile(buf: &mut BytesMut, p: Option<&ActivationProfile>) {
    match p {
        Some(profile) => {
            buf.put_u8(1);
            put_profile(buf, profile);
        }
        None => buf.put_u8(0),
    }
}

fn get_opt_profile(buf: &mut &[u8]) -> Result<Option<ActivationProfile>, SnapshotError> {
    match get_u8(buf)? {
        0 => Ok(None),
        1 => Ok(Some(get_profile(buf)?)),
        other => Err(corrupt(format!("unknown profile tag {other}"))),
    }
}

/// Encodes a run's resumable state into the snapshot-manifest `meta` blob.
pub(crate) fn encode_run_state(state: &RunState) -> Vec<u8> {
    let mut buf = BytesMut::new();
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION);
    // Fingerprint.
    buf.put_u64_le(state.seed);
    buf.put_u8(method_tag(state.method));
    buf.put_u8(mode_tag(state.mode));
    buf.put_u32_le(state.rounds);
    buf.put_u32_le(state.participants);
    match state.cohort_size {
        Some(k) => {
            buf.put_u8(1);
            buf.put_u32_le(k);
        }
        None => buf.put_u8(0),
    }
    buf.put_u32_le(state.aggregation_edges);
    // Position and clocks.
    buf.put_u32_le(state.next_round);
    put_f64(&mut buf, state.elapsed_s);
    put_breakdown(
        &mut buf,
        &RoundCostBreakdown {
            profiling_s: state.phases.profiling_s,
            merging_s: state.phases.merging_s,
            assignment_s: state.phases.assignment_s,
            fine_tuning_s: state.phases.fine_tuning_s,
            offloading_s: state.phases.offloading_s,
            communication_s: state.phases.communication_s,
        },
    );
    // History.
    buf.put_u32_le(state.records.len() as u32);
    for record in &state.records {
        put_record(&mut buf, record);
    }
    match &state.pending {
        Some(pending) => {
            buf.put_u8(1);
            put_pending(&mut buf, pending);
        }
        None => buf.put_u8(0),
    }
    // Assigner utilities.
    buf.put_u32_le(state.utilities.len() as u32);
    for (pid, utility) in &state.utilities {
        buf.put_u64_le(*pid as u64);
        buf.put_u32_le(utility.key.layer as u32);
        buf.put_u32_le(utility.key.expert as u32);
        buf.put_f32_le(utility.value);
        buf.put_u8(u8::from(utility.estimated));
    }
    // Profiling pipelines.
    buf.put_u32_le(state.flux.len() as u32);
    for (profile, refreshes) in &state.flux {
        buf.put_u64_le(*refreshes as u64);
        put_opt_profile(&mut buf, profile.as_ref());
    }
    buf.put_u32_le(state.fmes.len() as u32);
    for profile in &state.fmes {
        put_opt_profile(&mut buf, profile.as_ref());
    }
    // Mid-round staged aggregator.
    match &state.aggregator {
        Some(bytes) => {
            buf.put_u8(1);
            buf.put_u32_le(bytes.len() as u32);
            buf.put_slice(bytes);
        }
        None => buf.put_u8(0),
    }
    buf.to_vec()
}

/// Decodes a `meta` blob back into a [`RunState`].
///
/// # Errors
///
/// Fails with [`SnapshotError::Corrupt`] on a bad magic, unknown version or
/// any structurally implausible field.
pub(crate) fn decode_run_state(mut buf: &[u8]) -> Result<RunState, SnapshotError> {
    let buf = &mut buf;
    let magic = take(buf, MAGIC.len())?;
    if magic != MAGIC {
        return Err(corrupt("run-state blob has a bad magic"));
    }
    let version = get_u32(buf)?;
    if version == 0 || version > VERSION {
        return Err(corrupt(format!("unsupported run-state version {version}")));
    }
    let seed = get_u64(buf)?;
    let method = method_from_tag(get_u8(buf)?)?;
    let mode = mode_from_tag(get_u8(buf)?)?;
    let rounds = get_u32(buf)?;
    let participants = get_u32(buf)?;
    // Version-1 blobs predate cohort sampling: full participation, flat
    // aggregation.
    let (cohort_size, aggregation_edges) = if version >= 2 {
        let cohort = match get_u8(buf)? {
            0 => None,
            1 => Some(get_u32(buf)?),
            other => return Err(corrupt(format!("unknown cohort tag {other}"))),
        };
        (cohort, get_u32(buf)?)
    } else {
        (None, 1)
    };
    let next_round = get_u32(buf)?;
    let elapsed_s = get_f64(buf)?;
    let phase_breakdown = get_breakdown(buf)?;
    let phases = PhaseTimes {
        profiling_s: phase_breakdown.profiling_s,
        merging_s: phase_breakdown.merging_s,
        assignment_s: phase_breakdown.assignment_s,
        fine_tuning_s: phase_breakdown.fine_tuning_s,
        offloading_s: phase_breakdown.offloading_s,
        communication_s: phase_breakdown.communication_s,
    };
    let record_count = get_count(buf, "record")?;
    let mut records = Vec::with_capacity(record_count);
    for _ in 0..record_count {
        records.push(get_record(buf)?);
    }
    let pending = match get_u8(buf)? {
        0 => None,
        1 => Some(get_pending(buf)?),
        other => return Err(corrupt(format!("unknown pending tag {other}"))),
    };
    let utility_count = get_count(buf, "utility")?;
    let mut utilities = Vec::with_capacity(utility_count);
    for _ in 0..utility_count {
        let pid = get_u64(buf)? as usize;
        let layer = get_u32(buf)? as usize;
        let expert = get_u32(buf)? as usize;
        let value = get_f32(buf)?;
        let estimated = match get_u8(buf)? {
            0 => false,
            1 => true,
            other => return Err(corrupt(format!("unknown estimated tag {other}"))),
        };
        utilities.push((
            pid,
            ExpertUtility {
                key: ExpertKey { layer, expert },
                value,
                estimated,
            },
        ));
    }
    let flux_count = get_count(buf, "flux-state")?;
    let mut flux = Vec::with_capacity(flux_count);
    for _ in 0..flux_count {
        let refreshes = get_u64(buf)? as usize;
        let profile = get_opt_profile(buf)?;
        flux.push((profile, refreshes));
    }
    let fmes_count = get_count(buf, "fmes-profile")?;
    let mut fmes = Vec::with_capacity(fmes_count);
    for _ in 0..fmes_count {
        fmes.push(get_opt_profile(buf)?);
    }
    let aggregator = match get_u8(buf)? {
        0 => None,
        1 => {
            let len = get_count(buf, "aggregator-byte")?;
            Some(take(buf, len)?.to_vec())
        }
        other => return Err(corrupt(format!("unknown aggregator tag {other}"))),
    };
    if !buf.is_empty() {
        return Err(corrupt(format!(
            "{} trailing bytes after the run state",
            buf.len()
        )));
    }
    Ok(RunState {
        seed,
        method,
        mode,
        rounds,
        participants,
        cohort_size,
        aggregation_edges,
        next_round,
        elapsed_s,
        phases,
        records,
        pending,
        utilities,
        flux,
        fmes,
        aggregator,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_profile() -> ActivationProfile {
        ActivationProfile {
            frequencies: vec![vec![0.5, 0.25], vec![0.75, 0.0]],
            attention: vec![vec![0.1, 0.2], vec![0.3, 0.4]],
            sample_sets: vec![vec![vec![0, 2], vec![]], vec![vec![1], vec![0, 1, 2]]],
        }
    }

    fn sample_state() -> RunState {
        RunState {
            seed: 42,
            method: Method::Flux,
            mode: ExecutionMode::Pipelined,
            rounds: 5,
            participants: 2,
            cohort_size: Some(2),
            aggregation_edges: 3,
            next_round: 3,
            elapsed_s: 1234.5,
            phases: PhaseTimes {
                profiling_s: 1.0,
                merging_s: 2.0,
                assignment_s: 3.0,
                fine_tuning_s: 4.0,
                offloading_s: 5.0,
                communication_s: 6.0,
            },
            records: vec![RoundRecord {
                round: 0,
                elapsed_hours: 0.25,
                score: 0.5,
                train_loss: 1.5,
                round_seconds: 900.0,
                tokens_trained: 1000,
                upload_bytes_dense: 2048,
                upload_bytes_compressed: 512,
                breakdown: RoundCostBreakdown {
                    profiling_s: 1.0,
                    merging_s: 0.5,
                    assignment_s: 0.25,
                    fine_tuning_s: 10.0,
                    offloading_s: 0.0,
                    communication_s: 2.0,
                },
                faults: RoundFaults {
                    dropped: vec![1],
                    retried: vec![0],
                    rejected: vec![0, 1],
                },
            }],
            pending: Some(PendingRound {
                round: 1,
                elapsed_hours: 0.5,
                train_loss: 1.25,
                round_seconds: 800.0,
                tokens_trained: 900,
                upload_bytes_dense: 1024,
                upload_bytes_compressed: 256,
                breakdown: RoundCostBreakdown::default(),
                faults: RoundFaults::default(),
            }),
            utilities: vec![(
                0,
                ExpertUtility {
                    key: ExpertKey {
                        layer: 1,
                        expert: 3,
                    },
                    value: 0.125,
                    estimated: true,
                },
            )],
            flux: vec![(Some(sample_profile()), 4), (None, 0)],
            fmes: vec![None, Some(sample_profile())],
            aggregator: Some(vec![1, 2, 3, 4]),
        }
    }

    fn assert_states_equal(a: &RunState, b: &RunState) {
        assert_eq!(a.seed, b.seed);
        assert_eq!(a.method, b.method);
        assert_eq!(a.mode, b.mode);
        assert_eq!(a.rounds, b.rounds);
        assert_eq!(a.participants, b.participants);
        assert_eq!(a.cohort_size, b.cohort_size);
        assert_eq!(a.aggregation_edges, b.aggregation_edges);
        assert_eq!(a.next_round, b.next_round);
        assert_eq!(a.elapsed_s, b.elapsed_s);
        assert_eq!(a.phases, b.phases);
        assert_eq!(a.records, b.records);
        assert_eq!(a.pending.is_some(), b.pending.is_some());
        if let (Some(x), Some(y)) = (&a.pending, &b.pending) {
            assert_eq!(x.round, y.round);
            assert_eq!(x.elapsed_hours, y.elapsed_hours);
            assert_eq!(x.train_loss, y.train_loss);
            assert_eq!(x.round_seconds, y.round_seconds);
            assert_eq!(x.tokens_trained, y.tokens_trained);
            assert_eq!(x.upload_bytes_dense, y.upload_bytes_dense);
            assert_eq!(x.upload_bytes_compressed, y.upload_bytes_compressed);
            assert_eq!(x.breakdown, y.breakdown);
            assert_eq!(x.faults, y.faults);
        }
        assert_eq!(a.utilities.len(), b.utilities.len());
        for ((pa, ua), (pb, ub)) in a.utilities.iter().zip(b.utilities.iter()) {
            assert_eq!(pa, pb);
            assert_eq!(ua.key, ub.key);
            assert_eq!(ua.value, ub.value);
            assert_eq!(ua.estimated, ub.estimated);
        }
        let profile_eq = |x: &Option<ActivationProfile>, y: &Option<ActivationProfile>| match (x, y)
        {
            (None, None) => true,
            (Some(x), Some(y)) => {
                x.frequencies == y.frequencies
                    && x.attention == y.attention
                    && x.sample_sets == y.sample_sets
            }
            _ => false,
        };
        assert_eq!(a.flux.len(), b.flux.len());
        for ((xp, xr), (yp, yr)) in a.flux.iter().zip(b.flux.iter()) {
            assert_eq!(xr, yr);
            assert!(profile_eq(xp, yp));
        }
        assert_eq!(a.fmes.len(), b.fmes.len());
        for (x, y) in a.fmes.iter().zip(b.fmes.iter()) {
            assert!(profile_eq(x, y));
        }
        assert_eq!(a.aggregator, b.aggregator);
    }

    #[test]
    fn run_state_round_trips() {
        let state = sample_state();
        let bytes = encode_run_state(&state);
        let decoded = decode_run_state(&bytes).expect("clean blob decodes");
        assert_states_equal(&state, &decoded);
    }

    #[test]
    fn empty_run_state_round_trips() {
        let state = RunState {
            records: Vec::new(),
            pending: None,
            utilities: Vec::new(),
            flux: Vec::new(),
            fmes: Vec::new(),
            aggregator: None,
            ..sample_state()
        };
        let bytes = encode_run_state(&state);
        let decoded = decode_run_state(&bytes).expect("clean blob decodes");
        assert_states_equal(&state, &decoded);
    }

    #[test]
    fn bad_magic_and_truncation_are_rejected() {
        let state = sample_state();
        let mut bytes = encode_run_state(&state);
        assert!(decode_run_state(&bytes[..bytes.len() - 1]).is_err());
        bytes[0] ^= 0xFF;
        assert!(decode_run_state(&bytes).is_err());
        assert!(decode_run_state(b"short").is_err());
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut bytes = encode_run_state(&sample_state());
        bytes.push(0);
        let err = match decode_run_state(&bytes) {
            Err(err) => err,
            Ok(_) => panic!("trailing bytes must fail"),
        };
        assert!(err.to_string().contains("trailing"));
    }

    #[test]
    fn fingerprint_mismatches_are_attributed() {
        let state = sample_state();
        let ok = |seed, method, mode, rounds, n| {
            state.verify_fingerprint(seed, method, mode, rounds, n, Some(2), 3)
        };
        assert!(ok(42, Method::Flux, ExecutionMode::Pipelined, 5, 2).is_ok());
        let err = ok(43, Method::Flux, ExecutionMode::Pipelined, 5, 2).expect_err("seed mismatch");
        assert!(matches!(err, SnapshotError::Mismatch(_)));
        assert!(ok(42, Method::Fmd, ExecutionMode::Pipelined, 5, 2).is_err());
        assert!(ok(42, Method::Flux, ExecutionMode::Barriered, 5, 2).is_err());
        assert!(ok(42, Method::Flux, ExecutionMode::Pipelined, 6, 2).is_err());
        assert!(ok(42, Method::Flux, ExecutionMode::Pipelined, 5, 3).is_err());
        // Cohort configuration is part of the fingerprint: resuming a
        // sampled run with a different K (or tree shape) must fail loudly.
        assert!(state
            .verify_fingerprint(42, Method::Flux, ExecutionMode::Pipelined, 5, 2, Some(3), 3)
            .is_err());
        assert!(state
            .verify_fingerprint(42, Method::Flux, ExecutionMode::Pipelined, 5, 2, None, 3)
            .is_err());
        assert!(state
            .verify_fingerprint(42, Method::Flux, ExecutionMode::Pipelined, 5, 2, Some(2), 2)
            .is_err());
    }

    #[test]
    fn version_one_blobs_decode_with_full_participation_defaults() {
        // Re-encode sample_state() as a version-1 blob by hand: identical
        // layout minus the cohort fields.
        let state = sample_state();
        let v2 = encode_run_state(&state);
        let mut v1 = Vec::new();
        v1.extend_from_slice(&v2[..MAGIC.len()]);
        v1.extend_from_slice(&1u32.to_le_bytes());
        // seed(8) + method(1) + mode(1) + rounds(4) + participants(4).
        let fp_start = MAGIC.len() + 4;
        let fp_end = fp_start + 18;
        v1.extend_from_slice(&v2[fp_start..fp_end]);
        // Skip cohort tag+value (5 bytes for Some) and edges (4 bytes).
        v1.extend_from_slice(&v2[fp_end + 9..]);
        let decoded = decode_run_state(&v1).expect("v1 blob decodes");
        assert_eq!(decoded.cohort_size, None);
        assert_eq!(decoded.aggregation_edges, 1);
        assert_eq!(decoded.seed, state.seed);
        assert_eq!(decoded.next_round, state.next_round);
    }
}
