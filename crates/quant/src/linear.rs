//! Quantized linear forward pass.
//!
//! The profiling path runs the gating network (and, optionally, whole MoE
//! layers) with quantized weights. The activation is kept in `f32` and the
//! weight is dequantized on the fly row-by-row, mirroring how weight-only
//! quantization kernels behave: the output carries the rounding error of
//! the weights, which is exactly the error source behind the paper's Fig. 5.

use flux_tensor::{Matrix, Result, TensorError};

use crate::matrix::QuantizedMatrix;

/// Computes `x * W` where `W` is quantized, returning a full-precision
/// output that carries the quantization error of `W`.
///
/// `x` has shape `(n, d_in)` and the quantized weight has shape
/// `(d_in, d_out)`.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] when the inner dimensions differ.
pub fn quantized_matmul(x: &Matrix, w: &QuantizedMatrix) -> Result<Matrix> {
    if x.cols() != w.rows() {
        return Err(TensorError::ShapeMismatch {
            op: "quantized_matmul",
            lhs: x.shape(),
            rhs: w.shape(),
        });
    }
    let n = w.cols();
    let mut out = Matrix::zeros_pooled(x.rows(), n);
    let scales = w.scales();
    for i in 0..x.rows() {
        let x_row = x.row(i);
        let out_row = &mut out.as_mut_slice()[i * n..(i + 1) * n];
        // Dequantize-on-the-fly accumulation, unrolled 4-way over the depth
        // so each output row is written once per four weight rows. Slices
        // are pre-sized to `n` so the inner loop runs without bounds checks.
        let mut k = 0;
        while k + 4 <= x_row.len() {
            let (c0, c1, c2, c3) = (
                x_row[k] * scales[k],
                x_row[k + 1] * scales[k + 1],
                x_row[k + 2] * scales[k + 2],
                x_row[k + 3] * scales[k + 3],
            );
            let l0 = &w.levels_row(k)[..n];
            let l1 = &w.levels_row(k + 1)[..n];
            let l2 = &w.levels_row(k + 2)[..n];
            let l3 = &w.levels_row(k + 3)[..n];
            for j in 0..n {
                out_row[j] +=
                    c0 * l0[j] as f32 + c1 * l1[j] as f32 + c2 * l2[j] as f32 + c3 * l3[j] as f32;
            }
            k += 4;
        }
        while k < x_row.len() {
            let coeff = x_row[k] * scales[k];
            for (o, &level) in out_row.iter_mut().zip(w.levels_row(k)) {
                *o += coeff * level as f32;
            }
            k += 1;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::BitWidth;
    use flux_tensor::SeededRng;

    #[test]
    fn matches_full_precision_closely_at_int8() {
        let mut rng = SeededRng::new(1);
        let x = Matrix::random_normal(4, 16, 1.0, &mut rng);
        let w = Matrix::random_normal(16, 8, 1.0, &mut rng);
        let q = QuantizedMatrix::quantize(&w, BitWidth::Int8);
        let exact = x.matmul(&w);
        let approx = quantized_matmul(&x, &q).unwrap();
        let err = exact.sub(&approx).unwrap().frobenius_norm() / exact.frobenius_norm();
        assert!(err < 0.02, "relative error {err}");
    }

    #[test]
    fn error_ordering_by_bit_width() {
        let mut rng = SeededRng::new(2);
        let x = Matrix::random_normal(8, 32, 1.0, &mut rng);
        let w = Matrix::random_normal(32, 16, 1.0, &mut rng);
        let exact = x.matmul(&w);
        let rel_err = |b: BitWidth| {
            let q = QuantizedMatrix::quantize(&w, b);
            let approx = quantized_matmul(&x, &q).unwrap();
            exact.sub(&approx).unwrap().frobenius_norm() / exact.frobenius_norm()
        };
        let e2 = rel_err(BitWidth::Int2);
        let e4 = rel_err(BitWidth::Int4);
        let e8 = rel_err(BitWidth::Int8);
        assert!(e2 > e4 && e4 > e8, "e2={e2} e4={e4} e8={e8}");
    }

    #[test]
    fn shape_mismatch_is_error() {
        let x = Matrix::zeros(2, 3);
        let w = QuantizedMatrix::quantize(&Matrix::zeros(4, 5), BitWidth::Int4);
        assert!(quantized_matmul(&x, &w).is_err());
    }

    #[test]
    fn zero_input_gives_zero_output() {
        let mut rng = SeededRng::new(3);
        let x = Matrix::zeros(3, 8);
        let w =
            QuantizedMatrix::quantize(&Matrix::random_normal(8, 4, 1.0, &mut rng), BitWidth::Int4);
        let out = quantized_matmul(&x, &w).unwrap();
        assert!(out.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn output_shape() {
        let mut rng = SeededRng::new(4);
        let x = Matrix::random_normal(5, 6, 1.0, &mut rng);
        let w =
            QuantizedMatrix::quantize(&Matrix::random_normal(6, 9, 1.0, &mut rng), BitWidth::Int2);
        assert_eq!(quantized_matmul(&x, &w).unwrap().shape(), (5, 9));
    }
}
