//! Federated participants and fleet construction.

use serde::{Deserialize, Serialize};

use flux_data::{partition_non_iid, Dataset, PartitionConfig};
use flux_moe::MoeConfig;
use flux_quant::BitWidth;
use flux_tensor::SeededRng;

use crate::device::{sample_fleet, DeviceProfile};
use crate::fault::FaultKind;

/// One federated participant: a device plus its local (private) data shard.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Participant {
    /// Stable participant id.
    pub id: usize,
    /// Hardware profile.
    pub device: DeviceProfile,
    /// Local training shard (never leaves the participant).
    pub train_data: Dataset,
    /// Profiling bit width this participant can afford (weaker devices pick
    /// lower widths, §4.1 "each participant flexibly chooses the appropriate
    /// quantization level").
    pub profile_width: BitWidth,
}

impl Participant {
    /// Memory budget `B_i`: experts that fit on this device.
    pub fn expert_capacity(&self, config: &MoeConfig) -> usize {
        self.device.expert_capacity(config)
    }

    /// Compute budget `B_tune_i`: experts that can be tuned per round.
    pub fn tuning_capacity(&self, config: &MoeConfig) -> usize {
        self.device.tuning_capacity(config, self.tokens_per_round())
    }

    /// Non-tuning budget `B_non_i = B_i − B_tune_i`.
    pub fn non_tuning_capacity(&self, config: &MoeConfig) -> usize {
        self.expert_capacity(config)
            .saturating_sub(self.tuning_capacity(config))
            .max(1)
    }

    /// Tokens processed in one local round (all local samples, one epoch).
    pub fn tokens_per_round(&self) -> usize {
        self.train_data
            .samples
            .iter()
            .map(|s| s.tokens.len())
            .sum::<usize>()
            .max(1)
    }

    /// Number of local samples.
    pub fn num_samples(&self) -> usize {
        self.train_data.len()
    }
}

/// Fault/latency behavior of one participant, used by the driver's
/// straggler and dropout scenarios.
///
/// The simulated *cost model* already prices slow devices; this knob instead
/// perturbs the **wall-clock execution** of the round pipeline, so tests can
/// prove that arrival order and mid-round failures change neither the
/// aggregate (no deadlock, no double-counted weight) nor the bit-exact
/// results.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum ParticipantBehavior {
    /// Trains and uploads normally.
    #[default]
    Healthy,
    /// Returns late: its local round stalls for this many wall-clock
    /// milliseconds before the upload reaches the server, pushing it to the
    /// back of the arrival order without changing what it computes.
    Straggler {
        /// Wall-clock delay before the upload is produced.
        delay_ms: u64,
    },
    /// Drops out mid-run: from round `round` (0-based) onward the
    /// participant neither trains nor uploads, and the server must exclude
    /// its weight entirely.
    DropoutAt {
        /// First round the participant misses.
        round: usize,
    },
    /// Crashes during exactly one round: trains, but its upload never
    /// reaches the server that round (and, unlike [`Self::DropoutAt`],
    /// it returns healthy next round).
    CrashAt {
        /// The single round whose upload is lost.
        round: usize,
    },
    /// Its round-`round` upload arrives bit-flipped; the server's
    /// checksum-validated decode must reject (not crash on) it.
    CorruptAt {
        /// The round whose upload arrives damaged.
        round: usize,
    },
    /// Its round-`round` upload stalls past the delivery window and is
    /// only recovered by a server-side retry.
    StallAt {
        /// The round whose upload stalls.
        round: usize,
    },
}

impl ParticipantBehavior {
    /// Whether the participant is absent in `round`.
    pub fn is_dropped(&self, round: usize) -> bool {
        matches!(self, ParticipantBehavior::DropoutAt { round: r } if round >= *r)
    }

    /// Wall-clock stall applied before the participant's upload, in
    /// milliseconds.
    pub fn delay_ms(&self) -> u64 {
        match self {
            ParticipantBehavior::Straggler { delay_ms } => *delay_ms,
            _ => 0,
        }
    }

    /// The fault this behavior injects into the *first* delivery attempt of
    /// the participant's round-`round` upload (retries are clean — behaviors
    /// model one-shot incidents; use a
    /// [`FaultPlan`](crate::fault::FaultPlan) for sustained failure rates).
    pub fn fault_at(&self, round: usize, attempt: u32) -> FaultKind {
        if attempt > 0 {
            return FaultKind::None;
        }
        match self {
            ParticipantBehavior::CrashAt { round: r } if *r == round => FaultKind::Crash,
            ParticipantBehavior::CorruptAt { round: r } if *r == round => FaultKind::Corrupt,
            ParticipantBehavior::StallAt { round: r } if *r == round => FaultKind::Stall,
            _ => FaultKind::None,
        }
    }
}

/// Builds a heterogeneous fleet of participants from a dataset.
///
/// The dataset is split non-IID across participants (Dirichlet topic skew)
/// and each participant is paired with a sampled consumer-GPU profile. The
/// profiling bit width is chosen per device: 8 GB cards use INT2, mid-range
/// cards INT4, larger cards INT8.
pub fn build_fleet(
    dataset: &Dataset,
    num_participants: usize,
    alpha: f32,
    rng: &mut SeededRng,
) -> Vec<Participant> {
    assert!(num_participants > 0, "need at least one participant");
    let shards = partition_non_iid(
        dataset,
        &PartitionConfig::new(num_participants).with_alpha(alpha),
        rng,
    );
    let devices = sample_fleet(num_participants, rng);
    shards
        .into_iter()
        .zip(devices)
        .enumerate()
        .map(|(id, (train_data, device))| {
            let profile_width = if device.gpu_memory_gb <= 8.0 {
                BitWidth::Int2
            } else if device.gpu_memory_gb <= 16.0 {
                BitWidth::Int4
            } else {
                BitWidth::Int8
            };
            Participant {
                id,
                device,
                train_data,
                profile_width,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use flux_data::{DatasetGenerator, DatasetKind};

    fn dataset() -> Dataset {
        let mut rng = SeededRng::new(1);
        DatasetGenerator::for_kind(DatasetKind::Mmlu, 256).generate(&mut rng)
    }

    #[test]
    fn fleet_covers_all_samples_and_ids() {
        let ds = dataset();
        let mut rng = SeededRng::new(2);
        let fleet = build_fleet(&ds, 10, 0.5, &mut rng);
        assert_eq!(fleet.len(), 10);
        let total: usize = fleet.iter().map(|p| p.num_samples()).sum();
        assert_eq!(total, ds.len());
        for (i, p) in fleet.iter().enumerate() {
            assert_eq!(p.id, i);
        }
    }

    #[test]
    fn budgets_are_consistent() {
        let ds = dataset();
        let mut rng = SeededRng::new(3);
        let cfg = MoeConfig::llama_moe_sim();
        let fleet = build_fleet(&ds, 8, 0.5, &mut rng);
        for p in &fleet {
            let b = p.expert_capacity(&cfg);
            let bt = p.tuning_capacity(&cfg);
            let bn = p.non_tuning_capacity(&cfg);
            assert!(bt <= b);
            assert!(bn >= 1);
            assert!(bt + bn >= b.min(bt + bn), "budgets must cover the device");
        }
    }

    #[test]
    fn profile_width_matches_device_size() {
        let ds = dataset();
        let mut rng = SeededRng::new(4);
        let fleet = build_fleet(&ds, 30, 0.5, &mut rng);
        for p in &fleet {
            match p.profile_width {
                BitWidth::Int2 => assert!(p.device.gpu_memory_gb <= 8.0),
                BitWidth::Int4 => {
                    assert!(p.device.gpu_memory_gb > 8.0 && p.device.gpu_memory_gb <= 16.0)
                }
                BitWidth::Int8 => assert!(p.device.gpu_memory_gb > 16.0),
            }
        }
    }

    #[test]
    fn tokens_per_round_positive() {
        let ds = dataset();
        let mut rng = SeededRng::new(5);
        let fleet = build_fleet(&ds, 5, 0.5, &mut rng);
        assert!(fleet.iter().all(|p| p.tokens_per_round() > 0));
    }

    #[test]
    fn behavior_dropout_and_delay_semantics() {
        let healthy = ParticipantBehavior::Healthy;
        assert!(!healthy.is_dropped(0));
        assert_eq!(healthy.delay_ms(), 0);
        let straggler = ParticipantBehavior::Straggler { delay_ms: 25 };
        assert!(!straggler.is_dropped(100));
        assert_eq!(straggler.delay_ms(), 25);
        let dropout = ParticipantBehavior::DropoutAt { round: 2 };
        assert!(!dropout.is_dropped(1));
        assert!(dropout.is_dropped(2));
        assert!(dropout.is_dropped(7));
        assert_eq!(dropout.delay_ms(), 0);
    }

    #[test]
    fn fault_behaviors_fire_once_on_the_first_attempt() {
        let crash = ParticipantBehavior::CrashAt { round: 3 };
        assert_eq!(crash.fault_at(3, 0), FaultKind::Crash);
        assert_eq!(crash.fault_at(2, 0), FaultKind::None);
        assert_eq!(crash.fault_at(4, 0), FaultKind::None);
        assert!(!crash.is_dropped(3), "a crash is not a dropout");

        let corrupt = ParticipantBehavior::CorruptAt { round: 1 };
        assert_eq!(corrupt.fault_at(1, 0), FaultKind::Corrupt);
        assert_eq!(corrupt.fault_at(1, 1), FaultKind::None, "retries are clean");

        let stall = ParticipantBehavior::StallAt { round: 0 };
        assert_eq!(stall.fault_at(0, 0), FaultKind::Stall);
        assert_eq!(stall.fault_at(0, 1), FaultKind::None);
        assert_eq!(ParticipantBehavior::Healthy.fault_at(0, 0), FaultKind::None);
    }

    #[test]
    fn fleet_is_deterministic() {
        let ds = dataset();
        let a = build_fleet(&ds, 6, 0.5, &mut SeededRng::new(7));
        let b = build_fleet(&ds, 6, 0.5, &mut SeededRng::new(7));
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.device, y.device);
            assert_eq!(x.train_data.samples.len(), y.train_data.samples.len());
        }
    }
}
