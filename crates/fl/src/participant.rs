//! Federated participants and fleet construction.

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use flux_data::{partition_indices_non_iid, Dataset, PartitionConfig, PartitionView};
use flux_moe::MoeConfig;
use flux_quant::BitWidth;
use flux_tensor::SeededRng;

use crate::device::{sample_fleet, DeviceProfile, LinkProfile};
use crate::fault::FaultKind;

/// One federated participant: a device plus its local (private) data shard.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Participant {
    /// Stable participant id.
    pub id: usize,
    /// Hardware profile.
    pub device: DeviceProfile,
    /// Local training shard (never leaves the participant).
    pub train_data: Dataset,
    /// Profiling bit width this participant can afford (weaker devices pick
    /// lower widths, §4.1 "each participant flexibly chooses the appropriate
    /// quantization level").
    pub profile_width: BitWidth,
}

impl Participant {
    /// Memory budget `B_i`: experts that fit on this device.
    pub fn expert_capacity(&self, config: &MoeConfig) -> usize {
        self.device.expert_capacity(config)
    }

    /// Compute budget `B_tune_i`: experts that can be tuned per round.
    pub fn tuning_capacity(&self, config: &MoeConfig) -> usize {
        self.device.tuning_capacity(config, self.tokens_per_round())
    }

    /// Non-tuning budget `B_non_i = B_i − B_tune_i`.
    pub fn non_tuning_capacity(&self, config: &MoeConfig) -> usize {
        self.expert_capacity(config)
            .saturating_sub(self.tuning_capacity(config))
            .max(1)
    }

    /// Tokens processed in one local round (all local samples, one epoch).
    pub fn tokens_per_round(&self) -> usize {
        self.train_data
            .samples
            .iter()
            .map(|s| s.tokens.len())
            .sum::<usize>()
            .max(1)
    }

    /// Number of local samples.
    pub fn num_samples(&self) -> usize {
        self.train_data.len()
    }
}

/// Fault/latency behavior of one participant, used by the driver's
/// straggler and dropout scenarios.
///
/// The simulated *cost model* already prices slow devices; this knob instead
/// perturbs the **wall-clock execution** of the round pipeline, so tests can
/// prove that arrival order and mid-round failures change neither the
/// aggregate (no deadlock, no double-counted weight) nor the bit-exact
/// results.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum ParticipantBehavior {
    /// Trains and uploads normally.
    #[default]
    Healthy,
    /// Returns late: its local round stalls for this many wall-clock
    /// milliseconds before the upload reaches the server, pushing it to the
    /// back of the arrival order without changing what it computes.
    Straggler {
        /// Wall-clock delay before the upload is produced.
        delay_ms: u64,
    },
    /// Drops out mid-run: from round `round` (0-based) onward the
    /// participant neither trains nor uploads, and the server must exclude
    /// its weight entirely.
    DropoutAt {
        /// First round the participant misses.
        round: usize,
    },
    /// Crashes during exactly one round: trains, but its upload never
    /// reaches the server that round (and, unlike [`Self::DropoutAt`],
    /// it returns healthy next round).
    CrashAt {
        /// The single round whose upload is lost.
        round: usize,
    },
    /// Its round-`round` upload arrives bit-flipped; the server's
    /// checksum-validated decode must reject (not crash on) it.
    CorruptAt {
        /// The round whose upload arrives damaged.
        round: usize,
    },
    /// Its round-`round` upload stalls past the delivery window and is
    /// only recovered by a server-side retry.
    StallAt {
        /// The round whose upload stalls.
        round: usize,
    },
}

impl ParticipantBehavior {
    /// Whether the participant is absent in `round`.
    pub fn is_dropped(&self, round: usize) -> bool {
        matches!(self, ParticipantBehavior::DropoutAt { round: r } if round >= *r)
    }

    /// Wall-clock stall applied before the participant's upload, in
    /// milliseconds.
    pub fn delay_ms(&self) -> u64 {
        match self {
            ParticipantBehavior::Straggler { delay_ms } => *delay_ms,
            _ => 0,
        }
    }

    /// The fault this behavior injects into the *first* delivery attempt of
    /// the participant's round-`round` upload (retries are clean — behaviors
    /// model one-shot incidents; use a
    /// [`FaultPlan`](crate::fault::FaultPlan) for sustained failure rates).
    pub fn fault_at(&self, round: usize, attempt: u32) -> FaultKind {
        if attempt > 0 {
            return FaultKind::None;
        }
        match self {
            ParticipantBehavior::CrashAt { round: r } if *r == round => FaultKind::Crash,
            ParticipantBehavior::CorruptAt { round: r } if *r == round => FaultKind::Corrupt,
            ParticipantBehavior::StallAt { round: r } if *r == round => FaultKind::Stall,
            _ => FaultKind::None,
        }
    }
}

/// Profiling bit width a device can afford: 8 GB cards use INT2, mid-range
/// cards INT4, larger cards INT8 (§4.1 "each participant flexibly chooses
/// the appropriate quantization level").
fn profile_width_for(device: &DeviceProfile) -> BitWidth {
    if device.gpu_memory_gb <= 8.0 {
        BitWidth::Int2
    } else if device.gpu_memory_gb <= 16.0 {
        BitWidth::Int4
    } else {
        BitWidth::Int8
    }
}

/// One registered client: everything needed to materialize a
/// [`Participant`] on demand, without holding its data shard.
#[derive(Debug, Clone)]
pub struct ClientSpec {
    /// Stable client id (also the participant id once materialized).
    pub id: usize,
    /// Hardware profile.
    pub device: DeviceProfile,
    /// Profiling bit width this client's device affords.
    pub profile_width: BitWidth,
    /// Rows of the shared corpus forming this client's shard.
    indices: Arc<Vec<usize>>,
}

impl ClientSpec {
    /// The corpus rows of this client's shard.
    pub fn shard_indices(&self) -> &[usize] {
        &self.indices
    }
}

/// Lightweight registry of N federated clients over one shared corpus.
///
/// Registration stores per client only a device profile and a shard index
/// list against an `Arc`-shared corpus, so a 10k-client fleet costs O(total
/// indices) instead of N cloned [`Dataset`] shards. Participants are
/// materialized lazily — typically just the K clients sampled into a
/// round's cohort — via [`FleetSpec::materialize`], which reproduces the
/// eager [`build_fleet`] shard for that id bit-for-bit.
#[derive(Debug, Clone)]
pub struct FleetSpec {
    corpus: Arc<Dataset>,
    clients: Vec<ClientSpec>,
}

impl FleetSpec {
    /// Registers `num_clients` clients over `corpus`.
    ///
    /// When the fleet is no larger than the corpus, shards come from the
    /// non-IID Dirichlet partitioner with RNG consumption identical to the
    /// eager [`build_fleet`] (so legacy runs replay bit-identically).
    /// Larger fleets — the 10k-cohort regime, where a Dirichlet split
    /// cannot give every client its minimum shard — tile the corpus
    /// cyclically instead: client `i` owns rows `{2i, 2i+1} mod len`,
    /// deterministically and without consuming partition draws.
    pub fn build(
        corpus: Arc<Dataset>,
        num_clients: usize,
        alpha: f32,
        rng: &mut SeededRng,
    ) -> Self {
        assert!(num_clients > 0, "need at least one client");
        let shards: Vec<Vec<usize>> = if corpus.is_empty() {
            // The eager partitioner hands out empty shards (and consumes no
            // draws) for an empty corpus; mirror that.
            vec![Vec::new(); num_clients]
        } else if num_clients <= corpus.len() {
            partition_indices_non_iid(
                &corpus,
                &PartitionConfig::new(num_clients).with_alpha(alpha),
                rng,
            )
        } else {
            let len = corpus.len();
            (0..num_clients)
                .map(|i| vec![(2 * i) % len, (2 * i + 1) % len])
                .collect()
        };
        let devices = sample_fleet(num_clients, rng);
        let clients = shards
            .into_iter()
            .zip(devices)
            .enumerate()
            .map(|(id, (shard, device))| ClientSpec {
                id,
                profile_width: profile_width_for(&device),
                device,
                indices: Arc::new(shard),
            })
            .collect();
        Self { corpus, clients }
    }

    /// Number of registered clients.
    pub fn len(&self) -> usize {
        self.clients.len()
    }

    /// Whether no clients are registered.
    pub fn is_empty(&self) -> bool {
        self.clients.is_empty()
    }

    /// The registration record of client `id`.
    pub fn client(&self, id: usize) -> &ClientSpec {
        &self.clients[id]
    }

    /// All registration records, in id order.
    pub fn clients(&self) -> &[ClientSpec] {
        &self.clients
    }

    /// The shared corpus behind every shard.
    pub fn corpus(&self) -> &Arc<Dataset> {
        &self.corpus
    }

    /// A lazy stream over client `id`'s shard (no samples cloned until
    /// consumed).
    pub fn view(&self, id: usize) -> PartitionView {
        let c = &self.clients[id];
        PartitionView::new(Arc::clone(&self.corpus), Arc::clone(&c.indices))
    }

    /// Materializes client `id` into a full [`Participant`] (clones its
    /// shard out of the corpus).
    pub fn materialize(&self, id: usize) -> Participant {
        let c = &self.clients[id];
        Participant {
            id: c.id,
            device: c.device.clone(),
            train_data: self.corpus.subset(&c.indices),
            profile_width: c.profile_width,
        }
    }

    /// Materializes every client — the legacy full-participation fleet.
    pub fn materialize_all(&self) -> Vec<Participant> {
        (0..self.clients.len())
            .map(|id| self.materialize(id))
            .collect()
    }

    /// Overrides every client's uplink (the `RunConfig::with_link` knob),
    /// so lazily materialized participants inherit it.
    pub fn override_link(&mut self, link: LinkProfile) {
        for c in &mut self.clients {
            c.device.link = link;
        }
    }
}

/// Builds a heterogeneous fleet of participants from a dataset.
///
/// The dataset is split non-IID across participants (Dirichlet topic skew)
/// and each participant is paired with a sampled consumer-GPU profile.
/// This is the eager form of [`FleetSpec::build`]: every client is
/// materialized immediately.
pub fn build_fleet(
    dataset: &Dataset,
    num_participants: usize,
    alpha: f32,
    rng: &mut SeededRng,
) -> Vec<Participant> {
    FleetSpec::build(Arc::new(dataset.clone()), num_participants, alpha, rng).materialize_all()
}

#[cfg(test)]
mod tests {
    use super::*;
    use flux_data::{DatasetGenerator, DatasetKind};

    fn dataset() -> Dataset {
        let mut rng = SeededRng::new(1);
        DatasetGenerator::for_kind(DatasetKind::Mmlu, 256).generate(&mut rng)
    }

    #[test]
    fn fleet_covers_all_samples_and_ids() {
        let ds = dataset();
        let mut rng = SeededRng::new(2);
        let fleet = build_fleet(&ds, 10, 0.5, &mut rng);
        assert_eq!(fleet.len(), 10);
        let total: usize = fleet.iter().map(|p| p.num_samples()).sum();
        assert_eq!(total, ds.len());
        for (i, p) in fleet.iter().enumerate() {
            assert_eq!(p.id, i);
        }
    }

    #[test]
    fn budgets_are_consistent() {
        let ds = dataset();
        let mut rng = SeededRng::new(3);
        let cfg = MoeConfig::llama_moe_sim();
        let fleet = build_fleet(&ds, 8, 0.5, &mut rng);
        for p in &fleet {
            let b = p.expert_capacity(&cfg);
            let bt = p.tuning_capacity(&cfg);
            let bn = p.non_tuning_capacity(&cfg);
            assert!(bt <= b);
            assert!(bn >= 1);
            assert!(bt + bn >= b.min(bt + bn), "budgets must cover the device");
        }
    }

    #[test]
    fn profile_width_matches_device_size() {
        let ds = dataset();
        let mut rng = SeededRng::new(4);
        let fleet = build_fleet(&ds, 30, 0.5, &mut rng);
        for p in &fleet {
            match p.profile_width {
                BitWidth::Int2 => assert!(p.device.gpu_memory_gb <= 8.0),
                BitWidth::Int4 => {
                    assert!(p.device.gpu_memory_gb > 8.0 && p.device.gpu_memory_gb <= 16.0)
                }
                BitWidth::Int8 => assert!(p.device.gpu_memory_gb > 16.0),
            }
        }
    }

    #[test]
    fn tokens_per_round_positive() {
        let ds = dataset();
        let mut rng = SeededRng::new(5);
        let fleet = build_fleet(&ds, 5, 0.5, &mut rng);
        assert!(fleet.iter().all(|p| p.tokens_per_round() > 0));
    }

    #[test]
    fn behavior_dropout_and_delay_semantics() {
        let healthy = ParticipantBehavior::Healthy;
        assert!(!healthy.is_dropped(0));
        assert_eq!(healthy.delay_ms(), 0);
        let straggler = ParticipantBehavior::Straggler { delay_ms: 25 };
        assert!(!straggler.is_dropped(100));
        assert_eq!(straggler.delay_ms(), 25);
        let dropout = ParticipantBehavior::DropoutAt { round: 2 };
        assert!(!dropout.is_dropped(1));
        assert!(dropout.is_dropped(2));
        assert!(dropout.is_dropped(7));
        assert_eq!(dropout.delay_ms(), 0);
    }

    #[test]
    fn fault_behaviors_fire_once_on_the_first_attempt() {
        let crash = ParticipantBehavior::CrashAt { round: 3 };
        assert_eq!(crash.fault_at(3, 0), FaultKind::Crash);
        assert_eq!(crash.fault_at(2, 0), FaultKind::None);
        assert_eq!(crash.fault_at(4, 0), FaultKind::None);
        assert!(!crash.is_dropped(3), "a crash is not a dropout");

        let corrupt = ParticipantBehavior::CorruptAt { round: 1 };
        assert_eq!(corrupt.fault_at(1, 0), FaultKind::Corrupt);
        assert_eq!(corrupt.fault_at(1, 1), FaultKind::None, "retries are clean");

        let stall = ParticipantBehavior::StallAt { round: 0 };
        assert_eq!(stall.fault_at(0, 0), FaultKind::Stall);
        assert_eq!(stall.fault_at(0, 1), FaultKind::None);
        assert_eq!(ParticipantBehavior::Healthy.fault_at(0, 0), FaultKind::None);
    }

    #[test]
    fn lazy_registry_matches_eager_fleet_bit_for_bit() {
        // FleetSpec::build must consume the RNG exactly like build_fleet,
        // and lazy materialization must reproduce the eager shards.
        let ds = dataset();
        let eager = build_fleet(&ds, 9, 0.4, &mut SeededRng::new(21));
        let spec = FleetSpec::build(Arc::new(ds.clone()), 9, 0.4, &mut SeededRng::new(21));
        assert_eq!(spec.len(), eager.len());
        for p in &eager {
            let lazy = spec.materialize(p.id);
            assert_eq!(lazy.id, p.id);
            assert_eq!(lazy.device, p.device);
            assert_eq!(lazy.profile_width, p.profile_width);
            assert_eq!(lazy.train_data.samples, p.train_data.samples);
        }
    }

    #[test]
    fn registry_views_stream_the_same_shard_it_materializes() {
        use flux_data::SampleStream;
        let ds = dataset();
        let spec = FleetSpec::build(Arc::new(ds), 6, 0.5, &mut SeededRng::new(22));
        for id in 0..spec.len() {
            let mut view = spec.view(id);
            assert_eq!(
                view.materialize().samples,
                spec.materialize(id).train_data.samples
            );
        }
    }

    #[test]
    fn oversubscribed_registry_tiles_the_corpus() {
        // More clients than samples: the Dirichlet split cannot give every
        // client its minimum, so the registry tiles cyclically — every
        // client still gets a non-empty deterministic shard and only the
        // sampled cohort is ever materialized.
        let ds = dataset();
        let n = ds.len() * 3 + 7;
        let a = FleetSpec::build(Arc::new(ds.clone()), n, 0.5, &mut SeededRng::new(23));
        let b = FleetSpec::build(Arc::new(ds.clone()), n, 0.5, &mut SeededRng::new(23));
        assert_eq!(a.len(), n);
        for id in [0, 1, ds.len(), n - 1] {
            assert_eq!(a.client(id).shard_indices(), b.client(id).shard_indices());
            let p = a.materialize(id);
            assert_eq!(p.id, id);
            assert_eq!(p.num_samples(), 2);
        }
    }

    #[test]
    fn link_override_applies_to_lazy_materialization() {
        let ds = dataset();
        let mut spec = FleetSpec::build(Arc::new(ds), 4, 0.5, &mut SeededRng::new(24));
        let link = LinkProfile::three_g();
        spec.override_link(link);
        for id in 0..spec.len() {
            assert_eq!(spec.materialize(id).device.link, link);
        }
    }

    #[test]
    fn fleet_is_deterministic() {
        let ds = dataset();
        let a = build_fleet(&ds, 6, 0.5, &mut SeededRng::new(7));
        let b = build_fleet(&ds, 6, 0.5, &mut SeededRng::new(7));
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.device, y.device);
            assert_eq!(x.train_data.samples.len(), y.train_data.samples.len());
        }
    }
}
