//! Quantization-based local expert-activation profiling (§4).
//!
//! Running the full-precision model over local data just to measure which
//! experts fire is unaffordable on a constrained participant. Flux instead
//! profiles with a low-bit quantized copy, whose *routing decisions* closely
//! track the full model even though its outputs are too noisy to train on.
//! [`LocalProfiler`] implements that measurement; [`StaleProfiler`]
//! implements the stale-profiling pipeline of §4.2, where round `r` uses the
//! profile computed during round `r-1`'s aggregation window so the profiling
//! cost is hidden behind server-side work.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use serde::{Deserialize, Serialize};

use flux_data::Dataset;
use flux_moe::{ActivationProfile, MoeModel};
use flux_quant::BitWidth;

/// Round-scoped memoization of the quantized profiling model, one entry per
/// bit width.
///
/// Every participant used to quantize its own copy of the freshly
/// downloaded global model before profiling — identical work repeated once
/// per participant sharing a bit width (the fleet assigns widths by device
/// class, so most participants share one of two or three widths). The
/// driver now opens one `QuantizedModelCache` per round and every profiling
/// (and FMQ fine-tuning) path goes through it: the first participant at a
/// width quantizes, the rest reuse the identical copy.
///
/// The cache must not outlive the round — the global model changes at every
/// aggregation, and a stale quantized copy would silently profile last
/// round's weights.
///
/// Concurrency: lookups take a short registry lock, then a per-width slot
/// lock for the duration of the (first) quantization, so two participants
/// at the *same* width wait on each other instead of duplicating the work,
/// while different widths quantize concurrently. Quantization is
/// deterministic, so the memoized copy is bit-identical to the one each
/// participant would have built.
#[derive(Debug, Default)]
pub struct QuantizedModelCache {
    slots: Mutex<HashMap<BitWidth, Arc<QuantizedSlot>>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

/// One bit width's memoization slot: locked while the first requester
/// quantizes so sharers wait instead of duplicating the work.
type QuantizedSlot = Mutex<Option<Arc<MoeModel>>>;

impl QuantizedModelCache {
    /// Creates an empty cache for one round.
    pub fn new() -> Self {
        Self::default()
    }

    /// The quantized copy of `model` at `width`: computed on first request,
    /// shared on every subsequent one.
    pub fn get_or_quantize(&self, model: &MoeModel, width: BitWidth) -> Arc<MoeModel> {
        let slot = {
            let mut slots = lock(&self.slots);
            Arc::clone(slots.entry(width).or_default())
        };
        let mut guard = lock(&slot);
        if let Some(cached) = &*guard {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(cached);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let quantized = Arc::new(model.quantized_copy(width));
        *guard = Some(Arc::clone(&quantized));
        quantized
    }

    /// `(hits, misses)` so far — misses count actual quantizations.
    pub fn stats(&self) -> (usize, usize) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }
}

/// Acquires a mutex, recovering from poisoning: a panic inside
/// `quantized_copy` leaves the slot `None`, which simply re-quantizes on
/// the next request.
fn lock<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Configuration of the local profiling module.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProfilingConfig {
    /// Quantization width used for the profiling copy. Weaker devices pick
    /// lower widths (cheaper, less accurate).
    pub width: BitWidth,
    /// Whether to use stale profiling (profile from the previous round) so
    /// profiling overlaps with aggregation.
    pub stale: bool,
    /// Largest number of samples to profile per round; profiling the whole
    /// shard is unnecessary once frequencies stabilize.
    pub max_samples: usize,
}

impl Default for ProfilingConfig {
    fn default() -> Self {
        Self {
            width: BitWidth::Int4,
            stale: true,
            max_samples: 64,
        }
    }
}

impl ProfilingConfig {
    /// Uses the given quantization width.
    pub fn with_width(mut self, width: BitWidth) -> Self {
        self.width = width;
        self
    }

    /// Enables or disables stale profiling.
    pub fn with_stale(mut self, stale: bool) -> Self {
        self.stale = stale;
        self
    }
}

/// Profiles expert activation with a quantized model copy.
#[derive(Debug, Clone)]
pub struct LocalProfiler {
    config: ProfilingConfig,
}

impl LocalProfiler {
    /// Creates a profiler with the given configuration.
    pub fn new(config: ProfilingConfig) -> Self {
        Self { config }
    }

    /// The profiling configuration.
    pub fn config(&self) -> &ProfilingConfig {
        &self.config
    }

    /// Profiles `dataset` using a quantized copy of `model`.
    ///
    /// Only the first `max_samples` samples are used; the quantized copy is
    /// built fresh from the given model so the profile reflects the latest
    /// downloaded parameters.
    pub fn profile(&self, model: &MoeModel, dataset: &Dataset) -> ActivationProfile {
        let quantized = model.quantized_copy(self.config.width);
        let subset = limit_samples(dataset, self.config.max_samples);
        quantized.profile(&subset)
    }

    /// Like [`LocalProfiler::profile`], but the quantized copy comes from
    /// the round's shared [`QuantizedModelCache`]: participants sharing a
    /// bit width quantize the model once between them. Identical results —
    /// quantization is deterministic.
    pub fn profile_cached(
        &self,
        model: &MoeModel,
        dataset: &Dataset,
        cache: &QuantizedModelCache,
    ) -> ActivationProfile {
        let quantized = cache.get_or_quantize(model, self.config.width);
        let subset = limit_samples(dataset, self.config.max_samples);
        quantized.profile(&subset)
    }

    /// Profiles with the *full-precision* model. Used as ground truth when
    /// measuring the estimation error of quantized profiling (Fig. 5/14).
    pub fn profile_full_precision(&self, model: &MoeModel, dataset: &Dataset) -> ActivationProfile {
        let subset = limit_samples(dataset, self.config.max_samples);
        model.profile(&subset)
    }

    /// Estimation error (percent) of quantized profiling against the
    /// full-precision ground truth on the same data.
    pub fn estimation_error_pct(&self, model: &MoeModel, dataset: &Dataset) -> f32 {
        let estimated = self.profile(model, dataset);
        let truth = self.profile_full_precision(model, dataset);
        estimated.estimation_error_pct(&truth)
    }
}

/// Stale-profiling pipeline (§4.2).
///
/// Holds the most recent completed profile. At the start of round `r` the
/// participant *uses* the stale profile (computed from the round `r-1`
/// model) for merging and data selection, then refreshes the profile from
/// the newly downloaded model while the server is busy aggregating — hiding
/// the profiling latency.
#[derive(Debug, Clone)]
pub struct StaleProfiler {
    profiler: LocalProfiler,
    current: Option<ActivationProfile>,
    refreshes: usize,
}

impl StaleProfiler {
    /// Creates an empty stale profiler.
    pub fn new(config: ProfilingConfig) -> Self {
        Self {
            profiler: LocalProfiler::new(config),
            current: None,
            refreshes: 0,
        }
    }

    /// Rebuilds a stale profiler from checkpointed state (the profile
    /// computed before the crash plus how many refreshes produced it), so a
    /// restored run resumes with the exact stale view the interrupted round
    /// was using.
    pub fn from_parts(
        config: ProfilingConfig,
        current: Option<ActivationProfile>,
        refreshes: usize,
    ) -> Self {
        Self {
            profiler: LocalProfiler::new(config),
            current,
            refreshes,
        }
    }

    /// The profile available for use this round (stale), if any. The first
    /// round has no stale profile and must call
    /// [`StaleProfiler::refresh_blocking`] instead.
    pub fn stale_profile(&self) -> Option<&ActivationProfile> {
        self.current.as_ref()
    }

    /// Number of refreshes performed so far.
    pub fn refreshes(&self) -> usize {
        self.refreshes
    }

    /// Refreshes the profile from the given model/data; in the real system
    /// this runs concurrently with server aggregation, so its cost is not on
    /// the participant's critical path (the driver accounts for it that way).
    pub fn refresh(&mut self, model: &MoeModel, dataset: &Dataset) {
        self.current = Some(self.profiler.profile(model, dataset));
        self.refreshes += 1;
    }

    /// [`StaleProfiler::refresh`] through the round's shared
    /// [`QuantizedModelCache`]: the quantized copy is built once per bit
    /// width per round instead of once per participant.
    pub fn refresh_cached(
        &mut self,
        model: &MoeModel,
        dataset: &Dataset,
        cache: &QuantizedModelCache,
    ) {
        self.current = Some(self.profiler.profile_cached(model, dataset, cache));
        self.refreshes += 1;
    }

    /// Profiles synchronously and returns the result (used in round 0, when
    /// no stale profile exists yet, and by the non-stale ablation).
    pub fn refresh_blocking(&mut self, model: &MoeModel, dataset: &Dataset) -> ActivationProfile {
        self.refresh(model, dataset);
        self.current
            .clone()
            .expect("refresh just populated the profile")
    }

    /// [`StaleProfiler::refresh_blocking`] through the round's shared
    /// [`QuantizedModelCache`].
    pub fn refresh_blocking_cached(
        &mut self,
        model: &MoeModel,
        dataset: &Dataset,
        cache: &QuantizedModelCache,
    ) -> ActivationProfile {
        self.refresh_cached(model, dataset, cache);
        self.current
            .clone()
            .expect("refresh just populated the profile")
    }
}

fn limit_samples(dataset: &Dataset, max: usize) -> Dataset {
    if dataset.len() <= max {
        return dataset.clone();
    }
    let indices: Vec<usize> = (0..max).collect();
    dataset.subset(&indices)
}

#[cfg(test)]
mod tests {
    use super::*;
    use flux_data::{DatasetGenerator, DatasetKind};
    use flux_moe::MoeConfig;
    use flux_tensor::SeededRng;

    fn model_and_data() -> (MoeModel, Dataset) {
        let mut rng = SeededRng::new(1);
        let model = MoeModel::new(MoeConfig::tiny().with_classes(8), &mut rng);
        let cfg = flux_data::DatasetConfig::for_kind(DatasetKind::Gsm8k, 64)
            .with_num_samples(20)
            .with_mean_seq_len(10);
        let data = DatasetGenerator::new(cfg).generate(&mut rng);
        (model, data)
    }

    #[test]
    fn quantized_profile_has_model_shape() {
        let (model, data) = model_and_data();
        let profiler = LocalProfiler::new(ProfilingConfig::default());
        let profile = profiler.profile(&model, &data);
        assert_eq!(profile.num_layers(), 4);
        assert_eq!(profile.frequencies[0].len(), 8);
    }

    #[test]
    fn estimation_error_decreases_with_precision() {
        let (model, data) = model_and_data();
        let err = |width| {
            LocalProfiler::new(ProfilingConfig::default().with_width(width))
                .estimation_error_pct(&model, &data)
        };
        let e2 = err(BitWidth::Int2);
        let e8 = err(BitWidth::Int8);
        assert!(
            e2 >= e8,
            "2-bit profiling should not beat 8-bit: {e2} vs {e8}"
        );
        // INT8 routing should be close to the full-precision routing.
        assert!(e8 < 30.0, "int8 error unexpectedly high: {e8}");
    }

    #[test]
    fn estimation_error_is_nonzero_for_low_bits() {
        let (model, data) = model_and_data();
        let e2 = LocalProfiler::new(ProfilingConfig::default().with_width(BitWidth::Int2))
            .estimation_error_pct(&model, &data);
        assert!(e2 > 0.0);
    }

    #[test]
    fn max_samples_limits_work() {
        let (model, data) = model_and_data();
        let small = LocalProfiler::new(ProfilingConfig {
            width: BitWidth::Int8,
            stale: true,
            max_samples: 3,
        });
        // Should run (on only 3 samples) and still produce a full-shape profile.
        let profile = small.profile(&model, &data);
        assert_eq!(profile.num_layers(), 4);
    }

    #[test]
    fn quantized_cache_reuses_one_copy_per_width() {
        let (model, data) = model_and_data();
        let cache = QuantizedModelCache::new();
        let a = cache.get_or_quantize(&model, BitWidth::Int4);
        let b = cache.get_or_quantize(&model, BitWidth::Int4);
        // Same allocation, not merely equal contents.
        assert!(Arc::ptr_eq(&a, &b));
        let c = cache.get_or_quantize(&model, BitWidth::Int8);
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(cache.stats(), (1, 2)); // one hit, two quantizations
                                           // The memoized copy is bit-identical to a fresh quantization.
        assert_eq!(
            a.param_checksum(),
            model.quantized_copy(BitWidth::Int4).param_checksum()
        );
        let _ = data;
    }

    #[test]
    fn cached_profile_matches_uncached() {
        let (model, data) = model_and_data();
        let profiler = LocalProfiler::new(ProfilingConfig::default());
        let cache = QuantizedModelCache::new();
        let cached = profiler.profile_cached(&model, &data, &cache);
        let uncached = profiler.profile(&model, &data);
        assert_eq!(cached, uncached);
        // A second participant sharing the width hits the cache.
        let again = profiler.profile_cached(&model, &data, &cache);
        assert_eq!(again, uncached);
        assert_eq!(cache.stats().0, 1);
    }

    #[test]
    fn cached_stale_refresh_matches_uncached() {
        let (model, data) = model_and_data();
        let cache = QuantizedModelCache::new();
        let mut cached = StaleProfiler::new(ProfilingConfig::default());
        let mut plain = StaleProfiler::new(ProfilingConfig::default());
        let a = cached.refresh_blocking_cached(&model, &data, &cache);
        let b = plain.refresh_blocking(&model, &data);
        assert_eq!(a, b);
        cached.refresh_cached(&model, &data, &cache);
        plain.refresh(&model, &data);
        assert_eq!(cached.stale_profile(), plain.stale_profile());
        assert_eq!(cached.refreshes(), 2);
    }

    #[test]
    fn stale_profiler_lags_one_round_behind() {
        let (model, data) = model_and_data();
        let mut stale = StaleProfiler::new(ProfilingConfig::default());
        assert!(stale.stale_profile().is_none());
        let first = stale.refresh_blocking(&model, &data);
        assert_eq!(stale.refreshes(), 1);
        // The stale profile now equals the first profile even if the model
        // changes afterwards.
        let mut rng = SeededRng::new(99);
        let newer_model = MoeModel::new(MoeConfig::tiny().with_classes(8), &mut rng);
        let stale_view = stale.stale_profile().unwrap().clone();
        assert_eq!(stale_view, first);
        stale.refresh(&newer_model, &data);
        assert_eq!(stale.refreshes(), 2);
        assert_ne!(stale.stale_profile().unwrap(), &first);
    }

    #[test]
    fn stale_profile_error_is_modest_across_one_update_step() {
        // The justification for stale profiling (Fig. 6/14): one round of
        // fine-tuning changes activation frequencies only slightly.
        let (mut model, data) = model_and_data();
        let profiler = LocalProfiler::new(ProfilingConfig::default().with_width(BitWidth::Int8));
        let before = profiler.profile(&model, &data);
        // One small training step.
        model.train_step(&data.samples[..4], None, 1e-3);
        let after = profiler.profile(&model, &data);
        let drift = before.estimation_error_pct(&after);
        assert!(drift < 25.0, "one-step drift too large: {drift}%");
    }
}
