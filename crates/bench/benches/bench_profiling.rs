//! Criterion bench backing Figures 5/14: quantized versus full-precision
//! activation profiling.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use flux_core::profiling::{LocalProfiler, ProfilingConfig};
use flux_data::{DatasetConfig, DatasetGenerator, DatasetKind};
use flux_moe::{MoeConfig, MoeModel};
use flux_quant::BitWidth;
use flux_tensor::SeededRng;

fn profiling(c: &mut Criterion) {
    let mut rng = SeededRng::new(4);
    let model = MoeModel::new(MoeConfig::tiny(), &mut rng);
    let data = DatasetGenerator::new(
        DatasetConfig::for_kind(DatasetKind::Gsm8k, 64)
            .with_num_samples(16)
            .with_mean_seq_len(10),
    )
    .generate(&mut rng);

    let mut group = c.benchmark_group("fig05_profiling");
    for width in BitWidth::all() {
        group.bench_with_input(
            BenchmarkId::new("quantized_profile", format!("{width:?}")),
            &width,
            |b, &w| {
                let profiler = LocalProfiler::new(ProfilingConfig::default().with_width(w));
                b.iter(|| profiler.profile(&model, &data));
            },
        );
    }
    group.bench_function("full_precision_profile", |b| {
        b.iter(|| model.profile(&data));
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = profiling
}
criterion_main!(benches);
