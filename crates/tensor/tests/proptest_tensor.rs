//! Property-based tests for the tensor substrate.

use flux_tensor::{kmeans::KMeans, ops, stats, Matrix, SeededRng};
use proptest::prelude::*;

/// Strategy producing a small matrix with bounded finite values.
fn matrix_strategy(max_dim: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(|(r, c)| {
        prop::collection::vec(-100.0f32..100.0, r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data).unwrap())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn transpose_involution(m in matrix_strategy(8)) {
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn add_commutes(r in 1usize..6, c in 1usize..6, seed in 0u64..1000) {
        let mut rng = SeededRng::new(seed);
        let a = Matrix::random_normal(r, c, 1.0, &mut rng);
        let b = Matrix::random_normal(r, c, 1.0, &mut rng);
        let ab = a.add(&b).unwrap();
        let ba = b.add(&a).unwrap();
        for (x, y) in ab.as_slice().iter().zip(ba.as_slice()) {
            prop_assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn matmul_identity_left_and_right(m in matrix_strategy(6)) {
        let left = Matrix::identity(m.rows()).matmul(&m);
        let right = m.matmul(&Matrix::identity(m.cols()));
        for (x, y) in left.as_slice().iter().zip(m.as_slice()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
        for (x, y) in right.as_slice().iter().zip(m.as_slice()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn matmul_distributes_over_addition(seed in 0u64..500) {
        let mut rng = SeededRng::new(seed);
        let a = Matrix::random_normal(4, 5, 1.0, &mut rng);
        let b = Matrix::random_normal(5, 3, 1.0, &mut rng);
        let c = Matrix::random_normal(5, 3, 1.0, &mut rng);
        let lhs = a.matmul(&b.add(&c).unwrap());
        let rhs = a.matmul(&b).add(&a.matmul(&c)).unwrap();
        for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn softmax_is_distribution(logits in prop::collection::vec(-50.0f32..50.0, 1..32)) {
        let p = ops::softmax_row(&logits);
        let sum: f32 = p.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-4);
        prop_assert!(p.iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    #[test]
    fn softmax_invariant_to_constant_shift(
        logits in prop::collection::vec(-10.0f32..10.0, 2..16),
        shift in -100.0f32..100.0,
    ) {
        let base = ops::softmax_row(&logits);
        let shifted_logits: Vec<f32> = logits.iter().map(|&x| x + shift).collect();
        let shifted = ops::softmax_row(&shifted_logits);
        for (a, b) in base.iter().zip(shifted.iter()) {
            prop_assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn cosine_similarity_bounded(
        a in prop::collection::vec(-10.0f32..10.0, 4),
        b in prop::collection::vec(-10.0f32..10.0, 4),
    ) {
        let s = stats::cosine_similarity(&a, &b);
        prop_assert!((-1.0..=1.0).contains(&s));
    }

    #[test]
    fn cosine_similarity_scale_invariant(
        a in prop::collection::vec(0.1f32..10.0, 4),
        scale in 0.1f32..50.0,
    ) {
        let scaled: Vec<f32> = a.iter().map(|&x| x * scale).collect();
        let s = stats::cosine_similarity(&a, &scaled);
        prop_assert!((s - 1.0).abs() < 1e-4);
    }

    #[test]
    fn normalize_to_distribution_is_distribution(
        values in prop::collection::vec(0.0f32..100.0, 1..20),
    ) {
        let d = stats::normalize_to_distribution(&values);
        let sum: f32 = d.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-4);
    }

    #[test]
    fn empirical_cdf_is_monotone(
        samples in prop::collection::vec(-10.0f32..10.0, 1..50),
    ) {
        let points: Vec<f32> = (-10..=10).map(|x| x as f32).collect();
        let cdf = stats::empirical_cdf(&samples, &points);
        for pair in cdf.windows(2) {
            prop_assert!(pair[0].1 <= pair[1].1);
        }
    }

    #[test]
    fn layer_norm_rows_have_unit_variance(seed in 0u64..500, rows in 1usize..5) {
        let mut rng = SeededRng::new(seed);
        let x = Matrix::random_normal(rows, 32, 3.0, &mut rng);
        let y = ops::layer_norm(&x, 1e-5);
        for r in 0..y.rows() {
            let row = y.row(r);
            let mean: f32 = row.iter().sum::<f32>() / row.len() as f32;
            let var: f32 = row.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / row.len() as f32;
            prop_assert!(mean.abs() < 1e-3);
            prop_assert!((var - 1.0).abs() < 0.05);
        }
    }

    #[test]
    fn kmeans_assignments_in_range(seed in 0u64..200, k in 1usize..6) {
        let mut rng = SeededRng::new(seed);
        let data = Matrix::random_normal(20, 3, 1.0, &mut rng);
        let result = KMeans::new(k).with_euclidean().fit(&data, &mut rng).unwrap();
        let clusters = result.centroids.rows();
        prop_assert!(clusters <= k.max(1));
        prop_assert!(result.assignments.iter().all(|&a| a < clusters));
        prop_assert_eq!(result.assignments.len(), 20);
    }

    #[test]
    fn cross_entropy_loss_nonnegative(seed in 0u64..500) {
        let mut rng = SeededRng::new(seed);
        let logits = Matrix::random_normal(4, 6, 2.0, &mut rng);
        let targets: Vec<usize> = (0..4).map(|_| rng.below(6)).collect();
        let (loss, grad) = ops::cross_entropy(&logits, &targets);
        prop_assert!(loss >= 0.0);
        prop_assert_eq!(grad.shape(), logits.shape());
        // Gradient rows sum to ~0 (softmax minus one-hot).
        for r in 0..grad.rows() {
            let s: f32 = grad.row(r).iter().sum();
            prop_assert!(s.abs() < 1e-4);
        }
    }
}
