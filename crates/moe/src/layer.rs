//! MoE feed-forward layers and full transformer blocks.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};
use threadpool::ThreadPool;

use flux_tensor::{ops, Matrix, SeededRng};

use crate::attention::{Attention, AttentionBatchCache, AttentionCache};
use crate::expert::{Expert, ExpertCache, ExpertGrad};
use crate::gating::{Gate, RoutingMap};
use crate::tracker::ActivationTracker;

/// Epsilon used by all layer norms in the model.
pub const LN_EPS: f32 = 1e-5;

/// Minimum number of fused multiply-adds in a layer's routed expert work
/// before the per-expert batches are fanned out to worker threads. Below
/// this, thread spawn cost dwarfs the matmuls (the tiny test models stay
/// sequential); above it, expert batches are embarrassingly parallel.
const EXPERT_PARALLEL_FLOP_THRESHOLD: usize = 1 << 21;

/// Pool used for per-expert fan-out: the shared `FLUX_THREADS`-sized pool
/// when the routed work is heavy enough, otherwise an inline single-thread
/// pool. Results are always reduced in ascending compact-expert order, so
/// the choice affects wall time only — never the output bits.
fn expert_pool(routed_rows: usize, d_model: usize, d_ff: usize, experts_used: usize) -> ThreadPool {
    let flops = 4 * routed_rows * d_model * d_ff;
    if experts_used > 1 && flops >= EXPERT_PARALLEL_FLOP_THRESHOLD {
        ThreadPool::from_env()
    } else {
        ThreadPool::new(1)
    }
}

/// The MoE feed-forward sub-layer: a gate over the *original* expert ids plus
/// the (possibly merged/compact) expert list and the routing map connecting
/// the two.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MoeLayer {
    /// Gating network producing logits over the original expert ids.
    pub gate: Gate,
    /// Experts actually materialized on this device (compact ids).
    pub experts: Vec<Expert>,
    /// Original→compact redirection (identity for a pristine model).
    pub routing_map: RoutingMap,
}

/// Per-layer forward cache needed for the backward pass.
#[derive(Debug, Clone)]
pub struct MoeLayerCache {
    /// For each compact expert used: the rows (token indices), routing
    /// weights, and the expert's forward cache.
    pub expert_batches: HashMap<usize, ExpertBatch>,
    /// Shape of the MoE sub-layer input (the backward pass only needs the
    /// dimensions; the per-expert caches hold the routed activations).
    pub input_shape: (usize, usize),
}

/// Tokens routed to a single compact expert within one forward pass.
#[derive(Debug, Clone)]
pub struct ExpertBatch {
    /// Token (row) indices in the sequence.
    pub token_rows: Vec<usize>,
    /// Routing weight each token assigned to this expert.
    pub weights: Vec<f32>,
    /// The expert's forward cache over those rows.
    pub cache: ExpertCache,
}

impl MoeLayer {
    /// Creates a pristine MoE layer with `num_experts` experts.
    pub fn new(
        d_model: usize,
        d_ff: usize,
        num_experts: usize,
        top_k: usize,
        rng: &mut SeededRng,
    ) -> Self {
        let experts = (0..num_experts)
            .map(|_| Expert::new(d_model, d_ff, rng))
            .collect();
        Self {
            gate: Gate::new(d_model, num_experts, top_k, rng),
            experts,
            routing_map: RoutingMap::identity(num_experts),
        }
    }

    /// Number of experts materialized (compact count).
    pub fn num_experts(&self) -> usize {
        self.experts.len()
    }

    /// Number of original experts the gate routes over.
    pub fn num_original_experts(&self) -> usize {
        self.gate.num_experts()
    }

    /// Hidden width the layer operates on.
    fn d_model(&self) -> usize {
        self.gate.weight.rows()
    }

    /// Expert feed-forward width (0 for a layer with no experts).
    fn d_ff(&self) -> usize {
        self.experts.first().map(|e| e.d_ff()).unwrap_or(0)
    }

    /// Forward pass over `(seq, d_model)` hidden states.
    ///
    /// `received_attention` carries the per-token attention scores from the
    /// attention sub-layer (used only for tracking). When a tracker is
    /// given, routing events are recorded against it under `layer_idx`.
    pub fn forward(
        &self,
        hidden: &Matrix,
        layer_idx: usize,
        received_attention: &[f32],
        tracker: Option<&mut ActivationTracker>,
    ) -> (Matrix, MoeLayerCache) {
        let seq = hidden.rows();
        let groups = self.route_and_group(hidden, layer_idx, received_attention, tracker, None);
        // Run each used expert on its token batch — fanned out to worker
        // threads when the routed work warrants it — then scatter results
        // sequentially in ascending expert order.
        let routed_rows: usize = groups.iter().map(|(_, rows, _)| rows.len()).sum();
        let pool = expert_pool(routed_rows, self.d_model(), self.d_ff(), groups.len());
        let tasks: Vec<_> = groups
            .into_iter()
            .map(|(compact, rows, weights)| {
                let experts = &self.experts;
                move || {
                    let batch_input = hidden.select_rows(&rows);
                    let (batch_output, cache) = experts[compact].forward_owned(batch_input);
                    (compact, rows, weights, batch_output, cache)
                }
            })
            .collect();
        let mut output = Matrix::zeros_pooled(seq, hidden.cols());
        let mut expert_batches = HashMap::new();
        for (compact, rows, weights, batch_output, cache) in pool.run(tasks) {
            for (slot, (&row, &w)) in rows.iter().zip(weights.iter()).enumerate() {
                let out_row = output.row_mut(row);
                for (o, &v) in out_row.iter_mut().zip(batch_output.row(slot)) {
                    *o += w * v;
                }
            }
            batch_output.recycle();
            expert_batches.insert(
                compact,
                ExpertBatch {
                    token_rows: rows,
                    weights,
                    cache,
                },
            );
        }
        (
            output,
            MoeLayerCache {
                expert_batches,
                input_shape: hidden.shape(),
            },
        )
    }

    /// Routes every token and groups the routed rows by compact expert —
    /// the shared front half of [`MoeLayer::forward`] and
    /// [`MoeLayer::forward_no_cache`], including tracker recording. The
    /// ordered map fixes the expert iteration (and hence float
    /// accumulation) order, which keeps runs bit-identical across
    /// processes and thread counts.
    ///
    /// Routing reuses per-token buffers instead of building
    /// [`TokenRouting`] values: the softmax, stable top-k selection and
    /// renormalized weights follow [`Gate::route`]'s arithmetic exactly,
    /// without its three heap allocations per token (a measurable share of
    /// the forward pass at small model widths). The top-k picks run as a
    /// k-pass stable selection — highest probability first, earlier index
    /// on ties — which selects exactly the same experts in exactly the
    /// same order as the stable descending sort it replaces, without
    /// sorting the full candidate set per token; and the groups accumulate
    /// into a compact-indexed slot table rather than a tree map, removing
    /// the per-token-per-expert map lookups.
    ///
    /// `row_samples`, when given, maps each packed row to its sample id so
    /// a tracker attributes routed tokens correctly inside a multi-sample
    /// batch (the batched profiling path).
    ///
    /// Returns `(compact_expert, token_rows, routing_weights)` triples in
    /// ascending compact-expert order — the fixed iteration (and float
    /// accumulation) order that keeps runs bit-identical across processes
    /// and thread counts.
    fn route_and_group(
        &self,
        hidden: &Matrix,
        layer_idx: usize,
        received_attention: &[f32],
        mut tracker: Option<&mut ActivationTracker>,
        row_samples: Option<&[usize]>,
    ) -> Vec<(usize, Vec<usize>, Vec<f32>)> {
        let num_experts = self.gate.num_experts();
        let k = self.gate.top_k.min(num_experts);
        let logits = hidden.matmul(&self.gate.weight);
        let mut probs = vec![0.0f32; num_experts];
        let mut top: Vec<usize> = Vec::with_capacity(k);
        let mut slots: Vec<(Vec<usize>, Vec<f32>)> =
            vec![(Vec::new(), Vec::new()); self.experts.len()];
        for row in 0..hidden.rows() {
            let logit_row = logits.row(row);
            // Softmax with `ops::softmax_row`'s exact arithmetic.
            let max = logit_row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            for (p, &x) in probs.iter_mut().zip(logit_row) {
                *p = (x - max).exp();
            }
            let sum: f32 = probs.iter().sum();
            if sum <= 0.0 || !sum.is_finite() {
                probs.fill(1.0 / num_experts as f32);
            } else {
                for p in &mut probs {
                    *p /= sum;
                }
            }
            // Stable top-k selection: the same picks, in the same order, as
            // a stable descending sort (`stats::top_k_indices`) — greatest
            // probability wins, the earlier index wins ties.
            top.clear();
            for _ in 0..k {
                let mut best: Option<usize> = None;
                for i in 0..num_experts {
                    if top.contains(&i) {
                        continue;
                    }
                    match best {
                        Some(b) if probs[i] <= probs[b] => {}
                        _ => best = Some(i),
                    }
                }
                top.push(best.expect("k <= num_experts"));
            }
            let mass: f32 = top.iter().map(|&i| probs[i]).sum();
            if let Some(t) = tracker.as_deref_mut() {
                if let Some(rows) = row_samples {
                    t.begin_sample(rows[row]);
                }
                t.record_layer_token(layer_idx);
            }
            for &original in &top {
                let weight = if mass > 0.0 {
                    probs[original] / mass
                } else {
                    1.0 / k as f32
                };
                let compact = self.routing_map.redirect(original);
                let entry = &mut slots[compact];
                entry.0.push(row);
                entry.1.push(weight);
                if let Some(t) = tracker.as_deref_mut() {
                    let att = received_attention.get(row).copied().unwrap_or(0.0);
                    t.record(layer_idx, original, att);
                }
            }
        }
        logits.recycle();
        slots
            .into_iter()
            .enumerate()
            .filter(|(_, (rows, _))| !rows.is_empty())
            .map(|(compact, (rows, weights))| (compact, rows, weights))
            .collect()
    }

    /// Forward pass that keeps no backward cache (inference, profiling and
    /// loss-probe paths). Routing, tracking and output are identical to
    /// [`MoeLayer::forward`]; the expert activations are simply not
    /// retained, which removes the cache clones from every loss-only call.
    pub fn forward_no_cache(
        &self,
        hidden: &Matrix,
        layer_idx: usize,
        received_attention: &[f32],
        tracker: Option<&mut ActivationTracker>,
    ) -> Matrix {
        self.forward_no_cache_attributed(hidden, layer_idx, received_attention, tracker, None)
    }

    /// [`MoeLayer::forward_no_cache`] with an explicit row→sample map so a
    /// tracker attributes tokens of a packed multi-sample batch correctly.
    pub fn forward_no_cache_attributed(
        &self,
        hidden: &Matrix,
        layer_idx: usize,
        received_attention: &[f32],
        tracker: Option<&mut ActivationTracker>,
        row_samples: Option<&[usize]>,
    ) -> Matrix {
        let seq = hidden.rows();
        let groups =
            self.route_and_group(hidden, layer_idx, received_attention, tracker, row_samples);
        let routed_rows: usize = groups.iter().map(|(_, rows, _)| rows.len()).sum();
        let pool = expert_pool(routed_rows, self.d_model(), self.d_ff(), groups.len());
        let tasks: Vec<_> = groups
            .into_iter()
            .map(|(compact, rows, weights)| {
                let experts = &self.experts;
                move || {
                    let batch_input = hidden.select_rows(&rows);
                    let batch_output = experts[compact].forward_no_cache(&batch_input);
                    batch_input.recycle();
                    (rows, weights, batch_output)
                }
            })
            .collect();
        let mut output = Matrix::zeros_pooled(seq, hidden.cols());
        for (rows, weights, batch_output) in pool.run(tasks) {
            for (slot, (&row, &w)) in rows.iter().zip(weights.iter()).enumerate() {
                let out_row = output.row_mut(row);
                for (o, &v) in out_row.iter_mut().zip(batch_output.row(slot)) {
                    *o += w * v;
                }
            }
            batch_output.recycle();
        }
        output
    }

    /// Backward pass.
    ///
    /// Computes parameter gradients for the compact experts listed in
    /// `tuning_experts` (pass `None` to collect gradients for every expert)
    /// and the gradient with respect to the layer input.
    pub fn backward(
        &self,
        cache: &MoeLayerCache,
        grad_output: &Matrix,
        tuning_experts: Option<&[usize]>,
    ) -> (HashMap<usize, ExpertGrad>, Matrix) {
        // Ascending expert order, mirroring the forward pass: deterministic
        // float accumulation and a stable parallel reduction order.
        let mut batches: Vec<(usize, &ExpertBatch)> = cache
            .expert_batches
            .iter()
            .map(|(&compact, batch)| (compact, batch))
            .collect();
        batches.sort_unstable_by_key(|&(compact, _)| compact);
        let routed_rows: usize = batches.iter().map(|(_, b)| b.token_rows.len()).sum();
        let pool = expert_pool(routed_rows, self.d_model(), self.d_ff(), batches.len());
        let tasks: Vec<_> = batches
            .into_iter()
            .map(|(compact, batch)| {
                let experts = &self.experts;
                move || {
                    // Gather the upstream gradient rows for this expert,
                    // scaled by the routing weight each token assigned to it.
                    let mut grad_rows =
                        Matrix::zeros_pooled(batch.token_rows.len(), grad_output.cols());
                    for (slot, (&row, &w)) in batch
                        .token_rows
                        .iter()
                        .zip(batch.weights.iter())
                        .enumerate()
                    {
                        for (o, &g) in grad_rows.row_mut(slot).iter_mut().zip(grad_output.row(row))
                        {
                            *o = w * g;
                        }
                    }
                    let (grad, grad_batch_input) =
                        experts[compact].backward(&batch.cache, &grad_rows);
                    grad_rows.recycle();
                    (compact, batch, grad, grad_batch_input)
                }
            })
            .collect();
        let mut grad_input = Matrix::zeros_pooled(cache.input_shape.0, cache.input_shape.1);
        let mut expert_grads = HashMap::new();
        for (compact, batch, grad, grad_batch_input) in pool.run(tasks) {
            // Scatter the input gradient back to the token rows.
            for (slot, &row) in batch.token_rows.iter().enumerate() {
                for (o, &g) in grad_input
                    .row_mut(row)
                    .iter_mut()
                    .zip(grad_batch_input.row(slot))
                {
                    *o += g;
                }
            }
            grad_batch_input.recycle();
            let wanted = tuning_experts.is_none_or(|set| set.contains(&compact));
            if wanted {
                expert_grads.insert(compact, grad);
            }
        }
        (expert_grads, grad_input)
    }
}

/// One transformer block: pre-norm attention followed by a pre-norm MoE FFN,
/// both with residual connections.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransformerLayer {
    /// Self-attention sub-layer (frozen during federated fine-tuning).
    pub attention: Attention,
    /// MoE feed-forward sub-layer.
    pub moe: MoeLayer,
}

/// Forward cache of one transformer block.
#[derive(Debug, Clone)]
pub struct TransformerLayerCache {
    input: Matrix,
    attn_cache: AttentionCache,
    post_attention: Matrix,
    moe_cache: MoeLayerCache,
    /// Per-token attention received, exposed for importance tracking.
    pub received_attention: Vec<f32>,
}

/// Forward cache of one transformer block over a packed multi-sample batch.
///
/// Identical to [`TransformerLayerCache`] except that the attention cache
/// holds per-sample score blocks and no received-attention vector is kept
/// (that signal only feeds activation trackers, which the batched training
/// path never carries); the MoE cache is row-generic and is shared between
/// both paths.
#[derive(Debug, Clone)]
pub struct TransformerLayerBatchCache {
    input: Matrix,
    attn_cache: AttentionBatchCache,
    post_attention: Matrix,
    moe_cache: MoeLayerCache,
}

impl TransformerLayer {
    /// Creates a block with `num_experts` experts.
    pub fn new(
        d_model: usize,
        d_ff: usize,
        num_experts: usize,
        top_k: usize,
        rng: &mut SeededRng,
    ) -> Self {
        Self {
            attention: Attention::new(d_model, rng),
            moe: MoeLayer::new(d_model, d_ff, num_experts, top_k, rng),
        }
    }

    /// Forward pass over `(seq, d_model)` hidden states.
    pub fn forward(
        &self,
        input: &Matrix,
        layer_idx: usize,
        tracker: Option<&mut ActivationTracker>,
    ) -> (Matrix, TransformerLayerCache) {
        let attn_in = ops::layer_norm(input, LN_EPS);
        let (attn_out, attn_cache) = self.attention.forward(&attn_in);
        attn_in.recycle();
        let received = attn_cache.received_attention();
        let post_attention = input.add(&attn_out).expect("residual shapes match");
        attn_out.recycle();
        let moe_in = ops::layer_norm(&post_attention, LN_EPS);
        let (moe_out, moe_cache) = self.moe.forward(&moe_in, layer_idx, &received, tracker);
        moe_in.recycle();
        let output = post_attention.add(&moe_out).expect("residual shapes match");
        moe_out.recycle();
        (
            output,
            TransformerLayerCache {
                input: input.clone(),
                attn_cache,
                post_attention,
                moe_cache,
                received_attention: received,
            },
        )
    }

    /// Forward pass that keeps no backward cache (see
    /// [`MoeLayer::forward_no_cache`]). Numerically identical to
    /// [`TransformerLayer::forward`].
    pub fn forward_no_cache(
        &self,
        input: &Matrix,
        layer_idx: usize,
        tracker: Option<&mut ActivationTracker>,
    ) -> Matrix {
        let attn_in = ops::layer_norm(input, LN_EPS);
        let (attn_out, received) = self.attention.forward_no_cache(&attn_in);
        attn_in.recycle();
        let post_attention = input.add(&attn_out).expect("residual shapes match");
        attn_out.recycle();
        let moe_in = ops::layer_norm(&post_attention, LN_EPS);
        let moe_out = self
            .moe
            .forward_no_cache(&moe_in, layer_idx, &received, tracker);
        moe_in.recycle();
        let output = post_attention.add(&moe_out).expect("residual shapes match");
        moe_out.recycle();
        post_attention.recycle();
        output
    }

    /// Batched forward pass over a packed `(total_tokens, d_model)` batch.
    ///
    /// Layer norms, gating and the expert GEMMs are row-parallel and run
    /// over the whole packed batch (each routed expert sees one wide batch
    /// of rows drawn from every sample); only the attention scores are
    /// computed per sample via [`Attention::forward_batch`]. The training
    /// path keeps no tracker, so none is taken here and the per-token
    /// received attention is not extracted (it is a tracker-only signal) —
    /// profiling stays on the tracked batched no-cache path.
    ///
    /// `input` is taken by value and moved into the returned cache (the
    /// backward pass needs it for the layer-norm backward); callers chain
    /// `hidden` through the layers, so the move replaces a full
    /// activation-matrix clone per layer per step.
    pub fn forward_batch(
        &self,
        input: Matrix,
        bounds: &[(usize, usize)],
        layer_idx: usize,
    ) -> (Matrix, TransformerLayerBatchCache) {
        let attn_in = ops::layer_norm(&input, LN_EPS);
        let (attn_out, attn_cache) = self.attention.forward_batch(&attn_in, bounds);
        attn_in.recycle();
        let post_attention = input.add(&attn_out).expect("residual shapes match");
        attn_out.recycle();
        let moe_in = ops::layer_norm(&post_attention, LN_EPS);
        let (moe_out, moe_cache) = self.moe.forward(&moe_in, layer_idx, &[], None);
        moe_in.recycle();
        let output = post_attention.add(&moe_out).expect("residual shapes match");
        moe_out.recycle();
        (
            output,
            TransformerLayerBatchCache {
                input,
                attn_cache,
                post_attention,
                moe_cache,
            },
        )
    }

    /// Batched forward pass that keeps no backward cache (the loss-probe
    /// path of SPSA estimation, batched evaluation and batched profiling).
    ///
    /// `tracking` carries the activation tracker plus the row→sample map of
    /// the packed batch; the per-token received attention is only computed
    /// when a tracker wants it.
    pub fn forward_no_cache_batch(
        &self,
        input: &Matrix,
        bounds: &[(usize, usize)],
        layer_idx: usize,
        tracking: Option<(&mut ActivationTracker, &[usize])>,
    ) -> Matrix {
        let attn_in = ops::layer_norm(input, LN_EPS);
        let (attn_out, attn_cache) = self.attention.forward_batch(&attn_in, bounds);
        attn_in.recycle();
        let received = if tracking.is_some() {
            attn_cache.received_attention()
        } else {
            Vec::new()
        };
        attn_cache.recycle();
        let post_attention = input.add(&attn_out).expect("residual shapes match");
        attn_out.recycle();
        let moe_in = ops::layer_norm(&post_attention, LN_EPS);
        let moe_out = match tracking {
            Some((tracker, row_samples)) => self.moe.forward_no_cache_attributed(
                &moe_in,
                layer_idx,
                &received,
                Some(tracker),
                Some(row_samples),
            ),
            None => self.moe.forward_no_cache(&moe_in, layer_idx, &[], None),
        };
        moe_in.recycle();
        let output = post_attention.add(&moe_out).expect("residual shapes match");
        moe_out.recycle();
        post_attention.recycle();
        output
    }

    /// Batched backward pass mirroring [`TransformerLayer::backward`]; the
    /// MoE backward is row-generic and shared, only the attention backward
    /// walks the per-sample blocks.
    pub fn backward_batch(
        &self,
        cache: &TransformerLayerBatchCache,
        bounds: &[(usize, usize)],
        grad_output: &Matrix,
        tuning_experts: Option<&[usize]>,
    ) -> (HashMap<usize, ExpertGrad>, Matrix) {
        // output = post_attention + moe(ln(post_attention)).
        let (expert_grads, grad_moe_in) =
            self.moe
                .backward(&cache.moe_cache, grad_output, tuning_experts);
        let mut grad_post_attention = grad_output.clone();
        let grad_from_moe = ops::layer_norm_backward(&cache.post_attention, &grad_moe_in, LN_EPS);
        grad_moe_in.recycle();
        grad_post_attention
            .add_scaled(&grad_from_moe, 1.0)
            .expect("same shape");
        grad_from_moe.recycle();
        // post_attention = input + attention(ln(input)).
        let grad_attn_in =
            self.attention
                .backward_batch(&cache.attn_cache, bounds, &grad_post_attention);
        let mut grad_input = grad_post_attention;
        let grad_from_attention = ops::layer_norm_backward(&cache.input, &grad_attn_in, LN_EPS);
        grad_attn_in.recycle();
        grad_input
            .add_scaled(&grad_from_attention, 1.0)
            .expect("same shape");
        grad_from_attention.recycle();
        (expert_grads, grad_input)
    }

    /// Backward pass returning expert gradients (for the selected tuning
    /// experts) and the gradient with respect to the block input.
    pub fn backward(
        &self,
        cache: &TransformerLayerCache,
        grad_output: &Matrix,
        tuning_experts: Option<&[usize]>,
    ) -> (HashMap<usize, ExpertGrad>, Matrix) {
        // output = post_attention + moe(ln(post_attention)).
        let (expert_grads, grad_moe_in) =
            self.moe
                .backward(&cache.moe_cache, grad_output, tuning_experts);
        let mut grad_post_attention = grad_output.clone();
        let grad_from_moe = ops::layer_norm_backward(&cache.post_attention, &grad_moe_in, LN_EPS);
        grad_moe_in.recycle();
        grad_post_attention
            .add_scaled(&grad_from_moe, 1.0)
            .expect("same shape");
        grad_from_moe.recycle();
        // post_attention = input + attention(ln(input)).
        let grad_attn_in = self
            .attention
            .backward(&cache.attn_cache, &grad_post_attention);
        let mut grad_input = grad_post_attention;
        let grad_from_attention = ops::layer_norm_backward(&cache.input, &grad_attn_in, LN_EPS);
        grad_attn_in.recycle();
        grad_input
            .add_scaled(&grad_from_attention, 1.0)
            .expect("same shape");
        grad_from_attention.recycle();
        (expert_grads, grad_input)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layer(seed: u64) -> MoeLayer {
        let mut rng = SeededRng::new(seed);
        MoeLayer::new(8, 16, 4, 2, &mut rng)
    }

    #[test]
    fn moe_forward_shapes_and_tracking() {
        let l = layer(1);
        let mut rng = SeededRng::new(2);
        let hidden = Matrix::random_normal(6, 8, 1.0, &mut rng);
        let mut tracker = ActivationTracker::new(vec![4]);
        tracker.begin_sample(0);
        let received = vec![0.1; 6];
        let (out, cache) = l.forward(&hidden, 0, &received, Some(&mut tracker));
        assert_eq!(out.shape(), (6, 8));
        // Every token contributed top_k routed rows across the expert batches.
        let routed_rows: usize = cache
            .expert_batches
            .values()
            .map(|b| b.token_rows.len())
            .sum();
        assert_eq!(routed_rows, 6 * 2);
        let profile = tracker.finish();
        // With top-2 routing, per-layer frequencies sum to ~2.
        let total: f32 = profile.frequencies[0].iter().sum();
        assert!((total - 2.0).abs() < 1e-4, "total = {total}");
    }

    #[test]
    fn moe_backward_produces_grads_for_used_experts() {
        let l = layer(3);
        let mut rng = SeededRng::new(4);
        let hidden = Matrix::random_normal(5, 8, 1.0, &mut rng);
        let (_, cache) = l.forward(&hidden, 0, &[0.0; 5], None);
        let grad_out = Matrix::filled(5, 8, 1.0);
        let (grads, grad_in) = l.backward(&cache, &grad_out, None);
        assert_eq!(grad_in.shape(), (5, 8));
        assert!(!grads.is_empty());
        for (compact, grad) in &grads {
            assert!(*compact < l.num_experts());
            assert!(grad.token_count > 0);
            assert!(grad.norm() > 0.0);
        }
    }

    #[test]
    fn moe_backward_respects_tuning_set() {
        let l = layer(5);
        let mut rng = SeededRng::new(6);
        let hidden = Matrix::random_normal(8, 8, 1.0, &mut rng);
        let (_, cache) = l.forward(&hidden, 0, &[0.0; 8], None);
        let grad_out = Matrix::filled(8, 8, 1.0);
        let (all, _) = l.backward(&cache, &grad_out, None);
        let only_zero = [0usize];
        let (restricted, _) = l.backward(&cache, &grad_out, Some(&only_zero));
        assert!(restricted.len() <= all.len());
        assert!(restricted.keys().all(|&k| k == 0));
    }

    #[test]
    fn moe_gradient_matches_finite_difference_through_routing() {
        // Use top-1 routing so the loss is locally smooth in expert params.
        let mut rng = SeededRng::new(7);
        let mut l = MoeLayer::new(6, 12, 3, 1, &mut rng);
        let hidden = Matrix::random_normal(4, 6, 1.0, &mut rng);
        let (_, cache) = l.forward(&hidden, 0, &[0.0; 4], None);
        let grad_out = Matrix::filled(4, 6, 1.0);
        let (grads, _) = l.backward(&cache, &grad_out, None);
        let (&expert_id, grad) = grads.iter().next().unwrap();
        let loss = |l: &MoeLayer| l.forward(&hidden, 0, &[0.0; 4], None).0.sum();
        let eps = 1e-2;
        let base_w = l.experts[expert_id].w2.get(0, 0);
        l.experts[expert_id].w2.set(0, 0, base_w + eps);
        let plus = loss(&l);
        l.experts[expert_id].w2.set(0, 0, base_w - eps);
        let minus = loss(&l);
        l.experts[expert_id].w2.set(0, 0, base_w);
        let numeric = (plus - minus) / (2.0 * eps);
        let analytic = grad.w2.get(0, 0);
        assert!(
            (numeric - analytic).abs() < 0.1 * numeric.abs().max(0.5),
            "numeric {numeric} analytic {analytic}"
        );
    }

    #[test]
    fn inlined_routing_matches_gate_route_all() {
        // The forward path's allocation-free routing (route_and_group)
        // duplicates Gate::route's softmax/top-k/renormalize arithmetic;
        // this pins the two implementations to each other bit for bit.
        // Merged routing map so the original→compact redirect is exercised.
        let mut l = layer(20);
        let merged = Expert::weighted_merge(&[&l.experts[1], &l.experts[3]], &[1.0, 1.0]);
        l.experts.truncate(3);
        l.experts[1] = merged;
        l.routing_map = RoutingMap::from_table(vec![0, 1, 2, 1]);
        let mut rng = SeededRng::new(21);
        let hidden = Matrix::random_normal(12, 8, 1.5, &mut rng);
        let (_, cache) = l.forward(&hidden, 0, &[0.0; 12], None);
        // Rebuild the expected per-expert groups from the reference path.
        let mut expected: std::collections::BTreeMap<usize, (Vec<usize>, Vec<f32>)> =
            std::collections::BTreeMap::new();
        for (row, routing) in l.gate.route_all(&hidden).iter().enumerate() {
            for (slot, &original) in routing.experts.iter().enumerate() {
                let entry = expected
                    .entry(l.routing_map.redirect(original))
                    .or_default();
                entry.0.push(row);
                entry.1.push(routing.weights[slot]);
            }
        }
        assert_eq!(
            cache.expert_batches.len(),
            expected.len(),
            "expert coverage diverged"
        );
        for (compact, (rows, weights)) in &expected {
            let batch = &cache.expert_batches[compact];
            assert_eq!(&batch.token_rows, rows, "rows of expert {compact}");
            assert_eq!(&batch.weights, weights, "weights of expert {compact}");
        }
    }

    #[test]
    fn routing_map_redirects_to_merged_expert() {
        let mut l = layer(8);
        // Merge experts 2 and 3 into a single expert (compact id 2).
        let merged = Expert::weighted_merge(&[&l.experts[2], &l.experts[3]], &[1.0, 1.0]);
        l.experts.truncate(2);
        l.experts.push(merged);
        l.routing_map = RoutingMap::from_table(vec![0, 1, 2, 2]);
        let mut rng = SeededRng::new(9);
        let hidden = Matrix::random_normal(10, 8, 1.0, &mut rng);
        let (out, cache) = l.forward(&hidden, 0, &[0.0; 10], None);
        assert_eq!(out.shape(), (10, 8));
        // No batch may reference a compact expert >= 3.
        assert!(cache.expert_batches.keys().all(|&c| c < 3));
    }

    #[test]
    fn transformer_layer_forward_backward_shapes() {
        let mut rng = SeededRng::new(10);
        let block = TransformerLayer::new(8, 16, 4, 2, &mut rng);
        let x = Matrix::random_normal(5, 8, 1.0, &mut rng);
        let (y, cache) = block.forward(&x, 0, None);
        assert_eq!(y.shape(), (5, 8));
        assert_eq!(cache.received_attention.len(), 5);
        let (grads, grad_in) = block.backward(&cache, &Matrix::filled(5, 8, 1.0), None);
        assert_eq!(grad_in.shape(), (5, 8));
        assert!(!grads.is_empty());
    }

    #[test]
    fn transformer_layer_input_gradient_is_nonzero() {
        // The residual path alone guarantees gradient flow to the input.
        let mut rng = SeededRng::new(11);
        let block = TransformerLayer::new(8, 16, 4, 2, &mut rng);
        let x = Matrix::random_normal(4, 8, 1.0, &mut rng);
        let (_, cache) = block.forward(&x, 0, None);
        let (_, grad_in) = block.backward(&cache, &Matrix::filled(4, 8, 1.0), None);
        assert!(grad_in.frobenius_norm() > 0.0);
    }
}
