//! Adaptive merging of non-tuning experts (§5).
//!
//! Each participant keeps its tuning experts at full fidelity and replaces
//! the remaining (non-tuning) experts with a much smaller set of *merged*
//! experts so that the whole working set fits the memory budget `B_i`. The
//! pipeline has three stages, each in its own sub-module:
//!
//! 1. [`budget`] — split the non-tuning budget `B_non_i` across layers
//!    (Eq. 1): earlier layers and layers with balanced activation get more
//!    merged experts because errors there hurt more.
//! 2. [`cluster`] — group similar non-tuning experts with PCA-reduced
//!    features and a cross-layer *fused* constrained K-Means (one clustering
//!    problem for the whole model instead of one per layer).
//! 3. [`strategy`] — merge each cluster into a single expert with weights
//!    combining activation frequency and token attention (Eq. 2).
//!
//! [`CompactModelPlan`] stitches the stages together and builds the compact
//! per-participant model with a re-routed gate.

pub mod budget;
pub mod cluster;
pub mod plan;
pub mod strategy;

pub use budget::{layer_budgets, BudgetPolicy};
pub use cluster::{cluster_non_tuning_experts, ClusteringMode, ExpertClusters};
pub use plan::{CompactModelPlan, ExpertSlot};
pub use strategy::{merge_cluster, MergeStrategy};

use serde::{Deserialize, Serialize};

/// Configuration of the merging module.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MergingConfig {
    /// How the per-layer budgets are chosen.
    pub budget_policy: BudgetPolicy,
    /// How clusters are computed (fused across layers or per layer).
    pub clustering: ClusteringMode,
    /// How experts inside one cluster are combined.
    pub strategy: MergeStrategy,
    /// Dimensionality the expert features are reduced to before clustering.
    pub pca_dims: usize,
}

impl Default for MergingConfig {
    fn default() -> Self {
        Self {
            budget_policy: BudgetPolicy::Adaptive,
            clustering: ClusteringMode::Fused,
            strategy: MergeStrategy::AttentionFrequency,
            pca_dims: 8,
        }
    }
}

impl MergingConfig {
    /// Overrides the budget policy.
    pub fn with_budget_policy(mut self, policy: BudgetPolicy) -> Self {
        self.budget_policy = policy;
        self
    }

    /// Overrides the merge strategy.
    pub fn with_strategy(mut self, strategy: MergeStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Overrides the clustering mode.
    pub fn with_clustering(mut self, clustering: ClusteringMode) -> Self {
        self.clustering = clustering;
        self
    }
}
