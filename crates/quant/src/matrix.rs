//! Symmetric per-row integer quantization of weight matrices.

use serde::{Deserialize, Serialize};

use flux_tensor::Matrix;

/// Supported quantization bit widths.
///
/// Matches the profiling precisions evaluated in the paper (Fig. 5): 2-, 4-
/// and 8-bit. Lower widths shrink memory and compute further but add
/// rounding error to the gating computation, which shows up as activation-
/// frequency estimation error.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BitWidth {
    /// 2-bit quantization (levels −1, 0, +1 … clamp at ±1 step around zero).
    Int2,
    /// 4-bit quantization.
    Int4,
    /// 8-bit quantization.
    Int8,
}

impl BitWidth {
    /// Number of bits.
    pub fn bits(self) -> u32 {
        match self {
            BitWidth::Int2 => 2,
            BitWidth::Int4 => 4,
            BitWidth::Int8 => 8,
        }
    }

    /// Largest representable positive integer level (symmetric scheme).
    pub fn max_level(self) -> i32 {
        (1 << (self.bits() - 1)) - 1
    }

    /// Bytes needed to store `n` weights at this width (packed).
    pub fn storage_bytes(self, n: usize) -> usize {
        (n * self.bits() as usize).div_ceil(8)
    }

    /// Compression ratio relative to FP32 storage.
    pub fn compression_ratio(self) -> f32 {
        32.0 / self.bits() as f32
    }

    /// All supported widths, lowest precision first.
    pub fn all() -> [BitWidth; 3] {
        [BitWidth::Int2, BitWidth::Int4, BitWidth::Int8]
    }
}

/// A weight matrix stored as symmetric per-row quantized integers.
///
/// Each row keeps its own scale `s = max|w| / max_level`, and the stored
/// integers are `round(w / s)` clamped to the representable range. The
/// original shape is preserved so the matrix can be dequantized or used
/// directly in [`crate::quantized_matmul`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QuantizedMatrix {
    rows: usize,
    cols: usize,
    width: BitWidth,
    /// Quantized levels, stored widened to i8 for simplicity (the packed
    /// byte count reported by [`QuantizedMatrix::storage_bytes`] reflects
    /// the true footprint of a packed representation).
    levels: Vec<i8>,
    /// One scale per row.
    scales: Vec<f32>,
}

impl QuantizedMatrix {
    /// Quantizes a full-precision matrix.
    pub fn quantize(weights: &Matrix, width: BitWidth) -> Self {
        let (rows, cols) = weights.shape();
        let max_level = width.max_level() as f32;
        let mut levels = vec![0i8; rows * cols];
        let mut scales = vec![0.0f32; rows];
        for r in 0..rows {
            let row = weights.row(r);
            let max_abs = row.iter().fold(0.0f32, |acc, &x| acc.max(x.abs()));
            let scale = if max_abs > 0.0 {
                max_abs / max_level
            } else {
                1.0
            };
            scales[r] = scale;
            for (c, &w) in row.iter().enumerate() {
                let q = (w / scale).round().clamp(-max_level, max_level);
                levels[r * cols + c] = q as i8;
            }
        }
        Self {
            rows,
            cols,
            width,
            levels,
            scales,
        }
    }

    /// Reconstructs an approximate full-precision matrix.
    pub fn dequantize(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            let scale = self.scales[r];
            for c in 0..self.cols {
                out.set(r, c, self.levels[r * self.cols + c] as f32 * scale);
            }
        }
        out
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Quantization width.
    pub fn width(&self) -> BitWidth {
        self.width
    }

    /// Raw integer level at `(row, col)`.
    #[inline]
    pub fn level(&self, row: usize, col: usize) -> i8 {
        self.levels[row * self.cols + col]
    }

    /// All integer levels of one row (the matmul kernel iterates these as a
    /// slice rather than paying a bounds check per element).
    #[inline]
    pub fn levels_row(&self, row: usize) -> &[i8] {
        &self.levels[row * self.cols..(row + 1) * self.cols]
    }

    /// Per-row scale factors.
    pub fn scales(&self) -> &[f32] {
        &self.scales
    }

    /// Bytes a packed on-device representation would occupy (levels + scales).
    pub fn storage_bytes(&self) -> usize {
        self.width.storage_bytes(self.levels.len()) + self.scales.len() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flux_tensor::SeededRng;

    #[test]
    fn bit_width_levels() {
        assert_eq!(BitWidth::Int2.max_level(), 1);
        assert_eq!(BitWidth::Int4.max_level(), 7);
        assert_eq!(BitWidth::Int8.max_level(), 127);
    }

    #[test]
    fn storage_bytes_packed() {
        assert_eq!(BitWidth::Int8.storage_bytes(10), 10);
        assert_eq!(BitWidth::Int4.storage_bytes(10), 5);
        assert_eq!(BitWidth::Int2.storage_bytes(10), 3);
    }

    #[test]
    fn compression_ratio() {
        assert_eq!(BitWidth::Int8.compression_ratio(), 4.0);
        assert_eq!(BitWidth::Int4.compression_ratio(), 8.0);
        assert_eq!(BitWidth::Int2.compression_ratio(), 16.0);
    }

    #[test]
    fn quantize_preserves_shape() {
        let mut rng = SeededRng::new(1);
        let w = Matrix::random_normal(5, 7, 1.0, &mut rng);
        let q = QuantizedMatrix::quantize(&w, BitWidth::Int8);
        assert_eq!(q.shape(), (5, 7));
        assert_eq!(q.dequantize().shape(), (5, 7));
    }

    #[test]
    fn int8_round_trip_is_tight() {
        let mut rng = SeededRng::new(2);
        let w = Matrix::random_normal(16, 16, 1.0, &mut rng);
        let q = QuantizedMatrix::quantize(&w, BitWidth::Int8);
        let err = w.sub(&q.dequantize()).unwrap().frobenius_norm() / w.frobenius_norm();
        assert!(err < 0.01, "int8 relative error {err}");
    }

    #[test]
    fn error_grows_as_bits_shrink() {
        let mut rng = SeededRng::new(3);
        let w = Matrix::random_normal(32, 32, 1.0, &mut rng);
        let errs: Vec<f32> = BitWidth::all()
            .iter()
            .map(|&b| {
                let q = QuantizedMatrix::quantize(&w, b);
                w.sub(&q.dequantize()).unwrap().frobenius_norm() / w.frobenius_norm()
            })
            .collect();
        // all() is ordered Int2, Int4, Int8: errors must strictly decrease.
        assert!(errs[0] > errs[1]);
        assert!(errs[1] > errs[2]);
    }

    #[test]
    fn zero_matrix_quantizes_to_zero() {
        let w = Matrix::zeros(4, 4);
        let q = QuantizedMatrix::quantize(&w, BitWidth::Int2);
        assert!(q.dequantize().as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn levels_within_representable_range() {
        let mut rng = SeededRng::new(4);
        let w = Matrix::random_normal(10, 10, 5.0, &mut rng);
        for &b in &BitWidth::all() {
            let q = QuantizedMatrix::quantize(&w, b);
            let max = b.max_level() as i8;
            for r in 0..10 {
                for c in 0..10 {
                    assert!(q.level(r, c).abs() <= max);
                }
            }
        }
    }

    #[test]
    fn storage_smaller_than_fp32() {
        let mut rng = SeededRng::new(5);
        let w = Matrix::random_normal(64, 64, 1.0, &mut rng);
        let fp32_bytes = 64 * 64 * 4;
        for &b in &BitWidth::all() {
            let q = QuantizedMatrix::quantize(&w, b);
            assert!(q.storage_bytes() < fp32_bytes);
        }
    }
}
