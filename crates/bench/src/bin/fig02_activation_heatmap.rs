//! Figure 2: expert activation frequencies and per-layer variances on GSM8K
//! and MMLU.
//!
//! The paper observes (1) strongly skewed activation within layers (some
//! experts see >30% of tokens, others <5%) and (2) large differences in the
//! per-layer variance of activation frequencies. Both properties should
//! appear in the scaled model's profile.

use flux_bench::{fmt, llama_config, print_header, Scale, EXPERIMENT_SEED};
use flux_data::{DatasetConfig, DatasetGenerator, DatasetKind};
use flux_moe::MoeModel;
use flux_tensor::SeededRng;

fn main() {
    let scale = Scale::from_env();
    let config = llama_config(scale);
    let mut rng = SeededRng::new(EXPERIMENT_SEED);
    let model = MoeModel::new(config.clone(), &mut rng);

    for kind in [DatasetKind::Gsm8k, DatasetKind::Mmlu] {
        let data_cfg = DatasetConfig::for_kind(kind, config.vocab_size).with_num_samples(64);
        let data = DatasetGenerator::new(data_cfg).generate(&mut rng.derive(kind as u64));
        let profile = model.profile(&data);

        print_header(
            &format!(
                "Figure 2: activation frequencies on {} ({})",
                kind.name(),
                scale.label()
            ),
            &["Layer", "min freq", "max freq", "variance"],
        );
        for layer in 0..profile.num_layers() {
            let freqs = &profile.frequencies[layer];
            let min = freqs.iter().cloned().fold(f32::INFINITY, f32::min);
            let max = freqs.iter().cloned().fold(0.0f32, f32::max);
            println!(
                "{layer}\t{}\t{}\t{:.5}",
                fmt(min as f64),
                fmt(max as f64),
                profile.layer_variance(layer)
            );
        }
        let variances = profile.layer_variances();
        let spread = variances.iter().cloned().fold(0.0f32, f32::max)
            / variances
                .iter()
                .cloned()
                .fold(f32::INFINITY, f32::min)
                .max(1e-9);
        println!(
            "variance spread across layers (max/min): {}",
            fmt(spread as f64)
        );
    }
}
