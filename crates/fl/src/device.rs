//! Participant device profiles and capacity derivation.

use serde::{Deserialize, Serialize};

use flux_moe::MoeConfig;
use flux_tensor::SeededRng;

/// Consumer / datacenter GPU classes used to build heterogeneous fleets.
///
/// The paper targets "consumer-grade GPUs" for participants and uses NVIDIA
/// L20 (48 GB) servers for its own testbed; the classes below span that
/// range.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceClass {
    /// 8 GB consumer card (e.g. RTX 3050/4060 class).
    Consumer8G,
    /// 12 GB consumer card (e.g. RTX 3060 class).
    Consumer12G,
    /// 16 GB consumer card (e.g. RTX 4060 Ti 16G class).
    Consumer16G,
    /// 24 GB prosumer card (e.g. RTX 3090/4090 class).
    Prosumer24G,
    /// 48 GB datacenter card (NVIDIA L20, the paper's testbed GPU).
    ServerL20,
}

impl DeviceClass {
    /// All classes, smallest first.
    pub fn all() -> [DeviceClass; 5] {
        [
            DeviceClass::Consumer8G,
            DeviceClass::Consumer12G,
            DeviceClass::Consumer16G,
            DeviceClass::Prosumer24G,
            DeviceClass::ServerL20,
        ]
    }

    /// Builds the canonical profile of this class.
    pub fn profile(self) -> DeviceProfile {
        match self {
            DeviceClass::Consumer8G => DeviceProfile::new("consumer-8g", 8.0, 9.0, 8.0, 100.0),
            DeviceClass::Consumer12G => DeviceProfile::new("consumer-12g", 12.0, 13.0, 12.0, 200.0),
            DeviceClass::Consumer16G => DeviceProfile::new("consumer-16g", 16.0, 22.0, 16.0, 300.0),
            DeviceClass::Prosumer24G => DeviceProfile::new("prosumer-24g", 24.0, 40.0, 25.0, 500.0),
            DeviceClass::ServerL20 => DeviceProfile::new("server-l20", 48.0, 60.0, 32.0, 1000.0),
        }
    }
}

/// Last-mile link of one participant: asymmetric uplink/downlink
/// bandwidth in Mbit/s.
///
/// Federated rounds are uplink-dominated, and real consumer links are far
/// from symmetric — a 3G uplink is ~7× slower than its downlink. The cost
/// model prices uploads against `uplink_mbps` and snapshot downloads
/// against `downlink_mbps`, so upload compression buys exactly the
/// simulated seconds the link actually charges.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkProfile {
    /// Participant → server bandwidth in Mbit/s.
    pub uplink_mbps: f64,
    /// Server → participant bandwidth in Mbit/s.
    pub downlink_mbps: f64,
}

impl LinkProfile {
    /// A symmetric link (legacy behavior: one `network_mbps` both ways).
    pub fn symmetric(mbps: f64) -> Self {
        Self {
            uplink_mbps: mbps,
            downlink_mbps: mbps,
        }
    }

    /// HSPA-era cellular: ~1 Mbit/s up, ~7.2 Mbit/s down.
    pub fn three_g() -> Self {
        Self {
            uplink_mbps: 1.0,
            downlink_mbps: 7.2,
        }
    }

    /// LTE: ~15 Mbit/s up, ~60 Mbit/s down.
    pub fn four_g() -> Self {
        Self {
            uplink_mbps: 15.0,
            downlink_mbps: 60.0,
        }
    }

    /// Home WiFi on a cable/fiber backhaul: ~120 Mbit/s up, ~150 down.
    pub fn wifi() -> Self {
        Self {
            uplink_mbps: 120.0,
            downlink_mbps: 150.0,
        }
    }
}

/// Hardware description of one participant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceProfile {
    /// Human-readable device name.
    pub name: String,
    /// GPU memory in gigabytes.
    pub gpu_memory_gb: f64,
    /// Sustained training throughput in TFLOP/s (FP32-equivalent).
    pub compute_tflops: f64,
    /// Host↔GPU (PCIe) bandwidth in GB/s, the offloading bottleneck.
    pub pcie_gbps: f64,
    /// Network bandwidth to the parameter server in Mbit/s (the symmetric
    /// legacy figure; `link` carries the asymmetric up/down split).
    pub network_mbps: f64,
    /// Asymmetric last-mile link. Defaults to a symmetric link at
    /// `network_mbps`, which reproduces the legacy cost model exactly.
    pub link: LinkProfile,
    /// Fraction of GPU memory usable for expert parameters after activations,
    /// optimizer state and the frozen backbone are accounted for.
    pub memory_utilization: f64,
    /// Per-round compute deadline in seconds used to derive `B_tune_i`.
    pub round_deadline_s: f64,
}

impl DeviceProfile {
    /// Creates a profile; utilization and deadline get sensible defaults.
    pub fn new(
        name: &str,
        gpu_memory_gb: f64,
        compute_tflops: f64,
        pcie_gbps: f64,
        network_mbps: f64,
    ) -> Self {
        Self {
            name: name.to_string(),
            gpu_memory_gb,
            compute_tflops,
            pcie_gbps,
            network_mbps,
            link: LinkProfile::symmetric(network_mbps),
            memory_utilization: 0.6,
            round_deadline_s: 120.0,
        }
    }

    /// Overrides the per-round compute deadline.
    pub fn with_round_deadline(mut self, seconds: f64) -> Self {
        self.round_deadline_s = seconds;
        self
    }

    /// Overrides the last-mile link profile.
    pub fn with_link(mut self, link: LinkProfile) -> Self {
        self.link = link;
        self
    }

    /// Maximum number of experts of the *reference* (full-scale) model that
    /// fit in GPU memory: the paper's `B_i`.
    ///
    /// Derived against the full-scale model the scaled config stands in for,
    /// so budgets are in the same regime as the paper (a 12 GB card holds a
    /// fraction of LLaMA-MoE's 512 experts, not all of them).
    pub fn expert_capacity(&self, config: &MoeConfig) -> usize {
        let usable_bytes = self.gpu_memory_gb * 1e9 * self.memory_utilization;
        // Scale the simulated expert size up to the full model's expert size:
        // LLaMA-MoE has ~13.48 GB over 512 experts plus backbone. We model the
        // reference expert as occupying a fixed share of the reference model.
        let reference_expert_bytes = Self::reference_expert_bytes(config);
        let backbone_bytes = Self::reference_backbone_bytes(config);
        let left = (usable_bytes - backbone_bytes).max(0.0);
        let capacity = (left / reference_expert_bytes).floor() as usize;
        capacity.min(config.total_experts()).max(1)
    }

    /// Maximum number of experts that can be *tuned* within the round
    /// deadline: the paper's `B_tune_i`.
    ///
    /// Tuning an expert costs roughly 3× its forward FLOPs (forward +
    /// backward + update) over the local batch.
    pub fn tuning_capacity(&self, config: &MoeConfig, tokens_per_round: usize) -> usize {
        let flops_per_expert_token = 2.0 * Self::reference_expert_params(config) as f64;
        let tune_flops_per_expert = 3.0 * flops_per_expert_token * tokens_per_round as f64;
        let budget_flops = self.compute_tflops * 1e12 * self.round_deadline_s;
        let capacity = (budget_flops / tune_flops_per_expert).floor() as usize;
        capacity.clamp(1, self.expert_capacity(config))
    }

    /// Parameter count of one expert of the full-scale model this config
    /// represents.
    ///
    /// Derived from the config's `reference_size_gb` (the checkpoint size of
    /// the real model it stands in for, e.g. 13.48 GB for LLaMA-MoE) and the
    /// expert parameter share, divided by the expert count. Anchoring on the
    /// reference checkpoint keeps the paper's resource constraints (a
    /// consumer GPU holds only a fraction of the experts) even when the
    /// simulated widths are tiny.
    fn reference_expert_params(config: &MoeConfig) -> usize {
        (Self::reference_expert_bytes(config) / 2.0) as usize
    }

    /// Bytes of one reference expert in FP16 (how checkpoints are stored).
    fn reference_expert_bytes(config: &MoeConfig) -> f64 {
        let total_bytes = config.reference_size_gb as f64 * 1e9;
        let expert_fraction = config.expert_param_fraction() as f64;
        total_bytes * expert_fraction / config.total_experts().max(1) as f64
    }

    /// Bytes of the reference model's non-expert backbone in FP16.
    fn reference_backbone_bytes(config: &MoeConfig) -> f64 {
        let total_bytes = config.reference_size_gb as f64 * 1e9;
        let expert_fraction = config.expert_param_fraction() as f64;
        total_bytes * (1.0 - expert_fraction)
    }

    /// Bytes of the reference backbone, exposed for the cost model.
    pub fn backbone_bytes(config: &MoeConfig) -> f64 {
        Self::reference_backbone_bytes(config)
    }

    /// Bytes of one reference expert, exposed for the cost model.
    pub fn expert_bytes(config: &MoeConfig) -> f64 {
        Self::reference_expert_bytes(config)
    }
}

/// Builds a heterogeneous fleet of device profiles.
///
/// Classes are sampled with weights biased toward mid-range consumer cards,
/// reflecting the paper's "consumer-grade GPUs" setting.
pub fn sample_fleet(n: usize, rng: &mut SeededRng) -> Vec<DeviceProfile> {
    let classes = [
        DeviceClass::Consumer8G,
        DeviceClass::Consumer12G,
        DeviceClass::Consumer16G,
        DeviceClass::Prosumer24G,
    ];
    let weights = [0.25f32, 0.35, 0.25, 0.15];
    (0..n)
        .map(|i| {
            let class = classes[rng.weighted_index(&weights)];
            let mut profile = class.profile();
            profile.name = format!("{}-{i}", profile.name);
            profile
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_profiles_are_ordered_by_memory() {
        let mems: Vec<f64> = DeviceClass::all()
            .iter()
            .map(|c| c.profile().gpu_memory_gb)
            .collect();
        assert!(mems.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn expert_capacity_grows_with_memory() {
        let cfg = MoeConfig::llama_moe_sim();
        let small = DeviceClass::Consumer8G.profile().expert_capacity(&cfg);
        let big = DeviceClass::ServerL20.profile().expert_capacity(&cfg);
        assert!(small < big, "small {small} big {big}");
        assert!(small >= 1);
        assert!(big <= cfg.total_experts());
    }

    #[test]
    fn consumer_cards_cannot_hold_the_full_model() {
        // The motivating constraint of the paper: a consumer GPU cannot hold
        // every expert of an MoE LLM.
        let cfg = MoeConfig::llama_moe_sim();
        for class in [
            DeviceClass::Consumer8G,
            DeviceClass::Consumer12G,
            DeviceClass::Consumer16G,
        ] {
            let cap = class.profile().expert_capacity(&cfg);
            assert!(
                cap < cfg.total_experts(),
                "{class:?} holds {cap} of {} experts",
                cfg.total_experts()
            );
        }
    }

    #[test]
    fn tuning_capacity_at_most_memory_capacity() {
        let cfg = MoeConfig::deepseek_moe_sim();
        for class in DeviceClass::all() {
            let p = class.profile();
            let b = p.expert_capacity(&cfg);
            let bt = p.tuning_capacity(&cfg, 2000);
            assert!(bt <= b, "{class:?}: tune {bt} > mem {b}");
            assert!(bt >= 1);
        }
    }

    #[test]
    fn tuning_capacity_decreases_with_more_tokens() {
        let cfg = MoeConfig::llama_moe_sim();
        let p = DeviceClass::Consumer12G.profile();
        assert!(p.tuning_capacity(&cfg, 500) >= p.tuning_capacity(&cfg, 50_000));
    }

    #[test]
    fn longer_deadline_allows_more_tuning() {
        let cfg = MoeConfig::llama_moe_sim();
        let short = DeviceClass::Consumer12G.profile().with_round_deadline(30.0);
        let long = DeviceClass::Consumer12G
            .profile()
            .with_round_deadline(600.0);
        assert!(long.tuning_capacity(&cfg, 5000) >= short.tuning_capacity(&cfg, 5000));
    }

    #[test]
    fn default_link_is_symmetric_at_network_mbps() {
        for class in DeviceClass::all() {
            let p = class.profile();
            assert_eq!(p.link, LinkProfile::symmetric(p.network_mbps));
            assert_eq!(p.link.uplink_mbps, p.network_mbps);
            assert_eq!(p.link.downlink_mbps, p.network_mbps);
        }
    }

    #[test]
    fn link_presets_order_by_uplink_and_skew_upward() {
        let (g3, g4, wifi) = (
            LinkProfile::three_g(),
            LinkProfile::four_g(),
            LinkProfile::wifi(),
        );
        assert!(g3.uplink_mbps < g4.uplink_mbps);
        assert!(g4.uplink_mbps < wifi.uplink_mbps);
        // Every preset is uplink-constrained — the paper's bottleneck.
        for link in [g3, g4, wifi] {
            assert!(link.uplink_mbps < link.downlink_mbps);
        }
    }

    #[test]
    fn with_link_overrides_only_the_link() {
        let base = DeviceClass::Consumer12G.profile();
        let cellular = base.clone().with_link(LinkProfile::three_g());
        assert_eq!(cellular.link, LinkProfile::three_g());
        assert_eq!(cellular.network_mbps, base.network_mbps);
        assert_eq!(cellular.compute_tflops, base.compute_tflops);
    }

    #[test]
    fn fleet_is_heterogeneous_and_deterministic() {
        let mut rng = SeededRng::new(1);
        let fleet = sample_fleet(20, &mut rng);
        assert_eq!(fleet.len(), 20);
        let distinct: std::collections::HashSet<u64> =
            fleet.iter().map(|p| p.gpu_memory_gb.to_bits()).collect();
        assert!(distinct.len() > 1, "fleet should mix device classes");
        let fleet2 = sample_fleet(20, &mut SeededRng::new(1));
        assert_eq!(fleet, fleet2);
    }
}
