//! Analytic cost model converting work items into simulated seconds.
//!
//! The reproduction cannot measure wall-clock time on real GPUs, so every
//! phase of a federated round is priced analytically against the reference
//! (full-scale) model the scaled configuration stands in for. Constants are
//! chosen so the absolute magnitudes land in the same regime as the paper's
//! measurements (Fig. 1: one round over 60 Dolly samples costs ~60–400 s
//! depending on the number of tuned experts; Fig. 12/13: full runs take
//! hours), and — more importantly — so the *relative* costs that drive the
//! paper's conclusions hold:
//!
//! * fine-tuning cost grows with the number of tuning experts (Fig. 1);
//! * expert offloading over PCIe dominates FMD's round time;
//! * quantized profiling is far cheaper than full-precision fine-tuning and
//!   its cost shrinks with the bit width;
//! * communication grows with participants and with the number of uploaded
//!   expert updates.

use serde::{Deserialize, Serialize};

use flux_moe::MoeConfig;
use flux_quant::BitWidth;

use crate::device::DeviceProfile;

/// Cost model for one participant device working on one model family.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CostModel {
    /// GPU utilization achieved by dense training kernels (fraction of peak).
    pub compute_efficiency: f64,
    /// Extra multiplier for the backward pass + optimizer relative to one
    /// forward pass (forward 1×, backward ≈ 2×).
    pub backward_multiplier: f64,
    /// Fraction of a full forward pass that the non-expert backbone
    /// (attention, norms, gating) costs per token.
    pub backbone_forward_fraction: f64,
    /// Fixed per-round scheduling / framework overhead in seconds.
    pub fixed_overhead_s: f64,
    /// Tokens per local mini-batch (the paper uses batch size 16).
    pub batch_tokens: usize,
    /// Framework + backbone seconds per mini-batch on the reference L20
    /// device (kernel launches, data loading, routing bookkeeping).
    pub seconds_per_batch: f64,
    /// Seconds per *tuning* expert per mini-batch on the reference device:
    /// gradient materialization, optimizer step and memory traffic for one
    /// expert module. This is the term that makes fine-tuning cost grow with
    /// the number of tuned experts (Fig. 1).
    pub seconds_per_tuning_expert_per_batch: f64,
    /// Effective fraction of peak PCIe bandwidth reached by expert swapping
    /// (small transfers + synchronization stalls).
    pub pcie_efficiency: f64,
    /// Seconds per expert for the K-Means-based merging pipeline when run
    /// layer-by-layer (the fused variant divides this by `fused_speedup`).
    pub merge_seconds_per_expert: f64,
    /// Speed-up of cross-layer fused clustering over per-layer clustering.
    pub fused_speedup: f64,
    /// Seconds of server-side optimization per candidate expert during role
    /// assignment.
    pub assignment_seconds_per_expert: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        Self {
            compute_efficiency: 0.35,
            backward_multiplier: 2.0,
            backbone_forward_fraction: 0.35,
            fixed_overhead_s: 2.0,
            batch_tokens: 768,
            seconds_per_batch: 12.0,
            seconds_per_tuning_expert_per_batch: 0.3,
            pcie_efficiency: 0.2,
            merge_seconds_per_expert: 0.02,
            fused_speedup: 40.0,
            assignment_seconds_per_expert: 0.002,
        }
    }
}

/// Per-phase breakdown of one participant's round, in seconds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct RoundCostBreakdown {
    /// Quantization + profiling forward passes.
    pub profiling_s: f64,
    /// Expert clustering + merging.
    pub merging_s: f64,
    /// Expert role assignment (server optimization amortized per participant).
    pub assignment_s: f64,
    /// Local fine-tuning compute.
    pub fine_tuning_s: f64,
    /// Host↔GPU expert offloading traffic (FMD-style swapping).
    pub offloading_s: f64,
    /// Model update upload/download.
    pub communication_s: f64,
}

impl RoundCostBreakdown {
    /// Total seconds across phases.
    pub fn total_s(&self) -> f64 {
        self.profiling_s
            + self.merging_s
            + self.assignment_s
            + self.fine_tuning_s
            + self.offloading_s
            + self.communication_s
    }

    /// Adds another breakdown element-wise.
    pub fn add(&mut self, other: &RoundCostBreakdown) {
        self.profiling_s += other.profiling_s;
        self.merging_s += other.merging_s;
        self.assignment_s += other.assignment_s;
        self.fine_tuning_s += other.fine_tuning_s;
        self.offloading_s += other.offloading_s;
        self.communication_s += other.communication_s;
    }
}

impl CostModel {
    /// FLOPs of one reference expert processing one token (forward only).
    fn expert_forward_flops(config: &MoeConfig) -> f64 {
        // 2 FLOPs per multiply-accumulate over the expert's parameters.
        2.0 * DeviceProfile::expert_bytes(config) / 2.0
    }

    /// FLOPs of the backbone processing one token (forward only).
    fn backbone_forward_flops(&self, config: &MoeConfig) -> f64 {
        let experts_per_layer = config.experts_per_layer.first().copied().unwrap_or(1) as f64;
        // Backbone cost relative to the dense expert path of one layer.
        Self::expert_forward_flops(config)
            * config.top_k as f64
            * self.backbone_forward_fraction
            * config.num_layers as f64
            / experts_per_layer.max(1.0)
            + Self::expert_forward_flops(config) * self.backbone_forward_fraction
    }

    /// Effective FLOP/s of a device.
    fn effective_flops(&self, device: &DeviceProfile) -> f64 {
        device.compute_tflops * 1e12 * self.compute_efficiency
    }

    /// Seconds to run one full-precision forward pass over `tokens` tokens
    /// with `active_experts_per_token` experts active per token per layer.
    pub fn forward_time_s(
        &self,
        device: &DeviceProfile,
        config: &MoeConfig,
        tokens: usize,
        active_experts_per_token: usize,
    ) -> f64 {
        let per_token = self.backbone_forward_flops(config)
            + Self::expert_forward_flops(config)
                * active_experts_per_token as f64
                * config.num_layers as f64;
        per_token * tokens as f64 / self.effective_flops(device)
    }

    /// Speed factor of a device relative to the reference L20 on which the
    /// per-batch and per-expert constants were calibrated.
    fn speed_factor(&self, device: &DeviceProfile) -> f64 {
        60.0 / device.compute_tflops.max(1.0)
    }

    /// Relative size of this config's experts versus the LLaMA-MoE reference
    /// expert the constants were calibrated against.
    fn expert_scale(config: &MoeConfig) -> f64 {
        DeviceProfile::expert_bytes(config)
            / DeviceProfile::expert_bytes(&MoeConfig::llama_moe_sim())
    }

    /// Seconds to fine-tune `tuning_experts` experts over `tokens` tokens
    /// (forward + backward + update on the expert path; forward-only on the
    /// frozen backbone).
    ///
    /// The cost has three parts: a FLOP term for the dense math, a per-batch
    /// framework/backbone term, and a per-tuning-expert-per-batch term
    /// covering gradient materialization, optimizer steps and memory traffic
    /// for each trainable expert module. The last term is what makes cost
    /// grow with the number of tuned experts, reproducing Fig. 1.
    pub fn fine_tune_time_s(
        &self,
        device: &DeviceProfile,
        config: &MoeConfig,
        tokens: usize,
        tuning_experts: usize,
        resident_experts: usize,
    ) -> f64 {
        let resident = resident_experts.max(1) as f64;
        let tuned_fraction = (tuning_experts as f64 / resident).clamp(0.0, 1.0);
        let active = config.top_k as f64;
        let forward_flops = self.backbone_forward_flops(config)
            + Self::expert_forward_flops(config) * active * config.num_layers as f64;
        let backward_flops = Self::expert_forward_flops(config)
            * active
            * config.num_layers as f64
            * tuned_fraction
            * self.backward_multiplier
            + self.backbone_forward_flops(config);
        let flop_time =
            (forward_flops + backward_flops) * tokens as f64 / self.effective_flops(device);

        let batches = tokens.div_ceil(self.batch_tokens.max(1)) as f64;
        let speed = self.speed_factor(device);
        let layer_scale = config.num_layers as f64 / 32.0;
        let batch_time = self.seconds_per_batch * batches * speed * layer_scale;
        let expert_time = self.seconds_per_tuning_expert_per_batch
            * tuning_experts as f64
            * batches
            * speed
            * Self::expert_scale(config);
        self.fixed_overhead_s + flop_time + batch_time + expert_time
    }

    /// Seconds to quantize the local model copy at the given width.
    pub fn quantize_time_s(
        &self,
        device: &DeviceProfile,
        config: &MoeConfig,
        width: BitWidth,
    ) -> f64 {
        // Quantization streams every parameter once; cheaper widths write
        // fewer bytes but the dominant cost is the read + rounding pass.
        let bytes = DeviceProfile::expert_bytes(config) * config.total_experts() as f64
            + DeviceProfile::backbone_bytes(config);
        // The sweep rate tracks the device's compute class (faster cards
        // also have faster memory systems), anchored at 40 GB/s for the L20.
        let pass_rate = 40e9 * (device.compute_tflops / 60.0).clamp(0.1, 1.0);
        let width_factor = 1.0 + 0.1 * (8.0 / width.bits() as f64);
        self.fixed_overhead_s * 0.5 + bytes / pass_rate * width_factor
    }

    /// Seconds to run a profiling pass (forward-only, quantized) over
    /// `tokens` tokens.
    pub fn profile_time_s(
        &self,
        device: &DeviceProfile,
        config: &MoeConfig,
        tokens: usize,
        width: BitWidth,
    ) -> f64 {
        // Weight-only quantized inference speeds up roughly with the memory
        // traffic reduction, capped at 4× for very low widths.
        let speedup = (32.0f64 / width.bits() as f64).clamp(1.0, 4.0);
        self.forward_time_s(device, config, tokens, config.top_k) / speedup
    }

    /// Seconds spent swapping experts between host memory and the GPU.
    ///
    /// Each swap moves the expert in and its gradients/optimizer state out,
    /// at the effective (not peak) PCIe bandwidth small MoE transfers reach.
    pub fn offload_time_s(
        &self,
        device: &DeviceProfile,
        config: &MoeConfig,
        expert_swaps: usize,
    ) -> f64 {
        let bytes = DeviceProfile::expert_bytes(config) * expert_swaps as f64 * 2.0;
        bytes / (device.pcie_gbps * 1e9 * self.pcie_efficiency)
    }

    /// Bytes of a dense (uncompressed) upload of `expert_updates` reference
    /// expert tensors — the download of the refreshed experts is the same
    /// size, since the server ships them back dense.
    pub fn dense_upload_bytes(config: &MoeConfig, expert_updates: usize) -> f64 {
        DeviceProfile::expert_bytes(config) * expert_updates as f64
    }

    /// Seconds to move `upload_bytes` up and `download_bytes` down over the
    /// device's (possibly asymmetric) last-mile link.
    ///
    /// This is the byte-true core of the communication model: upload is
    /// priced from the *encoded* payload, so compression changes simulated
    /// time; download stays dense (the server ships refreshed experts at
    /// full precision).
    pub fn communication_time_s_bytes(
        &self,
        device: &DeviceProfile,
        upload_bytes: f64,
        download_bytes: f64,
    ) -> f64 {
        upload_bytes * 8.0 / (device.link.uplink_mbps * 1e6)
            + download_bytes * 8.0 / (device.link.downlink_mbps * 1e6)
    }

    /// Seconds to exchange `expert_updates` dense expert tensors (upload)
    /// plus the same amount of download with the parameter server.
    ///
    /// Convenience wrapper over [`CostModel::communication_time_s_bytes`]
    /// for the uncompressed path; on a symmetric link it reproduces the
    /// legacy expert-count pricing exactly.
    pub fn communication_time_s(
        &self,
        device: &DeviceProfile,
        config: &MoeConfig,
        expert_updates: usize,
    ) -> f64 {
        let bytes = Self::dense_upload_bytes(config, expert_updates);
        self.communication_time_s_bytes(device, bytes, bytes)
    }

    /// Seconds for the expert clustering + merging pipeline.
    pub fn merge_time_s(&self, non_tuning_experts: usize, fused: bool) -> f64 {
        let base = self.merge_seconds_per_expert * non_tuning_experts as f64;
        if fused {
            base / self.fused_speedup
        } else {
            base
        }
    }

    /// Seconds for the server-side role-assignment optimization, amortized
    /// per participant.
    pub fn assignment_time_s(&self, candidate_experts: usize) -> f64 {
        self.assignment_seconds_per_expert * candidate_experts as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceClass;

    fn setup() -> (CostModel, DeviceProfile, MoeConfig) {
        (
            CostModel::default(),
            DeviceClass::ServerL20.profile(),
            MoeConfig::llama_moe_sim(),
        )
    }

    #[test]
    fn fine_tune_cost_grows_with_tuning_experts() {
        let (cost, device, cfg) = setup();
        // Reproduce the shape of Fig. 1: cost grows markedly from 8 to 256
        // tuned experts.
        let tokens = 60 * 48; // 60 Dolly samples
        let t8 = cost.fine_tune_time_s(&device, &cfg, tokens, 8, 512);
        let t32 = cost.fine_tune_time_s(&device, &cfg, tokens, 32, 512);
        let t128 = cost.fine_tune_time_s(&device, &cfg, tokens, 128, 512);
        let t256 = cost.fine_tune_time_s(&device, &cfg, tokens, 256, 512);
        assert!(t8 < t32 && t32 < t128 && t128 < t256);
        assert!(t256 / t8 > 2.0, "expected clear growth: {t8} -> {t256}");
    }

    #[test]
    fn fine_tune_cost_in_paper_regime() {
        // Fig. 1 reports 62–395 s for 8–256 experts on an L20 with 60 samples.
        let (cost, device, cfg) = setup();
        let tokens = 60 * 48;
        let t8 = cost.fine_tune_time_s(&device, &cfg, tokens, 8, 512);
        let t256 = cost.fine_tune_time_s(&device, &cfg, tokens, 256, 512);
        assert!(t8 > 20.0 && t8 < 200.0, "t8 = {t8}");
        assert!(t256 > 150.0 && t256 < 1200.0, "t256 = {t256}");
        // Overall growth factor in the same ballpark as the paper's ~6×.
        let ratio = t256 / t8;
        assert!((3.0..12.0).contains(&ratio), "ratio = {ratio}");
    }

    #[test]
    fn profiling_cheaper_than_fine_tuning_and_scales_with_width() {
        let (cost, device, cfg) = setup();
        let tokens = 4000;
        let tune = cost.fine_tune_time_s(&device, &cfg, tokens, 64, 512);
        let p2 = cost.profile_time_s(&device, &cfg, tokens, BitWidth::Int2);
        let p4 = cost.profile_time_s(&device, &cfg, tokens, BitWidth::Int4);
        let p8 = cost.profile_time_s(&device, &cfg, tokens, BitWidth::Int8);
        assert!(p2 <= p4 && p4 <= p8);
        assert!(
            p8 < tune,
            "profiling {p8} should be cheaper than tuning {tune}"
        );
    }

    #[test]
    fn offloading_slower_on_weaker_pcie() {
        let cost = CostModel::default();
        let cfg = MoeConfig::llama_moe_sim();
        let fast = DeviceClass::ServerL20.profile();
        let slow = DeviceClass::Consumer8G.profile();
        assert!(cost.offload_time_s(&slow, &cfg, 100) > cost.offload_time_s(&fast, &cfg, 100));
        assert_eq!(cost.offload_time_s(&fast, &cfg, 0), 0.0);
    }

    #[test]
    fn offloading_adds_substantial_time_for_swap_heavy_rounds() {
        // FMD swaps experts in and out for every batch; a round that streams
        // a large share of the 512-expert pool several times adds tens of
        // seconds on a consumer PCIe link.
        let (cost, _, cfg) = setup();
        let device = DeviceClass::Consumer12G.profile();
        let offload = cost.offload_time_s(&device, &cfg, 512 * 4);
        assert!(offload > 10.0, "offload = {offload}");
    }

    #[test]
    fn communication_scales_with_updates_and_bandwidth() {
        let cost = CostModel::default();
        let cfg = MoeConfig::llama_moe_sim();
        let fast = DeviceClass::Prosumer24G.profile();
        let slow = DeviceClass::Consumer8G.profile();
        assert!(
            cost.communication_time_s(&slow, &cfg, 32) > cost.communication_time_s(&fast, &cfg, 32)
        );
        assert!(
            cost.communication_time_s(&fast, &cfg, 64) > cost.communication_time_s(&fast, &cfg, 16)
        );
    }

    #[test]
    fn communication_time_is_byte_based() {
        // Regression test for the expert-count proxy: time must scale
        // exactly linearly with payload bytes on each direction of the
        // link, independent of how many experts those bytes came from.
        let cost = CostModel::default();
        let device = DeviceClass::Consumer12G
            .profile()
            .with_link(crate::device::LinkProfile::three_g());
        let up_only = cost.communication_time_s_bytes(&device, 1e6, 0.0);
        let down_only = cost.communication_time_s_bytes(&device, 0.0, 1e6);
        assert!((cost.communication_time_s_bytes(&device, 2e6, 0.0) - 2.0 * up_only).abs() < 1e-9);
        assert!(
            (cost.communication_time_s_bytes(&device, 1e6, 1e6) - (up_only + down_only)).abs()
                < 1e-9
        );
        // The asymmetric 3G link prices uplink bytes ~7.2× dearer.
        assert!((up_only / down_only - 7.2).abs() < 1e-6);
        // Halving upload bytes (e.g. int8→int4 levels) halves only the
        // upload term, leaving the dense download term untouched.
        let full = cost.communication_time_s_bytes(&device, 4e6, 4e6);
        let compressed = cost.communication_time_s_bytes(&device, 5e5, 4e6);
        assert!((full - compressed - 3.5e6 * 8.0 / (1.0 * 1e6)).abs() < 1e-6);
    }

    #[test]
    fn legacy_wrapper_matches_byte_form_on_symmetric_links() {
        let (cost, device, cfg) = setup();
        let bytes = CostModel::dense_upload_bytes(&cfg, 32);
        assert_eq!(
            cost.communication_time_s(&device, &cfg, 32),
            cost.communication_time_s_bytes(&device, bytes, bytes)
        );
    }

    #[test]
    fn link_profiles_order_round_communication() {
        // Satellite check: 3G < 4G < WiFi in round-communication throughput,
        // i.e. the same round payload takes strictly longer on each slower
        // link.
        let cost = CostModel::default();
        let cfg = MoeConfig::llama_moe_sim();
        let base = DeviceClass::Consumer12G.profile();
        let times: Vec<f64> = [
            crate::device::LinkProfile::three_g(),
            crate::device::LinkProfile::four_g(),
            crate::device::LinkProfile::wifi(),
        ]
        .into_iter()
        .map(|link| {
            let device = base.clone().with_link(link);
            let bytes = CostModel::dense_upload_bytes(&cfg, 32);
            cost.communication_time_s_bytes(&device, bytes, bytes)
        })
        .collect();
        assert!(
            times[0] > times[1] && times[1] > times[2],
            "3G {} 4G {} WiFi {}",
            times[0],
            times[1],
            times[2]
        );
    }

    #[test]
    fn compressed_upload_ratio_matches_bit_width_and_sparsity() {
        // Satellite check: with the dense download held fixed, shrinking the
        // upload payload by the configured width/sparsity factor shrinks
        // the upload *term* by exactly that factor.
        let cost = CostModel::default();
        let cfg = MoeConfig::llama_moe_sim();
        let device = DeviceClass::Consumer12G
            .profile()
            .with_link(crate::device::LinkProfile::three_g());
        let dense = CostModel::dense_upload_bytes(&cfg, 32);
        let download = cost.communication_time_s_bytes(&device, 0.0, dense);
        for factor in [8.0f64, 16.0] {
            // int4 ≈ 8× fewer payload bytes; int4 + 50% top-k ≈ 16×.
            let t_dense = cost.communication_time_s_bytes(&device, dense, dense);
            let t_comp = cost.communication_time_s_bytes(&device, dense / factor, dense);
            let upload_ratio = (t_dense - download) / (t_comp - download);
            assert!(
                (upload_ratio - factor).abs() < 1e-6,
                "factor {factor}: got {upload_ratio}"
            );
        }
    }

    #[test]
    fn fused_merging_is_much_faster() {
        let cost = CostModel::default();
        let layered = cost.merge_time_s(128, false);
        let fused = cost.merge_time_s(128, true);
        assert!(layered / fused > 10.0, "fusion should give a large speedup");
    }

    #[test]
    fn quantize_time_reasonable_and_width_sensitive() {
        let (cost, device, cfg) = setup();
        let q2 = cost.quantize_time_s(&device, &cfg, BitWidth::Int2);
        let q8 = cost.quantize_time_s(&device, &cfg, BitWidth::Int8);
        assert!(q2 > 0.0 && q8 > 0.0);
        assert!(q2 >= q8, "lower widths pay a little more rounding work");
        assert!(q2 < 60.0, "quantization should take seconds, got {q2}");
    }

    #[test]
    fn breakdown_totals_and_adds() {
        let mut a = RoundCostBreakdown {
            profiling_s: 1.0,
            merging_s: 2.0,
            assignment_s: 3.0,
            fine_tuning_s: 4.0,
            offloading_s: 5.0,
            communication_s: 6.0,
        };
        assert_eq!(a.total_s(), 21.0);
        let b = a;
        a.add(&b);
        assert_eq!(a.total_s(), 42.0);
    }

    #[test]
    fn assignment_time_is_small() {
        let cost = CostModel::default();
        assert!(cost.assignment_time_s(512) < 2.0);
    }
}
