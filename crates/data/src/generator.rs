//! Latent-topic synthetic dataset generator.
//!
//! Each dataset is generated from a topic model: a topic picks a preferred
//! band of the vocabulary, tokens are sampled mostly from that band, and the
//! supervision target is a deterministic-plus-noise function of the tokens.
//! Because different topics occupy different regions of embedding space, a
//! trained MoE gate routes them to different experts — which is the property
//! the whole Flux pipeline (profiling, merging, role assignment) exercises.

use serde::{Deserialize, Serialize};

use flux_tensor::SeededRng;

use crate::dataset::{Dataset, DatasetKind, Sample, Task};

/// Configuration for synthesizing one dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DatasetConfig {
    /// Which benchmark to synthesize.
    pub kind: DatasetKind,
    /// Vocabulary size (shared with the model config).
    pub vocab_size: usize,
    /// Number of samples to generate.
    pub num_samples: usize,
    /// Mean sequence length; actual lengths vary ±50% around this.
    pub mean_seq_len: usize,
    /// Number of latent topics.
    pub num_topics: usize,
    /// Probability that a token is drawn from the sample's topic band rather
    /// than uniformly from the whole vocabulary. Higher values produce more
    /// skewed expert activation.
    pub topic_concentration: f32,
    /// Label noise: probability that a classification label is replaced by a
    /// uniformly random one (keeps the task from being trivially learnable).
    pub label_noise: f32,
}

impl DatasetConfig {
    /// Default configuration for a dataset kind, using the per-kind shape
    /// parameters from [`DatasetKind`].
    pub fn for_kind(kind: DatasetKind, vocab_size: usize) -> Self {
        Self {
            kind,
            vocab_size,
            num_samples: kind.default_num_samples(),
            mean_seq_len: kind.mean_seq_len(),
            num_topics: kind.num_topics(),
            topic_concentration: 0.85,
            label_noise: 0.05,
        }
    }

    /// Overrides the number of samples.
    pub fn with_num_samples(mut self, n: usize) -> Self {
        self.num_samples = n;
        self
    }

    /// Overrides the mean sequence length.
    pub fn with_mean_seq_len(mut self, len: usize) -> Self {
        self.mean_seq_len = len.max(2);
        self
    }
}

/// Generates synthetic datasets from a [`DatasetConfig`].
#[derive(Debug, Clone)]
pub struct DatasetGenerator {
    config: DatasetConfig,
}

impl DatasetGenerator {
    /// Creates a generator for the given configuration.
    pub fn new(config: DatasetConfig) -> Self {
        Self { config }
    }

    /// Convenience constructor using per-kind defaults.
    pub fn for_kind(kind: DatasetKind, vocab_size: usize) -> Self {
        Self::new(DatasetConfig::for_kind(kind, vocab_size))
    }

    /// The configuration in use.
    pub fn config(&self) -> &DatasetConfig {
        &self.config
    }

    /// Generates the full dataset.
    ///
    /// Topic proportions are drawn from a moderately skewed Dirichlet so
    /// topics (and therefore experts) are not uniformly popular, matching
    /// the activation-frequency disparities of the paper's Fig. 2.
    pub fn generate(&self, rng: &mut SeededRng) -> Dataset {
        let cfg = &self.config;
        let topic_weights = rng.dirichlet(0.6, cfg.num_topics.max(1));
        let mut samples = Vec::with_capacity(cfg.num_samples);
        for _ in 0..cfg.num_samples {
            let topic = rng.weighted_index(&topic_weights);
            samples.push(self.generate_sample(topic, rng));
        }
        rng.shuffle(&mut samples);
        Dataset {
            kind: cfg.kind,
            vocab_size: cfg.vocab_size,
            samples,
        }
    }

    /// Generates a single sample of the given topic.
    pub fn generate_sample(&self, topic: usize, rng: &mut SeededRng) -> Sample {
        let cfg = &self.config;
        let len = self.sample_length(rng);
        let tokens: Vec<u32> = (0..len).map(|_| self.sample_token(topic, rng)).collect();
        let task = match cfg.kind.num_classes() {
            Some(num_classes) => {
                let mut label = self.derive_label(&tokens, topic, num_classes);
                if rng.chance(cfg.label_noise) {
                    label = rng.below(num_classes);
                }
                Task::Classification { label, num_classes }
            }
            None => Task::Generation {
                reference: self.derive_reference(&tokens),
            },
        };
        Sample {
            tokens,
            topic,
            task,
        }
    }

    /// Sequence length uniform in `[mean/2, 3*mean/2]`.
    fn sample_length(&self, rng: &mut SeededRng) -> usize {
        let mean = self.config.mean_seq_len.max(2);
        let lo = (mean / 2).max(2);
        let hi = (mean * 3 / 2).max(lo + 1);
        rng.range(lo, hi + 1)
    }

    /// Samples a token, usually from the topic's vocabulary band.
    fn sample_token(&self, topic: usize, rng: &mut SeededRng) -> u32 {
        let cfg = &self.config;
        let vocab = cfg.vocab_size.max(2);
        if rng.chance(cfg.topic_concentration) {
            // Topic bands tile the vocabulary; adjacent topics overlap by
            // half a band so that routing is informative but not trivial.
            let band = (vocab / cfg.num_topics.max(1)).max(2);
            let start = (topic * band / 2) % vocab;
            let offset = rng.below(band);
            ((start + offset) % vocab) as u32
        } else {
            rng.below(vocab) as u32
        }
    }

    /// Classification label: a deterministic hash of the token histogram and
    /// the topic, so the mapping is learnable from the inputs alone.
    fn derive_label(&self, tokens: &[u32], topic: usize, num_classes: usize) -> usize {
        let sum: u64 = tokens.iter().map(|&t| t as u64).sum();
        let mix = sum
            .wrapping_mul(0x9E37_79B9)
            .wrapping_add(topic as u64 * 0x85EB_CA6B);
        // The label leans heavily on the topic (learnable from routing) with
        // a token-dependent component.
        (topic + (mix % 3) as usize) % num_classes.max(1)
    }

    /// Generation reference: an affine remapping of the input's trailing
    /// tokens, so the target is a learnable function of the input.
    fn derive_reference(&self, tokens: &[u32]) -> Vec<u32> {
        let vocab = self.config.vocab_size.max(2) as u32;
        let tail = tokens.len().min(16);
        tokens[tokens.len() - tail..]
            .iter()
            .map(|&t| (t.wrapping_mul(3).wrapping_add(7)) % vocab)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn generate(kind: DatasetKind, seed: u64) -> Dataset {
        let mut rng = SeededRng::new(seed);
        DatasetGenerator::for_kind(kind, 256).generate(&mut rng)
    }

    #[test]
    fn generates_requested_number_of_samples() {
        for kind in DatasetKind::all() {
            let ds = generate(kind, 1);
            assert_eq!(ds.len(), kind.default_num_samples());
            assert_eq!(ds.kind, kind);
        }
    }

    #[test]
    fn tokens_within_vocabulary() {
        let ds = generate(DatasetKind::Mmlu, 2);
        for s in &ds.samples {
            assert!(s.tokens.iter().all(|&t| (t as usize) < ds.vocab_size));
            assert!(!s.tokens.is_empty());
        }
    }

    #[test]
    fn classification_labels_within_range() {
        let ds = generate(DatasetKind::Piqa, 3);
        for s in &ds.samples {
            match &s.task {
                Task::Classification { label, num_classes } => {
                    assert_eq!(*num_classes, 2);
                    assert!(*label < 2);
                }
                Task::Generation { .. } => panic!("PIQA must be classification"),
            }
        }
    }

    #[test]
    fn dolly_is_generation_with_nonempty_reference() {
        let ds = generate(DatasetKind::Dolly, 4);
        for s in &ds.samples {
            match &s.task {
                Task::Generation { reference } => assert!(!reference.is_empty()),
                Task::Classification { .. } => panic!("Dolly must be generation"),
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = generate(DatasetKind::Gsm8k, 7);
        let b = generate(DatasetKind::Gsm8k, 7);
        assert_eq!(a.samples, b.samples);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(DatasetKind::Gsm8k, 7);
        let b = generate(DatasetKind::Gsm8k, 8);
        assert_ne!(a.samples, b.samples);
    }

    #[test]
    fn sequence_lengths_track_config() {
        let dolly = generate(DatasetKind::Dolly, 9);
        let gsm = generate(DatasetKind::Gsm8k, 9);
        assert!(dolly.mean_seq_len() > gsm.mean_seq_len());
    }

    #[test]
    fn topic_distribution_is_skewed() {
        let ds = generate(DatasetKind::Dolly, 11);
        let hist = ds.topic_histogram();
        let max = *hist.iter().max().unwrap() as f32;
        let min = *hist.iter().min().unwrap() as f32;
        // The Dirichlet(0.6) prior should give visibly unequal topic counts.
        assert!(max > 2.0 * (min + 1.0), "hist = {hist:?}");
    }

    #[test]
    fn labels_correlate_with_topics() {
        // Most samples of the same topic should share a label: the task is
        // learnable from routing information.
        let ds = generate(DatasetKind::Mmlu, 13);
        let mut per_topic: std::collections::HashMap<usize, Vec<usize>> = Default::default();
        for s in &ds.samples {
            if let Some(l) = s.label() {
                per_topic.entry(s.topic).or_default().push(l);
            }
        }
        let mut majority_fraction = 0.0;
        let mut total = 0.0;
        for labels in per_topic.values() {
            if labels.len() < 5 {
                continue;
            }
            let mut counts = std::collections::HashMap::new();
            for &l in labels {
                *counts.entry(l).or_insert(0usize) += 1;
            }
            let max = *counts.values().max().unwrap() as f32;
            majority_fraction += max / labels.len() as f32;
            total += 1.0;
        }
        assert!(total > 0.0);
        assert!(
            majority_fraction / total > 0.5,
            "labels should be topic-predictable"
        );
    }

    #[test]
    fn custom_config_overrides() {
        let cfg = DatasetConfig::for_kind(DatasetKind::Piqa, 64)
            .with_num_samples(10)
            .with_mean_seq_len(6);
        let mut rng = SeededRng::new(1);
        let ds = DatasetGenerator::new(cfg).generate(&mut rng);
        assert_eq!(ds.len(), 10);
        assert!(ds.mean_seq_len() <= 9.5);
    }
}
