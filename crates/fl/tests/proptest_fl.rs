//! Property-based tests for the federated substrate: FedAvg invariants,
//! sharded incremental aggregation vs the one-shot kernels, device
//! budgets, and cost-model monotonicity.

use proptest::prelude::*;

use flux_fl::{
    fedavg_experts, fedavg_matrices, CostModel, DeviceClass, ExpertUpdate, ShardedAggregator,
};
use flux_moe::{Expert, ExpertKey, MoeConfig};
use flux_tensor::{Matrix, SeededRng};
use threadpool::ThreadPool;

/// One participant's generated upload: id, expert updates, optional head.
type Upload = (usize, Vec<ExpertUpdate>, Option<(Matrix, f32)>);

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// FedAvg of identical experts returns the same expert regardless of the
    /// weights.
    #[test]
    fn fedavg_identical_experts_is_identity(
        seed in 0u64..500,
        weights in prop::collection::vec(0.1f32..10.0, 1..6),
    ) {
        let mut rng = SeededRng::new(seed);
        let expert = Expert::new(4, 8, &mut rng);
        let updates: Vec<ExpertUpdate> = weights
            .iter()
            .map(|&w| ExpertUpdate {
                key: ExpertKey::new(0, 0),
                expert: expert.clone(),
                weight: w,
            })
            .collect();
        let out = fedavg_experts(&updates);
        let merged = &out[&ExpertKey::new(0, 0)];
        for (a, b) in merged.w1.as_slice().iter().zip(expert.w1.as_slice()) {
            prop_assert!((a - b).abs() < 1e-5);
        }
    }

    /// FedAvg is invariant to a uniform scaling of all weights.
    #[test]
    fn fedavg_weight_scale_invariance(seed in 0u64..500, scale in 0.1f32..50.0) {
        let mut rng = SeededRng::new(seed);
        let a = Expert::new(4, 8, &mut rng);
        let b = Expert::new(4, 8, &mut rng);
        let make = |s: f32| {
            vec![
                ExpertUpdate { key: ExpertKey::new(1, 2), expert: a.clone(), weight: 2.0 * s },
                ExpertUpdate { key: ExpertKey::new(1, 2), expert: b.clone(), weight: 3.0 * s },
            ]
        };
        let base = fedavg_experts(&make(1.0));
        let scaled = fedavg_experts(&make(scale));
        let x = &base[&ExpertKey::new(1, 2)];
        let y = &scaled[&ExpertKey::new(1, 2)];
        for (p, q) in x.w2.as_slice().iter().zip(y.w2.as_slice()) {
            prop_assert!((p - q).abs() < 1e-4);
        }
    }

    /// Matrix FedAvg output always lies in the element-wise envelope of the
    /// inputs (it is a convex combination).
    #[test]
    fn fedavg_matrices_stays_in_envelope(
        seed in 0u64..500,
        w1 in 0.1f32..5.0,
        w2 in 0.1f32..5.0,
    ) {
        let mut rng = SeededRng::new(seed);
        let a = Matrix::random_normal(3, 3, 1.0, &mut rng);
        let b = Matrix::random_normal(3, 3, 1.0, &mut rng);
        let avg = fedavg_matrices(&[(a.clone(), w1), (b.clone(), w2)]).unwrap();
        for ((m, x), y) in avg.as_slice().iter().zip(a.as_slice()).zip(b.as_slice()) {
            let lo = x.min(*y) - 1e-5;
            let hi = x.max(*y) + 1e-5;
            prop_assert!((lo..=hi).contains(m));
        }
    }

    /// Incremental shard-wise aggregation equals the one-shot
    /// `fedavg_experts`/`fedavg_matrices` result — **bit-identically** —
    /// for arbitrary shard counts, submission orders, weights (including
    /// the all-non-positive uniform fallback pinned in PR 3), and ragged
    /// head shapes (mismatched entries skipped against the first
    /// positive-weight shape).
    #[test]
    fn sharded_incremental_matches_one_shot_fedavg(
        seed in 0u64..10_000,
        num_shards in 1usize..9,
        num_participants in 1usize..7,
        threads in 1usize..4,
    ) {
        let mut rng = SeededRng::new(seed);
        // Per-participant uploads: 1–3 expert updates over a small key
        // space (dims derived from the key so different keys carry
        // different shapes), weights spanning negative/zero/positive, and
        // a head whose shape is ragged across participants.
        let mut uploads: Vec<Upload> = (0..num_participants)
            .map(|pid| {
                let n = rng.range(1, 4);
                let updates: Vec<ExpertUpdate> = (0..n)
                    .map(|_| {
                        let key = ExpertKey::new(rng.below(3), rng.below(4));
                        let expert = Expert::new(2 + key.layer, 3 + key.expert, &mut rng);
                        let weight = rng.uniform_range(-1.0, 4.0);
                        ExpertUpdate { key, expert, weight }
                    })
                    .collect();
                let head = if rng.chance(0.8) {
                    let (r, c) = if rng.chance(0.75) { (2, 3) } else { (3, 2) };
                    let m = Matrix::random_normal(r, c, 1.0, &mut rng);
                    Some((m, rng.uniform_range(-1.0, 4.0)))
                } else {
                    None
                };
                (pid, updates, head)
            })
            .collect();

        // One-shot reference: everything concatenated in participant-id
        // order, exactly what the barriered schedule feeds the kernels.
        let mut all_updates = Vec::new();
        let mut all_heads = Vec::new();
        for (_, updates, head) in &uploads {
            all_updates.extend(updates.iter().cloned());
            if let Some((m, w)) = head {
                all_heads.push((m.clone(), *w));
            }
        }
        let reference_experts = fedavg_experts(&all_updates);
        let reference_head = fedavg_matrices(&all_heads);

        // Incremental: submit in a random arrival order, reduce sharded.
        rng.shuffle(&mut uploads);
        let aggregator = ShardedAggregator::new(num_shards);
        for (pid, updates, head) in uploads {
            prop_assert!(aggregator.submit(pid, updates, head));
        }
        let (experts, head) = aggregator.finalize(&ThreadPool::new(threads));

        prop_assert_eq!(experts.len(), reference_experts.len());
        for (key, merged) in &experts {
            let reference = &reference_experts[key];
            prop_assert_eq!(&merged.w1, &reference.w1, "w1 diverged for {:?}", key);
            prop_assert_eq!(&merged.w2, &reference.w2, "w2 diverged for {:?}", key);
            prop_assert_eq!(&merged.b1, &reference.b1, "b1 diverged for {:?}", key);
            prop_assert_eq!(&merged.b2, &reference.b2, "b2 diverged for {:?}", key);
        }
        prop_assert_eq!(head, reference_head);
    }

    /// Device capacity budgets are always consistent: 1 <= B_tune <= B_i <=
    /// total experts, for every device class and workload size.
    #[test]
    fn device_budgets_are_consistent(tokens in 1usize..2_000_000) {
        let config = MoeConfig::llama_moe_sim();
        for class in DeviceClass::all() {
            let device = class.profile();
            let b = device.expert_capacity(&config);
            let bt = device.tuning_capacity(&config, tokens);
            prop_assert!(b >= 1);
            prop_assert!(b <= config.total_experts());
            prop_assert!(bt >= 1);
            prop_assert!(bt <= b);
        }
    }

    /// Fine-tuning cost is monotone in tokens and in the number of tuned
    /// experts.
    #[test]
    fn cost_model_monotonicity(
        tokens in 100usize..100_000,
        experts in 1usize..256,
    ) {
        let cost = CostModel::default();
        let device = DeviceClass::Consumer16G.profile();
        let config = MoeConfig::llama_moe_sim();
        let base = cost.fine_tune_time_s(&device, &config, tokens, experts, 512);
        let more_tokens = cost.fine_tune_time_s(&device, &config, tokens * 2, experts, 512);
        let more_experts = cost.fine_tune_time_s(&device, &config, tokens, experts + 32, 512);
        prop_assert!(more_tokens >= base);
        prop_assert!(more_experts >= base);
        prop_assert!(base.is_finite() && base > 0.0);
    }

    /// Communication and offloading costs scale linearly with volume.
    #[test]
    fn comm_and_offload_linear(experts in 1usize..512) {
        let cost = CostModel::default();
        let device = DeviceClass::Consumer12G.profile();
        let config = MoeConfig::llama_moe_sim();
        let one = cost.communication_time_s(&device, &config, experts);
        let two = cost.communication_time_s(&device, &config, experts * 2);
        prop_assert!((two - 2.0 * one).abs() < 1e-6 * two.max(1.0));
        let o1 = cost.offload_time_s(&device, &config, experts);
        let o2 = cost.offload_time_s(&device, &config, experts * 2);
        prop_assert!((o2 - 2.0 * o1).abs() < 1e-6 * o2.max(1.0));
    }
}
