//! Figure 9: expert significance versus activation frequency, and the
//! attention scores of the most significant experts.
//!
//! The paper discards one expert at a time and measures the output error,
//! finding that significance does not always track activation frequency:
//! some rarely-activated experts process high-attention tokens and removing
//! them hurts disproportionately. This binary reproduces both panels.

use std::collections::HashSet;

use flux_bench::{fmt, llama_config, print_header, Scale, EXPERIMENT_SEED};
use flux_core::merging::CompactModelPlan;
use flux_data::{DatasetConfig, DatasetGenerator, DatasetKind};
use flux_moe::{ExpertKey, MoeModel};
use flux_tensor::{stats, SeededRng};

fn main() {
    let scale = Scale::from_env();
    let config = llama_config(scale);
    let mut rng = SeededRng::new(EXPERIMENT_SEED);
    let model = MoeModel::new(config.clone(), &mut rng);
    let data_cfg =
        DatasetConfig::for_kind(DatasetKind::Gsm8k, config.vocab_size).with_num_samples(20);
    let data = DatasetGenerator::new(data_cfg).generate(&mut rng);
    let profile = model.profile(&data);

    // Discard one expert at a time (cap the sweep for larger scales).
    let all_keys = profile.keys();
    let max_probe = if scale == Scale::Quick { 32 } else { 64 };
    let probes: Vec<ExpertKey> = all_keys.iter().copied().take(max_probe).collect();

    let mut rows: Vec<(ExpertKey, f32, f32, f32)> = Vec::new();
    for &probe in &probes {
        // Keep every expert except the probed one (which gets discarded).
        let tuning: HashSet<ExpertKey> = all_keys.iter().copied().filter(|&k| k != probe).collect();
        let plan = CompactModelPlan::build_discard(&model, &tuning);
        let damaged = plan.apply(&model, &profile);
        let mut error = 0.0f32;
        for sample in data.samples.iter().take(8) {
            let full = model.final_embedding(sample);
            let partial = damaged.final_embedding(sample);
            error += stats::cosine_distance(&full, &partial);
        }
        error /= 8.0;
        rows.push((
            probe,
            profile.frequency(probe),
            profile.attention_of(probe),
            error,
        ));
    }

    // Panel (a): normalized activation frequency vs normalized output error,
    // sorted by error.
    rows.sort_by(|a, b| b.3.partial_cmp(&a.3).unwrap_or(std::cmp::Ordering::Equal));
    let freqs: Vec<f32> = rows.iter().map(|r| r.1).collect();
    let errors: Vec<f32> = rows.iter().map(|r| r.3).collect();
    let norm_freq = stats::min_max_normalize(&freqs);
    let norm_err = stats::min_max_normalize(&errors);
    print_header(
        &format!("Figure 9a: discard-one-expert sweep ({})", scale.label()),
        &[
            "Rank",
            "Layer/Expert",
            "Norm. activation freq",
            "Norm. output error",
        ],
    );
    for (rank, row) in rows.iter().enumerate() {
        println!(
            "{rank}\tL{}E{}\t{}\t{}",
            row.0.layer,
            row.0.expert,
            fmt(norm_freq[rank] as f64),
            fmt(norm_err[rank] as f64)
        );
    }

    // Panel (b): top-10 most significant experts with frequency + attention.
    print_header(
        "Figure 9b: top-10 significant experts",
        &[
            "Rank",
            "Layer/Expert",
            "Norm. activation freq",
            "Norm. attention score",
        ],
    );
    let attention: Vec<f32> = rows.iter().map(|r| r.2).collect();
    let norm_att = stats::min_max_normalize(&attention);
    for rank in 0..rows.len().min(10) {
        println!(
            "{}\tL{}E{}\t{}\t{}",
            rank + 1,
            rows[rank].0.layer,
            rows[rank].0.expert,
            fmt(norm_freq[rank] as f64),
            fmt(norm_att[rank] as f64)
        );
    }
    // Correlation check backing the paper's claim.
    let corr = correlation(&norm_freq, &norm_err);
    println!(
        "\ncorrelation(frequency, significance) = {} (paper: weak — frequency alone is unreliable)",
        fmt(corr as f64)
    );
}

fn correlation(a: &[f32], b: &[f32]) -> f32 {
    let ma = stats::mean(a);
    let mb = stats::mean(b);
    let cov: f32 = a.iter().zip(b).map(|(x, y)| (x - ma) * (y - mb)).sum();
    let va: f32 = a.iter().map(|x| (x - ma).powi(2)).sum();
    let vb: f32 = b.iter().map(|y| (y - mb).powi(2)).sum();
    if va <= 0.0 || vb <= 0.0 {
        return 0.0;
    }
    cov / (va.sqrt() * vb.sqrt())
}
