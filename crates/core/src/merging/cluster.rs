//! Similarity-based expert clustering (§5.2).
//!
//! Non-tuning experts are represented by PCA-reduced versions of their
//! flattened parameters and grouped with K-Means so that similar experts are
//! merged together. Flux fuses the per-layer clustering problems into one:
//! every centroid carries a layer label and experts may only join centroids
//! of their own layer, which removes the per-layer setup overhead (the 40×
//! speedup of Fig. 16) without changing the layer-local semantics.

use serde::{Deserialize, Serialize};

use flux_moe::{ExpertKey, MoeModel};
use flux_tensor::kmeans::KMeans;
use flux_tensor::pca::Pca;
use flux_tensor::{Matrix, SeededRng};

/// Whether the clustering problems of different layers are fused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ClusteringMode {
    /// One constrained K-Means over all layers (the Flux design).
    Fused,
    /// Independent K-Means per layer (the ablation baseline of Fig. 16).
    PerLayer,
}

/// Result of clustering the non-tuning experts.
#[derive(Debug, Clone, PartialEq)]
pub struct ExpertClusters {
    /// `clusters[layer]` is a list of clusters; each cluster is a list of
    /// *original* expert ids in that layer.
    pub clusters: Vec<Vec<Vec<usize>>>,
}

impl ExpertClusters {
    /// Total number of clusters across layers.
    pub fn total_clusters(&self) -> usize {
        self.clusters.iter().map(|layer| layer.len()).sum()
    }

    /// All experts covered by the clustering, as keys.
    pub fn covered_experts(&self) -> Vec<ExpertKey> {
        let mut keys = Vec::new();
        for (layer, groups) in self.clusters.iter().enumerate() {
            for group in groups {
                for &expert in group {
                    keys.push(ExpertKey::new(layer, expert));
                }
            }
        }
        keys
    }
}

/// Clusters the non-tuning experts of every layer.
///
/// * `non_tuning[layer]` lists the original expert ids to cluster.
/// * `budgets[layer]` is the number of clusters for that layer (0 for layers
///   with nothing to merge).
/// * `pca_dims` bounds the feature dimensionality (clamped to the number of
///   experts being clustered).
///
/// Layers whose budget is zero or that have no non-tuning experts produce an
/// empty cluster list. A layer with fewer non-tuning experts than its budget
/// gets one singleton cluster per expert.
pub fn cluster_non_tuning_experts(
    model: &MoeModel,
    non_tuning: &[Vec<usize>],
    budgets: &[usize],
    mode: ClusteringMode,
    pca_dims: usize,
    rng: &mut SeededRng,
) -> ExpertClusters {
    assert_eq!(non_tuning.len(), budgets.len(), "one budget per layer");
    assert_eq!(
        non_tuning.len(),
        model.layers.len(),
        "one expert list per model layer"
    );
    match mode {
        ClusteringMode::Fused => cluster_fused(model, non_tuning, budgets, pca_dims, rng),
        ClusteringMode::PerLayer => cluster_per_layer(model, non_tuning, budgets, pca_dims, rng),
    }
}

/// Builds the PCA-reduced feature matrix for a set of experts.
///
/// The raw feature rows are the experts' flattened parameters in the
/// `[w1 | b1 | w2 | b2]` layout of
/// [`flatten_params`](flux_moe::Expert::flatten_params), but constructed
/// fused: one contiguous panel per parameter block (each filled in a single
/// extend pass across experts) stitched with the [`Matrix::hstack`] fast
/// path, instead of flattening every expert into its own intermediate
/// `Vec`. Bit-identical to the row-by-row construction.
fn expert_features(
    model: &MoeModel,
    keys: &[ExpertKey],
    pca_dims: usize,
    rng: &mut SeededRng,
) -> Matrix {
    let Some(&first_key) = keys.first() else {
        return Matrix::zeros(0, 0);
    };
    let first = model.expert(first_key);
    let (w1_len, b1_len, w2_len, b2_len) = (
        first.w1.len(),
        first.b1.len(),
        first.w2.len(),
        first.b2.len(),
    );
    let n = keys.len();
    let mut w1s = Vec::with_capacity(n * w1_len);
    let mut b1s = Vec::with_capacity(n * b1_len);
    let mut w2s = Vec::with_capacity(n * w2_len);
    let mut b2s = Vec::with_capacity(n * b2_len);
    for &key in keys {
        let expert = model.expert(key);
        w1s.extend_from_slice(expert.w1.as_slice());
        b1s.extend_from_slice(&expert.b1);
        w2s.extend_from_slice(expert.w2.as_slice());
        b2s.extend_from_slice(&expert.b2);
    }
    // `from_vec` moves each buffer into its panel; no per-row copies until
    // the single hstack.
    let w1_panel = Matrix::from_vec(n, w1_len, w1s).expect("experts share w1 dimensions");
    let b1_panel = Matrix::from_vec(n, b1_len, b1s).expect("experts share b1 dimensions");
    let w2_panel = Matrix::from_vec(n, w2_len, w2s).expect("experts share w2 dimensions");
    let b2_panel = Matrix::from_vec(n, b2_len, b2s).expect("experts share b2 dimensions");
    let raw = Matrix::hstack(&[&w1_panel, &b1_panel, &w2_panel, &b2_panel])
        .expect("per-block panels share the expert-count row dimension");
    let dims = pca_dims.clamp(1, raw.cols().min(raw.rows()).max(1));
    if raw.rows() < 2 || dims >= raw.cols() {
        return raw;
    }
    Pca::fit_transform(&raw, dims, rng).unwrap_or(raw)
}

fn cluster_fused(
    model: &MoeModel,
    non_tuning: &[Vec<usize>],
    budgets: &[usize],
    pca_dims: usize,
    rng: &mut SeededRng,
) -> ExpertClusters {
    // Collect every non-tuning expert (across all layers) into one point set.
    let mut keys: Vec<ExpertKey> = Vec::new();
    let mut point_labels: Vec<usize> = Vec::new();
    let mut centroid_labels: Vec<usize> = Vec::new();
    for (layer, experts) in non_tuning.iter().enumerate() {
        let budget = budgets[layer].min(experts.len());
        if experts.is_empty() || budget == 0 {
            continue;
        }
        for &e in experts {
            keys.push(ExpertKey::new(layer, e));
            point_labels.push(layer);
        }
        centroid_labels.extend(std::iter::repeat_n(layer, budget));
    }
    let mut clusters = vec![Vec::new(); non_tuning.len()];
    if keys.is_empty() {
        return ExpertClusters { clusters };
    }
    let features = expert_features(model, &keys, pca_dims, rng);
    let result = KMeans::new(centroid_labels.len())
        .fit_constrained(&features, &point_labels, &centroid_labels, rng)
        .expect("constrained clustering inputs are validated above");
    // Convert centroid-indexed assignments back into per-layer groups.
    let mut groups: Vec<Vec<usize>> = vec![Vec::new(); centroid_labels.len()];
    for (point, &cluster) in result.assignments.iter().enumerate() {
        groups[cluster].push(point);
    }
    for (cluster, members) in groups.into_iter().enumerate() {
        if members.is_empty() {
            continue;
        }
        let layer = centroid_labels[cluster];
        let experts: Vec<usize> = members.iter().map(|&p| keys[p].expert).collect();
        clusters[layer].push(experts);
    }
    ExpertClusters { clusters }
}

fn cluster_per_layer(
    model: &MoeModel,
    non_tuning: &[Vec<usize>],
    budgets: &[usize],
    pca_dims: usize,
    rng: &mut SeededRng,
) -> ExpertClusters {
    let mut clusters = vec![Vec::new(); non_tuning.len()];
    for (layer, experts) in non_tuning.iter().enumerate() {
        let budget = budgets[layer].min(experts.len());
        if experts.is_empty() || budget == 0 {
            continue;
        }
        let keys: Vec<ExpertKey> = experts.iter().map(|&e| ExpertKey::new(layer, e)).collect();
        let features = expert_features(model, &keys, pca_dims, rng);
        let result = KMeans::new(budget)
            .fit(&features, rng)
            .expect("layer clustering inputs are validated above");
        let mut groups: Vec<Vec<usize>> = vec![Vec::new(); result.centroids.rows()];
        for (point, &cluster) in result.assignments.iter().enumerate() {
            groups[cluster].push(experts[point]);
        }
        clusters[layer] = groups.into_iter().filter(|g| !g.is_empty()).collect();
    }
    ExpertClusters { clusters }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flux_moe::MoeConfig;

    fn model() -> MoeModel {
        let mut rng = SeededRng::new(1);
        MoeModel::new(MoeConfig::tiny(), &mut rng)
    }

    fn all_experts_non_tuning(model: &MoeModel) -> Vec<Vec<usize>> {
        model
            .experts_per_layer()
            .iter()
            .map(|&n| (0..n).collect())
            .collect()
    }

    #[test]
    fn fused_feature_rows_match_the_flatten_params_reference() {
        // The hstack-fused construction must be bit-identical to the legacy
        // row-by-row `flatten_params` construction, both for the raw
        // feature matrix (single expert dodges PCA) and through the PCA
        // projection (same input bits + same seed → same output bits).
        let model = model();
        let mut rng = SeededRng::new(9);
        let single = expert_features(&model, &[ExpertKey::new(0, 3)], 4, &mut rng);
        assert_eq!(
            single.row(0),
            &model.expert(ExpertKey::new(0, 3)).flatten_params()[..]
        );

        let keys: Vec<ExpertKey> = (0..model.experts_per_layer()[0])
            .map(|e| ExpertKey::new(0, e))
            .chain((0..2).map(|e| ExpertKey::new(1, e)))
            .collect();
        let mut rng_fused = SeededRng::new(9);
        let fused = expert_features(&model, &keys, 4, &mut rng_fused);
        let rows: Vec<Vec<f32>> = keys
            .iter()
            .map(|&k| model.expert(k).flatten_params())
            .collect();
        let raw = Matrix::from_rows(&rows);
        let dims = 4usize.clamp(1, raw.cols().min(raw.rows()).max(1));
        let mut rng_reference = SeededRng::new(9);
        let reference = Pca::fit_transform(&raw, dims, &mut rng_reference).unwrap_or(raw);
        assert_eq!(
            (fused.rows(), fused.cols()),
            (reference.rows(), reference.cols())
        );
        assert_eq!(fused.as_slice(), reference.as_slice());

        // Empty key sets keep the legacy 0x0 shape.
        let empty = expert_features(&model, &[], 4, &mut rng);
        assert_eq!((empty.rows(), empty.cols()), (0, 0));
    }

    #[test]
    fn fused_clustering_covers_every_non_tuning_expert() {
        let model = model();
        let mut rng = SeededRng::new(2);
        let non_tuning = all_experts_non_tuning(&model);
        let budgets = vec![3, 2, 2, 1];
        let clusters = cluster_non_tuning_experts(
            &model,
            &non_tuning,
            &budgets,
            ClusteringMode::Fused,
            4,
            &mut rng,
        );
        let covered = clusters.covered_experts();
        assert_eq!(covered.len(), 4 * 8);
        // Each layer has at most its budget of clusters, and at least one.
        for (layer, groups) in clusters.clusters.iter().enumerate() {
            assert!(!groups.is_empty());
            assert!(groups.len() <= budgets[layer]);
        }
    }

    #[test]
    fn per_layer_clustering_matches_budget() {
        let model = model();
        let mut rng = SeededRng::new(3);
        let non_tuning = all_experts_non_tuning(&model);
        let budgets = vec![2; 4];
        let clusters = cluster_non_tuning_experts(
            &model,
            &non_tuning,
            &budgets,
            ClusteringMode::PerLayer,
            4,
            &mut rng,
        );
        assert_eq!(clusters.covered_experts().len(), 32);
        for groups in &clusters.clusters {
            assert!(groups.len() <= 2 && !groups.is_empty());
        }
    }

    #[test]
    fn empty_layers_produce_empty_clusters() {
        let model = model();
        let mut rng = SeededRng::new(4);
        let mut non_tuning = all_experts_non_tuning(&model);
        non_tuning[1].clear();
        let budgets = vec![2, 2, 0, 2];
        let clusters = cluster_non_tuning_experts(
            &model,
            &non_tuning,
            &budgets,
            ClusteringMode::Fused,
            4,
            &mut rng,
        );
        assert!(clusters.clusters[1].is_empty());
        assert!(clusters.clusters[2].is_empty());
        assert!(!clusters.clusters[0].is_empty());
    }

    #[test]
    fn budget_larger_than_experts_gives_singletons() {
        let model = model();
        let mut rng = SeededRng::new(5);
        let mut non_tuning = vec![Vec::new(); 4];
        non_tuning[0] = vec![1, 5];
        let budgets = vec![10, 0, 0, 0];
        let clusters = cluster_non_tuning_experts(
            &model,
            &non_tuning,
            &budgets,
            ClusteringMode::Fused,
            4,
            &mut rng,
        );
        assert_eq!(clusters.clusters[0].len(), 2);
        assert_eq!(clusters.total_clusters(), 2);
    }

    #[test]
    fn fused_and_per_layer_cover_identical_expert_sets() {
        let model = model();
        let non_tuning = all_experts_non_tuning(&model);
        let budgets = vec![2, 3, 2, 3];
        let fused = cluster_non_tuning_experts(
            &model,
            &non_tuning,
            &budgets,
            ClusteringMode::Fused,
            4,
            &mut SeededRng::new(6),
        );
        let layered = cluster_non_tuning_experts(
            &model,
            &non_tuning,
            &budgets,
            ClusteringMode::PerLayer,
            4,
            &mut SeededRng::new(6),
        );
        let mut a = fused.covered_experts();
        let mut b = layered.covered_experts();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn identical_experts_cluster_together() {
        let mut model = model();
        // Make experts 2 and 3 of layer 0 identical; with a budget of 2 over
        // experts {1,2,3,4} they must land in the same cluster.
        let clone = model.expert(ExpertKey::new(0, 2)).clone();
        model.set_expert(ExpertKey::new(0, 3), clone);
        let mut non_tuning = vec![Vec::new(); 4];
        non_tuning[0] = vec![1, 2, 3, 4];
        let budgets = vec![2, 0, 0, 0];
        let clusters = cluster_non_tuning_experts(
            &model,
            &non_tuning,
            &budgets,
            ClusteringMode::Fused,
            4,
            &mut SeededRng::new(7),
        );
        let together = clusters.clusters[0]
            .iter()
            .any(|group| group.contains(&2) && group.contains(&3));
        assert!(
            together,
            "identical experts should share a cluster: {:?}",
            clusters.clusters[0]
        );
    }
}
