//! Property-based tests for the MoE substrate: routing, merging,
//! checkpointing, and gradient-shape invariants.

use proptest::prelude::*;

use flux_moe::checkpoint;
use flux_moe::gating::Gate;
use flux_moe::{Expert, ExpertKey, MoeConfig, MoeModel, RoutingMap};
use flux_tensor::SeededRng;

fn tiny_model(seed: u64) -> MoeModel {
    let mut rng = SeededRng::new(seed);
    MoeModel::new(MoeConfig::tiny(), &mut rng)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Top-k routing weights are a probability distribution and experts are
    /// distinct, for any token vector.
    #[test]
    fn routing_weights_form_distribution(
        seed in 0u64..500,
        token in prop::collection::vec(-3.0f32..3.0, 16),
        top_k in 1usize..5,
    ) {
        let mut rng = SeededRng::new(seed);
        let gate = Gate::new(16, 8, top_k, &mut rng);
        let routing = gate.route(&token);
        prop_assert_eq!(routing.experts.len(), top_k.min(8));
        let sum: f32 = routing.weights.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-4);
        let mut distinct = routing.experts.clone();
        distinct.sort_unstable();
        distinct.dedup();
        prop_assert_eq!(distinct.len(), routing.experts.len());
        // Full distribution is also a distribution.
        let full: f32 = routing.full_distribution.iter().sum();
        prop_assert!((full - 1.0).abs() < 1e-4);
    }

    /// A weighted merge of experts is always a convex combination: every
    /// parameter lies within the min/max envelope of the inputs.
    #[test]
    fn weighted_merge_is_convex_combination(
        seed in 0u64..500,
        w1 in 0.01f32..10.0,
        w2 in 0.01f32..10.0,
    ) {
        let mut rng = SeededRng::new(seed);
        let a = Expert::new(4, 8, &mut rng);
        let b = Expert::new(4, 8, &mut rng);
        let merged = Expert::weighted_merge(&[&a, &b], &[w1, w2]);
        for ((m, x), y) in merged
            .w1
            .as_slice()
            .iter()
            .zip(a.w1.as_slice())
            .zip(b.w1.as_slice())
        {
            let lo = x.min(*y) - 1e-5;
            let hi = x.max(*y) + 1e-5;
            prop_assert!((lo..=hi).contains(m), "{m} outside [{lo}, {hi}]");
        }
    }

    /// Checkpoint serialization round-trips the model exactly.
    #[test]
    fn checkpoint_round_trip(seed in 0u64..200) {
        let model = tiny_model(seed);
        let restored = checkpoint::from_bytes(&checkpoint::to_bytes(&model)).unwrap();
        prop_assert_eq!(restored.config, model.config);
        prop_assert_eq!(restored.embedding, model.embedding);
        prop_assert_eq!(restored.layers.len(), model.layers.len());
        for (a, b) in restored.layers.iter().zip(model.layers.iter()) {
            prop_assert_eq!(&a.moe.experts, &b.moe.experts);
        }
    }

    /// The forward pass is deterministic and finite for arbitrary token ids
    /// (out-of-vocabulary ids are clamped).
    #[test]
    fn forward_is_total_and_deterministic(
        seed in 0u64..100,
        tokens in prop::collection::vec(0u32..10_000, 1..12),
    ) {
        let model = tiny_model(seed);
        let a = model.forward(&tokens, None);
        let b = model.forward(&tokens, None);
        prop_assert_eq!(a.final_hidden.shape(), (tokens.len(), 16));
        prop_assert!(a.final_hidden.as_slice().iter().all(|x| x.is_finite()));
        prop_assert_eq!(a.final_hidden, b.final_hidden);
    }

    /// A routing map built from any valid merge grouping redirects every
    /// original expert to a valid compact expert.
    #[test]
    fn routing_map_total_coverage(groups in prop::collection::vec(0usize..4, 8)) {
        // Make the table dense: ensure every compact id up to the max is hit.
        let max = *groups.iter().max().unwrap();
        let mut table = groups.clone();
        let len = table.len();
        for compact in 0..=max {
            if !table.contains(&compact) {
                table[compact % len] = compact;
            }
        }
        let max = *table.iter().max().unwrap();
        for compact in 0..=max {
            prop_assume!(table.contains(&compact));
        }
        let map = RoutingMap::from_table(table.clone());
        prop_assert_eq!(map.num_original(), table.len());
        for (original, &compact) in table.iter().enumerate() {
            prop_assert_eq!(map.redirect(original), compact);
            prop_assert!(map.originals_of(compact).contains(&original));
        }
    }

    /// Expert gradients restricted to a tuning set never contain keys outside
    /// that set, for arbitrary tuning subsets.
    #[test]
    fn tuning_restriction_is_respected(seed in 0u64..50, picks in prop::collection::vec(0usize..32, 1..6)) {
        let model = tiny_model(seed);
        let mut rng = SeededRng::new(seed + 1000);
        let sample = flux_data::DatasetGenerator::for_kind(flux_data::DatasetKind::Dolly, 64)
            .generate_sample(0, &mut rng);
        let tuning: std::collections::HashSet<ExpertKey> = picks
            .iter()
            .map(|&p| ExpertKey::new(p / 8, p % 8))
            .collect();
        let grads = model.sample_gradients(&sample, Some(&tuning));
        prop_assert!(grads.expert_grads.keys().all(|k| tuning.contains(k)));
        prop_assert!(grads.loss.is_finite() && grads.loss >= 0.0);
    }
}
