//! Figure 15: impact of the adaptive per-layer merging budget.
//!
//! Compares three budget policies — a single merged expert per layer, a
//! uniform split, and Flux's adaptive allocation (Eq. 1) — on forward-pass
//! output error and time-to-accuracy.

use std::collections::HashSet;

use flux_bench::{fmt, llama_config, print_header, run_config, Scale, EXPERIMENT_SEED};
use flux_core::baselines::top_frequency_experts;
use flux_core::driver::{FederatedRun, Method};
use flux_core::merging::{BudgetPolicy, CompactModelPlan, MergingConfig};
use flux_data::{DatasetConfig, DatasetGenerator, DatasetKind};
use flux_moe::MoeModel;
use flux_tensor::{stats, SeededRng};

fn main() {
    let scale = Scale::from_env();
    let model_config = llama_config(scale);
    let policies = [
        ("single n.t. exp.", BudgetPolicy::SinglePerLayer),
        ("uniform layer size", BudgetPolicy::Uniform),
        ("adaptive layer size", BudgetPolicy::Adaptive),
    ];

    // Part 1: forward-pass output error of the merged model.
    print_header(
        &format!(
            "Figure 15a: output error by budget policy ({})",
            scale.label()
        ),
        &["Dataset", "single", "uniform", "adaptive"],
    );
    for kind in DatasetKind::all() {
        let mut rng = SeededRng::new(EXPERIMENT_SEED + kind as u64);
        let model = MoeModel::new(model_config.clone(), &mut rng);
        let data_cfg = DatasetConfig::for_kind(kind, model_config.vocab_size).with_num_samples(24);
        let data = DatasetGenerator::new(data_cfg).generate(&mut rng);
        let profile = model.profile(&data);
        let tuning: HashSet<_> = top_frequency_experts(&profile, model_config.total_experts() / 4);
        let budget = model_config.total_experts() / 4;
        let mut cells = Vec::new();
        for (_, policy) in policies {
            let plan = CompactModelPlan::build(
                &model,
                &profile,
                &tuning,
                budget,
                MergingConfig::default().with_budget_policy(policy),
                &mut rng.derive(policy as u64),
            );
            let merged = plan.apply(&model, &profile);
            let mut error = 0.0f32;
            for sample in data.samples.iter().take(10) {
                error += stats::cosine_distance(
                    &model.final_embedding(sample),
                    &merged.final_embedding(sample),
                );
            }
            cells.push(fmt((error / 10.0) as f64));
        }
        println!("{}\t{}", kind.name(), cells.join("\t"));
    }

    // Part 2: time to the calibrated target under each policy.
    print_header(
        "Figure 15b: time to 90%-of-best score (h) by budget policy",
        &["Dataset", "single", "uniform", "adaptive"],
    );
    for kind in DatasetKind::all() {
        let mut results = Vec::new();
        for (_, policy) in policies {
            let config = run_config(scale, model_config.clone(), kind)
                .with_merging(MergingConfig::default().with_budget_policy(policy));
            results.push(FederatedRun::new(config, EXPERIMENT_SEED).run(Method::Flux));
        }
        let best = results
            .iter()
            .map(|r| r.best_score())
            .fold(0.0f32, f32::max);
        let target = best * 0.9;
        let cells: Vec<String> = results
            .iter()
            .map(|r| match r.time_to_score(target) {
                Some(t) => fmt(t),
                None => "n/r".to_string(),
            })
            .collect();
        println!("{}\t{}", kind.name(), cells.join("\t"));
    }
    println!("\npaper: adaptive allocation reduces output error (e.g. -65.6% vs single on GSM8K) and time.");
}
