//! Scaled-down trainable Mixture-of-Experts transformer.
//!
//! The Flux paper fine-tunes LLaMA-MoE (32 layers × 16 experts, 6.7 B
//! parameters) and DeepSeek-MoE (28 × 64, 16.4 B). Real checkpoints and GPUs
//! are unavailable to this reproduction, so this crate provides an MoE
//! transformer with the *same topology* (layer count, expert count, top-k
//! routing, per-token gating, attention) at a laptop-scale width, trained
//! from scratch on the synthetic datasets of `flux-data`. The structural
//! properties Flux exploits — skewed expert activation, per-layer activation
//! variance, error accumulation when experts are merged or dropped, and
//! per-expert gradients — all emerge from this substrate.
//!
//! Supported operations mirror the paper's implementation section (§7):
//!
//! * **Customized MoE construction** — a different number of experts per
//!   layer ([`config::MoeConfig::with_experts_per_layer`]), used after
//!   non-tuning experts are merged.
//! * **Parameter loading for customized models** — building a compact model
//!   from a full model plus an expert keep/merge plan
//!   ([`model::MoeModel::with_custom_experts`]).
//! * **Gate re-routing** — the gating output of a merged expert is remapped
//!   to its merged replacement ([`gating::RoutingMap`]).
//! * **Expert-only fine-tuning** — backward produces per-expert gradients
//!   for a caller-selected tuning set, plus task-head gradients.
//! * **Quantized profiling copies** — [`model::MoeModel::quantized_copy`]
//!   produces a model whose weights carry INT2/4/8 round-trip error, used by
//!   Flux's local profiling.

pub mod attention;
pub mod batch;
pub mod checkpoint;
pub mod config;
pub mod expert;
pub mod gating;
pub mod layer;
pub mod model;
pub mod tracker;

pub use batch::PackedBatch;
pub use config::{ModelCatalogEntry, MoeConfig};
pub use expert::{Expert, ExpertGrad};
pub use gating::RoutingMap;
pub use model::{BatchForwardCache, EvalResult, ForwardCache, GradientSet, MoeModel};
pub use tracker::{ActivationProfile, ActivationTracker, ExpertKey};
