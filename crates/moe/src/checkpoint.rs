//! Binary model checkpoints.
//!
//! The paper's `Flux.moe.load_model` API loads pretrained parameters into a
//! customized MoE. The reproduction has no external checkpoint format to
//! read, so this module defines a small self-describing binary format
//! (little-endian, length-prefixed) that round-trips a [`MoeModel`] —
//! including models with customized per-layer expert counts and non-identity
//! routing maps — to and from a byte buffer or file.

use std::fmt;
use std::fs;
use std::path::Path;

use bytes::{Buf, BufMut, Bytes, BytesMut};

use flux_tensor::Matrix;

use crate::attention::Attention;
use crate::config::MoeConfig;
use crate::expert::Expert;
use crate::gating::{Gate, RoutingMap};
use crate::layer::{MoeLayer, TransformerLayer};
use crate::model::MoeModel;

/// Magic bytes identifying a Flux checkpoint.
const MAGIC: &[u8; 8] = b"FLUXMOE1";

/// Errors produced while reading or writing checkpoints.
#[derive(Debug)]
pub enum CheckpointError {
    /// The buffer does not start with the expected magic bytes.
    BadMagic,
    /// The buffer ended before the structure was complete.
    Truncated,
    /// A length or dimension field was implausible.
    Corrupt(String),
    /// Underlying filesystem error.
    Io(std::io::Error),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::BadMagic => write!(f, "not a Flux checkpoint (bad magic)"),
            CheckpointError::Truncated => write!(f, "checkpoint truncated"),
            CheckpointError::Corrupt(msg) => write!(f, "corrupt checkpoint: {msg}"),
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// Serializes a model into a byte buffer.
pub fn to_bytes(model: &MoeModel) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_slice(MAGIC);
    put_config(&mut buf, &model.config);
    put_matrix(&mut buf, &model.embedding);
    put_matrix(&mut buf, &model.lm_head);
    match &model.cls_head {
        Some(h) => {
            buf.put_u8(1);
            put_matrix(&mut buf, h);
        }
        None => buf.put_u8(0),
    }
    buf.put_u32_le(model.layers.len() as u32);
    for layer in &model.layers {
        put_matrix(&mut buf, &layer.attention.wq);
        put_matrix(&mut buf, &layer.attention.wk);
        put_matrix(&mut buf, &layer.attention.wv);
        put_matrix(&mut buf, &layer.attention.wo);
        put_matrix(&mut buf, &layer.moe.gate.weight);
        buf.put_u32_le(layer.moe.gate.top_k as u32);
        buf.put_u32_le(layer.moe.experts.len() as u32);
        for expert in &layer.moe.experts {
            put_matrix(&mut buf, &expert.w1);
            put_vec(&mut buf, &expert.b1);
            put_matrix(&mut buf, &expert.w2);
            put_vec(&mut buf, &expert.b2);
        }
        let table = layer.moe.routing_map.table();
        buf.put_u32_le(table.len() as u32);
        for &t in table {
            buf.put_u32_le(t as u32);
        }
    }
    buf.freeze()
}

/// Deserializes a model from a byte buffer.
///
/// # Errors
///
/// Returns a [`CheckpointError`] if the buffer is not a valid checkpoint.
pub fn from_bytes(mut buf: &[u8]) -> Result<MoeModel, CheckpointError> {
    let magic = take(&mut buf, MAGIC.len())?;
    if magic != MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    let config = get_config(&mut buf)?;
    let embedding = get_matrix(&mut buf)?;
    let lm_head = get_matrix(&mut buf)?;
    let has_cls = get_u8(&mut buf)?;
    let cls_head = if has_cls == 1 {
        Some(get_matrix(&mut buf)?)
    } else {
        None
    };
    let num_layers = get_u32(&mut buf)? as usize;
    if num_layers > 4096 {
        return Err(CheckpointError::Corrupt(format!(
            "implausible layer count {num_layers}"
        )));
    }
    let mut layers = Vec::with_capacity(num_layers);
    for _ in 0..num_layers {
        let wq = get_matrix(&mut buf)?;
        let wk = get_matrix(&mut buf)?;
        let wv = get_matrix(&mut buf)?;
        let wo = get_matrix(&mut buf)?;
        let gate_weight = get_matrix(&mut buf)?;
        let top_k = get_u32(&mut buf)? as usize;
        let num_experts = get_u32(&mut buf)? as usize;
        if num_experts > 65_536 {
            return Err(CheckpointError::Corrupt(format!(
                "implausible expert count {num_experts}"
            )));
        }
        let mut experts = Vec::with_capacity(num_experts);
        for _ in 0..num_experts {
            let w1 = get_matrix(&mut buf)?;
            let b1 = get_vec(&mut buf)?;
            let w2 = get_matrix(&mut buf)?;
            let b2 = get_vec(&mut buf)?;
            experts.push(Expert { w1, b1, w2, b2 });
        }
        let table_len = get_u32(&mut buf)? as usize;
        let mut table = Vec::with_capacity(table_len);
        for _ in 0..table_len {
            table.push(get_u32(&mut buf)? as usize);
        }
        let routing_map = if table.is_empty() {
            RoutingMap::identity(num_experts)
        } else {
            RoutingMap::from_table(table)
        };
        layers.push(TransformerLayer {
            attention: Attention::from_parts(wq, wk, wv, wo),
            moe: MoeLayer {
                gate: Gate {
                    weight: gate_weight,
                    top_k,
                },
                experts,
                routing_map,
            },
        });
    }
    Ok(MoeModel {
        config,
        embedding,
        layers,
        lm_head,
        cls_head,
    })
}

/// Writes a model checkpoint to a file.
///
/// # Errors
///
/// Returns a [`CheckpointError::Io`] when the file cannot be written.
pub fn save(model: &MoeModel, path: impl AsRef<Path>) -> Result<(), CheckpointError> {
    fs::write(path, to_bytes(model))?;
    Ok(())
}

/// Reads a model checkpoint from a file.
///
/// # Errors
///
/// Returns a [`CheckpointError`] when the file cannot be read or parsed.
pub fn load(path: impl AsRef<Path>) -> Result<MoeModel, CheckpointError> {
    let data = fs::read(path)?;
    from_bytes(&data)
}

fn put_config(buf: &mut BytesMut, cfg: &MoeConfig) {
    let name = cfg.name.as_bytes();
    buf.put_u32_le(name.len() as u32);
    buf.put_slice(name);
    buf.put_u32_le(cfg.vocab_size as u32);
    buf.put_u32_le(cfg.d_model as u32);
    buf.put_u32_le(cfg.d_ff as u32);
    buf.put_u32_le(cfg.num_layers as u32);
    buf.put_u32_le(cfg.experts_per_layer.len() as u32);
    for &e in &cfg.experts_per_layer {
        buf.put_u32_le(e as u32);
    }
    buf.put_u32_le(cfg.top_k as u32);
    buf.put_u32_le(cfg.num_heads as u32);
    match cfg.num_classes {
        Some(c) => {
            buf.put_u8(1);
            buf.put_u32_le(c as u32);
        }
        None => buf.put_u8(0),
    }
    buf.put_u32_le(cfg.max_seq_len as u32);
    buf.put_f32_le(cfg.reference_size_gb);
}

fn get_config(buf: &mut &[u8]) -> Result<MoeConfig, CheckpointError> {
    let name_len = get_u32(buf)? as usize;
    if name_len > 1024 {
        return Err(CheckpointError::Corrupt("model name too long".into()));
    }
    let name_bytes = take(buf, name_len)?;
    let name = String::from_utf8(name_bytes.to_vec())
        .map_err(|_| CheckpointError::Corrupt("model name is not UTF-8".into()))?;
    let vocab_size = get_u32(buf)? as usize;
    let d_model = get_u32(buf)? as usize;
    let d_ff = get_u32(buf)? as usize;
    let num_layers = get_u32(buf)? as usize;
    let epl_len = get_u32(buf)? as usize;
    let mut experts_per_layer = Vec::with_capacity(epl_len);
    for _ in 0..epl_len {
        experts_per_layer.push(get_u32(buf)? as usize);
    }
    let top_k = get_u32(buf)? as usize;
    let num_heads = get_u32(buf)? as usize;
    let has_classes = get_u8(buf)?;
    let num_classes = if has_classes == 1 {
        Some(get_u32(buf)? as usize)
    } else {
        None
    };
    let max_seq_len = get_u32(buf)? as usize;
    let reference_size_gb = get_f32(buf)?;
    Ok(MoeConfig {
        name,
        vocab_size,
        d_model,
        d_ff,
        num_layers,
        experts_per_layer,
        top_k,
        num_heads,
        num_classes,
        max_seq_len,
        reference_size_gb,
    })
}

/// Appends a length-prefixed matrix (rows, cols, row-major f32 data).
pub fn put_matrix(buf: &mut BytesMut, m: &Matrix) {
    buf.put_u32_le(m.rows() as u32);
    buf.put_u32_le(m.cols() as u32);
    for &x in m.as_slice() {
        buf.put_f32_le(x);
    }
}

/// Reads a matrix written by [`put_matrix`].
///
/// # Errors
///
/// Returns a [`CheckpointError`] when the buffer is truncated or the shape
/// is implausible.
pub fn get_matrix(buf: &mut &[u8]) -> Result<Matrix, CheckpointError> {
    let rows = get_u32(buf)? as usize;
    let cols = get_u32(buf)? as usize;
    if rows.saturating_mul(cols) > 64_000_000 {
        return Err(CheckpointError::Corrupt(format!(
            "implausible matrix shape {rows}x{cols}"
        )));
    }
    let mut data = Vec::with_capacity(rows * cols);
    for _ in 0..rows * cols {
        data.push(get_f32(buf)?);
    }
    Matrix::from_vec(rows, cols, data)
        .map_err(|e| CheckpointError::Corrupt(format!("matrix rebuild failed: {e}")))
}

/// Appends a length-prefixed `f32` vector.
pub fn put_vec(buf: &mut BytesMut, v: &[f32]) {
    buf.put_u32_le(v.len() as u32);
    for &x in v {
        buf.put_f32_le(x);
    }
}

/// Reads a vector written by [`put_vec`].
///
/// # Errors
///
/// Returns a [`CheckpointError`] when the buffer is truncated or the length
/// is implausible.
pub fn get_vec(buf: &mut &[u8]) -> Result<Vec<f32>, CheckpointError> {
    let len = get_u32(buf)? as usize;
    if len > 64_000_000 {
        return Err(CheckpointError::Corrupt("implausible vector length".into()));
    }
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        out.push(get_f32(buf)?);
    }
    Ok(out)
}

/// Appends one expert (two projections plus biases) to the buffer.
pub fn put_expert(buf: &mut BytesMut, e: &Expert) {
    put_matrix(buf, &e.w1);
    put_vec(buf, &e.b1);
    put_matrix(buf, &e.w2);
    put_vec(buf, &e.b2);
}

/// Reads an expert written by [`put_expert`].
///
/// # Errors
///
/// Returns a [`CheckpointError`] when the buffer is truncated or corrupt.
pub fn get_expert(buf: &mut &[u8]) -> Result<Expert, CheckpointError> {
    let w1 = get_matrix(buf)?;
    let b1 = get_vec(buf)?;
    let w2 = get_matrix(buf)?;
    let b2 = get_vec(buf)?;
    Ok(Expert { w1, b1, w2, b2 })
}

/// Splits the next `n` bytes off the front of `buf`.
///
/// # Errors
///
/// Returns [`CheckpointError::Truncated`] when fewer than `n` bytes remain.
pub fn take<'a>(buf: &mut &'a [u8], n: usize) -> Result<&'a [u8], CheckpointError> {
    if buf.len() < n {
        return Err(CheckpointError::Truncated);
    }
    let (head, rest) = buf.split_at(n);
    *buf = rest;
    Ok(head)
}

/// Reads one byte.
///
/// # Errors
///
/// Returns [`CheckpointError::Truncated`] when the buffer is empty.
pub fn get_u8(buf: &mut &[u8]) -> Result<u8, CheckpointError> {
    if buf.remaining() < 1 {
        return Err(CheckpointError::Truncated);
    }
    Ok(buf.get_u8())
}

/// Reads a little-endian `u32`.
///
/// # Errors
///
/// Returns [`CheckpointError::Truncated`] when fewer than 4 bytes remain.
pub fn get_u32(buf: &mut &[u8]) -> Result<u32, CheckpointError> {
    if buf.remaining() < 4 {
        return Err(CheckpointError::Truncated);
    }
    Ok(buf.get_u32_le())
}

/// Reads a little-endian `u64`.
///
/// # Errors
///
/// Returns [`CheckpointError::Truncated`] when fewer than 8 bytes remain.
pub fn get_u64(buf: &mut &[u8]) -> Result<u64, CheckpointError> {
    if buf.remaining() < 8 {
        return Err(CheckpointError::Truncated);
    }
    Ok(buf.get_u64_le())
}

/// Reads a little-endian `f32`.
///
/// # Errors
///
/// Returns [`CheckpointError::Truncated`] when fewer than 4 bytes remain.
pub fn get_f32(buf: &mut &[u8]) -> Result<f32, CheckpointError> {
    if buf.remaining() < 4 {
        return Err(CheckpointError::Truncated);
    }
    Ok(buf.get_f32_le())
}

/// Reads a little-endian `f64`.
///
/// # Errors
///
/// Returns [`CheckpointError::Truncated`] when fewer than 8 bytes remain.
pub fn get_f64(buf: &mut &[u8]) -> Result<f64, CheckpointError> {
    if buf.remaining() < 8 {
        return Err(CheckpointError::Truncated);
    }
    Ok(f64::from_bits(buf.get_u64_le()))
}

/// Appends a little-endian `f64` (bit-exact, via `to_bits`).
pub fn put_f64(buf: &mut BytesMut, x: f64) {
    buf.put_u64_le(x.to_bits());
}

#[cfg(test)]
mod tests {
    use super::*;
    use flux_tensor::SeededRng;

    fn model(seed: u64) -> MoeModel {
        let mut rng = SeededRng::new(seed);
        MoeModel::new(MoeConfig::tiny(), &mut rng)
    }

    #[test]
    fn round_trip_preserves_everything() {
        let m = model(1);
        let bytes = to_bytes(&m);
        let restored = from_bytes(&bytes).unwrap();
        assert_eq!(restored.config, m.config);
        assert_eq!(restored.embedding, m.embedding);
        assert_eq!(restored.lm_head, m.lm_head);
        assert_eq!(restored.layers.len(), m.layers.len());
        for (a, b) in restored.layers.iter().zip(m.layers.iter()) {
            assert_eq!(a.moe.experts, b.moe.experts);
            assert_eq!(a.moe.gate, b.moe.gate);
            assert_eq!(a.attention, b.attention);
        }
    }

    #[test]
    fn round_trip_with_classification_head_and_custom_experts() {
        let mut rng = SeededRng::new(2);
        let mut m = MoeModel::new(MoeConfig::tiny().with_classes(4), &mut rng);
        // Merge experts 6 and 7 of layer 2 to exercise a non-identity map.
        let merged = Expert::weighted_merge(
            &[&m.layers[2].moe.experts[6], &m.layers[2].moe.experts[7]],
            &[1.0, 1.0],
        );
        let mut experts = m.layers[2].moe.experts[..6].to_vec();
        experts.push(merged);
        m.set_layer_experts(
            2,
            experts,
            RoutingMap::from_table(vec![0, 1, 2, 3, 4, 5, 6, 6]),
        );
        let restored = from_bytes(&to_bytes(&m)).unwrap();
        assert_eq!(restored.cls_head, m.cls_head);
        assert_eq!(restored.layers[2].moe.experts.len(), 7);
        assert_eq!(
            restored.layers[2].moe.routing_map.table(),
            m.layers[2].moe.routing_map.table()
        );
    }

    #[test]
    fn bad_magic_is_rejected() {
        let err = from_bytes(b"NOTAMODELxxxxxxxxxxx").unwrap_err();
        assert!(matches!(err, CheckpointError::BadMagic));
    }

    #[test]
    fn truncated_buffer_is_rejected() {
        let m = model(3);
        let bytes = to_bytes(&m);
        let err = from_bytes(&bytes[..bytes.len() / 2]).unwrap_err();
        assert!(matches!(err, CheckpointError::Truncated));
    }

    #[test]
    fn file_round_trip() {
        let m = model(4);
        let dir = std::env::temp_dir();
        let path = dir.join("flux_checkpoint_test.bin");
        save(&m, &path).unwrap();
        let restored = load(&path).unwrap();
        assert_eq!(restored.embedding, m.embedding);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn load_missing_file_is_io_error() {
        let err = load("/nonexistent/flux/checkpoint.bin").unwrap_err();
        assert!(matches!(err, CheckpointError::Io(_)));
    }

    #[test]
    fn error_display_strings() {
        assert!(CheckpointError::BadMagic.to_string().contains("magic"));
        assert!(CheckpointError::Truncated.to_string().contains("truncated"));
        assert!(CheckpointError::Corrupt("x".into())
            .to_string()
            .contains("x"));
    }
}
