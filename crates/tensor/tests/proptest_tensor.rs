//! Property-based tests for the tensor substrate.

use flux_tensor::{
    kmeans::KMeans,
    ops,
    simd::{self, SimdLevel},
    stats, Matrix, SeededRng,
};
use proptest::prelude::*;

/// Every SIMD dispatch level this host can execute (scalar always included).
fn supported_levels() -> Vec<SimdLevel> {
    [SimdLevel::Scalar, SimdLevel::Sse2, SimdLevel::Avx2]
        .into_iter()
        .filter(|&l| simd::is_supported(l))
        .collect()
}

/// Strategy producing a small matrix with bounded finite values.
fn matrix_strategy(max_dim: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(|(r, c)| {
        prop::collection::vec(-100.0f32..100.0, r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data).unwrap())
    })
}

/// Strategy producing a compatible matmul pair `(m×k, k×n)`, including the
/// degenerate shapes (0 rows, 0 inner dimension, single columns) the blocked
/// kernel's remainder paths must handle.
fn matmul_pair_strategy() -> impl Strategy<Value = (Matrix, Matrix)> {
    // Entries are kept O(1) so the 1e-4 relative tolerance is meaningful:
    // with large entries, f32 accumulation of a cancelling sum legitimately
    // drifts past any fixed relative-to-output bound.
    (0usize..=21, 0usize..=21, 0usize..=21).prop_flat_map(|(m, k, n)| {
        (
            prop::collection::vec(-2.0f32..2.0, m * k),
            prop::collection::vec(-2.0f32..2.0, k * n),
        )
            .prop_map(move |(a, b)| {
                (
                    Matrix::from_vec(m, k, a).unwrap(),
                    Matrix::from_vec(k, n, b).unwrap(),
                )
            })
    })
}

/// Naive triple-loop reference matmul, accumulated in `f64`.
fn matmul_reference(a: &Matrix, b: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(a.rows(), b.cols());
    for i in 0..a.rows() {
        for j in 0..b.cols() {
            let mut acc = 0.0f64;
            for k in 0..a.cols() {
                acc += a.get(i, k) as f64 * b.get(k, j) as f64;
            }
            out.set(i, j, acc as f32);
        }
    }
    out
}

/// Asserts two matrices agree within a relative tolerance of `tol`.
fn assert_close(actual: &Matrix, expected: &Matrix, tol: f32) {
    assert_eq!(actual.shape(), expected.shape());
    for (x, y) in actual.as_slice().iter().zip(expected.as_slice()) {
        assert!(
            (x - y).abs() <= tol * y.abs().max(1.0),
            "kernel {x} vs reference {y}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn transpose_involution(m in matrix_strategy(8)) {
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn add_commutes(r in 1usize..6, c in 1usize..6, seed in 0u64..1000) {
        let mut rng = SeededRng::new(seed);
        let a = Matrix::random_normal(r, c, 1.0, &mut rng);
        let b = Matrix::random_normal(r, c, 1.0, &mut rng);
        let ab = a.add(&b).unwrap();
        let ba = b.add(&a).unwrap();
        for (x, y) in ab.as_slice().iter().zip(ba.as_slice()) {
            prop_assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn matmul_identity_left_and_right(m in matrix_strategy(6)) {
        let left = Matrix::identity(m.rows()).matmul(&m);
        let right = m.matmul(&Matrix::identity(m.cols()));
        for (x, y) in left.as_slice().iter().zip(m.as_slice()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
        for (x, y) in right.as_slice().iter().zip(m.as_slice()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn matmul_distributes_over_addition(seed in 0u64..500) {
        let mut rng = SeededRng::new(seed);
        let a = Matrix::random_normal(4, 5, 1.0, &mut rng);
        let b = Matrix::random_normal(5, 3, 1.0, &mut rng);
        let c = Matrix::random_normal(5, 3, 1.0, &mut rng);
        let lhs = a.matmul(&b.add(&c).unwrap());
        let rhs = a.matmul(&b).add(&a.matmul(&c)).unwrap();
        for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn softmax_is_distribution(logits in prop::collection::vec(-50.0f32..50.0, 1..32)) {
        let p = ops::softmax_row(&logits);
        let sum: f32 = p.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-4);
        prop_assert!(p.iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    #[test]
    fn softmax_invariant_to_constant_shift(
        logits in prop::collection::vec(-10.0f32..10.0, 2..16),
        shift in -100.0f32..100.0,
    ) {
        let base = ops::softmax_row(&logits);
        let shifted_logits: Vec<f32> = logits.iter().map(|&x| x + shift).collect();
        let shifted = ops::softmax_row(&shifted_logits);
        for (a, b) in base.iter().zip(shifted.iter()) {
            prop_assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn cosine_similarity_bounded(
        a in prop::collection::vec(-10.0f32..10.0, 4),
        b in prop::collection::vec(-10.0f32..10.0, 4),
    ) {
        let s = stats::cosine_similarity(&a, &b);
        prop_assert!((-1.0..=1.0).contains(&s));
    }

    #[test]
    fn cosine_similarity_scale_invariant(
        a in prop::collection::vec(0.1f32..10.0, 4),
        scale in 0.1f32..50.0,
    ) {
        let scaled: Vec<f32> = a.iter().map(|&x| x * scale).collect();
        let s = stats::cosine_similarity(&a, &scaled);
        prop_assert!((s - 1.0).abs() < 1e-4);
    }

    #[test]
    fn normalize_to_distribution_is_distribution(
        values in prop::collection::vec(0.0f32..100.0, 1..20),
    ) {
        let d = stats::normalize_to_distribution(&values);
        let sum: f32 = d.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-4);
    }

    #[test]
    fn empirical_cdf_is_monotone(
        samples in prop::collection::vec(-10.0f32..10.0, 1..50),
    ) {
        let points: Vec<f32> = (-10..=10).map(|x| x as f32).collect();
        let cdf = stats::empirical_cdf(&samples, &points);
        for pair in cdf.windows(2) {
            prop_assert!(pair[0].1 <= pair[1].1);
        }
    }

    #[test]
    fn layer_norm_rows_have_unit_variance(seed in 0u64..500, rows in 1usize..5) {
        let mut rng = SeededRng::new(seed);
        let x = Matrix::random_normal(rows, 32, 3.0, &mut rng);
        let y = ops::layer_norm(&x, 1e-5);
        for r in 0..y.rows() {
            let row = y.row(r);
            let mean: f32 = row.iter().sum::<f32>() / row.len() as f32;
            let var: f32 = row.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / row.len() as f32;
            prop_assert!(mean.abs() < 1e-3);
            prop_assert!((var - 1.0).abs() < 0.05);
        }
    }

    #[test]
    fn kmeans_assignments_in_range(seed in 0u64..200, k in 1usize..6) {
        let mut rng = SeededRng::new(seed);
        let data = Matrix::random_normal(20, 3, 1.0, &mut rng);
        let result = KMeans::new(k).with_euclidean().fit(&data, &mut rng).unwrap();
        let clusters = result.centroids.rows();
        prop_assert!(clusters <= k.max(1));
        prop_assert!(result.assignments.iter().all(|&a| a < clusters));
        prop_assert_eq!(result.assignments.len(), 20);
    }

    #[test]
    fn blocked_matmul_matches_naive_reference(pair in matmul_pair_strategy()) {
        // The cache-blocked, panel-packed kernel (all of its paths: 4-row
        // register tiles, row remainders, depth remainders, degenerate
        // shapes) agrees with a naive triple loop within 1e-4 relative.
        let (a, b) = pair;
        let reference = matmul_reference(&a, &b);
        assert_close(&a.try_matmul(&b).unwrap(), &reference, 1e-4);
        // The sparse-aware entry point computes the same product.
        assert_close(&a.try_matmul_sparse(&b).unwrap(), &reference, 1e-4);
    }

    #[test]
    fn blocked_matmul_handles_deep_inner_dimension(seed in 0u64..200) {
        // Depth > KC exercises the k-blocking path.
        let mut rng = SeededRng::new(seed);
        let a = Matrix::random_normal(5, 300, 0.3, &mut rng);
        let b = Matrix::random_normal(300, 3, 0.3, &mut rng);
        assert_close(&a.try_matmul(&b).unwrap(), &matmul_reference(&a, &b), 1e-4);
    }

    #[test]
    fn fused_transpose_kernels_match_explicit_transpose(pair in matmul_pair_strategy()) {
        let (a, b) = pair;
        let reference = matmul_reference(&a, &b);
        // (aᵀ)ᵀ·b via matmul_transa == a·b.
        assert_close(&a.transpose().matmul_transa(&b).unwrap(), &reference, 1e-4);
        // a·(bᵀ)ᵀ via matmul_transb == a·b.
        assert_close(&a.matmul_transb(&b.transpose()).unwrap(), &reference, 1e-4);
    }

    #[test]
    fn matmul_bias_matches_matmul_plus_broadcast(pair in matmul_pair_strategy()) {
        let (a, b) = pair;
        let bias: Vec<f32> = (0..b.cols()).map(|j| j as f32 - 1.5).collect();
        let fused = a.try_matmul_bias(&b, &bias).unwrap();
        let separate = a.try_matmul(&b).unwrap().add_row_broadcast(&bias).unwrap();
        assert_close(&fused, &separate, 1e-4);
    }

    #[test]
    fn vector_fast_paths_match_matmul(pair in matmul_pair_strategy()) {
        let (a, b) = pair;
        if a.rows() > 0 {
            // matvec == matmul with a column vector.
            let x: Vec<f32> = (0..a.cols()).map(|i| (i as f32).sin()).collect();
            let col = Matrix::from_vec(a.cols(), 1, x.clone()).unwrap();
            let product = a.matmul(&col);
            for (i, y) in a.matvec(&x).unwrap().iter().enumerate() {
                prop_assert!((y - product.get(i, 0)).abs() <= 1e-4 * product.get(i, 0).abs().max(1.0));
            }
        }
        // vecmat is documented bit-identical to a 1×k matmul.
        let x: Vec<f32> = (0..b.rows()).map(|i| (i as f32).cos()).collect();
        let row = Matrix::from_vec(1, b.rows(), x.clone()).unwrap();
        let product = row.matmul(&b);
        prop_assert_eq!(b.vecmat(&x).unwrap().as_slice(), product.as_slice());
    }

    #[test]
    fn simd_levels_agree_with_scalar_within_tolerance(pair in matmul_pair_strategy()) {
        // The pinned contract of the dispatch layer: the scalar kernel is the
        // reference; SSE2 reproduces it bit-for-bit (same association, no
        // FMA); AVX2+FMA may contract but stays within 1e-5 relative. The
        // element-wise kernels are bitwise at every level.
        let (a, b) = pair;
        let scalar = simd::with_level(SimdLevel::Scalar, || a.try_matmul(&b).unwrap());
        let scalar_tb =
            simd::with_level(SimdLevel::Scalar, || a.matmul_transb(&b.transpose()).unwrap());
        let scalar_gelu = simd::with_level(SimdLevel::Scalar, || ops::gelu(&scalar));
        for level in supported_levels() {
            let out = simd::with_level(level, || a.try_matmul(&b).unwrap());
            assert_close(&out, &scalar, 1e-5);
            let tb = simd::with_level(level, || a.matmul_transb(&b.transpose()).unwrap());
            assert_close(&tb, &scalar_tb, 1e-5);
            if level == SimdLevel::Sse2 {
                prop_assert_eq!(out.as_slice(), scalar.as_slice());
            }
            // GELU (and the other element-wise kernels) never use FMA, so
            // they are bit-identical to the scalar reference at every level.
            let g = simd::with_level(level, || ops::gelu(&scalar));
            prop_assert_eq!(g.as_slice(), scalar_gelu.as_slice());
        }
    }

    #[test]
    fn each_simd_level_is_individually_deterministic(pair in matmul_pair_strategy()) {
        // For a fixed level, repeated runs (including across the thread-local
        // override round trip) must be bit-identical — the determinism half
        // of the kernel contract, the unit-level twin of the golden-trace
        // `FLUX_SIMD=0/1` CI legs.
        let (a, b) = pair;
        for level in supported_levels() {
            let first = simd::with_level(level, || {
                let m = a.try_matmul(&b).unwrap();
                let g = ops::gelu(&m);
                (m, g)
            });
            let again = simd::with_level(level, || {
                let m = a.try_matmul(&b).unwrap();
                let g = ops::gelu(&m);
                (m, g)
            });
            prop_assert_eq!(first.0.as_slice(), again.0.as_slice());
            prop_assert_eq!(first.1.as_slice(), again.1.as_slice());
        }
    }

    #[test]
    fn cross_entropy_loss_nonnegative(seed in 0u64..500) {
        let mut rng = SeededRng::new(seed);
        let logits = Matrix::random_normal(4, 6, 2.0, &mut rng);
        let targets: Vec<usize> = (0..4).map(|_| rng.below(6)).collect();
        let (loss, grad) = ops::cross_entropy(&logits, &targets);
        prop_assert!(loss >= 0.0);
        prop_assert_eq!(grad.shape(), logits.shape());
        // Gradient rows sum to ~0 (softmax minus one-hot).
        for r in 0..grad.rows() {
            let s: f32 = grad.row(r).iter().sum();
            prop_assert!(s.abs() < 1e-4);
        }
    }
}

/// Regression pin for the consolidated tail handling: every tiny/odd shape
/// `m, k, n ∈ 1..9` exercises some mix of the 4-row register tile, the row
/// remainder, and sub-width column tails, at every dispatch level. Before
/// the kernels were unified behind the dispatch table, `gemm_row` and
/// `gemm_accumulate` each carried their own copy of the 4-way-unroll tail
/// logic; this sweep would have caught a divergence between them.
#[test]
fn tiny_odd_shapes_match_f64_reference_at_every_level() {
    for level in supported_levels() {
        simd::with_level(level, || {
            for m in 1..9usize {
                for k in 1..9usize {
                    for n in 1..9usize {
                        let a = Matrix::from_vec(
                            m,
                            k,
                            (0..m * k).map(|i| (i as f32 * 0.37).sin()).collect(),
                        )
                        .unwrap();
                        let b = Matrix::from_vec(
                            k,
                            n,
                            (0..k * n).map(|i| (i as f32 * 0.53).cos()).collect(),
                        )
                        .unwrap();
                        let reference = matmul_reference(&a, &b);
                        assert_close(&a.try_matmul(&b).unwrap(), &reference, 1e-5);
                        assert_close(&a.matmul_transb(&b.transpose()).unwrap(), &reference, 1e-5);
                        assert_close(&a.transpose().matmul_transa(&b).unwrap(), &reference, 1e-5);
                        // The vecmat fast path stays bit-identical to a 1×k
                        // matmul at every level (both share the dispatched
                        // row kernel).
                        let x: Vec<f32> = (0..k).map(|i| (i as f32 * 0.71).sin()).collect();
                        let row = Matrix::from_vec(1, k, x.clone()).unwrap();
                        assert_eq!(
                            b.vecmat(&x).unwrap().as_slice(),
                            row.matmul(&b).as_slice(),
                            "vecmat diverged at {level:?} k={k} n={n}"
                        );
                    }
                }
            }
        });
    }
}

/// Determinism pin for the arena-backed scratch: the same matmul computed
/// on a cold thread (fresh arena, fresh pool) and on a warm thread whose
/// arena was fragmented, coalesced and round-reset by unrelated work must
/// be bit-identical — scratch state can never leak into results. This is
/// the unit-level twin of the golden-trace suites, which pin the same
/// property end to end across `FLUX_THREADS` 1/4/8.
#[test]
fn warm_arena_matmul_is_bit_identical_to_cold() {
    fn product() -> Vec<f32> {
        let mut rng = SeededRng::new(99);
        let a = Matrix::random_normal(17, 230, 0.4, &mut rng);
        let b = Matrix::random_normal(230, 13, 0.4, &mut rng);
        a.try_matmul(&b).unwrap().as_slice().to_vec()
    }
    let cold = std::thread::spawn(product).join().unwrap();
    let warm = std::thread::spawn(|| {
        // Dirty and fragment the arena and the owned-buffer pool.
        for i in 1..6 {
            flux_tensor::scratch::with(i * 10_000, |s| s.fill(7.0));
            flux_tensor::scratch::give(vec![3.0; i * 1000]);
        }
        let first = product();
        flux_tensor::scratch::reset_round();
        let again = product();
        assert_eq!(
            first.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            again.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "reset_round changed matmul results"
        );
        first
    })
    .join()
    .unwrap();
    assert_eq!(
        cold.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        warm.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        "arena warmth changed matmul results"
    );
}
