//! Figure 13: time-to-accuracy versus the number of participants (10–30) on
//! the DeepSeek-MoE family, four datasets × four methods.

use flux_bench::{deepseek_config, fmt, print_header, run_config, Scale, EXPERIMENT_SEED};
use flux_core::driver::{FederatedRun, Method, RunResult};
use flux_data::DatasetKind;

fn main() {
    let scale = Scale::from_env();
    let participant_counts: Vec<usize> = match scale {
        Scale::Quick => vec![4, 8],
        _ => vec![10, 15, 20, 25, 30],
    };
    for kind in DatasetKind::all() {
        print_header(
            &format!(
                "Figure 13: time-to-accuracy vs participants on {} (DeepSeek-MoE family, {})",
                kind.name(),
                scale.label()
            ),
            &["Participants", "FMD (h)", "FMQ (h)", "FMES (h)", "FLUX (h)"],
        );
        for &n in &participant_counts {
            let results: Vec<RunResult> = Method::all()
                .iter()
                .map(|&method| {
                    let config =
                        run_config(scale, deepseek_config(scale), kind).with_participants(n);
                    FederatedRun::new(config, EXPERIMENT_SEED).run(method)
                })
                .collect();
            let best = results
                .iter()
                .map(|r| r.best_score())
                .fold(0.0f32, f32::max);
            let target = best * 0.9;
            let cells: Vec<String> = results
                .iter()
                .map(|r| match r.time_to_score(target) {
                    Some(t) => fmt(t),
                    None => "n/r".to_string(),
                })
                .collect();
            println!("{n}\t{}", cells.join("\t"));
        }
    }
    println!(
        "\npaper shape: same ordering as Fig. 12 with larger absolute times (~4x FLUX speedup)."
    );
}
