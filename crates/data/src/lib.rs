//! Synthetic datasets and non-IID partitioning for the Flux reproduction.
//!
//! The paper fine-tunes on Dolly, GSM8K, MMLU and PIQA, partitioned non-IID
//! across participants with the FedNLP benchmark splitter. Neither the
//! datasets nor a tokenizer is available offline, so this crate generates
//! synthetic analogues that preserve the properties the system actually
//! interacts with:
//!
//! * a **latent-topic token generator** — every sample is drawn from one of
//!   a small number of topics with a distinct token distribution, which is
//!   what makes MoE gating route different samples to different experts and
//!   yields the skewed per-layer activation patterns of the paper's Fig. 2;
//! * **task labels that depend on the tokens**, so that a model can actually
//!   learn the task and convergence curves are meaningful (generation
//!   targets for the Dolly analogue scored with ROUGE-L, class labels for
//!   the GSM8K/MMLU/PIQA analogues scored with exact-match accuracy);
//! * **matching shape parameters** — relative dataset sizes, sequence-length
//!   distributions (GSM8K noticeably shorter than Dolly, matching §8.2's
//!   "differences in sequence length" remark), class counts, and the paper's
//!   per-dataset target scores;
//! * **Dirichlet label-skew partitioning** across participants, the standard
//!   FedNLP-style non-IID split.

pub mod dataset;
pub mod generator;
pub mod partition;
pub mod stream;

pub use dataset::{Dataset, DatasetKind, Sample, Task};
pub use generator::{DatasetConfig, DatasetGenerator};
pub use partition::{
    partition_iid, partition_indices_iid, partition_indices_non_iid, partition_non_iid,
    PartitionConfig,
};
pub use stream::{MapStream, PartitionView, SampleStream, TakeStream};
