//! Table 1: MoE-based LLM catalog (#layers/#experts, parameters, size).

use flux_bench::print_header;
use flux_moe::ModelCatalogEntry;

fn main() {
    print_header(
        "Table 1: MoE-based LLMs",
        &["Model", "#L/#E", "#Para.", "Size"],
    );
    for entry in ModelCatalogEntry::paper_table1() {
        println!(
            "{}\t{}/{}\t{:.1}B\t{:.2}GB",
            entry.name,
            entry.num_layers,
            entry.experts_per_layer,
            entry.params_billions,
            entry.size_gb()
        );
    }
    println!(
        "\nPaper reference sizes: LLaMA-MoE 13.48GB, DeepSeek-MoE 32.77GB, \
         DeepSeek-v2-lite 31.44GB, Mixtral-8x7B 96.82GB, Qwen2-MoE 112.4GB"
    );
}
