//! Expert activation and attention tracking.
//!
//! During a profiling pass (and optionally during training) the model
//! records, for every `(layer, expert)` pair, how many tokens were routed to
//! the expert, the attention those tokens received, and which samples
//! contributed them. The resulting [`ActivationProfile`] is the input to all
//! three Flux modules: it provides activation frequencies (profiling, §4),
//! the per-layer variances and attention scores feeding the merging budgets
//! and weights (§5), and the per-expert data subsets `D_e_i` used by the
//! utility definition (§6).

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

use flux_tensor::stats;

/// Identifies one expert in the model by layer and expert index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ExpertKey {
    /// Layer index.
    pub layer: usize,
    /// Expert index within the layer (original, pre-merge id).
    pub expert: usize,
}

impl ExpertKey {
    /// Creates a key.
    pub fn new(layer: usize, expert: usize) -> Self {
        Self { layer, expert }
    }
}

/// Accumulates routing events during forward passes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ActivationTracker {
    experts_per_layer: Vec<usize>,
    /// Tokens routed to each expert.
    token_counts: Vec<Vec<u64>>,
    /// Total tokens seen by each layer.
    layer_tokens: Vec<u64>,
    /// Sum of received-attention of tokens routed to each expert.
    attention_sums: Vec<Vec<f32>>,
    /// Samples that contributed at least one token to each expert.
    sample_sets: Vec<Vec<BTreeSet<usize>>>,
    /// Sample currently being processed (set by [`ActivationTracker::begin_sample`]).
    current_sample: Option<usize>,
}

impl ActivationTracker {
    /// Creates a tracker for a model with the given per-layer expert counts.
    pub fn new(experts_per_layer: Vec<usize>) -> Self {
        let token_counts = experts_per_layer.iter().map(|&e| vec![0u64; e]).collect();
        let attention_sums = experts_per_layer.iter().map(|&e| vec![0.0f32; e]).collect();
        let sample_sets = experts_per_layer
            .iter()
            .map(|&e| vec![BTreeSet::new(); e])
            .collect();
        let layers = experts_per_layer.len();
        Self {
            experts_per_layer,
            token_counts,
            layer_tokens: vec![0; layers],
            attention_sums,
            sample_sets,
            current_sample: None,
        }
    }

    /// Number of layers tracked.
    pub fn num_layers(&self) -> usize {
        self.experts_per_layer.len()
    }

    /// Expert count of one layer.
    pub fn experts_in_layer(&self, layer: usize) -> usize {
        self.experts_per_layer[layer]
    }

    /// Marks the start of a new sample so routed tokens are attributed to it.
    pub fn begin_sample(&mut self, sample_id: usize) {
        self.current_sample = Some(sample_id);
    }

    /// Records that one token was routed to `expert` in `layer`, carrying the
    /// given received-attention score.
    ///
    /// # Panics
    ///
    /// Panics if the layer or expert index is out of range.
    pub fn record(&mut self, layer: usize, expert: usize, received_attention: f32) {
        self.token_counts[layer][expert] += 1;
        self.attention_sums[layer][expert] += received_attention;
        if let Some(sample) = self.current_sample {
            self.sample_sets[layer][expert].insert(sample);
        }
    }

    /// Records that a layer processed one token (independent of routing).
    pub fn record_layer_token(&mut self, layer: usize) {
        self.layer_tokens[layer] += 1;
    }

    /// Freezes the tracker into an [`ActivationProfile`].
    pub fn finish(&self) -> ActivationProfile {
        let mut frequencies = Vec::with_capacity(self.num_layers());
        let mut attention = Vec::with_capacity(self.num_layers());
        let mut samples = Vec::with_capacity(self.num_layers());
        for layer in 0..self.num_layers() {
            let total = self.layer_tokens[layer].max(1) as f32;
            let freq: Vec<f32> = self.token_counts[layer]
                .iter()
                .map(|&c| c as f32 / total)
                .collect();
            let att: Vec<f32> = self.token_counts[layer]
                .iter()
                .zip(self.attention_sums[layer].iter())
                .map(|(&c, &a)| if c > 0 { a / c as f32 } else { 0.0 })
                .collect();
            let sets: Vec<Vec<usize>> = self.sample_sets[layer]
                .iter()
                .map(|s| s.iter().copied().collect())
                .collect();
            frequencies.push(freq);
            attention.push(att);
            samples.push(sets);
        }
        ActivationProfile {
            frequencies,
            attention,
            sample_sets: samples,
        }
    }
}

/// A frozen summary of expert activation over a dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ActivationProfile {
    /// `frequencies[layer][expert]`: fraction of the layer's tokens routed to
    /// the expert. With top-k routing the per-layer frequencies sum to ~k.
    pub frequencies: Vec<Vec<f32>>,
    /// `attention[layer][expert]`: mean received-attention of the tokens the
    /// expert processed.
    pub attention: Vec<Vec<f32>>,
    /// `sample_sets[layer][expert]`: ids of samples that sent at least one
    /// token to the expert (the paper's `D_e_i`).
    pub sample_sets: Vec<Vec<Vec<usize>>>,
}

impl ActivationProfile {
    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.frequencies.len()
    }

    /// Activation frequency of one expert.
    pub fn frequency(&self, key: ExpertKey) -> f32 {
        self.frequencies[key.layer][key.expert]
    }

    /// Mean attention of tokens routed to one expert.
    pub fn attention_of(&self, key: ExpertKey) -> f32 {
        self.attention[key.layer][key.expert]
    }

    /// Samples routed through one expert.
    pub fn samples_of(&self, key: ExpertKey) -> &[usize] {
        &self.sample_sets[key.layer][key.expert]
    }

    /// Variance of activation frequencies in one layer (the per-layer signal
    /// of Fig. 2 and the denominator of the merging-budget formula, Eq. 1).
    pub fn layer_variance(&self, layer: usize) -> f32 {
        stats::variance(&self.frequencies[layer])
    }

    /// Variances for all layers.
    pub fn layer_variances(&self) -> Vec<f32> {
        (0..self.num_layers())
            .map(|l| self.layer_variance(l))
            .collect()
    }

    /// Estimation error (percent) of this profile's activation frequencies
    /// against a reference profile, the metric of Fig. 5/14.
    ///
    /// Computed as the mean absolute frequency error normalized by the mean
    /// reference frequency. Normalizing by the mean (rather than per-expert)
    /// keeps rarely-activated experts from dominating the metric, matching
    /// how the paper reports single-digit percentages.
    ///
    /// # Panics
    ///
    /// Panics if the two profiles have different shapes.
    pub fn estimation_error_pct(&self, reference: &ActivationProfile) -> f32 {
        assert_eq!(
            self.num_layers(),
            reference.num_layers(),
            "profiles must cover the same layers"
        );
        let mut abs_error = 0.0f32;
        let mut truth_sum = 0.0f32;
        let mut count = 0usize;
        for layer in 0..self.num_layers() {
            assert_eq!(
                self.frequencies[layer].len(),
                reference.frequencies[layer].len(),
                "layer {layer} expert counts differ"
            );
            for (&e, &t) in self.frequencies[layer]
                .iter()
                .zip(reference.frequencies[layer].iter())
            {
                abs_error += (e - t).abs();
                truth_sum += t;
                count += 1;
            }
        }
        if count == 0 || truth_sum <= 0.0 {
            return 0.0;
        }
        let mean_truth = truth_sum / count as f32;
        100.0 * (abs_error / count as f32) / mean_truth
    }

    /// All expert keys, layer-major order.
    pub fn keys(&self) -> Vec<ExpertKey> {
        let mut keys = Vec::new();
        for (layer, freqs) in self.frequencies.iter().enumerate() {
            for expert in 0..freqs.len() {
                keys.push(ExpertKey::new(layer, expert));
            }
        }
        keys
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tracker() -> ActivationTracker {
        ActivationTracker::new(vec![4, 4])
    }

    #[test]
    fn records_frequencies() {
        let mut t = tracker();
        t.begin_sample(0);
        for _ in 0..10 {
            t.record_layer_token(0);
        }
        for _ in 0..6 {
            t.record(0, 1, 0.5);
        }
        for _ in 0..4 {
            t.record(0, 2, 0.25);
        }
        let p = t.finish();
        assert!((p.frequency(ExpertKey::new(0, 1)) - 0.6).abs() < 1e-6);
        assert!((p.frequency(ExpertKey::new(0, 2)) - 0.4).abs() < 1e-6);
        assert_eq!(p.frequency(ExpertKey::new(0, 0)), 0.0);
    }

    #[test]
    fn attention_is_averaged_per_expert() {
        let mut t = tracker();
        t.record_layer_token(0);
        t.record(0, 0, 0.2);
        t.record(0, 0, 0.4);
        let p = t.finish();
        assert!((p.attention_of(ExpertKey::new(0, 0)) - 0.3).abs() < 1e-6);
        assert_eq!(p.attention_of(ExpertKey::new(0, 3)), 0.0);
    }

    #[test]
    fn sample_sets_deduplicate() {
        let mut t = tracker();
        t.begin_sample(7);
        t.record(1, 2, 0.1);
        t.record(1, 2, 0.1);
        t.begin_sample(9);
        t.record(1, 2, 0.1);
        let p = t.finish();
        assert_eq!(p.samples_of(ExpertKey::new(1, 2)), &[7, 9]);
    }

    #[test]
    fn layer_variance_reflects_skew() {
        let mut t = ActivationTracker::new(vec![4, 4]);
        for _ in 0..100 {
            t.record_layer_token(0);
            t.record_layer_token(1);
        }
        // Layer 0: heavily skewed. Layer 1: perfectly balanced.
        for _ in 0..90 {
            t.record(0, 0, 0.0);
        }
        for _ in 0..10 {
            t.record(0, 1, 0.0);
        }
        for e in 0..4 {
            for _ in 0..25 {
                t.record(1, e, 0.0);
            }
        }
        let p = t.finish();
        assert!(p.layer_variance(0) > p.layer_variance(1));
        assert!(p.layer_variance(1) < 1e-6);
        assert_eq!(p.layer_variances().len(), 2);
    }

    #[test]
    fn estimation_error_zero_for_identical_profiles() {
        let mut t = tracker();
        t.record_layer_token(0);
        t.record(0, 0, 0.1);
        let p = t.finish();
        assert_eq!(p.estimation_error_pct(&p), 0.0);
    }

    #[test]
    fn estimation_error_positive_for_different_profiles() {
        let mut a = tracker();
        let mut b = tracker();
        for _ in 0..10 {
            a.record_layer_token(0);
            b.record_layer_token(0);
        }
        for _ in 0..5 {
            a.record(0, 0, 0.0);
        }
        for _ in 0..4 {
            b.record(0, 0, 0.0);
        }
        let pa = a.finish();
        let pb = b.finish();
        assert!(pa.estimation_error_pct(&pb) > 0.0);
    }

    #[test]
    fn keys_enumerate_all_experts() {
        let p = tracker().finish();
        let keys = p.keys();
        assert_eq!(keys.len(), 8);
        assert_eq!(keys[0], ExpertKey::new(0, 0));
        assert_eq!(keys[7], ExpertKey::new(1, 3));
    }

    #[test]
    fn empty_layer_has_zero_frequency_not_nan() {
        let t = tracker();
        let p = t.finish();
        for layer in &p.frequencies {
            assert!(layer.iter().all(|f| f.is_finite()));
        }
    }
}
