//! Token packing for batched multi-sample training.
//!
//! The batched training path concatenates every sample of a mini-batch into
//! one `(total_tokens, d_model)` activation matrix per layer, so that the
//! row-parallel stages (projections, layer norms, gating logits, expert
//! GEMMs) each run as one wide kernel call instead of one skinny call per
//! sample. [`PackedBatch`] records where each sample's rows live inside the
//! packed matrices; stages that must not mix samples (attention scores, the
//! pooled classification head) walk these bounds.

/// Row layout of a packed mini-batch: sample `i` occupies the half-open row
/// range `bounds()[i]` of every packed `(total_tokens, d)` matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedBatch {
    bounds: Vec<(usize, usize)>,
}

impl PackedBatch {
    /// Builds the packed layout from per-sample sequence lengths.
    pub fn from_lengths(lengths: impl IntoIterator<Item = usize>) -> Self {
        let mut bounds = Vec::new();
        let mut cursor = 0;
        for len in lengths {
            bounds.push((cursor, cursor + len));
            cursor += len;
        }
        Self { bounds }
    }

    /// Per-sample `(start, end)` row ranges, in sample order.
    pub fn bounds(&self) -> &[(usize, usize)] {
        &self.bounds
    }

    /// Number of samples packed.
    pub fn num_samples(&self) -> usize {
        self.bounds.len()
    }

    /// Total rows across all samples.
    pub fn total_tokens(&self) -> usize {
        self.bounds.last().map(|&(_, end)| end).unwrap_or(0)
    }

    /// Sequence length of sample `i`.
    pub fn seq_len(&self, i: usize) -> usize {
        let (start, end) = self.bounds[i];
        end - start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packing_is_contiguous_and_ordered() {
        let batch = PackedBatch::from_lengths([3, 5, 2]);
        assert_eq!(batch.num_samples(), 3);
        assert_eq!(batch.total_tokens(), 10);
        assert_eq!(batch.bounds(), &[(0, 3), (3, 8), (8, 10)]);
        assert_eq!(batch.seq_len(1), 5);
    }

    #[test]
    fn empty_batch() {
        let batch = PackedBatch::from_lengths([]);
        assert_eq!(batch.num_samples(), 0);
        assert_eq!(batch.total_tokens(), 0);
    }
}
