//! K-Means clustering, including the label-constrained "fused" variant.
//!
//! Flux clusters non-tuning experts per layer before merging them (§5.2).
//! To avoid per-layer overhead it fuses all layers into a single clustering
//! problem: every centroid carries a layer label and experts may only be
//! assigned to centroids of their own layer. [`KMeans::fit_constrained`]
//! implements that scheme; [`KMeans::fit`] is the plain algorithm used for
//! comparison (and by the Fig. 16 cost benchmark).

use serde::{Deserialize, Serialize};

use crate::matrix::Matrix;
use crate::rng::SeededRng;
use crate::stats;
use crate::{Result, TensorError};

/// Distance metric used for assignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Distance {
    /// Euclidean (L2) distance.
    Euclidean,
    /// Cosine distance `1 - cos(a, b)`, the metric the paper uses for
    /// expert similarity.
    Cosine,
}

impl Distance {
    /// Evaluates the metric between two vectors.
    pub fn eval(self, a: &[f32], b: &[f32]) -> f32 {
        match self {
            Distance::Euclidean => stats::euclidean_distance(a, b),
            Distance::Cosine => stats::cosine_distance(a, b),
        }
    }
}

/// Result of a K-Means clustering run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KMeansResult {
    /// Cluster index assigned to each input point.
    pub assignments: Vec<usize>,
    /// Cluster centroids, one per row.
    pub centroids: Matrix,
    /// Total within-cluster distance at convergence.
    pub inertia: f32,
    /// Number of Lloyd iterations performed.
    pub iterations: usize,
}

impl KMeansResult {
    /// Returns the members of each cluster as index lists.
    pub fn clusters(&self) -> Vec<Vec<usize>> {
        let k = self.centroids.rows();
        let mut groups = vec![Vec::new(); k];
        for (point, &c) in self.assignments.iter().enumerate() {
            groups[c].push(point);
        }
        groups
    }
}

/// K-Means clustering configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KMeans {
    /// Number of clusters.
    pub k: usize,
    /// Maximum number of Lloyd iterations.
    pub max_iterations: usize,
    /// Convergence threshold on centroid movement.
    pub tolerance: f32,
    /// Distance metric.
    pub distance: Distance,
}

impl KMeans {
    /// Creates a configuration with `k` clusters and sensible defaults
    /// (50 iterations, 1e-4 tolerance, cosine distance).
    pub fn new(k: usize) -> Self {
        Self {
            k,
            max_iterations: 50,
            tolerance: 1e-4,
            distance: Distance::Cosine,
        }
    }

    /// Uses Euclidean distance instead of the default cosine distance.
    pub fn with_euclidean(mut self) -> Self {
        self.distance = Distance::Euclidean;
        self
    }

    /// Sets the maximum number of Lloyd iterations.
    pub fn with_max_iterations(mut self, iters: usize) -> Self {
        self.max_iterations = iters;
        self
    }

    /// Clusters `data` (points in rows) into `k` groups.
    ///
    /// Initialization uses k-means++ seeding. Empty clusters are re-seeded
    /// with the point farthest from its centroid so every cluster ends up
    /// non-empty whenever `k <= n`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] when `k == 0` or the data is
    /// empty.
    pub fn fit(&self, data: &Matrix, rng: &mut SeededRng) -> Result<KMeansResult> {
        let n = data.rows();
        if self.k == 0 {
            return Err(TensorError::InvalidArgument("k must be positive".into()));
        }
        if n == 0 {
            return Err(TensorError::InvalidArgument(
                "cannot cluster an empty data matrix".into(),
            ));
        }
        let k = self.k.min(n);
        let mut centroids = self.init_plus_plus(data, k, rng);
        let mut assignments = vec![0usize; n];
        let mut iterations = 0;

        for iter in 0..self.max_iterations {
            iterations = iter + 1;
            // Assignment step.
            for (p, a) in assignments.iter_mut().enumerate() {
                *a = self.nearest_centroid(data.row(p), &centroids, None).0;
            }
            // Update step.
            let new_centroids = self.recompute_centroids(data, &assignments, k, &centroids, None);
            let movement = centroid_movement(&centroids, &new_centroids);
            centroids = new_centroids;
            if movement < self.tolerance {
                break;
            }
        }
        for (p, a) in assignments.iter_mut().enumerate() {
            *a = self.nearest_centroid(data.row(p), &centroids, None).0;
        }
        let inertia = self.inertia(data, &assignments, &centroids);
        Ok(KMeansResult {
            assignments,
            centroids,
            inertia,
            iterations,
        })
    }

    /// Clusters points subject to a label constraint (Flux cross-layer fusion).
    ///
    /// `point_labels[i]` gives the layer of point `i`; `centroid_labels[c]`
    /// gives the layer of centroid `c`. A point may only be assigned to a
    /// centroid carrying the same label, which is exactly the paper's trick
    /// of zeroing similarities across layers while still running a single
    /// K-Means instance over all layers.
    ///
    /// The total number of clusters is `centroid_labels.len()`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] when inputs are empty, label
    /// lists are inconsistent with the data, or some point's label has no
    /// centroid at all.
    pub fn fit_constrained(
        &self,
        data: &Matrix,
        point_labels: &[usize],
        centroid_labels: &[usize],
        rng: &mut SeededRng,
    ) -> Result<KMeansResult> {
        let n = data.rows();
        if n == 0 || centroid_labels.is_empty() {
            return Err(TensorError::InvalidArgument(
                "constrained clustering needs points and centroids".into(),
            ));
        }
        if point_labels.len() != n {
            return Err(TensorError::InvalidArgument(format!(
                "{} point labels for {} points",
                point_labels.len(),
                n
            )));
        }
        for &label in point_labels {
            if !centroid_labels.contains(&label) {
                return Err(TensorError::InvalidArgument(format!(
                    "point label {label} has no centroid"
                )));
            }
        }

        let k = centroid_labels.len();
        // Initialize each centroid from a random point of the matching label.
        let mut centroids = Matrix::zeros(k, data.cols());
        for (c, &label) in centroid_labels.iter().enumerate() {
            let candidates: Vec<usize> = (0..n).filter(|&p| point_labels[p] == label).collect();
            let pick = candidates[rng.below(candidates.len())];
            centroids.row_mut(c).copy_from_slice(data.row(pick));
        }

        let mut assignments = vec![0usize; n];
        let mut iterations = 0;
        for iter in 0..self.max_iterations {
            iterations = iter + 1;
            for p in 0..n {
                assignments[p] = self
                    .nearest_centroid(
                        data.row(p),
                        &centroids,
                        Some((point_labels[p], centroid_labels)),
                    )
                    .0;
            }
            let new_centroids = self.recompute_centroids(
                data,
                &assignments,
                k,
                &centroids,
                Some((point_labels, centroid_labels)),
            );
            let movement = centroid_movement(&centroids, &new_centroids);
            centroids = new_centroids;
            if movement < self.tolerance {
                break;
            }
        }
        for p in 0..n {
            assignments[p] = self
                .nearest_centroid(
                    data.row(p),
                    &centroids,
                    Some((point_labels[p], centroid_labels)),
                )
                .0;
        }
        let inertia = self.inertia(data, &assignments, &centroids);
        Ok(KMeansResult {
            assignments,
            centroids,
            inertia,
            iterations,
        })
    }

    /// k-means++ seeding.
    fn init_plus_plus(&self, data: &Matrix, k: usize, rng: &mut SeededRng) -> Matrix {
        let n = data.rows();
        let mut centroids = Matrix::zeros(k, data.cols());
        let first = rng.below(n);
        centroids.row_mut(0).copy_from_slice(data.row(first));
        for c in 1..k {
            // Distance from each point to its nearest already-chosen centroid.
            let weights: Vec<f32> = (0..n)
                .map(|p| {
                    (0..c)
                        .map(|existing| self.distance.eval(data.row(p), centroids.row(existing)))
                        .fold(f32::INFINITY, f32::min)
                        .powi(2)
                })
                .collect();
            let pick = rng.weighted_index(&weights);
            centroids.row_mut(c).copy_from_slice(data.row(pick));
        }
        centroids
    }

    /// Finds the closest admissible centroid for a point.
    fn nearest_centroid(
        &self,
        point: &[f32],
        centroids: &Matrix,
        constraint: Option<(usize, &[usize])>,
    ) -> (usize, f32) {
        let mut best = (0usize, f32::INFINITY);
        for c in 0..centroids.rows() {
            if let Some((label, centroid_labels)) = constraint {
                if centroid_labels[c] != label {
                    continue;
                }
            }
            let d = self.distance.eval(point, centroids.row(c));
            if d < best.1 {
                best = (c, d);
            }
        }
        best
    }

    fn recompute_centroids(
        &self,
        data: &Matrix,
        assignments: &[usize],
        k: usize,
        previous: &Matrix,
        constraint: Option<(&[usize], &[usize])>,
    ) -> Matrix {
        let d = data.cols();
        let mut sums = Matrix::zeros(k, d);
        let mut counts = vec![0usize; k];
        for (p, &c) in assignments.iter().enumerate() {
            counts[c] += 1;
            for (s, &x) in sums.row_mut(c).iter_mut().zip(data.row(p)) {
                *s += x;
            }
        }
        let mut centroids = Matrix::zeros(k, d);
        for (c, &count) in counts.iter().enumerate() {
            if count == 0 {
                // Keep the previous centroid; an empty admissible set can
                // occur in the constrained variant when one layer has fewer
                // points than clusters.
                centroids.row_mut(c).copy_from_slice(previous.row(c));
                // In the unconstrained case, re-seed with the farthest point
                // to avoid permanently dead clusters.
                if constraint.is_none() {
                    if let Some((far_point, _)) = (0..data.rows())
                        .map(|p| {
                            let cur = assignments[p];
                            (p, self.distance.eval(data.row(p), previous.row(cur)))
                        })
                        .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
                    {
                        centroids.row_mut(c).copy_from_slice(data.row(far_point));
                    }
                }
                continue;
            }
            for (out, &s) in centroids.row_mut(c).iter_mut().zip(sums.row(c)) {
                *out = s / counts[c] as f32;
            }
        }
        centroids
    }

    fn inertia(&self, data: &Matrix, assignments: &[usize], centroids: &Matrix) -> f32 {
        assignments
            .iter()
            .enumerate()
            .map(|(p, &c)| self.distance.eval(data.row(p), centroids.row(c)))
            .sum()
    }
}

fn centroid_movement(old: &Matrix, new: &Matrix) -> f32 {
    old.as_slice()
        .iter()
        .zip(new.as_slice())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f32, f32::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two well-separated Gaussian blobs.
    fn blobs(rng: &mut SeededRng) -> (Matrix, Vec<usize>) {
        let mut rows = Vec::new();
        let mut truth = Vec::new();
        for i in 0..40 {
            let center = if i % 2 == 0 { 10.0 } else { -10.0 };
            truth.push(i % 2);
            rows.push(vec![
                center + rng.normal() * 0.5,
                center + rng.normal() * 0.5,
            ]);
        }
        (Matrix::from_rows(&rows), truth)
    }

    #[test]
    fn separates_two_blobs() {
        let mut rng = SeededRng::new(1);
        let (data, truth) = blobs(&mut rng);
        let result = KMeans::new(2)
            .with_euclidean()
            .fit(&data, &mut rng)
            .unwrap();
        // All points with the same true label must share a cluster.
        let cluster_of_first_even = result.assignments[0];
        let cluster_of_first_odd = result.assignments[1];
        assert_ne!(cluster_of_first_even, cluster_of_first_odd);
        for (i, &t) in truth.iter().enumerate() {
            let expected = if t == 0 {
                cluster_of_first_even
            } else {
                cluster_of_first_odd
            };
            assert_eq!(result.assignments[i], expected, "point {i}");
        }
    }

    #[test]
    fn cosine_metric_clusters_by_direction() {
        let mut rng = SeededRng::new(2);
        // Two direction families with very different magnitudes; cosine
        // clustering should group by direction, not magnitude.
        let mut rows = Vec::new();
        for i in 0..20 {
            let scale = 1.0 + (i % 5) as f32;
            if i % 2 == 0 {
                rows.push(vec![scale, 0.05 * scale]);
            } else {
                rows.push(vec![0.05 * scale, scale]);
            }
        }
        let data = Matrix::from_rows(&rows);
        let result = KMeans::new(2).fit(&data, &mut rng).unwrap();
        let c0 = result.assignments[0];
        for i in (0..20).step_by(2) {
            assert_eq!(result.assignments[i], c0);
        }
        for i in (1..20).step_by(2) {
            assert_ne!(result.assignments[i], c0);
        }
    }

    #[test]
    fn respects_k_greater_than_n() {
        let mut rng = SeededRng::new(3);
        let data = Matrix::from_rows(&[vec![0.0, 0.0], vec![1.0, 1.0]]);
        let result = KMeans::new(5)
            .with_euclidean()
            .fit(&data, &mut rng)
            .unwrap();
        assert_eq!(result.centroids.rows(), 2);
    }

    #[test]
    fn rejects_invalid_arguments() {
        let mut rng = SeededRng::new(4);
        let data = Matrix::zeros(0, 2);
        assert!(KMeans::new(2).fit(&data, &mut rng).is_err());
        let data = Matrix::zeros(3, 2);
        assert!(KMeans::new(0).fit(&data, &mut rng).is_err());
    }

    #[test]
    fn clusters_listing_covers_all_points() {
        let mut rng = SeededRng::new(5);
        let (data, _) = blobs(&mut rng);
        let result = KMeans::new(4)
            .with_euclidean()
            .fit(&data, &mut rng)
            .unwrap();
        let total: usize = result.clusters().iter().map(Vec::len).sum();
        assert_eq!(total, data.rows());
    }

    #[test]
    fn constrained_assignment_respects_labels() {
        let mut rng = SeededRng::new(6);
        // Points from two "layers"; each layer gets 2 centroids.
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..40 {
            let layer = i / 20;
            labels.push(layer);
            let center = if i % 2 == 0 { 5.0 } else { -5.0 };
            rows.push(vec![center + rng.normal() * 0.2, layer as f32 * 100.0]);
        }
        let data = Matrix::from_rows(&rows);
        let centroid_labels = vec![0, 0, 1, 1];
        let result = KMeans::new(4)
            .with_euclidean()
            .fit_constrained(&data, &labels, &centroid_labels, &mut rng)
            .unwrap();
        for (p, &c) in result.assignments.iter().enumerate() {
            assert_eq!(
                centroid_labels[c], labels[p],
                "point {p} assigned across layers"
            );
        }
    }

    #[test]
    fn constrained_errors_when_label_missing() {
        let mut rng = SeededRng::new(7);
        let data = Matrix::from_rows(&[vec![1.0], vec![2.0]]);
        let err = KMeans::new(1).fit_constrained(&data, &[0, 3], &[0], &mut rng);
        assert!(err.is_err());
    }

    #[test]
    fn constrained_errors_on_length_mismatch() {
        let mut rng = SeededRng::new(8);
        let data = Matrix::from_rows(&[vec![1.0], vec![2.0]]);
        assert!(KMeans::new(1)
            .fit_constrained(&data, &[0], &[0], &mut rng)
            .is_err());
    }

    #[test]
    fn inertia_decreases_with_more_clusters() {
        let mut rng = SeededRng::new(9);
        let data = Matrix::random_normal(60, 4, 1.0, &mut rng);
        let few = KMeans::new(2)
            .with_euclidean()
            .fit(&data, &mut rng)
            .unwrap();
        let many = KMeans::new(12)
            .with_euclidean()
            .fit(&data, &mut rng)
            .unwrap();
        assert!(many.inertia < few.inertia);
    }

    #[test]
    fn deterministic_given_same_seed() {
        let data = Matrix::random_normal(30, 3, 1.0, &mut SeededRng::new(100));
        let a = KMeans::new(3).fit(&data, &mut SeededRng::new(42)).unwrap();
        let b = KMeans::new(3).fit(&data, &mut SeededRng::new(42)).unwrap();
        assert_eq!(a.assignments, b.assignments);
    }
}
