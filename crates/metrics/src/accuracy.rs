//! Accuracy metrics and per-dataset target values.

use serde::{Deserialize, Serialize};

/// The evaluation metric a dataset uses, together with the paper's target
/// value for the time-to-accuracy measurements (§8.1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TargetMetric {
    /// ROUGE-L with the given target (Dolly uses 0.5).
    RougeL {
        /// Target score counted as "reaching accuracy".
        target: f32,
    },
    /// Exact-match accuracy with the given target (GSM8K 0.62, MMLU 0.75,
    /// PIQA 0.8).
    Accuracy {
        /// Target score counted as "reaching accuracy".
        target: f32,
    },
}

impl TargetMetric {
    /// The numeric target value.
    pub fn target(&self) -> f32 {
        match self {
            TargetMetric::RougeL { target } | TargetMetric::Accuracy { target } => *target,
        }
    }

    /// Short human-readable name ("ROUGE-L" or "Accuracy").
    pub fn name(&self) -> &'static str {
        match self {
            TargetMetric::RougeL { .. } => "ROUGE-L",
            TargetMetric::Accuracy { .. } => "Accuracy",
        }
    }
}

/// Fraction of predictions equal to their label; 0 for empty input.
pub fn exact_match_accuracy(predictions: &[usize], labels: &[usize]) -> f32 {
    assert_eq!(
        predictions.len(),
        labels.len(),
        "predictions and labels must align"
    );
    if predictions.is_empty() {
        return 0.0;
    }
    let correct = predictions
        .iter()
        .zip(labels.iter())
        .filter(|(p, l)| p == l)
        .count();
    correct as f32 / predictions.len() as f32
}

/// Relative accuracy: the obtained score divided by the dataset target,
/// clamped to `[0, 1.2]` as in the paper's convergence plots.
pub fn relative_accuracy(score: f32, metric: TargetMetric) -> f32 {
    let target = metric.target();
    if target <= 0.0 {
        return 0.0;
    }
    (score / target).clamp(0.0, 1.2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_match_basics() {
        assert_eq!(exact_match_accuracy(&[], &[]), 0.0);
        assert_eq!(exact_match_accuracy(&[1, 2, 3], &[1, 2, 3]), 1.0);
        assert_eq!(exact_match_accuracy(&[1, 0, 3], &[1, 2, 3]), 2.0 / 3.0);
    }

    #[test]
    #[should_panic(expected = "must align")]
    fn exact_match_length_mismatch_panics() {
        exact_match_accuracy(&[1], &[1, 2]);
    }

    #[test]
    fn relative_accuracy_scales_by_target() {
        let m = TargetMetric::Accuracy { target: 0.8 };
        assert!((relative_accuracy(0.4, m) - 0.5).abs() < 1e-6);
        assert!((relative_accuracy(0.8, m) - 1.0).abs() < 1e-6);
        // Clamped above 1.2.
        assert!((relative_accuracy(2.0, m) - 1.2).abs() < 1e-6);
    }

    #[test]
    fn relative_accuracy_zero_target() {
        assert_eq!(
            relative_accuracy(0.5, TargetMetric::Accuracy { target: 0.0 }),
            0.0
        );
    }

    #[test]
    fn metric_names_and_targets() {
        let r = TargetMetric::RougeL { target: 0.5 };
        assert_eq!(r.name(), "ROUGE-L");
        assert_eq!(r.target(), 0.5);
        let a = TargetMetric::Accuracy { target: 0.62 };
        assert_eq!(a.name(), "Accuracy");
        assert_eq!(a.target(), 0.62);
    }
}
