//! Baseline federated MoE fine-tuning methods (§8.1).
//!
//! The paper compares Flux against three baselines, each implemented here as
//! the participant-side logic of one federated round:
//!
//! * **FMD** — federated MoE fine-tuning with *dynamic offloading*: the full
//!   model is fine-tuned; experts that do not fit in GPU memory are swapped
//!   over PCIe every batch. Converges in the fewest rounds but pays for
//!   tuning every expert plus the offloading traffic.
//! * **FMQ** — federated MoE fine-tuning with *quantization*: all experts
//!   are quantized to INT4 so the model fits in memory, and training runs on
//!   the quantized weights. Rounds are cheap but quantization errors corrupt
//!   the updates, so convergence is unstable and plateaus below the others.
//! * **FMES** — federated MoE fine-tuning with *expert selection* (FedMoE
//!   style): the most frequently activated experts are kept and tuned, all
//!   other experts are discarded outright, which damages the forward pass.
//!
//! The shared [`local_train`] helper is also used by the Flux path in the
//! driver.

use std::collections::HashSet;

use flux_data::Sample;
use flux_fl::{CostModel, ExpertUpdate, Participant, RoundCostBreakdown};
use flux_moe::{ActivationProfile, ExpertKey, GradientSet, MoeModel};
use flux_quant::{BitWidth, QuantizedMatrix};
use flux_tensor::{stats, Matrix};

use crate::merging::CompactModelPlan;
use crate::profiling::QuantizedModelCache;

/// Result of one participant-local round, independent of the method.
#[derive(Debug, Clone)]
pub struct LocalRoundOutput {
    /// Fine-tuned expert parameters keyed by *original* (global) expert ids.
    pub expert_updates: Vec<ExpertUpdate>,
    /// Updated task head and its aggregation weight.
    pub head_update: Option<(Matrix, f32)>,
    /// Mean training loss over the local batches.
    pub train_loss: f32,
    /// Actual training tokens processed locally (wall-clock throughput
    /// accounting, as opposed to the simulated `reference_tokens`).
    pub trained_tokens: usize,
    /// Per-phase simulated cost of this participant's round.
    pub cost: RoundCostBreakdown,
}

impl LocalRoundOutput {
    /// Moves the upload payload (expert updates + task head) out of the
    /// output, leaving the reduction bookkeeping (loss, tokens, cost) in
    /// place. The pipelined driver stages the payload into the server's
    /// sharded aggregator the moment a participant finishes, while the
    /// participant-id-ordered reduction still consumes the rest.
    pub fn take_upload(&mut self) -> (Vec<ExpertUpdate>, Option<(Matrix, f32)>) {
        (
            std::mem::take(&mut self.expert_updates),
            self.head_update.take(),
        )
    }
}

/// Runs local SGD over the samples in mini-batches, restricted to the given
/// tuning experts (compact ids of `model`). Returns the per-sample mean
/// loss and the gradient set of the *last* batch (used for utility
/// computation).
///
/// The reported loss weights every batch by its sample count, so a ragged
/// final chunk (10 samples at batch size 4 → 4/4/2) contributes its 2
/// samples' worth — not a full batch's worth — to `train_loss`.
pub fn local_train(
    model: &mut MoeModel,
    samples: &[Sample],
    tuning: Option<&HashSet<ExpertKey>>,
    learning_rate: f32,
    batch_size: usize,
) -> (f32, Option<GradientSet>) {
    if samples.is_empty() {
        return (0.0, None);
    }
    let batch_size = batch_size.max(1);
    let mut total_loss = 0.0;
    let mut total_samples = 0usize;
    let mut last_grads = None;
    for chunk in samples.chunks(batch_size) {
        let mut grads = model.batch_gradients(chunk, tuning);
        let scale = 1.0 / grads.samples.max(1) as f32;
        grads.head_grad.scale_in_place(scale);
        for g in grads.expert_grads.values_mut() {
            g.scale(scale);
        }
        model.apply_gradients(&grads, learning_rate);
        total_loss += grads.loss * grads.samples as f32;
        total_samples += grads.samples;
        last_grads = Some(grads);
    }
    (total_loss / total_samples.max(1) as f32, last_grads)
}

/// Extracts expert updates (original ids) from a locally trained model with
/// an *identity* expert layout (FMD / FMQ, where the compact and original
/// ids coincide).
fn full_model_updates(model: &MoeModel, weight: f32) -> Vec<ExpertUpdate> {
    model
        .expert_keys()
        .into_iter()
        .map(|key| ExpertUpdate {
            key,
            expert: model.expert(key).clone(),
            weight,
        })
        .collect()
}

/// The head matrix a participant uploads (classification head when present,
/// generation head otherwise).
fn head_of(model: &MoeModel) -> Matrix {
    model.active_head().clone()
}

/// FMD: fine-tune the full model with expert offloading.
///
/// `reference_tokens` is the participant's per-round token count scaled up
/// to the full-scale workload the cost model prices (see
/// `RunConfig::reference_token_scale`).
pub fn fmd_local_round(
    participant: &Participant,
    global: &MoeModel,
    cost: &CostModel,
    reference_tokens: usize,
    learning_rate: f32,
    batch_size: usize,
) -> LocalRoundOutput {
    let mut model = global.clone();
    let samples = &participant.train_data.samples;
    let (loss, _) = local_train(&mut model, samples, None, learning_rate, batch_size);
    let trained_tokens: usize = samples.iter().map(|s| s.tokens.len()).sum();

    let config = &global.config;
    let total_experts = config.total_experts();
    let capacity = participant.expert_capacity(config);
    let batches = reference_tokens.div_ceil(cost.batch_tokens.max(1));
    // Every batch has to stream in the experts that do not fit on the GPU.
    let swaps = total_experts.saturating_sub(capacity) * batches;
    let breakdown = RoundCostBreakdown {
        fine_tuning_s: cost.fine_tune_time_s(
            &participant.device,
            config,
            reference_tokens,
            total_experts,
            total_experts,
        ),
        offloading_s: cost.offload_time_s(&participant.device, config, swaps),
        communication_s: cost.communication_time_s(&participant.device, config, total_experts),
        ..Default::default()
    };
    let weight = samples.len().max(1) as f32;
    LocalRoundOutput {
        expert_updates: full_model_updates(&model, weight),
        head_update: Some((head_of(&model), weight)),
        train_loss: loss,
        trained_tokens,
        cost: breakdown,
    }
}

/// FMQ: fine-tune an INT4-quantized copy of the model.
///
/// The forward/backward passes run on weights that carry INT4 round-trip
/// error, and the uploaded expert updates are re-quantized before upload, so
/// every round injects fresh quantization noise into the global model — the
/// source of FMQ's unstable convergence in the paper.
///
/// The initial INT4 copy of the downloaded model is identical for every
/// participant, so it comes from the round's shared
/// [`QuantizedModelCache`]: one quantization per round, one clone per
/// participant (each participant then trains its clone privately).
pub fn fmq_local_round(
    participant: &Participant,
    global: &MoeModel,
    cost: &CostModel,
    quant_cache: &QuantizedModelCache,
    reference_tokens: usize,
    learning_rate: f32,
    batch_size: usize,
) -> LocalRoundOutput {
    let mut model = (*quant_cache.get_or_quantize(global, BitWidth::Int4)).clone();
    let samples = &participant.train_data.samples;
    let (loss, _) = local_train(&mut model, samples, None, learning_rate, batch_size);
    let trained_tokens: usize = samples.iter().map(|s| s.tokens.len()).sum();
    // Re-quantize the fine-tuned experts before upload (INT4 both ways).
    for key in model.expert_keys() {
        let expert = model.expert_mut(key);
        expert.w1 = QuantizedMatrix::quantize(&expert.w1, BitWidth::Int4).dequantize();
        expert.w2 = QuantizedMatrix::quantize(&expert.w2, BitWidth::Int4).dequantize();
    }

    let config = &global.config;
    let total_experts = config.total_experts();
    let breakdown = RoundCostBreakdown {
        // INT4 compute is cheaper than FP16/FP32 training but still touches
        // every expert; quantizing the downloaded model is part of the round.
        fine_tuning_s: 0.6
            * cost.fine_tune_time_s(
                &participant.device,
                config,
                reference_tokens,
                total_experts,
                total_experts,
            )
            + cost.quantize_time_s(&participant.device, config, BitWidth::Int4),
        // INT4 updates are an 8th of the FP32 traffic.
        communication_s: cost.communication_time_s(&participant.device, config, total_experts)
            / 8.0,
        ..Default::default()
    };
    let weight = samples.len().max(1) as f32;
    LocalRoundOutput {
        expert_updates: full_model_updates(&model, weight),
        head_update: Some((head_of(&model), weight)),
        train_loss: loss,
        trained_tokens,
        cost: breakdown,
    }
}

/// FMES: keep and tune the most frequently activated experts, discard the
/// rest (FedMoE-style selection).
///
/// `profile` supplies the activation frequencies; the paper notes FMES-style
/// systems assume this information is simply available, so its cost is not
/// charged to the round.
pub fn fmes_local_round(
    participant: &Participant,
    global: &MoeModel,
    profile: &ActivationProfile,
    cost: &CostModel,
    reference_tokens: usize,
    learning_rate: f32,
    batch_size: usize,
) -> LocalRoundOutput {
    let config = &global.config;
    let capacity = participant.expert_capacity(config);
    let tuning_capacity = participant.tuning_capacity(config);

    // Keep the top-`capacity` experts by activation frequency, spread across
    // layers proportionally to each layer's expert count.
    let keep = top_frequency_experts(profile, capacity);
    let plan = CompactModelPlan::build_discard(global, &keep);
    let mut compact = plan.apply(global, profile);
    let key_map = plan.tuning_key_map();

    // Of the kept experts, only the `tuning_capacity` most frequent are
    // actually trained.
    let trained_originals = top_frequency_experts(profile, tuning_capacity.min(capacity));
    let tuning_compact: HashSet<ExpertKey> = trained_originals
        .iter()
        .filter_map(|k| key_map.get(k).copied())
        .collect();

    let samples = &participant.train_data.samples;
    let (loss, _) = local_train(
        &mut compact,
        samples,
        Some(&tuning_compact),
        learning_rate,
        batch_size,
    );
    let trained_tokens: usize = samples.iter().map(|s| s.tokens.len()).sum();

    // Upload only the trained experts, remapped to their original ids.
    let weight = samples.len().max(1) as f32;
    let expert_updates = trained_originals
        .iter()
        .filter_map(|original| {
            key_map.get(original).map(|compact_key| ExpertUpdate {
                key: *original,
                expert: compact.expert(*compact_key).clone(),
                weight,
            })
        })
        .collect();

    let breakdown = RoundCostBreakdown {
        fine_tuning_s: cost.fine_tune_time_s(
            &participant.device,
            config,
            reference_tokens,
            tuning_compact.len(),
            capacity,
        ),
        communication_s: cost.communication_time_s(
            &participant.device,
            config,
            tuning_compact.len(),
        ),
        ..Default::default()
    };
    LocalRoundOutput {
        expert_updates,
        head_update: Some((head_of(&compact), weight)),
        train_loss: loss,
        trained_tokens,
        cost: breakdown,
    }
}

/// The `count` experts with the highest activation frequency across the
/// whole model (global ranking, as FedMoE does).
pub fn top_frequency_experts(profile: &ActivationProfile, count: usize) -> HashSet<ExpertKey> {
    let mut all: Vec<(ExpertKey, f32)> = Vec::new();
    for layer in 0..profile.num_layers() {
        for (expert, &f) in profile.frequencies[layer].iter().enumerate() {
            all.push((ExpertKey::new(layer, expert), f));
        }
    }
    let order = stats::top_k_indices(&all.iter().map(|&(_, f)| f).collect::<Vec<_>>(), count);
    order.into_iter().map(|i| all[i].0).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use flux_data::{DatasetGenerator, DatasetKind};
    use flux_fl::build_fleet;
    use flux_moe::MoeConfig;
    use flux_tensor::SeededRng;

    fn setup() -> (MoeModel, Vec<Participant>, CostModel) {
        let mut rng = SeededRng::new(1);
        let model = MoeModel::new(MoeConfig::tiny().with_classes(4), &mut rng);
        let cfg = flux_data::DatasetConfig::for_kind(DatasetKind::Mmlu, 64)
            .with_num_samples(24)
            .with_mean_seq_len(8);
        let data = DatasetGenerator::new(cfg).generate(&mut rng);
        let fleet = build_fleet(&data, 3, 0.5, &mut rng);
        (model, fleet, CostModel::default())
    }

    #[test]
    fn fmd_updates_every_expert_and_pays_offloading() {
        let (model, fleet, cost) = setup();
        let out = fmd_local_round(&fleet[0], &model, &cost, 40_000, 0.01, 4);
        assert_eq!(out.expert_updates.len(), model.expert_keys().len());
        assert!(out.head_update.is_some());
        assert!(out.cost.fine_tuning_s > 0.0);
        assert!(out.cost.communication_s > 0.0);
        assert!(out.train_loss > 0.0);
    }

    #[test]
    fn fmq_injects_quantization_error_into_updates() {
        let (model, fleet, cost) = setup();
        let cache = QuantizedModelCache::new();
        let out = fmq_local_round(&fleet[0], &model, &cost, &cache, 40_000, 0.01, 4);
        // Updates carry INT4 round-trip error relative to the true weights.
        let key = out.expert_updates[0].key;
        let uploaded = &out.expert_updates[0].expert;
        let original = model.expert(key);
        let diff = uploaded.w1.sub(&original.w1).unwrap().frobenius_norm();
        assert!(diff > 0.0, "FMQ update should differ from the original");
        // Quantized communication is cheaper than FMD's.
        let fmd = fmd_local_round(&fleet[0], &model, &cost, 40_000, 0.01, 4);
        assert!(out.cost.communication_s < fmd.cost.communication_s);
        assert_eq!(out.cost.offloading_s, 0.0);
    }

    #[test]
    fn fmes_uploads_only_selected_experts() {
        let (model, fleet, cost) = setup();
        let profile = model.profile(&fleet[0].train_data);
        let out = fmes_local_round(&fleet[0], &model, &profile, &cost, 40_000, 0.01, 4);
        let tuning_capacity = fleet[0].tuning_capacity(&model.config);
        assert!(out.expert_updates.len() <= tuning_capacity);
        assert!(!out.expert_updates.is_empty());
        // FMES must be cheaper per round than FMD.
        let fmd = fmd_local_round(&fleet[0], &model, &cost, 40_000, 0.01, 4);
        assert!(out.cost.total_s() < fmd.cost.total_s());
    }

    #[test]
    fn fmes_selects_most_frequent_experts() {
        let (model, fleet, _) = setup();
        let profile = model.profile(&fleet[0].train_data);
        let top = top_frequency_experts(&profile, 5);
        assert_eq!(top.len(), 5);
        // Every selected expert's frequency is at least the best frequency
        // among unselected experts of the same ranking pool.
        let min_selected = top
            .iter()
            .map(|k| profile.frequency(*k))
            .fold(f32::INFINITY, f32::min);
        let max_unselected = profile
            .keys()
            .into_iter()
            .filter(|k| !top.contains(k))
            .map(|k| profile.frequency(k))
            .fold(0.0f32, f32::max);
        assert!(min_selected >= max_unselected - 1e-6);
    }

    #[test]
    fn local_train_reduces_loss_and_reports_grads() {
        let (model, fleet, _) = setup();
        let mut local = model.clone();
        let samples = &fleet[0].train_data.samples;
        let (first_loss, grads) = local_train(&mut local, samples, None, 0.05, 4);
        assert!(grads.is_some());
        let (second_loss, _) = local_train(&mut local, samples, None, 0.05, 4);
        assert!(
            second_loss <= first_loss * 1.2,
            "{first_loss} -> {second_loss}"
        );
    }

    #[test]
    fn local_train_weights_ragged_last_batch_by_sample_count() {
        // Regression: with 10 samples at batch size 4 (chunks of 4/4/2) the
        // reported loss used to be the mean of batch means, over-weighting
        // the 2-sample tail. It must be the per-sample mean: each chunk's
        // loss weighted by its sample count.
        let (model, fleet, _) = setup();
        let samples: Vec<_> = fleet
            .iter()
            .flat_map(|p| p.train_data.samples.iter().cloned())
            .take(10)
            .collect();
        assert_eq!(samples.len(), 10);
        let mut trained = model.clone();
        let (reported, _) = local_train(&mut trained, &samples, None, 0.05, 4);
        // Replay the same schedule manually to get per-chunk losses.
        let mut replay = model.clone();
        let mut expected_num = 0.0f32;
        for chunk in samples.chunks(4) {
            let mut grads = replay.batch_gradients(chunk, None);
            let scale = 1.0 / grads.samples.max(1) as f32;
            grads.head_grad.scale_in_place(scale);
            for g in grads.expert_grads.values_mut() {
                g.scale(scale);
            }
            replay.apply_gradients(&grads, 0.05);
            expected_num += grads.loss * grads.samples as f32;
        }
        let expected = expected_num / 10.0;
        assert!(
            (reported - expected).abs() < 1e-6,
            "ragged loss weighting: reported {reported}, expected {expected}"
        );
        // And it must differ from the buggy mean-of-batch-means whenever the
        // chunk losses differ (which they do here).
        let batch_means: Vec<f32> = {
            let mut replay = model.clone();
            samples
                .chunks(4)
                .map(|chunk| {
                    let mut grads = replay.batch_gradients(chunk, None);
                    let scale = 1.0 / grads.samples.max(1) as f32;
                    grads.head_grad.scale_in_place(scale);
                    for g in grads.expert_grads.values_mut() {
                        g.scale(scale);
                    }
                    replay.apply_gradients(&grads, 0.05);
                    grads.loss
                })
                .collect()
        };
        let buggy = batch_means.iter().sum::<f32>() / batch_means.len() as f32;
        assert!(
            (reported - buggy).abs() > 1e-7,
            "test vacuous: weighted and unweighted means coincide ({reported} vs {buggy})"
        );
    }

    #[test]
    fn local_train_empty_samples() {
        let (model, _, _) = setup();
        let mut local = model.clone();
        let (loss, grads) = local_train(&mut local, &[], None, 0.05, 4);
        assert_eq!(loss, 0.0);
        assert!(grads.is_none());
    }
}
