//! Offline stub of `parking_lot`.
//!
//! The build environment cannot reach a crates registry, so this crate
//! adapts `std::sync` primitives to the `parking_lot` API the workspace
//! uses: `read()`/`write()`/`lock()` return guards directly instead of
//! `Result`s. Lock poisoning is deliberately ignored (a poisoned lock's
//! inner value is still handed out), which matches `parking_lot`'s
//! no-poisoning semantics closely enough for the simulation workloads here.

use std::fmt;
use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Reader-writer lock with `parking_lot`'s panic-free guard API.
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new unlocked `RwLock`.
    pub fn new(value: T) -> Self {
        Self {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard, ignoring poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquires an exclusive write guard, ignoring poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

/// Mutual-exclusion lock with `parking_lot`'s panic-free guard API.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new unlocked `Mutex`.
    pub fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write() {
        let lock = RwLock::new(1);
        assert_eq!(*lock.read(), 1);
        *lock.write() += 41;
        assert_eq!(*lock.read(), 42);
        assert_eq!(lock.into_inner(), 42);
    }

    #[test]
    fn mutex_lock() {
        let m = Mutex::new(String::from("a"));
        m.lock().push('b');
        assert_eq!(m.into_inner(), "ab");
    }

    #[test]
    fn shared_across_threads() {
        let lock = std::sync::Arc::new(RwLock::new(0usize));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let lock = lock.clone();
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        *lock.write() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*lock.read(), 400);
    }
}
