//! Offline stub of `bytes`.
//!
//! The build environment cannot reach a crates registry, so this crate
//! provides the byte-buffer surface `flux-moe::checkpoint` uses: a
//! `Vec<u8>`-backed [`BytesMut`] writer with little-endian [`BufMut`]
//! put-methods, an immutable [`Bytes`] view produced by
//! [`BytesMut::freeze`], and a [`Buf`] reader implementation for `&[u8]`
//! that advances the slice as values are consumed. The real crate's
//! refcounted zero-copy machinery is intentionally absent — checkpoints
//! here are built once and handed to `std::fs::write`.

use std::ops::Deref;

/// Immutable contiguous byte buffer (plain `Vec<u8>` in this stub).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
}

impl Bytes {
    /// Returns the number of bytes in the buffer.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` when the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Self { data }
    }
}

/// Growable byte buffer accepting [`BufMut`] writes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty buffer with room for `capacity` bytes.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Returns the number of bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts the accumulated bytes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data }
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Read side: sequentially consume values from a buffer.
pub trait Buf {
    /// Bytes remaining to be read.
    fn remaining(&self) -> usize;

    /// Reads one byte.
    ///
    /// # Panics
    ///
    /// Panics when the buffer is exhausted (callers check [`Buf::remaining`]).
    fn get_u8(&mut self) -> u8;

    /// Reads a little-endian `u32`.
    ///
    /// # Panics
    ///
    /// Panics when fewer than four bytes remain.
    fn get_u32_le(&mut self) -> u32;

    /// Reads a little-endian `u64`.
    ///
    /// # Panics
    ///
    /// Panics when fewer than eight bytes remain.
    fn get_u64_le(&mut self) -> u64 {
        let low = self.get_u32_le() as u64;
        let high = self.get_u32_le() as u64;
        low | (high << 32)
    }

    /// Reads a little-endian `f32`.
    ///
    /// # Panics
    ///
    /// Panics when fewer than four bytes remain.
    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn get_u8(&mut self) -> u8 {
        let (head, rest) = self.split_at(1);
        *self = rest;
        head[0]
    }

    fn get_u32_le(&mut self) -> u32 {
        let (head, rest) = self.split_at(4);
        *self = rest;
        u32::from_le_bytes(head.try_into().expect("split_at(4) yields 4 bytes"))
    }
}

/// Write side: append values to a growable buffer.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a `u32` in little-endian order.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a `u64` in little-endian order.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends an `f32` in little-endian order.
    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_values() {
        let mut buf = BytesMut::new();
        buf.put_u8(7);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u64_le(0x0123_4567_89AB_CDEF);
        buf.put_f32_le(1.5);
        buf.put_slice(b"xyz");
        let frozen = buf.freeze();
        assert_eq!(frozen.len(), 1 + 4 + 8 + 4 + 3);

        let mut rd: &[u8] = &frozen;
        assert_eq!(rd.get_u8(), 7);
        assert_eq!(rd.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(rd.get_u64_le(), 0x0123_4567_89AB_CDEF);
        assert_eq!(rd.get_f32_le(), 1.5);
        assert_eq!(rd, b"xyz");
        assert_eq!(rd.remaining(), 3);
    }

    #[test]
    fn freeze_preserves_order_and_slicing() {
        let mut buf = BytesMut::with_capacity(8);
        buf.put_slice(&[1, 2, 3, 4]);
        let b = buf.freeze();
        assert_eq!(&b[..2], &[1, 2]);
        assert_eq!(b.as_ref(), &[1, 2, 3, 4]);
        assert!(!b.is_empty());
    }
}
