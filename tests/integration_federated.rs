//! Cross-crate integration tests of the full federated pipeline,
//! including straggler and mid-run dropout scenarios.

use flux_core::driver::{ExecutionMode, FederatedRun, Method, RunConfig};
use flux_data::DatasetKind;
use flux_fl::ParticipantBehavior;
use flux_moe::MoeConfig;

fn quick(dataset: DatasetKind) -> RunConfig {
    RunConfig::quick_demo(MoeConfig::tiny(), dataset)
}

#[test]
fn flux_end_to_end_produces_monotone_clock_and_scores() {
    let result = FederatedRun::new(quick(DatasetKind::Gsm8k), 101).run(Method::Flux);
    assert_eq!(result.rounds.len(), 3);
    // The simulated clock must advance strictly.
    for pair in result.rounds.windows(2) {
        assert!(pair[1].elapsed_hours > pair[0].elapsed_hours);
    }
    // Every phase total is non-negative and fine-tuning dominates.
    let (p, m, a, f) = result.phase_times.fractions();
    assert!(p >= 0.0 && m >= 0.0 && a >= 0.0);
    assert!(
        f > 0.5,
        "fine-tuning should dominate the breakdown, got {f}"
    );
}

#[test]
fn flux_round_time_beats_fmd_and_fmq() {
    let run = FederatedRun::new(quick(DatasetKind::Piqa), 102);
    let flux: f64 = run
        .run(Method::Flux)
        .rounds
        .iter()
        .map(|r| r.round_seconds)
        .sum();
    let fmd: f64 = run
        .run(Method::Fmd)
        .rounds
        .iter()
        .map(|r| r.round_seconds)
        .sum();
    let fmq: f64 = run
        .run(Method::Fmq)
        .rounds
        .iter()
        .map(|r| r.round_seconds)
        .sum();
    assert!(
        flux < fmd,
        "Flux {flux} should be faster per round than FMD {fmd}"
    );
    assert!(
        flux < fmq,
        "Flux {flux} should be faster per round than FMQ {fmq}"
    );
}

#[test]
fn generation_and_classification_datasets_both_run() {
    for dataset in [DatasetKind::Dolly, DatasetKind::Mmlu] {
        let result = FederatedRun::new(quick(dataset), 103).run(Method::Flux);
        assert_eq!(result.rounds.len(), 3);
        assert!(result.final_score >= 0.0 && result.final_score <= 1.2);
    }
}

#[test]
fn runs_are_reproducible_across_invocations() {
    let a = FederatedRun::new(quick(DatasetKind::Gsm8k), 202).run(Method::Fmes);
    let b = FederatedRun::new(quick(DatasetKind::Gsm8k), 202).run(Method::Fmes);
    assert_eq!(a.rounds.len(), b.rounds.len());
    for (x, y) in a.rounds.iter().zip(b.rounds.iter()) {
        assert_eq!(x.score, y.score);
        assert_eq!(x.round_seconds, y.round_seconds);
    }
}

#[test]
fn different_seeds_change_the_run() {
    let a = FederatedRun::new(quick(DatasetKind::Gsm8k), 1).run(Method::Flux);
    let b = FederatedRun::new(quick(DatasetKind::Gsm8k), 2).run(Method::Flux);
    let same = a
        .rounds
        .iter()
        .zip(b.rounds.iter())
        .filter(|(x, y)| x.score == y.score)
        .count();
    assert!(same < a.rounds.len(), "different seeds should diverge");
}

#[test]
fn straggler_changes_arrival_order_but_not_results() {
    // A participant that returns late (wall-clock stall before its upload)
    // lands at the back of the pipeline's arrival order. The run must
    // neither deadlock (the test completing is the proof) nor change a
    // single bit of the outcome.
    let reference = FederatedRun::new(quick(DatasetKind::Gsm8k), 77)
        .with_threads(4)
        .run(Method::Flux);
    let with_straggler = FederatedRun::new(quick(DatasetKind::Gsm8k), 77)
        .with_threads(4)
        .with_behavior(0, ParticipantBehavior::Straggler { delay_ms: 30 })
        .run(Method::Flux);
    assert_eq!(reference.rounds, with_straggler.rounds);
    assert_eq!(
        reference.final_model.lm_head,
        with_straggler.final_model.lm_head
    );
}

#[test]
fn dropout_participant_is_excluded_once_not_double_counted() {
    // Participant 2 drops out from round 1 on: the pipelined and barriered
    // schedules must agree exactly on how its absence is handled — its
    // weight leaves the aggregate (and the loss mean) in both, so neither
    // schedule can be dropping it twice or keeping a stale copy.
    let behavior = ParticipantBehavior::DropoutAt { round: 1 };
    let pipelined = FederatedRun::new(quick(DatasetKind::Gsm8k), 78)
        .with_threads(4)
        .with_behavior(2, behavior)
        .run(Method::Flux);
    let barriered = FederatedRun::new(quick(DatasetKind::Gsm8k), 78)
        .with_mode(ExecutionMode::Barriered)
        .with_threads(1)
        .with_behavior(2, behavior)
        .run(Method::Flux);
    // Schedules agree on everything but the simulated timeline (the
    // pipeline hides non-final aggregation tails).
    assert_eq!(pipelined.rounds.len(), barriered.rounds.len());
    for (p, b) in pipelined.rounds.iter().zip(barriered.rounds.iter()) {
        assert_eq!(p.score, b.score, "round {} score diverged", p.round);
        assert_eq!(
            p.train_loss, b.train_loss,
            "round {} loss diverged",
            p.round
        );
        assert_eq!(p.tokens_trained, b.tokens_trained);
        assert_eq!(p.breakdown, b.breakdown);
    }
    assert_eq!(pipelined.final_model.lm_head, barriered.final_model.lm_head);
    for key in pipelined.final_model.expert_keys() {
        assert_eq!(
            pipelined.final_model.expert(key),
            barriered.final_model.expert(key),
            "{key:?} diverged between schedules under dropout"
        );
    }

    // The dropout must actually bite: before the dropout round the run is
    // identical to a healthy one, afterwards it diverges.
    let healthy = FederatedRun::new(quick(DatasetKind::Gsm8k), 78).run(Method::Flux);
    assert_eq!(healthy.rounds[0], pipelined.rounds[0]);
    assert!(
        healthy.rounds[1..] != pipelined.rounds[1..]
            || healthy.final_model.lm_head != pipelined.final_model.lm_head,
        "dropping a participant must change the aggregate"
    );
}

#[test]
fn straggler_and_dropout_combined_complete_under_pipeline() {
    // Worst case both at once, threaded: a late participant plus a
    // mid-run dropout must still terminate (no deadlock) with a full set
    // of records, and stay deterministic across repetitions.
    let run = || {
        FederatedRun::new(quick(DatasetKind::Piqa), 79)
            .with_threads(4)
            .with_behavior(1, ParticipantBehavior::Straggler { delay_ms: 20 })
            .with_behavior(3, ParticipantBehavior::DropoutAt { round: 2 })
            .run(Method::Flux)
    };
    let a = run();
    let b = run();
    assert_eq!(a.rounds.len(), 3);
    assert_eq!(a.rounds, b.rounds);
}

#[test]
fn more_participants_do_not_slow_down_rounds() {
    // With the same total dataset, more participants means less local data
    // each, so the critical-path round time must not grow.
    let few =
        FederatedRun::new(quick(DatasetKind::Gsm8k).with_participants(2), 7).run(Method::Flux);
    let many =
        FederatedRun::new(quick(DatasetKind::Gsm8k).with_participants(8), 7).run(Method::Flux);
    let mean = |r: &flux_core::driver::RunResult| {
        r.rounds.iter().map(|x| x.round_seconds).sum::<f64>() / r.rounds.len() as f64
    };
    assert!(mean(&many) <= mean(&few) * 1.2);
}
