//! Thread-local reusable `f32` scratch buffers.
//!
//! The training hot path (matmul panel packing, gather/scatter of routed
//! token batches, SPSA perturbation directions) needs short-lived buffers of
//! a handful of recurring sizes every call. Allocating them fresh each time
//! dominated small-model profiles, so this module keeps a small per-thread
//! pool of retired buffers: steady-state training reuses the same
//! allocations round after round. Buffers are per-thread, so the pool needs
//! no locking and stays deterministic under any thread count.
//!
//! Pool lifetime tracks thread lifetime: since `vendor/threadpool` keeps
//! its workers **persistent** across fork-join regions, a worker's pool
//! stays warm from one region to the next (per-participant rounds, batched
//! expert forwards, pipelined evaluations all recycle the same
//! allocations). The [`stats`] counters exist so tests can pin that reuse
//! instead of assuming it.

use std::cell::{Cell, RefCell};

/// Upper bound on pooled buffers per thread; beyond this, retired buffers
/// are simply freed. Generous enough for the deepest forward/backward
/// nesting the models here produce.
const MAX_POOLED: usize = 64;

thread_local! {
    // Kept sorted ascending by capacity so `take` is a best-fit binary
    // search: small requests never consume large buffers, and the pool
    // stays effective when hot paths retire buffers of many sizes.
    static POOL: RefCell<Vec<Vec<f32>>> = const { RefCell::new(Vec::new()) };
    // Per-thread reuse accounting, reported via `stats`.
    static HITS: Cell<u64> = const { Cell::new(0) };
    static MISSES: Cell<u64> = const { Cell::new(0) };
}

/// Per-thread scratch-pool counters since the last [`reset_stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScratchStats {
    /// `take` calls served from a pooled buffer (no allocation).
    pub hits: u64,
    /// `take` calls that had to allocate.
    pub misses: u64,
}

/// Reads the calling thread's pool counters.
pub fn stats() -> ScratchStats {
    ScratchStats {
        hits: HITS.with(Cell::get),
        misses: MISSES.with(Cell::get),
    }
}

/// Zeroes the calling thread's pool counters (the pool itself is kept).
pub fn reset_stats() {
    HITS.with(|h| h.set(0));
    MISSES.with(|m| m.set(0));
}

/// Takes a zero-filled buffer of exactly `len` elements from the pool,
/// allocating only when no pooled buffer has enough capacity.
pub fn take(len: usize) -> Vec<f32> {
    POOL.with(|pool| {
        let mut pool = pool.borrow_mut();
        // Best fit: the smallest pooled buffer whose capacity suffices.
        let i = pool.partition_point(|b| b.capacity() < len);
        if i < pool.len() {
            HITS.with(|h| h.set(h.get() + 1));
            let mut buf = pool.remove(i);
            buf.clear();
            buf.resize(len, 0.0);
            buf
        } else {
            MISSES.with(|m| m.set(m.get() + 1));
            vec![0.0; len]
        }
    })
}

/// Returns a buffer to the pool for reuse by a later [`take`].
pub fn give(buf: Vec<f32>) {
    if buf.capacity() == 0 {
        return;
    }
    POOL.with(|pool| {
        let mut pool = pool.borrow_mut();
        if pool.len() < MAX_POOLED {
            let at = pool.partition_point(|b| b.capacity() < buf.capacity());
            pool.insert(at, buf);
        }
    });
}

/// Runs `f` with a zero-filled scratch slice of `len` elements, recycling
/// the backing buffer afterwards.
pub fn with<R>(len: usize, f: impl FnOnce(&mut [f32]) -> R) -> R {
    let mut buf = take(len);
    let result = f(&mut buf);
    give(buf);
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_returns_zeroed_buffer_of_requested_length() {
        let mut buf = take(16);
        assert_eq!(buf.len(), 16);
        assert!(buf.iter().all(|&x| x == 0.0));
        buf.iter_mut().for_each(|x| *x = 7.0);
        give(buf);
        // A recycled buffer comes back zeroed even though it was dirtied.
        let again = take(16);
        assert!(again.iter().all(|&x| x == 0.0));
        give(again);
    }

    #[test]
    fn pool_reuses_capacity() {
        let buf = take(1024);
        let ptr = buf.as_ptr();
        give(buf);
        let again = take(512);
        assert_eq!(again.as_ptr(), ptr, "smaller request reuses the buffer");
        give(again);
    }

    #[test]
    fn with_recycles_after_use() {
        let sum = with(8, |s| {
            s.iter_mut().enumerate().for_each(|(i, x)| *x = i as f32);
            s.iter().sum::<f32>()
        });
        assert_eq!(sum, 28.0);
    }

    #[test]
    fn zero_length_take_is_fine() {
        let buf = take(0);
        assert!(buf.is_empty());
        give(buf);
    }

    #[test]
    fn stats_count_hits_and_misses() {
        // Run on a dedicated thread: sibling tests share this thread's
        // pool and counters otherwise.
        std::thread::spawn(|| {
            reset_stats();
            let base = stats();
            assert_eq!(base, ScratchStats::default());
            let buf = take(64);
            give(buf);
            let buf = take(32);
            give(buf);
            let s = stats();
            assert_eq!(s.misses, 1, "first take allocates");
            assert_eq!(s.hits, 1, "second take reuses the pooled buffer");
        })
        .join()
        .unwrap();
    }
}
