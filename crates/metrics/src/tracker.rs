//! Convergence and time-to-accuracy tracking.
//!
//! Every federated run records a `(simulated time, round, score)` point per
//! round; the tracker converts those into the relative-accuracy convergence
//! curves of Fig. 10/11 and the time-to-accuracy bars of Fig. 12/13.

use serde::{Deserialize, Serialize};

use crate::accuracy::{relative_accuracy, TargetMetric};

/// One point on a convergence curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConvergencePoint {
    /// Federated round index (0-based).
    pub round: usize,
    /// Simulated elapsed time in hours since fine-tuning started.
    pub elapsed_hours: f64,
    /// Raw evaluation score (ROUGE-L or accuracy).
    pub score: f32,
    /// Score divided by the dataset target, clamped as in the paper.
    pub relative_accuracy: f32,
}

/// Records per-round scores and answers time-to-accuracy queries.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TimeToAccuracyTracker {
    metric: TargetMetric,
    points: Vec<ConvergencePoint>,
}

impl TimeToAccuracyTracker {
    /// Creates a tracker for the given dataset metric/target.
    pub fn new(metric: TargetMetric) -> Self {
        Self {
            metric,
            points: Vec::new(),
        }
    }

    /// The metric this tracker scores against.
    pub fn metric(&self) -> TargetMetric {
        self.metric
    }

    /// Records the evaluation result of one round.
    pub fn record(&mut self, round: usize, elapsed_hours: f64, score: f32) {
        let rel = relative_accuracy(score, self.metric);
        self.points.push(ConvergencePoint {
            round,
            elapsed_hours,
            score,
            relative_accuracy: rel,
        });
    }

    /// All recorded points, in insertion order.
    pub fn points(&self) -> &[ConvergencePoint] {
        &self.points
    }

    /// Simulated hours until the target was first reached, if ever.
    pub fn time_to_target_hours(&self) -> Option<f64> {
        self.points
            .iter()
            .find(|p| p.score >= self.metric.target())
            .map(|p| p.elapsed_hours)
    }

    /// Rounds until the target was first reached, if ever.
    pub fn rounds_to_target(&self) -> Option<usize> {
        self.points
            .iter()
            .find(|p| p.score >= self.metric.target())
            .map(|p| p.round)
    }

    /// Best (maximum) raw score observed so far; 0 when empty.
    pub fn best_score(&self) -> f32 {
        self.points.iter().map(|p| p.score).fold(0.0, f32::max)
    }

    /// Final (most recently recorded) score; `None` when empty.
    pub fn final_score(&self) -> Option<f32> {
        self.points.last().map(|p| p.score)
    }

    /// Total simulated duration covered by the recorded points.
    pub fn total_hours(&self) -> f64 {
        self.points.last().map(|p| p.elapsed_hours).unwrap_or(0.0)
    }

    /// Convergence curve as `(elapsed_hours, relative_accuracy)` pairs, the
    /// series plotted in Fig. 10/11.
    pub fn curve(&self) -> Vec<(f64, f32)> {
        self.points
            .iter()
            .map(|p| (p.elapsed_hours, p.relative_accuracy))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tracker_with_scores(scores: &[f32]) -> TimeToAccuracyTracker {
        let mut t = TimeToAccuracyTracker::new(TargetMetric::Accuracy { target: 0.8 });
        for (i, &s) in scores.iter().enumerate() {
            t.record(i, i as f64 * 0.5, s);
        }
        t
    }

    #[test]
    fn empty_tracker() {
        let t = TimeToAccuracyTracker::new(TargetMetric::RougeL { target: 0.5 });
        assert!(t.points().is_empty());
        assert_eq!(t.time_to_target_hours(), None);
        assert_eq!(t.rounds_to_target(), None);
        assert_eq!(t.best_score(), 0.0);
        assert_eq!(t.final_score(), None);
        assert_eq!(t.total_hours(), 0.0);
    }

    #[test]
    fn records_and_finds_target_crossing() {
        let t = tracker_with_scores(&[0.2, 0.5, 0.81, 0.85]);
        assert_eq!(t.points().len(), 4);
        assert_eq!(t.rounds_to_target(), Some(2));
        assert_eq!(t.time_to_target_hours(), Some(1.0));
    }

    #[test]
    fn target_never_reached() {
        let t = tracker_with_scores(&[0.1, 0.2, 0.3]);
        assert_eq!(t.time_to_target_hours(), None);
        assert!((t.best_score() - 0.3).abs() < 1e-6);
    }

    #[test]
    fn relative_accuracy_in_curve() {
        let t = tracker_with_scores(&[0.4]);
        let curve = t.curve();
        assert_eq!(curve.len(), 1);
        assert!((curve[0].1 - 0.5).abs() < 1e-6);
    }

    #[test]
    fn final_and_total() {
        let t = tracker_with_scores(&[0.4, 0.6]);
        assert_eq!(t.final_score(), Some(0.6));
        assert!((t.total_hours() - 0.5).abs() < 1e-9);
    }
}
