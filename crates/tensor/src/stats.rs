//! Statistics helpers used throughout the Flux experiments.
//!
//! These back the paper's measurements: per-layer activation-frequency
//! variance (Fig. 2), the CDF of activation-frequency change (Fig. 6),
//! cosine-distance output error (Fig. 8, 15, 17), and gradient-distance
//! metrics (Fig. 18).

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(values: &[f32]) -> f32 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f32>() / values.len() as f32
    }
}

/// Population variance; 0 for slices with fewer than two elements.
pub fn variance(values: &[f32]) -> f32 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    values.iter().map(|v| (v - m).powi(2)).sum::<f32>() / values.len() as f32
}

/// Population standard deviation.
pub fn std_dev(values: &[f32]) -> f32 {
    variance(values).sqrt()
}

/// L2 norm of a vector.
pub fn l2_norm(values: &[f32]) -> f32 {
    values.iter().map(|v| v * v).sum::<f32>().sqrt()
}

/// Dot product of two equally-long slices.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot product of unequal lengths");
    a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
}

/// Cosine similarity in `[-1, 1]`; 0 when either vector is all-zero.
pub fn cosine_similarity(a: &[f32], b: &[f32]) -> f32 {
    let na = l2_norm(a);
    let nb = l2_norm(b);
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    (dot(a, b) / (na * nb)).clamp(-1.0, 1.0)
}

/// Cosine distance `1 - cosine_similarity`, the paper's output-error metric.
pub fn cosine_distance(a: &[f32], b: &[f32]) -> f32 {
    1.0 - cosine_similarity(a, b)
}

/// Euclidean distance between two vectors.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn euclidean_distance(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "euclidean distance of unequal lengths");
    a.iter()
        .zip(b.iter())
        .map(|(x, y)| (x - y).powi(2))
        .sum::<f32>()
        .sqrt()
}

/// Min–max normalization to `[0, 1]`.
///
/// Constant input maps to all zeros.
pub fn min_max_normalize(values: &[f32]) -> Vec<f32> {
    if values.is_empty() {
        return Vec::new();
    }
    let min = values.iter().cloned().fold(f32::INFINITY, f32::min);
    let max = values.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    if (max - min).abs() < f32::EPSILON {
        return vec![0.0; values.len()];
    }
    values.iter().map(|v| (v - min) / (max - min)).collect()
}

/// Normalizes values to sum to 1 (a probability vector).
///
/// All-zero or empty input yields a uniform distribution.
pub fn normalize_to_distribution(values: &[f32]) -> Vec<f32> {
    if values.is_empty() {
        return Vec::new();
    }
    let sum: f32 = values.iter().map(|v| v.max(0.0)).sum();
    if sum <= 0.0 {
        return vec![1.0 / values.len() as f32; values.len()];
    }
    values.iter().map(|v| v.max(0.0) / sum).collect()
}

/// Empirical CDF evaluated at the given points.
///
/// Returns `(point, fraction_of_samples <= point)` pairs, one per entry of
/// `points`, in the order given.
pub fn empirical_cdf(samples: &[f32], points: &[f32]) -> Vec<(f32, f32)> {
    if samples.is_empty() {
        return points.iter().map(|&p| (p, 0.0)).collect();
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    points
        .iter()
        .map(|&p| {
            let count = sorted.partition_point(|&s| s <= p);
            (p, count as f32 / sorted.len() as f32)
        })
        .collect()
}

/// Percentile (0–100) of a sample using nearest-rank.
///
/// Returns 0 for empty input.
pub fn percentile(samples: &[f32], pct: f32) -> f32 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let rank = ((pct / 100.0) * (sorted.len() as f32 - 1.0)).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// Mean absolute relative error between an estimate and ground truth, in
/// percent. Entries whose ground truth is ~0 are compared absolutely.
///
/// This is the metric behind the paper's "estimation error of activation
/// frequency" (Fig. 5, Fig. 14).
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn mean_relative_error_pct(estimate: &[f32], truth: &[f32]) -> f32 {
    assert_eq!(
        estimate.len(),
        truth.len(),
        "relative error length mismatch"
    );
    if estimate.is_empty() {
        return 0.0;
    }
    let mut total = 0.0;
    for (&e, &t) in estimate.iter().zip(truth.iter()) {
        let err = if t.abs() > 1e-6 {
            ((e - t) / t).abs()
        } else {
            (e - t).abs()
        };
        total += err;
    }
    100.0 * total / estimate.len() as f32
}

/// Argmax index; `None` for an empty slice.
pub fn argmax(values: &[f32]) -> Option<usize> {
    values
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
        .map(|(i, _)| i)
}

/// Indices of the `k` largest values, in descending value order.
pub fn top_k_indices(values: &[f32], k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..values.len()).collect();
    idx.sort_by(|&a, &b| {
        values[b]
            .partial_cmp(&values[a])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    idx.truncate(k);
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance_basics() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(variance(&[5.0]), 0.0);
        assert!((variance(&[1.0, 3.0]) - 1.0).abs() < 1e-6);
        assert!((std_dev(&[1.0, 3.0]) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn cosine_identity_and_orthogonal() {
        assert!((cosine_similarity(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-6);
        assert!(cosine_similarity(&[1.0, 0.0], &[0.0, 1.0]).abs() < 1e-6);
        assert!((cosine_similarity(&[1.0, 0.0], &[-1.0, 0.0]) + 1.0).abs() < 1e-6);
        assert_eq!(cosine_similarity(&[0.0, 0.0], &[1.0, 2.0]), 0.0);
    }

    #[test]
    fn cosine_distance_is_one_minus_similarity() {
        let a = [0.3, 0.9, -0.2];
        let b = [1.0, -0.5, 0.4];
        assert!((cosine_distance(&a, &b) - (1.0 - cosine_similarity(&a, &b))).abs() < 1e-6);
    }

    #[test]
    fn euclidean_known_value() {
        assert!((euclidean_distance(&[0.0, 0.0], &[3.0, 4.0]) - 5.0).abs() < 1e-6);
    }

    #[test]
    fn min_max_normalize_range() {
        let out = min_max_normalize(&[2.0, 4.0, 6.0]);
        assert_eq!(out, vec![0.0, 0.5, 1.0]);
        assert_eq!(min_max_normalize(&[3.0, 3.0]), vec![0.0, 0.0]);
        assert!(min_max_normalize(&[]).is_empty());
    }

    #[test]
    fn normalize_to_distribution_sums_to_one() {
        let d = normalize_to_distribution(&[1.0, 3.0]);
        assert!((d.iter().sum::<f32>() - 1.0).abs() < 1e-6);
        assert_eq!(d, vec![0.25, 0.75]);
        let u = normalize_to_distribution(&[0.0, 0.0, 0.0]);
        assert_eq!(u, vec![1.0 / 3.0; 3]);
    }

    #[test]
    fn empirical_cdf_monotone() {
        let samples = [1.0, 2.0, 3.0, 4.0];
        let cdf = empirical_cdf(&samples, &[0.5, 2.0, 3.5, 10.0]);
        assert_eq!(cdf[0].1, 0.0);
        assert_eq!(cdf[1].1, 0.5);
        assert_eq!(cdf[2].1, 0.75);
        assert_eq!(cdf[3].1, 1.0);
    }

    #[test]
    fn empirical_cdf_empty_samples() {
        let cdf = empirical_cdf(&[], &[1.0]);
        assert_eq!(cdf, vec![(1.0, 0.0)]);
    }

    #[test]
    fn percentile_nearest_rank() {
        let s = [10.0, 20.0, 30.0, 40.0, 50.0];
        assert_eq!(percentile(&s, 0.0), 10.0);
        assert_eq!(percentile(&s, 50.0), 30.0);
        assert_eq!(percentile(&s, 100.0), 50.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    #[test]
    fn relative_error_pct() {
        let est = [1.1, 0.9];
        let truth = [1.0, 1.0];
        let err = mean_relative_error_pct(&est, &truth);
        assert!((err - 10.0).abs() < 1e-3);
        // Zero truth entries fall back to absolute error.
        assert!((mean_relative_error_pct(&[0.2], &[0.0]) - 20.0).abs() < 1e-3);
    }

    #[test]
    fn argmax_and_top_k() {
        assert_eq!(argmax(&[]), None);
        assert_eq!(argmax(&[1.0, 5.0, 3.0]), Some(1));
        assert_eq!(top_k_indices(&[0.1, 0.9, 0.5, 0.7], 2), vec![1, 3]);
        assert_eq!(top_k_indices(&[0.1], 5), vec![0]);
    }
}
