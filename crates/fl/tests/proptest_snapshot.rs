//! Property tests for the durable per-shard snapshot format: arbitrary
//! store states round-trip bit-identically through checkpoint + load, and
//! damaging any byte of any file is detected and attributed to the file
//! that failed its checksum.

use std::path::PathBuf;

use proptest::prelude::*;

use flux_fl::snapshot::{corrupt_file_byte, shard_file, MANIFEST_FILE};
use flux_fl::{load_store, ExpertUpdate, ShardedStore, SnapshotError};
use flux_moe::{Expert, ExpertKey, MoeConfig, MoeModel};
use flux_tensor::{Matrix, SeededRng};

fn tiny_model(seed: u64) -> MoeModel {
    MoeModel::new(MoeConfig::tiny(), &mut SeededRng::new(seed))
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("flux_prop_snapshot_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Applies `rounds` seeded aggregate rounds (a few in-range expert updates
/// plus a head each) so the store wanders away from its initial state.
fn mutate_store(store: &ShardedStore, seed: u64, rounds: usize) {
    let mut rng = SeededRng::new(seed);
    let head_shape = store.global_model().lm_head.shape();
    for _ in 0..rounds {
        let updates: Vec<ExpertUpdate> = (0..1 + rng.below(3))
            .map(|_| ExpertUpdate {
                key: ExpertKey::new(rng.below(4), rng.below(8)),
                expert: Expert::new(16, 32, &mut rng),
                weight: rng.uniform_range(0.5, 3.0),
            })
            .collect();
        let heads = vec![(
            Matrix::random_normal(head_shape.0, head_shape.1, 1.0, &mut rng),
            rng.uniform_range(0.5, 2.0),
        )];
        store.aggregate(&updates, &heads);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn snapshot_round_trips_arbitrary_store_states(
        seed in 0u64..1_000,
        rounds in 0usize..4,
        num_shards in 1usize..9,
    ) {
        let store = ShardedStore::new(tiny_model(seed), num_shards);
        mutate_store(&store, seed ^ 0xABCD, rounds);
        let expected = store.global_model().param_checksum();
        let dir = temp_dir(&format!("rt_{seed}_{rounds}_{num_shards}"));
        let meta = seed.to_le_bytes().to_vec();
        let stats = store.checkpoint(&dir, &meta).expect("checkpoint succeeds");
        prop_assert_eq!(stats.shards_written + stats.shards_skipped, num_shards);
        let loaded = load_store(&dir).expect("clean snapshot loads");
        prop_assert_eq!(loaded.store.global_model().param_checksum(), expected);
        prop_assert_eq!(loaded.epoch as usize, store.rounds_completed());
        prop_assert_eq!(loaded.meta, meta);
        // A restored store checkpoints back to a loadable snapshot with
        // the same content.
        let dir2 = temp_dir(&format!("rt2_{seed}_{rounds}_{num_shards}"));
        loaded.store.checkpoint(&dir2, b"again").expect("re-checkpoint");
        let reloaded = load_store(&dir2).expect("second generation loads");
        prop_assert_eq!(reloaded.store.global_model().param_checksum(), expected);
        std::fs::remove_dir_all(&dir).ok();
        std::fs::remove_dir_all(&dir2).ok();
    }

    #[test]
    fn corrupting_any_shard_is_detected_and_attributed(
        seed in 0u64..500,
        shard in 0usize..4,
        offset in 0u64..10_000,
    ) {
        let store = ShardedStore::new(tiny_model(seed), 4);
        mutate_store(&store, seed ^ 0x5EED, 1);
        let dir = temp_dir(&format!("corrupt_{seed}_{shard}_{offset}"));
        store.checkpoint(&dir, b"").expect("checkpoint succeeds");
        corrupt_file_byte(dir.join(shard_file(shard)), offset).expect("damage one byte");
        match load_store(&dir) {
            Err(SnapshotError::ChecksumMismatch { file }) => {
                prop_assert_eq!(file, shard_file(shard));
            }
            Err(other) => prop_assert!(false, "wrong error kind: {other}"),
            Ok(_) => prop_assert!(false, "a damaged shard must not load"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupting_the_manifest_never_loads(
        seed in 0u64..500,
        offset in 0u64..10_000,
    ) {
        let store = ShardedStore::new(tiny_model(seed), 3);
        let dir = temp_dir(&format!("manifest_{seed}_{offset}"));
        store.checkpoint(&dir, b"meta").expect("checkpoint succeeds");
        corrupt_file_byte(dir.join(MANIFEST_FILE), offset).expect("damage one byte");
        prop_assert!(load_store(&dir).is_err(), "a damaged manifest must not load");
        std::fs::remove_dir_all(&dir).ok();
    }
}
