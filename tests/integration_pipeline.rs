//! Golden-trace determinism suite for the async round pipeline.
//!
//! The barriered fork-join schedule is the reference semantics; the
//! pipelined schedule (incremental sharded aggregation, overlapped server
//! tail) must reproduce its per-round losses, per-round scores, and final
//! global weights **bit-identically** for every thread count and every
//! update-arrival order. The trace is recorded fresh from the barriered
//! path at `FLUX_THREADS=1`-equivalent settings, so this suite needs no
//! checked-in fixture and survives intentional model changes — it only
//! pins that the two schedules and all interleavings agree with each
//! other.

use flux_core::driver::{ExecutionMode, FederatedRun, Method, RunConfig, RunResult};
use flux_data::DatasetKind;
use flux_moe::MoeConfig;

fn quick() -> RunConfig {
    RunConfig::quick_demo(MoeConfig::tiny(), DatasetKind::Gsm8k)
}

/// The golden trace of one run: (train_loss, score) per round plus the
/// final weight checksum.
#[derive(Debug, Clone, PartialEq)]
struct Trace {
    rounds: Vec<(f32, f32)>,
    checksum: u64,
}

fn trace_of(result: &RunResult) -> Trace {
    Trace {
        rounds: result
            .rounds
            .iter()
            .map(|r| (r.train_loss, r.score))
            .collect(),
        checksum: result.final_model.param_checksum(),
    }
}

#[test]
fn golden_trace_pipeline_is_bit_identical_across_threads() {
    // Record the golden trace with the barriered reference schedule, fully
    // sequential.
    let golden = trace_of(
        &FederatedRun::new(quick(), 404)
            .with_mode(ExecutionMode::Barriered)
            .with_threads(1)
            .run(Method::Flux),
    );
    assert_eq!(golden.rounds.len(), 3);

    // The async pipeline must reproduce it at every thread count.
    for threads in [1usize, 2, 4] {
        let pipelined = trace_of(
            &FederatedRun::new(quick(), 404)
                .with_threads(threads)
                .run(Method::Flux),
        );
        assert_eq!(
            golden, pipelined,
            "pipelined FLUX_THREADS={threads} diverged from the barriered golden trace"
        );
    }
}

#[test]
fn golden_trace_survives_shuffled_update_arrival_orders() {
    let golden = trace_of(
        &FederatedRun::new(quick(), 404)
            .with_mode(ExecutionMode::Barriered)
            .with_threads(1)
            .run(Method::Flux),
    );
    // Deterministically replayed shuffled arrival orders, sequential and
    // threaded: the sharded aggregator's participant-id-ordered reduction
    // must make arrival order unobservable.
    for arrival_seed in [1u64, 2, 3] {
        for threads in [1usize, 4] {
            let shuffled = trace_of(
                &FederatedRun::new(quick(), 404)
                    .with_threads(threads)
                    .with_shuffled_arrivals(arrival_seed)
                    .run(Method::Flux),
            );
            assert_eq!(
                golden, shuffled,
                "arrival seed {arrival_seed} (threads {threads}) changed the trace"
            );
        }
    }
}

#[test]
fn golden_trace_holds_for_the_baseline_methods_too() {
    // The pipeline is method-agnostic: pin one cheap baseline as well so a
    // regression in the shared round plumbing (rather than the Flux local
    // round) cannot hide.
    for method in [Method::Fmd, Method::Fmes] {
        let golden = trace_of(
            &FederatedRun::new(quick(), 405)
                .with_mode(ExecutionMode::Barriered)
                .with_threads(1)
                .run(method),
        );
        let pipelined = trace_of(&FederatedRun::new(quick(), 405).with_threads(2).run(method));
        assert_eq!(
            golden,
            pipelined,
            "{} pipelined trace diverged from barriered",
            method.label()
        );
    }
}

#[test]
fn pipeline_hides_non_final_aggregation_latency_in_simulated_time() {
    // The schedules agree on losses/scores/weights but not on the
    // timeline: the pipeline's simulated clock hides the server tail of
    // every round but the last behind the next dispatch.
    let barriered = FederatedRun::new(quick(), 404)
        .with_mode(ExecutionMode::Barriered)
        .run(Method::Flux);
    let pipelined = FederatedRun::new(quick(), 404).run(Method::Flux);
    let b_end = barriered.rounds.last().unwrap().elapsed_hours;
    let p_end = pipelined.rounds.last().unwrap().elapsed_hours;
    assert!(
        p_end < b_end,
        "pipelined timeline {p_end} h must undercut barriered {b_end} h"
    );
}
