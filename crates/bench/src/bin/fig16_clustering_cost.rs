//! Figure 16: cost of clustering non-tuning experts — per-layer independent
//! K-Means versus the cross-layer fused clustering, plus a cluster-quality
//! summary standing in for the paper's scatter visualization.
//!
//! The paper reports ~323 ms for layer-wise clustering of 128 non-tuning
//! experts versus ~8 ms fused (a ~40× speedup).

use std::time::Instant;

use flux_bench::{fmt, print_header, Scale, EXPERIMENT_SEED};
use flux_core::merging::{cluster_non_tuning_experts, ClusteringMode};
use flux_moe::{MoeConfig, MoeModel};
use flux_tensor::SeededRng;

fn main() {
    let scale = Scale::from_env();
    // A model with 128 non-tuning experts to cluster, matching the paper's
    // setup: 8 layers x 16 experts.
    let config = MoeConfig::small();
    let mut rng = SeededRng::new(EXPERIMENT_SEED);
    let model = MoeModel::new(config.clone(), &mut rng);
    let non_tuning: Vec<Vec<usize>> = (0..config.num_layers)
        .map(|l| (0..config.experts_in_layer(l)).collect())
        .collect();

    print_header(
        &format!(
            "Figure 16: clustering cost for 128 non-tuning experts ({})",
            scale.label()
        ),
        &["Total budget", "per-layer (ms)", "fused (ms)", "speedup"],
    );
    for &total_budget in &[32usize, 48, 64, 96] {
        let per_layer_budget = (total_budget / config.num_layers).max(1);
        let budgets = vec![per_layer_budget; config.num_layers];

        let start = Instant::now();
        let layered = cluster_non_tuning_experts(
            &model,
            &non_tuning,
            &budgets,
            ClusteringMode::PerLayer,
            8,
            &mut rng.derive(total_budget as u64),
        );
        let layered_ms = start.elapsed().as_secs_f64() * 1e3;

        let start = Instant::now();
        let fused = cluster_non_tuning_experts(
            &model,
            &non_tuning,
            &budgets,
            ClusteringMode::Fused,
            8,
            &mut rng.derive(total_budget as u64 + 100),
        );
        let fused_ms = start.elapsed().as_secs_f64() * 1e3;

        assert_eq!(
            layered.covered_experts().len(),
            fused.covered_experts().len()
        );
        println!(
            "{total_budget}\t{}\t{}\t{:.1}x",
            fmt(layered_ms),
            fmt(fused_ms),
            layered_ms / fused_ms.max(1e-9)
        );
    }
    println!("\npaper: 307-348 ms layer-wise vs 5.5-11.7 ms fused (~40x speedup).");
}
