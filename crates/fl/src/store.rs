//! Per-shard locked storage for one tenant's global model.
//!
//! The parameter server used to keep the whole global model behind a single
//! `RwLock<MoeModel>`: every `apply_round` took the model-wide write lock,
//! so aggregation of *concurrent* federated runs — and even the per-shard
//! reductions of a single round — serialized on one lock. [`ShardedStore`]
//! splits the mutable state the way federated fine-tuning actually mutates
//! it:
//!
//! * **Expert parameters** are partitioned into [`ShardedStore::num_shards`]
//!   independently-locked shards, keyed by [`shard_of_key`] — the *same*
//!   function [`crate::aggregate::ShardedAggregator`] routes uploads with,
//!   so shard *i* of a round's aggregation installs into shard *i* of the
//!   store while shard *j* installs concurrently under its own lock.
//! * **The task heads** (generation + optional classification head) live
//!   behind their own lock — one more "shard" in effect.
//! * **Frozen parameters** (embedding, attention, gating) are never written
//!   by aggregation; they live only in the materialized snapshot and need
//!   no lock at all.
//!
//! Reads go through [`ShardedStore::snapshot`]: a cached, fully
//! materialized [`MoeModel`] refreshed per shard — only shards written
//! since the last snapshot are visited (briefly, under their own locks),
//! and the result is handed out as an [`Arc`] so round fan-outs hold no
//! store lock at all while they train against it.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use flux_moe::{Expert, ExpertKey, MoeModel};
use flux_tensor::Matrix;
use threadpool::ThreadPool;

use crate::aggregate::ShardedAggregator;
use crate::snapshot::PersistState;

/// Which shard owns `key`, for a store or aggregator of `num_shards`
/// shards. Deterministic, so every arrival order stages identical shard
/// contents and the aggregator's shard *i* always reduces exactly the keys
/// the store's shard *i* owns. Layers hold tens of experts; spreading
/// consecutive expert ids round-robin keeps shards balanced without a
/// hasher dependency.
pub fn shard_of_key(key: ExpertKey, num_shards: usize) -> usize {
    (key.layer.wrapping_mul(31).wrapping_add(key.expert)) % num_shards.max(1)
}

/// One expert shard: the authoritative parameters of every expert the shard
/// owns, plus the change log the snapshot refresh consumes.
#[derive(Debug)]
pub(crate) struct ExpertShard {
    pub(crate) experts: HashMap<ExpertKey, Expert>,
    /// Keys written since the last snapshot refresh (may repeat).
    pub(crate) dirty: Vec<ExpertKey>,
    /// Bumped on every install; lets the refresh skip clean shards with a
    /// read lock only. The durable checkpoint uses the same counter to
    /// skip rewriting clean shard files.
    pub(crate) version: u64,
}

/// The head shard: both task heads plus the refresh version.
#[derive(Debug)]
pub(crate) struct HeadShard {
    pub(crate) lm_head: Matrix,
    pub(crate) cls_head: Option<Matrix>,
    pub(crate) version: u64,
}

/// The cached materialized view of the whole model.
#[derive(Debug)]
struct SnapshotCache {
    model: Arc<MoeModel>,
    shard_versions: Vec<u64>,
    head_version: u64,
}

/// Per-shard locked storage of one global model (one tenant of the
/// multi-tenant [`crate::ParameterServer`]).
#[derive(Debug)]
pub struct ShardedStore {
    pub(crate) num_shards: usize,
    /// Compact expert counts per layer, for rejecting out-of-range keys
    /// without taking any lock.
    experts_per_layer: Vec<usize>,
    pub(crate) shards: Vec<RwLock<ExpertShard>>,
    pub(crate) head: RwLock<HeadShard>,
    snapshot: Mutex<SnapshotCache>,
    rounds_completed: AtomicUsize,
    /// What the on-disk checkpoint of this store currently holds (per-file
    /// versions, checksums, sizes). Guides dirty-shard-only flushes; see
    /// [`crate::snapshot`].
    pub(crate) persist: Mutex<PersistState>,
}

impl ShardedStore {
    /// Builds a store around an initial global model, partitioned into
    /// `num_shards` expert shards (minimum 1).
    pub fn new(model: MoeModel, num_shards: usize) -> Self {
        Self::with_state(model, num_shards, 0, None)
    }

    /// Builds a store restored from a durable checkpoint: `model` already
    /// carries the checkpointed expert/head parameters, `rounds_completed`
    /// is the checkpoint epoch, and `persist` records the on-disk files so
    /// the next checkpoint rewrites only shards dirtied after the restore.
    pub(crate) fn from_persisted(
        model: MoeModel,
        num_shards: usize,
        rounds_completed: usize,
        persist: PersistState,
    ) -> Self {
        Self::with_state(model, num_shards, rounds_completed, Some(persist))
    }

    fn with_state(
        model: MoeModel,
        num_shards: usize,
        rounds_completed: usize,
        persist: Option<PersistState>,
    ) -> Self {
        let num_shards = num_shards.max(1);
        let experts_per_layer = model.experts_per_layer();
        let mut shards: Vec<ExpertShard> = (0..num_shards)
            .map(|_| ExpertShard {
                experts: HashMap::new(),
                dirty: Vec::new(),
                version: 0,
            })
            .collect();
        for key in model.expert_keys() {
            shards[shard_of_key(key, num_shards)]
                .experts
                .insert(key, model.expert(key).clone());
        }
        let head = HeadShard {
            lm_head: model.lm_head.clone(),
            cls_head: model.cls_head.clone(),
            version: 0,
        };
        let persist = persist.unwrap_or_else(|| PersistState::empty(num_shards));
        Self {
            num_shards,
            experts_per_layer,
            shards: shards.into_iter().map(RwLock::new).collect(),
            head: RwLock::new(head),
            snapshot: Mutex::new(SnapshotCache {
                model: Arc::new(model),
                shard_versions: vec![0; num_shards],
                head_version: 0,
            }),
            rounds_completed: AtomicUsize::new(rounds_completed),
            persist: Mutex::new(persist),
        }
    }

    /// Number of expert shards.
    pub fn num_shards(&self) -> usize {
        self.num_shards
    }

    /// Number of aggregation rounds applied so far.
    pub fn rounds_completed(&self) -> usize {
        self.rounds_completed.load(Ordering::Acquire)
    }

    /// Whether `key` addresses an expert this store materializes.
    fn key_in_range(&self, key: ExpertKey) -> bool {
        self.experts_per_layer
            .get(key.layer)
            .is_some_and(|&n| key.expert < n)
    }

    /// Installs aggregated experts into one shard, taking only that shard's
    /// write lock. Keys that are out of range or belong to a different
    /// shard are ignored (a rogue participant cannot corrupt the model or
    /// sneak past the lock discipline).
    pub fn install_shard(&self, shard: usize, experts: HashMap<ExpertKey, Expert>) {
        if experts.is_empty() {
            return;
        }
        let mut guard = self.shards[shard].write();
        let mut installed = false;
        for (key, expert) in experts {
            if !self.key_in_range(key) || shard_of_key(key, self.num_shards) != shard {
                continue;
            }
            guard.experts.insert(key, expert);
            guard.dirty.push(key);
            installed = true;
        }
        if installed {
            guard.version += 1;
        }
    }

    /// Installs an aggregated task head (classification head when the model
    /// has one, generation head otherwise), taking only the head lock.
    /// Shape-mismatched heads are ignored.
    pub fn install_head(&self, head: Matrix) {
        let mut guard = self.head.write();
        let target = match &mut guard.cls_head {
            Some(h) => h,
            None => &mut guard.lm_head,
        };
        if target.shape() == head.shape() {
            *target = head;
            guard.version += 1;
        }
    }

    /// Counts one completed aggregation round.
    pub fn complete_round(&self) {
        self.rounds_completed.fetch_add(1, Ordering::AcqRel);
    }

    /// Opens the incremental aggregator for one round, shard-aligned with
    /// this store.
    pub fn begin_round(&self) -> ShardedAggregator {
        ShardedAggregator::new(self.num_shards)
    }

    /// Closes a round: reduces the staged shards and installs each shard's
    /// result under that shard's lock alone, fanning the per-shard
    /// reduce-and-install tasks out to `pool`. The head reduces alongside.
    /// Shards partition the key space and each reduces in participant-id
    /// order, so the result is bit-identical for every thread count and
    /// every arrival order.
    ///
    /// # Panics
    ///
    /// Panics when the aggregator's shard count differs from the store's.
    /// Aggregators from [`ShardedStore::begin_round`] always match, so
    /// they never trip this.
    pub fn apply_round(&self, aggregator: &ShardedAggregator, pool: &ThreadPool) {
        assert_eq!(
            aggregator.num_shards(),
            self.num_shards,
            "aggregator must be shard-aligned with the store"
        );
        let mut tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (0..self.num_shards)
            .map(|shard| {
                let task: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                    self.install_shard(shard, aggregator.finalize_shard(shard));
                });
                task
            })
            .collect();
        tasks.push(Box::new(|| {
            if let Some(head) = aggregator.finalize_head() {
                self.install_head(head);
            }
        }));
        let _: Vec<()> = pool.run(tasks);
        aggregator.reset_round();
        self.complete_round();
    }

    /// One-shot FedAvg application (the barriered path): the borrowed
    /// updates go through the one-shot kernels, then install per shard.
    pub fn aggregate(
        &self,
        expert_updates: &[crate::aggregate::ExpertUpdate],
        head_updates: &[(Matrix, f32)],
    ) {
        let experts = crate::aggregate::fedavg_experts(expert_updates);
        let mut by_shard: Vec<HashMap<ExpertKey, Expert>> =
            (0..self.num_shards).map(|_| HashMap::new()).collect();
        for (key, expert) in experts {
            by_shard[shard_of_key(key, self.num_shards)].insert(key, expert);
        }
        for (shard, experts) in by_shard.into_iter().enumerate() {
            self.install_shard(shard, experts);
        }
        if let Some(head) = crate::aggregate::fedavg_matrices(head_updates) {
            self.install_head(head);
        }
        self.complete_round();
    }

    /// The materialized current model, shared without any store lock.
    ///
    /// Only shards written since the previous snapshot are visited: clean
    /// shards cost one read lock to compare versions; dirty shards are
    /// drained under their write lock (briefly — just the changed experts
    /// are copied into the cached model). Long-lived readers keep their
    /// `Arc` while later rounds install; the next refresh then copies the
    /// cached model once instead of mutating it under the reader.
    pub fn snapshot(&self) -> Arc<MoeModel> {
        let mut cache = self.snapshot.lock();
        for (s, shard_lock) in self.shards.iter().enumerate() {
            if shard_lock.read().version == cache.shard_versions[s] {
                continue;
            }
            let mut shard = shard_lock.write();
            let model = Arc::make_mut(&mut cache.model);
            let mut keys = std::mem::take(&mut shard.dirty);
            keys.sort_unstable();
            keys.dedup();
            for key in keys {
                model.set_expert(key, shard.experts[&key].clone());
            }
            cache.shard_versions[s] = shard.version;
        }
        {
            let head = self.head.read();
            if head.version != cache.head_version {
                let model = Arc::make_mut(&mut cache.model);
                model.lm_head = head.lm_head.clone();
                model.cls_head = head.cls_head.clone();
                cache.head_version = head.version;
            }
        }
        Arc::clone(&cache.model)
    }

    /// Runs `f` against the current global model. No store lock is held
    /// while `f` runs — it borrows the snapshot `Arc`.
    pub fn with_global<R>(&self, f: impl FnOnce(&MoeModel) -> R) -> R {
        f(&self.snapshot())
    }

    /// A full copy of the current global model (what a participant
    /// downloads at the start of a round).
    pub fn global_model(&self) -> MoeModel {
        (*self.snapshot()).clone()
    }

    /// Reads one expert's current parameters straight from its shard —
    /// a single per-shard read lock, no snapshot materialization.
    ///
    /// # Panics
    ///
    /// Panics when `key` is out of range for this store's model.
    pub fn expert(&self, key: ExpertKey) -> Expert {
        self.shards[shard_of_key(key, self.num_shards)]
            .read()
            .experts[&key]
            .clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::ExpertUpdate;
    use flux_moe::MoeConfig;
    use flux_tensor::SeededRng;

    fn model() -> MoeModel {
        let mut rng = SeededRng::new(1);
        MoeModel::new(MoeConfig::tiny(), &mut rng)
    }

    fn store() -> ShardedStore {
        ShardedStore::new(model(), 4)
    }

    #[test]
    fn shard_of_key_is_stable_and_in_range() {
        for layer in 0..7 {
            for e in 0..13 {
                let key = ExpertKey::new(layer, e);
                for shards in [1usize, 4, 9] {
                    let s = shard_of_key(key, shards);
                    assert!(s < shards);
                    assert_eq!(s, shard_of_key(key, shards));
                }
            }
        }
    }

    #[test]
    fn snapshot_reflects_shard_installs() {
        let store = store();
        let before = store.snapshot();
        let key = ExpertKey::new(0, 1);
        let shard = shard_of_key(key, store.num_shards());
        let mut rng = SeededRng::new(2);
        let new_expert = Expert::new(16, 32, &mut rng);
        store.install_shard(shard, HashMap::from([(key, new_expert.clone())]));
        let after = store.snapshot();
        assert_eq!(after.expert(key), &new_expert);
        // Untouched experts keep their previous parameters, and the
        // earlier snapshot is unaffected (copy-on-write).
        let untouched = ExpertKey::new(3, 7);
        assert_eq!(after.expert(untouched), before.expert(untouched));
        assert_ne!(before.expert(key), &new_expert);
    }

    #[test]
    fn install_rejects_out_of_range_and_misrouted_keys() {
        let store = store();
        let checksum = store.snapshot().param_checksum();
        let mut rng = SeededRng::new(3);
        let rogue = Expert::new(16, 32, &mut rng);
        // Out of range: ignored.
        store.install_shard(0, HashMap::from([(ExpertKey::new(99, 99), rogue.clone())]));
        // In range but addressed to the wrong shard: ignored.
        let key = ExpertKey::new(0, 0);
        let wrong = (shard_of_key(key, store.num_shards()) + 1) % store.num_shards();
        store.install_shard(wrong, HashMap::from([(key, rogue)]));
        assert_eq!(store.snapshot().param_checksum(), checksum);
    }

    #[test]
    fn head_install_respects_shape() {
        let store = store();
        let shape = store.snapshot().lm_head.shape();
        store.install_head(Matrix::filled(2, 2, 9.0));
        assert_ne!(store.snapshot().lm_head, Matrix::filled(2, 2, 9.0));
        let head = Matrix::filled(shape.0, shape.1, 0.25);
        store.install_head(head.clone());
        assert_eq!(store.snapshot().lm_head, head);
    }

    #[test]
    fn expert_reads_from_shard_without_snapshot() {
        let store = store();
        let key = ExpertKey::new(1, 2);
        assert_eq!(&store.expert(key), store.snapshot().expert(key));
        let shard = shard_of_key(key, store.num_shards());
        let mut rng = SeededRng::new(4);
        let e = Expert::new(16, 32, &mut rng);
        store.install_shard(shard, HashMap::from([(key, e.clone())]));
        // Visible through the per-shard read before any snapshot refresh.
        assert_eq!(store.expert(key), e);
    }

    #[test]
    fn one_shot_aggregate_matches_legacy_semantics() {
        let store = store();
        let mut rng = SeededRng::new(5);
        let e = Expert::new(16, 32, &mut rng);
        let key = ExpertKey::new(0, 0);
        store.aggregate(
            &[ExpertUpdate {
                key,
                expert: e.clone(),
                weight: 1.0,
            }],
            &[],
        );
        assert_eq!(store.snapshot().expert(key), &e);
        assert_eq!(store.rounds_completed(), 1);
    }

    #[test]
    fn apply_round_installs_per_shard() {
        let reference = store();
        let sharded = store();
        let mut rng = SeededRng::new(6);
        let uploads: Vec<ExpertUpdate> = (0..6)
            .map(|i| ExpertUpdate {
                key: ExpertKey::new(i % 4, i),
                expert: Expert::new(16, 32, &mut rng),
                weight: i as f32 + 1.0,
            })
            .collect();
        reference.aggregate(&uploads, &[]);

        let aggregator = sharded.begin_round();
        // Two participants split the uploads; arrival order reversed.
        aggregator.submit(1, uploads[3..].to_vec(), None);
        aggregator.submit(0, uploads[..3].to_vec(), None);
        sharded.apply_round(&aggregator, &ThreadPool::new(4));
        assert_eq!(
            reference.snapshot().param_checksum(),
            sharded.snapshot().param_checksum()
        );
        assert_eq!(sharded.rounds_completed(), 1);
    }

    #[test]
    fn concurrent_installs_to_disjoint_shards_do_not_serialize_results() {
        // Two threads install into different shards at once; the snapshot
        // afterwards must contain both writes (per-shard locks, no lost
        // update).
        let store = std::sync::Arc::new(store());
        let mut rng = SeededRng::new(7);
        let ka = ExpertKey::new(0, 0);
        let kb = ExpertKey::new(0, 1);
        assert_ne!(
            shard_of_key(ka, store.num_shards()),
            shard_of_key(kb, store.num_shards())
        );
        let ea = Expert::new(16, 32, &mut rng);
        let eb = Expert::new(16, 32, &mut rng);
        let handles: Vec<_> = [(ka, ea.clone()), (kb, eb.clone())]
            .into_iter()
            .map(|(key, expert)| {
                let store = std::sync::Arc::clone(&store);
                std::thread::spawn(move || {
                    let shard = shard_of_key(key, store.num_shards());
                    store.install_shard(shard, HashMap::from([(key, expert)]));
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let snap = store.snapshot();
        assert_eq!(snap.expert(ka), &ea);
        assert_eq!(snap.expert(kb), &eb);
    }

    #[test]
    fn snapshot_refresh_is_incremental_across_rounds() {
        let store = store();
        let mut rng = SeededRng::new(8);
        for round in 0..3 {
            let key = ExpertKey::new(round % 4, round);
            let e = Expert::new(16, 32, &mut rng);
            store.install_shard(
                shard_of_key(key, store.num_shards()),
                HashMap::from([(key, e.clone())]),
            );
            store.complete_round();
            assert_eq!(store.snapshot().expert(key), &e, "round {round}");
        }
        assert_eq!(store.rounds_completed(), 3);
    }
}
