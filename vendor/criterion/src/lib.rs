//! Offline stub of `criterion`.
//!
//! The build environment cannot reach a crates registry, so this crate
//! implements the benchmarking surface the `flux-bench` targets use:
//! [`Criterion`], [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher::iter`],
//! and the [`criterion_group!`]/[`criterion_main!`] macros. Instead of
//! criterion's statistical machinery it runs each benchmark for
//! `sample_size` timed iterations (after one warm-up) and prints the mean
//! wall-clock time per iteration, which is enough to compare the paper's
//! figure series and to keep the bench targets compiling and runnable in CI.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::Instant;

/// Opaque value barrier preventing the optimizer from deleting benched work.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Identifier combining a function name and a parameter, e.g. `matmul/128`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// Creates an id rendered as `{function_name}/{parameter}`.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        Self {
            full: format!("{function_name}/{parameter}"),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.full)
    }
}

/// Per-benchmark timing driver handed to benchmark closures.
pub struct Bencher {
    samples: usize,
    mean_ns: f64,
}

impl Bencher {
    /// Times `routine` over the configured number of samples and records the
    /// mean wall-clock duration of one call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine()); // warm-up, untimed
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        self.mean_ns = start.elapsed().as_nanos() as f64 / self.samples as f64;
    }
}

fn run_one(label: &str, samples: usize, f: impl FnOnce(&mut Bencher)) {
    let mut bencher = Bencher {
        samples,
        mean_ns: 0.0,
    };
    f(&mut bencher);
    let (value, unit) = humanize_ns(bencher.mean_ns);
    println!("{label:<60} time: {value:>9.3} {unit}  ({samples} samples)");
}

fn humanize_ns(ns: f64) -> (f64, &'static str) {
    if ns >= 1e9 {
        (ns / 1e9, "s")
    } else if ns >= 1e6 {
        (ns / 1e6, "ms")
    } else if ns >= 1e3 {
        (ns / 1e3, "µs")
    } else {
        (ns, "ns")
    }
}

/// Benchmark registry and configuration, mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function(&mut self, id: impl Display, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        run_one(&id.to_string(), self.sample_size, f);
        self
    }
}

/// A named collection of benchmarks sharing the parent's configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs a benchmark within the group.
    pub fn bench_function(&mut self, id: impl Display, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.criterion.sample_size, f);
        self
    }

    /// Runs a benchmark parameterized by `input` within the group.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.criterion.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group (printing is immediate in this stub, so this is a no-op).
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions; supports both the plain list and
/// the `name =` / `config =` / `targets =` forms the real macro accepts.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            $(
                let mut criterion = $config;
                $target(&mut criterion);
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generates `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_mean() {
        let mut calls = 0usize;
        run_one("smoke", 3, |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        // 1 warm-up + 3 timed samples.
        assert_eq!(calls, 4);
    }

    #[test]
    fn group_and_function_run() {
        let mut c = Criterion::default().sample_size(2);
        c.bench_function("standalone", |b| b.iter(|| black_box(1 + 1)));
        let mut g = c.benchmark_group("grp");
        g.bench_with_input(BenchmarkId::new("param", 8), &8usize, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        g.finish();
    }

    #[test]
    fn humanize_picks_unit() {
        assert_eq!(humanize_ns(5.0).1, "ns");
        assert_eq!(humanize_ns(5_000.0).1, "µs");
        assert_eq!(humanize_ns(5_000_000.0).1, "ms");
        assert_eq!(humanize_ns(5_000_000_000.0).1, "s");
    }
}
