//! FedAvg aggregation of expert parameters and task heads: one-shot
//! kernels plus the shard-wise incremental [`ShardedAggregator`] the async
//! round pipeline feeds as participant updates arrive.

use std::collections::{BTreeSet, HashMap};
use std::sync::Mutex;

use serde::{Deserialize, Serialize};
use threadpool::ThreadPool;

use flux_moe::{Expert, ExpertKey, MoeModel};
use flux_tensor::Matrix;

use crate::compress::{DecodeError, EncodedUpload};

/// One participant's update for a single expert.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExpertUpdate {
    /// Which global (original) expert this update targets.
    pub key: ExpertKey,
    /// The updated expert parameters after local fine-tuning.
    pub expert: Expert,
    /// Aggregation weight (the paper uses FedAvg, weighting by the number of
    /// local samples/tokens that contributed).
    pub weight: f32,
}

/// Aggregates expert updates with FedAvg.
///
/// Updates targeting the same [`ExpertKey`] are averaged with their weights;
/// experts no participant updated are absent from the result (the server
/// keeps its previous parameters for those).
pub fn fedavg_experts(updates: &[ExpertUpdate]) -> HashMap<ExpertKey, Expert> {
    let mut grouped: HashMap<ExpertKey, Vec<&ExpertUpdate>> = HashMap::new();
    for update in updates {
        grouped.entry(update.key).or_default().push(update);
    }
    let mut out = HashMap::new();
    for (key, group) in grouped {
        let experts: Vec<&Expert> = group.iter().map(|u| &u.expert).collect();
        let weights: Vec<f32> = group.iter().map(|u| u.weight.max(0.0)).collect();
        let total: f32 = weights.iter().sum();
        let weights = if total > 0.0 {
            weights
        } else {
            vec![1.0; experts.len()]
        };
        out.insert(key, Expert::weighted_merge(&experts, &weights));
    }
    out
}

/// FedAvg over matrices (task heads): weighted element-wise average.
///
/// Returns `None` when the input is empty. The target shape is the shape of
/// the first entry carrying positive weight (falling back to the first
/// entry when no weight is positive), so a zero-weight straggler at the
/// front cannot dictate the shape every real update gets skipped against.
/// Entries with a different shape are skipped (a participant running a
/// different head cannot be averaged); when every shape-compatible weight
/// is non-positive the result is their *uniform* average, mirroring
/// [`fedavg_experts`].
pub fn fedavg_matrices(updates: &[(Matrix, f32)]) -> Option<Matrix> {
    let shape = updates
        .iter()
        .find(|(_, w)| *w > 0.0)
        .map(|(m, _)| m.shape())
        .or_else(|| updates.first().map(|(m, _)| m.shape()))?;
    let mut acc = Matrix::zeros(shape.0, shape.1);
    let mut total_weight = 0.0f32;
    for (m, w) in updates {
        if m.shape() != shape || *w <= 0.0 {
            continue;
        }
        acc.add_scaled(m, *w).expect("same shape");
        total_weight += *w;
    }
    if total_weight <= 0.0 {
        // Uniform fallback over the shape-compatible entries.
        let mut count = 0.0f32;
        for (m, _) in updates {
            if m.shape() == shape {
                acc.add_scaled(m, 1.0).expect("same shape");
                count += 1.0;
            }
        }
        acc.scale_in_place(1.0 / count.max(1.0));
        return Some(acc);
    }
    acc.scale_in_place(1.0 / total_weight);
    Some(acc)
}

/// Incremental, shard-wise FedAvg aggregation.
///
/// The async round pipeline hands each participant's upload to the server
/// the moment it arrives, in whatever order the scheduler produces. Naive
/// eager averaging would make the result depend on that arrival order
/// (f32 addition is not associative), so the aggregator splits the work in
/// two:
///
/// * [`ShardedAggregator::submit`] *stages* an upload: every expert update
///   is routed to its shard (a deterministic function of the expert key)
///   and appended under the submitting participant's id. Staging is cheap,
///   lock-per-shard, and safe from any thread in any order. A participant
///   id can only be staged once — a retransmitting straggler cannot
///   double-count its weight.
/// * [`ShardedAggregator::finalize`] reduces each shard by sorting its
///   staged updates into participant-id order and running the one-shot
///   [`fedavg_experts`] / [`fedavg_matrices`] kernels over them. Shards
///   partition the expert-key space, so they can reduce concurrently; the
///   per-key weighted sums run in participant-id order regardless of how
///   updates arrived, which keeps the result *bit-identical* to the
///   barriered one-shot aggregation.
#[derive(Debug)]
pub struct ShardedAggregator {
    /// Expert updates staged per shard as `(participant_id, update)`.
    shards: Vec<Mutex<Vec<(usize, ExpertUpdate)>>>,
    /// Head updates staged as `(participant_id, head, weight)`.
    heads: Mutex<Vec<(usize, Matrix, f32)>>,
    /// Participants that have already submitted this round.
    submitted: Mutex<BTreeSet<usize>>,
}

impl ShardedAggregator {
    /// Creates an aggregator with `num_shards` expert shards (minimum 1).
    pub fn new(num_shards: usize) -> Self {
        let num_shards = num_shards.max(1);
        Self {
            shards: (0..num_shards).map(|_| Mutex::new(Vec::new())).collect(),
            heads: Mutex::new(Vec::new()),
            submitted: Mutex::new(BTreeSet::new()),
        }
    }

    /// Number of expert shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Which shard aggregates `key`. Deterministic — and shared with the
    /// sharded global store ([`crate::store::shard_of_key`]) so shard *i*
    /// of a round's staged uploads reduces into shard *i* of the store
    /// under that shard's lock alone.
    pub fn shard_of(&self, key: ExpertKey) -> usize {
        crate::store::shard_of_key(key, self.shards.len())
    }

    /// Stages one participant's upload. Returns `false` (ignoring the
    /// upload) when this participant already submitted this round, which
    /// makes duplicate transmissions idempotent instead of double-counted.
    pub fn submit(
        &self,
        participant_id: usize,
        expert_updates: Vec<ExpertUpdate>,
        head_update: Option<(Matrix, f32)>,
    ) -> bool {
        if !lock(&self.submitted).insert(participant_id) {
            return false;
        }
        for update in expert_updates {
            let shard = self.shard_of(update.key);
            lock(&self.shards[shard]).push((participant_id, update));
        }
        if let Some((head, weight)) = head_update {
            lock(&self.heads).push((participant_id, head, weight));
        }
        true
    }

    /// Stages one participant's *encoded* upload: the compressed payload is
    /// decoded against the round-start snapshot `base` right here at the
    /// staging layer, so the decoded updates reduce under the same
    /// per-shard locks and participant-id-ordered reduction as dense
    /// uploads — compression never perturbs aggregation order. Duplicate
    /// submissions are rejected (`Ok(false)`) before the (non-trivial)
    /// decode work.
    ///
    /// # Errors
    ///
    /// Returns the [`DecodeError`] when the upload fails checksum or
    /// payload validation. A rejected upload stages *nothing* and does not
    /// mark the participant as submitted, so a clean retransmission of the
    /// same pid still lands.
    pub fn submit_encoded(
        &self,
        participant_id: usize,
        upload: &EncodedUpload,
        base: &MoeModel,
    ) -> Result<bool, DecodeError> {
        if lock(&self.submitted).contains(&participant_id) {
            return Ok(false);
        }
        let (expert_updates, head_update) = upload.decode(base)?;
        Ok(self.submit(participant_id, expert_updates, head_update))
    }

    /// Participants staged so far.
    pub fn submitted_participants(&self) -> usize {
        lock(&self.submitted).len()
    }

    /// Whether `participant_id` has already submitted this round.
    pub fn has_submitted(&self, participant_id: usize) -> bool {
        lock(&self.submitted).contains(&participant_id)
    }

    /// A canonical copy of the staged round state for checkpointing:
    /// per-shard updates and head entries sorted by participant id, plus
    /// the submitted-pid set (ascending). Staging order is unobservable —
    /// finalization sorts by pid anyway — so the sorted form restores to a
    /// bit-identical round.
    pub(crate) fn staged_state(&self) -> StagedRound {
        let shards = self
            .shards
            .iter()
            .map(|shard| {
                let mut staged = lock(shard).clone();
                staged.sort_by_key(|(pid, _)| *pid);
                staged
            })
            .collect();
        let mut heads = lock(&self.heads).clone();
        heads.sort_by_key(|(pid, _, _)| *pid);
        let submitted = lock(&self.submitted).iter().copied().collect();
        StagedRound {
            shards,
            heads,
            submitted,
        }
    }

    /// Rebuilds an aggregator from a checkpointed [`StagedRound`]. The
    /// restored submitted-pid set keeps rejecting re-delivered uploads
    /// exactly as the pre-crash aggregator did.
    pub(crate) fn from_staged(state: StagedRound) -> Self {
        Self {
            shards: state.shards.into_iter().map(Mutex::new).collect(),
            heads: Mutex::new(state.heads),
            submitted: Mutex::new(state.submitted.into_iter().collect()),
        }
    }

    /// Reduces one shard: its staged updates sorted into participant-id
    /// order, fed through the one-shot FedAvg kernel, draining the shard.
    /// Public so the sharded store can reduce-and-install shard *i* as one
    /// task under shard *i*'s lock alone.
    pub fn finalize_shard(&self, shard: usize) -> HashMap<ExpertKey, Expert> {
        let mut staged = std::mem::take(&mut *lock(&self.shards[shard]));
        staged.sort_by_key(|(pid, _)| *pid);
        let ordered: Vec<ExpertUpdate> = staged.into_iter().map(|(_, u)| u).collect();
        fedavg_experts(&ordered)
    }

    /// Reduces the staged head updates in participant-id order, draining
    /// the head slot.
    pub fn finalize_head(&self) -> Option<Matrix> {
        let mut heads = std::mem::take(&mut *lock(&self.heads));
        heads.sort_by_key(|(pid, _, _)| *pid);
        let ordered: Vec<(Matrix, f32)> = heads.into_iter().map(|(_, m, w)| (m, w)).collect();
        fedavg_matrices(&ordered)
    }

    /// Clears the submitted-participant set so the aggregator can stage the
    /// next round. Called once every shard (and the head) has been reduced.
    pub fn reset_round(&self) {
        lock(&self.submitted).clear();
    }

    /// Reduces every shard (and the head slot) into the final FedAvg
    /// result, draining the staged state.
    ///
    /// The per-shard reductions fan out to `pool`; shards hold disjoint
    /// keys and each reduces in participant-id order, so the result is
    /// bit-identical for every thread count and every arrival order.
    pub fn finalize(&self, pool: &ThreadPool) -> (HashMap<ExpertKey, Expert>, Option<Matrix>) {
        let tasks: Vec<_> = (0..self.shards.len())
            .map(|shard| move || self.finalize_shard(shard))
            .collect();
        let mut experts = HashMap::new();
        for shard_result in pool.run(tasks) {
            experts.extend(shard_result);
        }
        let head = self.finalize_head();
        self.reset_round();
        (experts, head)
    }
}

/// Two-level aggregation tree: edge aggregators pre-reduce their cohort
/// slice before it reaches the root [`ShardedAggregator`].
///
/// Each edge performs the *structural* half of the reduction the moment an
/// upload arrives — routing every expert update to its key shard, decoding
/// and checksum-validating compressed payloads, rejecting duplicate pids —
/// so the root only concatenates pre-bucketed shard slices and runs the
/// pid-ordered FedAvg kernels. Edges deliberately do **not** pre-sum
/// parameters: f32 addition is non-associative, so an arithmetic partial
/// reduce per edge would make the result depend on the edge topology. By
/// forwarding `(pid, update)` pairs instead, the root's pid-sorted
/// [`ShardedAggregator::finalize_shard`] restores exactly the flat
/// reduction order, which pins the tree **bit-identical** to flat FedAvg
/// for every edge count, cohort partition and arrival order.
///
/// With zero edges the tree is the flat aggregator: submissions go straight
/// to the root.
#[derive(Debug)]
pub struct AggregationTree {
    root: ShardedAggregator,
    edges: Vec<ShardedAggregator>,
}

impl AggregationTree {
    /// Wraps `root` with `num_edges` edge aggregators (0 or 1 = flat: one
    /// level, no pre-reduction stage).
    pub fn new(root: ShardedAggregator, num_edges: usize) -> Self {
        let shards = root.num_shards();
        let edges = if num_edges <= 1 {
            Vec::new()
        } else {
            (0..num_edges)
                .map(|_| ShardedAggregator::new(shards))
                .collect()
        };
        Self { root, edges }
    }

    /// A flat (single-level) tree around `root`.
    pub fn flat(root: ShardedAggregator) -> Self {
        Self::new(root, 0)
    }

    /// Number of edge aggregators (0 = flat).
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The root aggregator. Staged edge uploads are only visible here after
    /// [`AggregationTree::collapse`].
    pub fn root(&self) -> &ShardedAggregator {
        &self.root
    }

    /// The edge that owns `pid`'s uploads (`None` when flat): a stable
    /// function of the participant id, so a client reports to the same edge
    /// on every round, thread count and replay.
    pub fn edge_of(&self, pid: usize) -> Option<usize> {
        if self.edges.is_empty() {
            None
        } else {
            Some(pid % self.edges.len())
        }
    }

    /// Stages one participant's upload at its edge (or the root when flat).
    /// Duplicate pids are rejected exactly as in the flat aggregator.
    pub fn submit(
        &self,
        participant_id: usize,
        expert_updates: Vec<ExpertUpdate>,
        head_update: Option<(Matrix, f32)>,
    ) -> bool {
        match self.edge_of(participant_id) {
            None => self
                .root
                .submit(participant_id, expert_updates, head_update),
            Some(edge) => self.submit_to_edge(edge, participant_id, expert_updates, head_update),
        }
    }

    /// Stages an upload at an explicit edge — the hook for arbitrary
    /// (ragged) cohort partitions. A pid already accepted at the root
    /// (e.g. restored from a mid-round checkpoint) or at any edge is
    /// rejected, preserving the flat duplicate discipline across levels.
    pub fn submit_to_edge(
        &self,
        edge: usize,
        participant_id: usize,
        expert_updates: Vec<ExpertUpdate>,
        head_update: Option<(Matrix, f32)>,
    ) -> bool {
        if self.edges.is_empty() {
            return self
                .root
                .submit(participant_id, expert_updates, head_update);
        }
        if self.has_submitted(participant_id) {
            return false;
        }
        self.edges[edge].submit(participant_id, expert_updates, head_update)
    }

    /// Stages an *encoded* upload: the payload decodes (and checksum-
    /// validates) at the participant's edge, which is exactly the
    /// pre-reduction work the two-level topology exists to offload.
    ///
    /// # Errors
    ///
    /// Propagates the edge's [`DecodeError`] for damaged payloads; nothing
    /// is staged and the pid may retransmit.
    pub fn submit_encoded(
        &self,
        participant_id: usize,
        upload: &EncodedUpload,
        base: &MoeModel,
    ) -> Result<bool, DecodeError> {
        match self.edge_of(participant_id) {
            None => self.root.submit_encoded(participant_id, upload, base),
            Some(edge) => {
                if self.has_submitted(participant_id) {
                    return Ok(false);
                }
                self.edges[edge].submit_encoded(participant_id, upload, base)
            }
        }
    }

    /// Whether `pid` has been accepted anywhere in the tree this round.
    pub fn has_submitted(&self, participant_id: usize) -> bool {
        self.root.has_submitted(participant_id)
            || self.edges.iter().any(|e| e.has_submitted(participant_id))
    }

    /// Participants accepted across the whole tree this round.
    pub fn submitted_participants(&self) -> usize {
        self.root.submitted_participants()
            + self
                .edges
                .iter()
                .map(ShardedAggregator::submitted_participants)
                .sum::<usize>()
    }

    /// Drains every edge's pre-bucketed slices into the root, in edge
    /// order, and returns the root ready to finalize. Pids the root has
    /// already accepted are filtered (first acceptance wins), so a restored
    /// checkpoint's uploads are never double-counted. Safe to call more
    /// than once — drained edges contribute nothing the second time.
    pub fn collapse(&self) -> &ShardedAggregator {
        for edge in &self.edges {
            Self::transfer(edge, &self.root, true);
        }
        &self.root
    }

    /// A non-draining snapshot of the whole tree's staged state as one flat
    /// aggregator — what mid-round checkpoints persist. Collapsing edges is
    /// result-transparent (the root re-sorts by pid), so restoring this
    /// snapshot replays bit-identically regardless of the original edge
    /// topology.
    pub fn merged_snapshot(&self) -> ShardedAggregator {
        let merged = ShardedAggregator::from_staged(self.root.staged_state());
        for edge in &self.edges {
            Self::transfer(edge, &merged, false);
        }
        merged
    }

    /// Moves (or copies, when `drain` is false) one edge's staged entries
    /// into `target`, admitting only pids `target` has not yet accepted.
    fn transfer(edge: &ShardedAggregator, target: &ShardedAggregator, drain: bool) {
        debug_assert_eq!(edge.num_shards(), target.num_shards());
        let staged = if drain {
            StagedRound {
                shards: edge
                    .shards
                    .iter()
                    .map(|s| std::mem::take(&mut *lock(s)))
                    .collect(),
                heads: std::mem::take(&mut *lock(&edge.heads)),
                submitted: std::mem::take(&mut *lock(&edge.submitted))
                    .into_iter()
                    .collect(),
            }
        } else {
            edge.staged_state()
        };
        let accepted: BTreeSet<usize> = {
            let mut submitted = lock(&target.submitted);
            staged
                .submitted
                .iter()
                .copied()
                .filter(|&pid| submitted.insert(pid))
                .collect()
        };
        for (shard_idx, entries) in staged.shards.into_iter().enumerate() {
            if entries.is_empty() {
                continue;
            }
            lock(&target.shards[shard_idx]).extend(
                entries
                    .into_iter()
                    .filter(|(pid, _)| accepted.contains(pid)),
            );
        }
        lock(&target.heads).extend(
            staged
                .heads
                .into_iter()
                .filter(|(pid, _, _)| accepted.contains(pid)),
        );
    }
}

/// The staged state of an in-flight aggregation round in canonical
/// (participant-id-sorted) form, as captured by
/// [`ShardedAggregator::staged_state`] for mid-round checkpoints.
#[derive(Debug, Clone)]
pub(crate) struct StagedRound {
    /// Per-shard staged `(pid, update)` pairs, sorted by pid.
    pub shards: Vec<Vec<(usize, ExpertUpdate)>>,
    /// Staged `(pid, head, weight)` entries, sorted by pid.
    pub heads: Vec<(usize, Matrix, f32)>,
    /// Participants that have submitted, ascending.
    pub submitted: Vec<usize>,
}

/// Acquires a mutex, recovering from poisoning: staged vectors are
/// structurally consistent at every unwind point, so the poison flag
/// carries no information here.
fn lock<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use flux_tensor::SeededRng;
    use threadpool::ThreadPool;

    fn expert(seed: u64) -> Expert {
        let mut rng = SeededRng::new(seed);
        Expert::new(4, 8, &mut rng)
    }

    #[test]
    fn single_update_passes_through() {
        let e = expert(1);
        let updates = vec![ExpertUpdate {
            key: ExpertKey::new(0, 3),
            expert: e.clone(),
            weight: 5.0,
        }];
        let agg = fedavg_experts(&updates);
        assert_eq!(agg.len(), 1);
        let merged = &agg[&ExpertKey::new(0, 3)];
        for (a, b) in merged.w1.as_slice().iter().zip(e.w1.as_slice()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn weighted_average_of_two_updates() {
        let a = expert(2);
        let b = expert(3);
        let updates = vec![
            ExpertUpdate {
                key: ExpertKey::new(1, 0),
                expert: a.clone(),
                weight: 3.0,
            },
            ExpertUpdate {
                key: ExpertKey::new(1, 0),
                expert: b.clone(),
                weight: 1.0,
            },
        ];
        let agg = fedavg_experts(&updates);
        let merged = &agg[&ExpertKey::new(1, 0)];
        for ((m, x), y) in merged
            .w1
            .as_slice()
            .iter()
            .zip(a.w1.as_slice())
            .zip(b.w1.as_slice())
        {
            assert!((m - (0.75 * x + 0.25 * y)).abs() < 1e-5);
        }
    }

    #[test]
    fn different_keys_stay_separate() {
        let updates = vec![
            ExpertUpdate {
                key: ExpertKey::new(0, 0),
                expert: expert(4),
                weight: 1.0,
            },
            ExpertUpdate {
                key: ExpertKey::new(2, 5),
                expert: expert(5),
                weight: 1.0,
            },
        ];
        let agg = fedavg_experts(&updates);
        assert_eq!(agg.len(), 2);
        assert!(agg.contains_key(&ExpertKey::new(0, 0)));
        assert!(agg.contains_key(&ExpertKey::new(2, 5)));
    }

    #[test]
    fn zero_weights_fall_back_to_uniform() {
        let a = expert(6);
        let b = expert(7);
        let updates = vec![
            ExpertUpdate {
                key: ExpertKey::new(0, 1),
                expert: a.clone(),
                weight: 0.0,
            },
            ExpertUpdate {
                key: ExpertKey::new(0, 1),
                expert: b.clone(),
                weight: 0.0,
            },
        ];
        let agg = fedavg_experts(&updates);
        let merged = &agg[&ExpertKey::new(0, 1)];
        for ((m, x), y) in merged
            .w2
            .as_slice()
            .iter()
            .zip(a.w2.as_slice())
            .zip(b.w2.as_slice())
        {
            assert!((m - 0.5 * (x + y)).abs() < 1e-5);
        }
    }

    #[test]
    fn empty_updates_give_empty_map() {
        assert!(fedavg_experts(&[]).is_empty());
    }

    #[test]
    fn matrix_fedavg_weighted() {
        let a = Matrix::filled(2, 2, 1.0);
        let b = Matrix::filled(2, 2, 3.0);
        let avg = fedavg_matrices(&[(a, 1.0), (b, 1.0)]).unwrap();
        assert!(avg.as_slice().iter().all(|&x| (x - 2.0).abs() < 1e-6));
    }

    #[test]
    fn matrix_fedavg_skips_mismatched_shapes() {
        let a = Matrix::filled(2, 2, 1.0);
        let b = Matrix::filled(3, 3, 9.0);
        let avg = fedavg_matrices(&[(a, 1.0), (b, 1.0)]).unwrap();
        assert_eq!(avg.shape(), (2, 2));
        assert!(avg.as_slice().iter().all(|&x| (x - 1.0).abs() < 1e-6));
    }

    #[test]
    fn matrix_fedavg_empty_is_none() {
        assert!(fedavg_matrices(&[]).is_none());
    }

    #[test]
    fn matrix_fedavg_all_zero_weights_falls_back_to_uniform() {
        // Regression: the fallback used to return `first.clone()`, silently
        // discarding every other participant's head. It must mirror
        // `fedavg_experts` and average uniformly instead.
        let a = Matrix::filled(1, 2, 4.0);
        let b = Matrix::filled(1, 2, 8.0);
        let avg = fedavg_matrices(&[(a.clone(), 0.0), (b, -1.0)]).unwrap();
        assert!(avg.as_slice().iter().all(|&x| (x - 6.0).abs() < 1e-6));
        // A single zero-weight entry still averages to itself.
        let single = fedavg_matrices(&[(a.clone(), 0.0)]).unwrap();
        assert_eq!(single, a);
    }

    #[test]
    fn matrix_fedavg_zero_weight_first_does_not_dictate_shape() {
        // Regression: a zero-weight (or wrong-shape) straggler at the front
        // used to fix the target shape, so every real update was skipped
        // and the straggler itself was returned.
        let straggler = Matrix::filled(3, 3, 99.0);
        let a = Matrix::filled(2, 2, 1.0);
        let b = Matrix::filled(2, 2, 3.0);
        let avg = fedavg_matrices(&[(straggler, 0.0), (a, 1.0), (b, 1.0)]).unwrap();
        assert_eq!(avg.shape(), (2, 2));
        assert!(avg.as_slice().iter().all(|&x| (x - 2.0).abs() < 1e-6));
    }

    #[test]
    fn matrix_fedavg_uniform_fallback_skips_mismatched_shapes() {
        let a = Matrix::filled(2, 2, 2.0);
        let odd = Matrix::filled(1, 4, 10.0);
        let b = Matrix::filled(2, 2, 4.0);
        let avg = fedavg_matrices(&[(a, 0.0), (odd, 0.0), (b, 0.0)]).unwrap();
        assert_eq!(avg.shape(), (2, 2));
        assert!(avg.as_slice().iter().all(|&x| (x - 3.0).abs() < 1e-6));
    }

    /// One synthetic participant upload: a couple of expert updates plus a
    /// head, deterministic in `pid`.
    fn upload(pid: usize) -> (Vec<ExpertUpdate>, Option<(Matrix, f32)>) {
        let updates = vec![
            ExpertUpdate {
                key: ExpertKey::new(0, pid % 3),
                expert: expert(pid as u64 * 2 + 1),
                weight: 1.0 + pid as f32,
            },
            ExpertUpdate {
                key: ExpertKey::new(1, 0),
                expert: expert(pid as u64 * 2 + 2),
                weight: 2.0,
            },
        ];
        let head = Matrix::filled(2, 2, pid as f32 + 0.5);
        (updates, Some((head, 1.0 + pid as f32)))
    }

    /// The barriered one-shot reference: all uploads concatenated in
    /// participant-id order.
    fn one_shot(pids: &[usize]) -> (HashMap<ExpertKey, Expert>, Option<Matrix>) {
        let mut sorted: Vec<usize> = pids.to_vec();
        sorted.sort_unstable();
        let mut updates = Vec::new();
        let mut heads = Vec::new();
        for &pid in &sorted {
            let (u, h) = upload(pid);
            updates.extend(u);
            if let Some(h) = h {
                heads.push(h);
            }
        }
        (fedavg_experts(&updates), fedavg_matrices(&heads))
    }

    fn assert_expert_maps_identical(
        a: &HashMap<ExpertKey, Expert>,
        b: &HashMap<ExpertKey, Expert>,
    ) {
        assert_eq!(a.len(), b.len());
        for (key, ea) in a {
            let eb = &b[key];
            assert_eq!(ea.w1, eb.w1, "w1 diverged for {key:?}");
            assert_eq!(ea.w2, eb.w2, "w2 diverged for {key:?}");
            assert_eq!(ea.b1, eb.b1, "b1 diverged for {key:?}");
            assert_eq!(ea.b2, eb.b2, "b2 diverged for {key:?}");
        }
    }

    #[test]
    fn sharded_aggregation_is_arrival_order_invariant() {
        let pool = ThreadPool::new(1);
        let pids = [0usize, 1, 2, 3, 4];
        let reference = one_shot(&pids);
        for order in [
            vec![0usize, 1, 2, 3, 4],
            vec![4, 3, 2, 1, 0],
            vec![2, 0, 4, 1, 3],
        ] {
            for shards in [1usize, 3, 8] {
                let agg = ShardedAggregator::new(shards);
                for &pid in &order {
                    let (u, h) = upload(pid);
                    assert!(agg.submit(pid, u, h));
                }
                let (experts, head) = agg.finalize(&pool);
                assert_expert_maps_identical(&experts, &reference.0);
                assert_eq!(head, reference.1, "head diverged (order {order:?})");
            }
        }
    }

    #[test]
    fn duplicate_submission_is_rejected_not_double_counted() {
        let pool = ThreadPool::new(1);
        let agg = ShardedAggregator::new(4);
        let (u, h) = upload(1);
        assert!(agg.submit(1, u, h));
        // The straggler retransmits: ignored wholesale.
        let (u, h) = upload(1);
        assert!(!agg.submit(1, u, h));
        assert_eq!(agg.submitted_participants(), 1);
        let (experts, head) = agg.finalize(&pool);
        let reference = one_shot(&[1]);
        assert_expert_maps_identical(&experts, &reference.0);
        assert_eq!(head, reference.1);
    }

    #[test]
    fn finalize_drains_and_resets_for_the_next_round() {
        let pool = ThreadPool::new(2);
        let agg = ShardedAggregator::new(4);
        let (u, h) = upload(2);
        agg.submit(2, u, h);
        let _ = agg.finalize(&pool);
        // Round state is gone: the same pid may submit again and the next
        // finalize sees only the new round.
        let (u, h) = upload(2);
        assert!(agg.submit(2, u, h));
        let (experts, head) = agg.finalize(&pool);
        let reference = one_shot(&[2]);
        assert_expert_maps_identical(&experts, &reference.0);
        assert_eq!(head, reference.1);
    }

    /// A round-start snapshot plus a perturbed upload against it, keyed to
    /// real experts of the model so encoded submissions can decode.
    fn model_and_upload(pid: usize) -> (MoeModel, Vec<ExpertUpdate>, Option<(Matrix, f32)>) {
        let mut rng = SeededRng::new(99);
        let model = MoeModel::new(flux_moe::MoeConfig::tiny(), &mut rng);
        let keys = model.expert_keys();
        let updates: Vec<ExpertUpdate> = keys
            .iter()
            .take(2)
            .map(|&key| {
                let mut tuned = model.expert(key).clone();
                let mut prng = SeededRng::new(pid as u64 + key.expert as u64 * 17 + 3);
                let (r, c) = tuned.w1.shape();
                let noise = Matrix::random_normal(r, c, 0.01, &mut prng);
                tuned.w1.add_scaled(&noise, 1.0).unwrap();
                ExpertUpdate {
                    key,
                    expert: tuned,
                    weight: 1.0 + pid as f32,
                }
            })
            .collect();
        let head = model.active_head().clone();
        (model, updates, Some((head, 1.0 + pid as f32)))
    }

    #[test]
    fn encoded_lossless_submission_matches_dense_submission_bitwise() {
        use crate::compress::{CompressionConfig, EncodedUpload};
        let pool = ThreadPool::new(1);
        let (model, updates, head) = model_and_upload(0);
        let (_, updates1, head1) = model_and_upload(1);

        let dense = ShardedAggregator::new(4);
        assert!(dense.submit(0, updates.clone(), head.clone()));
        assert!(dense.submit(1, updates1.clone(), head1.clone()));
        let (experts_dense, head_dense) = dense.finalize(&pool);

        let encoded = ShardedAggregator::new(4);
        for (pid, (u, h)) in [(0usize, (&updates, &head)), (1, (&updates1, &head1))] {
            let enc =
                EncodedUpload::encode(u, h.as_ref(), &model, CompressionConfig::LosslessDelta);
            assert!(enc.encoded_bytes() < enc.dense_bytes());
            assert!(encoded.submit_encoded(pid, &enc, &model).unwrap());
        }
        let (experts_enc, head_enc) = encoded.finalize(&pool);

        assert_expert_maps_identical(&experts_dense, &experts_enc);
        assert_eq!(head_dense, head_enc);
    }

    #[test]
    fn encoded_duplicate_submission_is_rejected() {
        use crate::compress::{CompressionConfig, EncodedUpload};
        let (model, updates, head) = model_and_upload(3);
        let enc = EncodedUpload::encode(
            &updates,
            head.as_ref(),
            &model,
            CompressionConfig::LosslessDelta,
        );
        let agg = ShardedAggregator::new(2);
        assert!(agg.submit_encoded(3, &enc, &model).unwrap());
        assert!(!agg.submit_encoded(3, &enc, &model).unwrap());
        // Mixing transports cannot double-count either.
        assert!(!agg.submit(3, updates, head));
        assert_eq!(agg.submitted_participants(), 1);
    }

    #[test]
    fn corrupt_encoded_submission_is_rejected_and_retryable() {
        use crate::compress::{CompressionConfig, DecodeError, EncodedUpload};
        let (model, updates, head) = model_and_upload(5);
        let enc = EncodedUpload::encode(
            &updates,
            head.as_ref(),
            &model,
            CompressionConfig::LosslessDelta,
        );
        let agg = ShardedAggregator::new(2);
        // Bit-flipped and truncated deliveries are rejected with a typed
        // error — no panic — and stage nothing.
        for seed in 0..4 {
            let err = agg
                .submit_encoded(5, &enc.corrupted(seed), &model)
                .unwrap_err();
            assert!(matches!(err, DecodeError::ChecksumMismatch { .. }));
            assert!(agg.submit_encoded(5, &enc.truncated(seed), &model).is_err());
        }
        assert_eq!(agg.submitted_participants(), 0);
        assert!(!agg.has_submitted(5));
        // The clean retransmission of the same pid still lands.
        assert!(agg.submit_encoded(5, &enc, &model).unwrap());
        assert!(agg.has_submitted(5));
    }

    #[test]
    fn staged_state_round_trips_and_keeps_rejecting_duplicates() {
        let pool = ThreadPool::new(1);
        let pids = [3usize, 0, 4];
        let reference = one_shot(&pids);
        let agg = ShardedAggregator::new(4);
        for &pid in &pids {
            let (u, h) = upload(pid);
            assert!(agg.submit(pid, u, h));
        }
        let restored = ShardedAggregator::from_staged(agg.staged_state());
        // The reduced-pid set survives: a re-delivered upload after the
        // restore is still rejected exactly once.
        let (u, h) = upload(3);
        assert!(!restored.submit(3, u, h));
        assert_eq!(restored.submitted_participants(), 3);
        let (experts, head) = restored.finalize(&pool);
        assert_expert_maps_identical(&experts, &reference.0);
        assert_eq!(head, reference.1);
    }

    #[test]
    fn tree_reduce_is_bit_identical_to_flat_for_every_edge_count() {
        let pool = ThreadPool::new(2);
        let pids = [0usize, 1, 2, 3, 4, 5, 6];
        let reference = one_shot(&pids);
        for num_edges in [0usize, 1, 2, 3, 7] {
            let tree = AggregationTree::new(ShardedAggregator::new(4), num_edges);
            assert_eq!(tree.num_edges(), if num_edges <= 1 { 0 } else { num_edges });
            // Reverse arrival order, routed by pid.
            for &pid in pids.iter().rev() {
                let (u, h) = upload(pid);
                assert!(tree.submit(pid, u, h));
            }
            assert_eq!(tree.submitted_participants(), pids.len());
            let (experts, head) = tree.collapse().finalize(&pool);
            assert_expert_maps_identical(&experts, &reference.0);
            assert_eq!(head, reference.1, "head diverged at {num_edges} edges");
        }
    }

    #[test]
    fn tree_rejects_duplicates_across_levels() {
        let tree = AggregationTree::new(ShardedAggregator::new(4), 3);
        let (u, h) = upload(5);
        assert!(tree.submit(5, u, h));
        // Same pid at its own edge, a different edge, and the root path.
        let (u, h) = upload(5);
        assert!(!tree.submit(5, u, h));
        let (u, h) = upload(5);
        assert!(!tree.submit_to_edge(0, 5, u, h));
        assert_eq!(tree.submitted_participants(), 1);
        // Collapse keeps exactly one copy.
        tree.collapse();
        assert_eq!(tree.root().submitted_participants(), 1);
        assert!(tree.has_submitted(5));
    }

    #[test]
    fn tree_filters_pids_already_accepted_at_the_root() {
        // A mid-round restore leaves accepted pids at the root; an edge
        // replaying the same pid must not double-count it at collapse.
        let pool = ThreadPool::new(1);
        let root = ShardedAggregator::new(4);
        let (u, h) = upload(2);
        assert!(root.submit(2, u, h));
        let tree = AggregationTree::new(root, 2);
        let (u, h) = upload(2);
        // The edge itself cannot know, so the staging may succeed...
        let _ = tree.edges[0].submit(2, u, h);
        let (u, h) = upload(3);
        assert!(tree.submit(3, u, h));
        // ...but the collapse admits pid 2 only once.
        let (experts, head) = tree.collapse().finalize(&pool);
        let reference = one_shot(&[2, 3]);
        assert_expert_maps_identical(&experts, &reference.0);
        assert_eq!(head, reference.1);
    }

    #[test]
    fn merged_snapshot_restores_bit_identically_without_draining() {
        let pool = ThreadPool::new(1);
        let pids = [4usize, 1, 6, 0];
        let reference = one_shot(&pids);
        let tree = AggregationTree::new(ShardedAggregator::new(4), 3);
        for &pid in &pids {
            let (u, h) = upload(pid);
            assert!(tree.submit(pid, u, h));
        }
        // Checkpoint: flatten the tree without disturbing it.
        let snapshot = ShardedAggregator::from_staged(tree.merged_snapshot().staged_state());
        let (experts, head) = snapshot.finalize(&pool);
        assert_expert_maps_identical(&experts, &reference.0);
        assert_eq!(head, reference.1);
        // The live tree still collapses to the same answer.
        let (experts, head) = tree.collapse().finalize(&pool);
        assert_expert_maps_identical(&experts, &reference.0);
        assert_eq!(head, reference.1);
    }

    #[test]
    fn tree_decodes_encoded_uploads_at_the_edge() {
        use crate::compress::{CompressionConfig, EncodedUpload};
        let pool = ThreadPool::new(1);
        let (model, updates, head) = model_and_upload(0);
        let (_, updates1, head1) = model_and_upload(1);

        let flat = ShardedAggregator::new(4);
        assert!(flat.submit(0, updates.clone(), head.clone()));
        assert!(flat.submit(1, updates1.clone(), head1.clone()));
        let (experts_flat, head_flat) = flat.finalize(&pool);

        let tree = AggregationTree::new(ShardedAggregator::new(4), 2);
        for (pid, (u, h)) in [(0usize, (&updates, &head)), (1, (&updates1, &head1))] {
            let enc =
                EncodedUpload::encode(u, h.as_ref(), &model, CompressionConfig::LosslessDelta);
            assert!(tree.submit_encoded(pid, &enc, &model).unwrap());
            // Duplicate retransmissions are rejected before decode.
            assert!(matches!(tree.submit_encoded(pid, &enc, &model), Ok(false)));
        }
        let (experts_tree, head_tree) = tree.collapse().finalize(&pool);
        assert_expert_maps_identical(&experts_flat, &experts_tree);
        assert_eq!(head_flat, head_tree);
    }

    #[test]
    fn shard_of_is_stable_and_in_range() {
        let agg = ShardedAggregator::new(5);
        for layer in 0..7 {
            for e in 0..13 {
                let key = ExpertKey::new(layer, e);
                let s = agg.shard_of(key);
                assert!(s < 5);
                assert_eq!(s, agg.shard_of(key));
            }
        }
    }
}
