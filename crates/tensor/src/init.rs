//! Weight initialization schemes.
//!
//! The scaled MoE models are trained from random initialization (the real
//! checkpoints are unavailable), so initialization quality matters for
//! reproducing convergence behaviour. Xavier/Glorot and Kaiming/He schemes
//! are provided along with a helper for embedding tables.

use crate::matrix::Matrix;
use crate::rng::SeededRng;

/// Xavier/Glorot-uniform initialization for a `(fan_in, fan_out)` weight.
///
/// Suitable for layers followed by roughly linear or tanh-like activations
/// (attention projections, gating networks).
pub fn xavier_uniform(fan_in: usize, fan_out: usize, rng: &mut SeededRng) -> Matrix {
    let limit = (6.0 / (fan_in + fan_out) as f32).sqrt();
    Matrix::random_uniform(fan_in, fan_out, -limit, limit, rng)
}

/// Kaiming/He-normal initialization for a `(fan_in, fan_out)` weight.
///
/// Suitable for layers followed by ReLU/GELU activations (expert FFNs).
pub fn kaiming_normal(fan_in: usize, fan_out: usize, rng: &mut SeededRng) -> Matrix {
    let std_dev = (2.0 / fan_in as f32).sqrt();
    Matrix::random_normal(fan_in, fan_out, std_dev, rng)
}

/// Embedding-table initialization: `N(0, 0.02²)`, the convention used by GPT
/// style models and followed by LLaMA-MoE.
pub fn embedding(vocab: usize, dim: usize, rng: &mut SeededRng) -> Matrix {
    Matrix::random_normal(vocab, dim, 0.02, rng)
}

/// Zero-initialized bias vector.
pub fn zeros_bias(dim: usize) -> Vec<f32> {
    vec![0.0; dim]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xavier_within_limit() {
        let mut rng = SeededRng::new(1);
        let w = xavier_uniform(64, 64, &mut rng);
        let limit = (6.0 / 128.0f32).sqrt();
        assert!(w.as_slice().iter().all(|&x| x.abs() <= limit));
        assert_eq!(w.shape(), (64, 64));
    }

    #[test]
    fn kaiming_std_roughly_correct() {
        let mut rng = SeededRng::new(2);
        let fan_in = 256;
        let w = kaiming_normal(fan_in, 128, &mut rng);
        let vals = w.as_slice();
        let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
        let var: f32 = vals.iter().map(|x| (x - mean).powi(2)).sum::<f32>() / vals.len() as f32;
        let expected = 2.0 / fan_in as f32;
        assert!((var - expected).abs() / expected < 0.15, "var = {var}");
    }

    #[test]
    fn embedding_small_scale() {
        let mut rng = SeededRng::new(3);
        let e = embedding(100, 16, &mut rng);
        assert_eq!(e.shape(), (100, 16));
        assert!(e.as_slice().iter().all(|&x| x.abs() < 0.2));
    }

    #[test]
    fn zeros_bias_is_zero() {
        assert_eq!(zeros_bias(4), vec![0.0; 4]);
    }

    #[test]
    fn init_is_deterministic() {
        let mut a = SeededRng::new(9);
        let mut b = SeededRng::new(9);
        assert_eq!(xavier_uniform(8, 8, &mut a), xavier_uniform(8, 8, &mut b));
    }
}
