//! Model configurations: scaled presets and the full-scale catalog.

use serde::{Deserialize, Serialize};

/// Configuration of an MoE transformer.
///
/// Two families of configurations exist:
///
/// * **scaled presets** ([`MoeConfig::llama_moe_sim`],
///   [`MoeConfig::deepseek_moe_sim`], [`MoeConfig::tiny`]) that are actually
///   instantiated and trained in the experiments, and
/// * **catalog entries** ([`ModelCatalogEntry`]) that reproduce the paper's
///   Table 1 by parameter accounting only.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MoeConfig {
    /// Human-readable model name.
    pub name: String,
    /// Vocabulary size.
    pub vocab_size: usize,
    /// Hidden dimension (embedding width).
    pub d_model: usize,
    /// Expert feed-forward inner dimension.
    pub d_ff: usize,
    /// Number of transformer layers (each carries one MoE FFN).
    pub num_layers: usize,
    /// Number of experts in each layer. Uniform for the pristine model;
    /// customized (per-layer) after expert merging.
    pub experts_per_layer: Vec<usize>,
    /// Number of experts each token is routed to.
    pub top_k: usize,
    /// Attention heads (used for parameter accounting; the scaled model
    /// computes single-head attention of width `d_model`).
    pub num_heads: usize,
    /// Number of classification classes; `None` means a generation head over
    /// the vocabulary is used instead.
    pub num_classes: Option<usize>,
    /// Maximum sequence length for positional encoding.
    pub max_seq_len: usize,
    /// Checkpoint size (in GB, FP16) of the full-scale model this scaled
    /// configuration stands in for. Device capacities and the cost model are
    /// derived against this reference so the paper's resource constraints
    /// hold even though the simulated widths are tiny.
    pub reference_size_gb: f32,
}

impl MoeConfig {
    /// Scaled-down LLaMA-MoE: 32 layers × 16 experts, top-2 routing.
    ///
    /// Mirrors the topology of LLaMA-MoE-3.5B (the paper's first target
    /// model) at a width that trains on a CPU in seconds.
    pub fn llama_moe_sim() -> Self {
        Self {
            name: "llama-moe-sim".to_string(),
            vocab_size: 256,
            d_model: 48,
            d_ff: 96,
            num_layers: 32,
            experts_per_layer: vec![16; 32],
            top_k: 2,
            num_heads: 4,
            num_classes: None,
            max_seq_len: 128,
            reference_size_gb: 13.48,
        }
    }

    /// Scaled-down DeepSeek-MoE: 28 layers × 64 experts, top-4 routing.
    pub fn deepseek_moe_sim() -> Self {
        Self {
            name: "deepseek-moe-sim".to_string(),
            vocab_size: 256,
            d_model: 32,
            d_ff: 64,
            num_layers: 28,
            experts_per_layer: vec![64; 28],
            top_k: 4,
            num_heads: 4,
            num_classes: None,
            max_seq_len: 128,
            reference_size_gb: 32.77,
        }
    }

    /// A very small model for unit tests and quick examples: 4 layers × 8
    /// experts.
    pub fn tiny() -> Self {
        Self {
            name: "tiny-moe".to_string(),
            vocab_size: 64,
            d_model: 16,
            d_ff: 32,
            num_layers: 4,
            experts_per_layer: vec![8; 4],
            top_k: 2,
            num_heads: 2,
            num_classes: None,
            max_seq_len: 64,
            reference_size_gb: 13.48,
        }
    }

    /// A small-but-not-trivial model used by the medium-cost experiments:
    /// 8 layers × 16 experts.
    pub fn small() -> Self {
        Self {
            name: "small-moe".to_string(),
            vocab_size: 128,
            d_model: 32,
            d_ff: 64,
            num_layers: 8,
            experts_per_layer: vec![16; 8],
            top_k: 2,
            num_heads: 2,
            num_classes: None,
            max_seq_len: 96,
            reference_size_gb: 13.48,
        }
    }

    /// Sets a classification head with the given number of classes.
    pub fn with_classes(mut self, num_classes: usize) -> Self {
        self.num_classes = Some(num_classes);
        self
    }

    /// Replaces the per-layer expert counts (customized MoE construction,
    /// the analogue of the paper's `Flux.moe.customized_moe` API).
    ///
    /// # Panics
    ///
    /// Panics if the length differs from `num_layers` or any layer has zero
    /// experts.
    pub fn with_experts_per_layer(mut self, experts: Vec<usize>) -> Self {
        assert_eq!(
            experts.len(),
            self.num_layers,
            "expert list must cover every layer"
        );
        assert!(experts.iter().all(|&e| e > 0), "layers need >= 1 expert");
        self.experts_per_layer = experts;
        self
    }

    /// Scales the number of layers (keeping per-layer expert counts uniform
    /// at the first layer's count). Used by the Fig. 1 cost sweep.
    pub fn with_num_layers(mut self, layers: usize) -> Self {
        let per_layer = self.experts_per_layer.first().copied().unwrap_or(1);
        self.num_layers = layers;
        self.experts_per_layer = vec![per_layer; layers];
        self
    }

    /// Total number of experts across layers.
    pub fn total_experts(&self) -> usize {
        self.experts_per_layer.iter().sum()
    }

    /// Number of experts in one layer.
    ///
    /// # Panics
    ///
    /// Panics if `layer >= num_layers`.
    pub fn experts_in_layer(&self, layer: usize) -> usize {
        self.experts_per_layer[layer]
    }

    /// Parameters of a single expert (two projection matrices plus biases).
    pub fn params_per_expert(&self) -> usize {
        self.d_model * self.d_ff + self.d_ff + self.d_ff * self.d_model + self.d_model
    }

    /// Parameters of one layer's attention block (Q, K, V, O projections).
    pub fn params_per_attention(&self) -> usize {
        4 * self.d_model * self.d_model
    }

    /// Parameters of one layer's gate.
    pub fn params_per_gate(&self, layer: usize) -> usize {
        self.d_model * self.experts_in_layer(layer)
    }

    /// Total parameter count (embedding + per-layer blocks + output head).
    pub fn total_params(&self) -> usize {
        let embedding = self.vocab_size * self.d_model;
        let head = match self.num_classes {
            Some(c) => self.d_model * c,
            None => self.d_model * self.vocab_size,
        };
        let mut total = embedding + head;
        for layer in 0..self.num_layers {
            total += self.params_per_attention();
            total += self.params_per_gate(layer);
            total += self.experts_in_layer(layer) * self.params_per_expert();
        }
        total
    }

    /// Fraction of parameters that live in experts. The paper notes experts
    /// account for more than two thirds of MoE models; the presets preserve
    /// that property.
    pub fn expert_param_fraction(&self) -> f32 {
        let expert_params: usize = (0..self.num_layers)
            .map(|l| self.experts_in_layer(l) * self.params_per_expert())
            .sum();
        expert_params as f32 / self.total_params() as f32
    }

    /// FP32 size in bytes of the whole model.
    pub fn model_bytes(&self) -> usize {
        self.total_params() * 4
    }

    /// FP32 size in bytes of a single expert.
    pub fn expert_bytes(&self) -> usize {
        self.params_per_expert() * 4
    }
}

/// One row of the paper's Table 1: a real MoE LLM described by its topology
/// and published parameter count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelCatalogEntry {
    /// Model name as listed in the paper.
    pub name: &'static str,
    /// Number of MoE layers.
    pub num_layers: usize,
    /// Experts per MoE layer.
    pub experts_per_layer: usize,
    /// Published total parameter count (billions).
    pub params_billions: f32,
}

impl ModelCatalogEntry {
    /// The five models of the paper's Table 1.
    pub fn paper_table1() -> Vec<ModelCatalogEntry> {
        vec![
            ModelCatalogEntry {
                name: "LLaMA-MoE",
                num_layers: 32,
                experts_per_layer: 16,
                params_billions: 6.7,
            },
            ModelCatalogEntry {
                name: "DeepSeek-MoE",
                num_layers: 28,
                experts_per_layer: 64,
                params_billions: 16.4,
            },
            ModelCatalogEntry {
                name: "DeepSeek-v2-lite",
                num_layers: 27,
                experts_per_layer: 64,
                params_billions: 15.7,
            },
            ModelCatalogEntry {
                name: "Mixtral-8x7B",
                num_layers: 64,
                experts_per_layer: 8,
                params_billions: 46.7,
            },
            ModelCatalogEntry {
                name: "Qwen2-MoE",
                num_layers: 28,
                experts_per_layer: 64,
                params_billions: 57.4,
            },
        ]
    }

    /// FP16 checkpoint size in gigabytes (2 bytes per parameter), the "Size"
    /// column of Table 1.
    pub fn size_gb(&self) -> f32 {
        self.params_billions * 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_mirror_paper_topology() {
        let llama = MoeConfig::llama_moe_sim();
        assert_eq!(llama.num_layers, 32);
        assert!(llama.experts_per_layer.iter().all(|&e| e == 16));
        let deepseek = MoeConfig::deepseek_moe_sim();
        assert_eq!(deepseek.num_layers, 28);
        assert!(deepseek.experts_per_layer.iter().all(|&e| e == 64));
    }

    #[test]
    fn expert_fraction_dominates() {
        // The paper: experts are more than two thirds of the parameters.
        for cfg in [MoeConfig::llama_moe_sim(), MoeConfig::deepseek_moe_sim()] {
            assert!(
                cfg.expert_param_fraction() > 2.0 / 3.0,
                "{} fraction {}",
                cfg.name,
                cfg.expert_param_fraction()
            );
        }
    }

    #[test]
    fn custom_expert_layout() {
        let cfg = MoeConfig::tiny().with_experts_per_layer(vec![8, 4, 2, 1]);
        assert_eq!(cfg.total_experts(), 15);
        assert_eq!(cfg.experts_in_layer(3), 1);
    }

    #[test]
    #[should_panic(expected = "every layer")]
    fn custom_expert_layout_wrong_len_panics() {
        MoeConfig::tiny().with_experts_per_layer(vec![8, 4]);
    }

    #[test]
    #[should_panic(expected = ">= 1 expert")]
    fn custom_expert_layout_zero_panics() {
        MoeConfig::tiny().with_experts_per_layer(vec![8, 4, 0, 1]);
    }

    #[test]
    fn total_params_consistent_with_pieces() {
        let cfg = MoeConfig::tiny();
        let per_layer =
            cfg.params_per_attention() + cfg.params_per_gate(0) + 8 * cfg.params_per_expert();
        let expected = cfg.vocab_size * cfg.d_model + cfg.d_model * cfg.vocab_size + 4 * per_layer;
        assert_eq!(cfg.total_params(), expected);
    }

    #[test]
    fn with_classes_changes_head_size() {
        let gen = MoeConfig::tiny();
        let cls = MoeConfig::tiny().with_classes(4);
        assert!(cls.total_params() < gen.total_params());
        assert_eq!(cls.num_classes, Some(4));
    }

    #[test]
    fn with_num_layers_rescales() {
        let cfg = MoeConfig::small().with_num_layers(2);
        assert_eq!(cfg.num_layers, 2);
        assert_eq!(cfg.experts_per_layer, vec![16, 16]);
    }

    #[test]
    fn catalog_matches_paper_table1() {
        let catalog = ModelCatalogEntry::paper_table1();
        assert_eq!(catalog.len(), 5);
        let llama = &catalog[0];
        assert_eq!(llama.num_layers, 32);
        assert_eq!(llama.experts_per_layer, 16);
        // Paper: 6.7B parameters, 13.48 GB checkpoint.
        assert!((llama.size_gb() - 13.4).abs() < 0.2);
        let qwen = &catalog[4];
        assert!((qwen.size_gb() - 114.8).abs() < 3.0);
    }

    #[test]
    fn byte_accounting() {
        let cfg = MoeConfig::tiny();
        assert_eq!(cfg.model_bytes(), cfg.total_params() * 4);
        assert_eq!(cfg.expert_bytes(), cfg.params_per_expert() * 4);
    }
}
