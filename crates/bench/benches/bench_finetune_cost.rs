//! Criterion bench backing Figure 1: pricing a fine-tuning round for
//! different numbers of tuned experts, plus a real scaled-model training
//! step so the compute path itself is measured.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use flux_data::{DatasetConfig, DatasetGenerator, DatasetKind};
use flux_fl::{CostModel, DeviceClass};
use flux_moe::{MoeConfig, MoeModel};
use flux_tensor::SeededRng;

fn cost_model_pricing(c: &mut Criterion) {
    let cost = CostModel::default();
    let device = DeviceClass::ServerL20.profile();
    let config = MoeConfig::llama_moe_sim();
    let mut group = c.benchmark_group("fig01_cost_model");
    for experts in [8usize, 32, 128, 256] {
        group.bench_with_input(
            BenchmarkId::new("price_round", experts),
            &experts,
            |b, &e| {
                b.iter(|| cost.fine_tune_time_s(&device, &config, 28_800, e, 512));
            },
        );
    }
    group.finish();
}

fn scaled_model_train_step(c: &mut Criterion) {
    let mut rng = SeededRng::new(1);
    let mut model = MoeModel::new(MoeConfig::tiny().with_classes(4), &mut rng);
    let data = DatasetGenerator::new(
        DatasetConfig::for_kind(DatasetKind::Mmlu, 64)
            .with_num_samples(8)
            .with_mean_seq_len(8),
    )
    .generate(&mut rng);
    c.bench_function("tiny_model_train_step", |b| {
        b.iter(|| model.train_step(&data.samples, None, 0.01));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = cost_model_pricing, scaled_model_train_step
}
criterion_main!(benches);
