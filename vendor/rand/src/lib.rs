//! Offline stub of `rand` (0.8-era API surface).
//!
//! The build environment cannot reach a crates registry, so this crate
//! implements the small slice of `rand` that `flux-tensor::rng` consumes:
//! [`rngs::StdRng`] with [`SeedableRng::seed_from_u64`], [`Rng::gen`] for
//! floats, and [`Rng::gen_range`] over half-open integer ranges. The
//! generator is a splitmix64 core — statistically solid for simulation
//! workloads and deterministic across platforms, which is all the
//! reproduction needs (it is NOT cryptographically secure, unlike the real
//! `StdRng`).

use core::ops::Range;

/// Types that can construct a generator from entropy-style seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Values samplable uniformly from the generator's full output range.
pub trait SampleStandard {
    /// Draws one value from `rng`.
    fn sample(rng: &mut dyn RngCore) -> Self;
}

/// Values samplable uniformly from a half-open range.
pub trait SampleUniform: Sized {
    /// Draws one value in `[range.start, range.end)`.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn sample_range(rng: &mut dyn RngCore, range: Range<Self>) -> Self;
}

/// Minimal core generator interface: a stream of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value uniformly over the type's standard distribution
    /// (for floats: `[0, 1)`).
    fn gen<T: SampleStandard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples a value uniformly from the half-open `range`.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }
}

impl<R: RngCore> Rng for R {}

impl SampleStandard for f32 {
    fn sample(rng: &mut dyn RngCore) -> Self {
        // 24 high bits -> uniform in [0, 1) with full f32 mantissa coverage.
        (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }
}

impl SampleStandard for f64 {
    fn sample(rng: &mut dyn RngCore) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl SampleStandard for u64 {
    fn sample(rng: &mut dyn RngCore) -> Self {
        rng.next_u64()
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range(rng: &mut dyn RngCore, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample empty range");
                let span = (range.end - range.start) as u64;
                range.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(usize, u32, u64, i64);

impl SampleUniform for f32 {
    fn sample_range(rng: &mut dyn RngCore, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "cannot sample empty range");
        range.start + (range.end - range.start) * f32::sample(rng)
    }
}

/// Standard generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic splitmix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // splitmix64 (Steele, Lea & Flood): passes BigCrush on 64-bit
            // outputs; more than adequate for simulation sampling.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        for _ in 0..64 {
            assert_eq!(a.gen::<f32>().to_bits(), b.gen::<f32>().to_bits());
        }
    }

    #[test]
    fn unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f32 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_bounds_respected() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
        }
    }

    #[test]
    fn covers_small_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
