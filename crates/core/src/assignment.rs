//! Dynamic expert role assignment (§6).
//!
//! Every round the parameter server decides, per participant, which experts
//! are *tuning* (trained locally at full fidelity) and which are
//! *non-tuning* (merged and frozen). The decision maximizes total expert
//! utility under the per-participant capacity `B_tune_i` (Eq. 4), where
//! utility is a gradient-magnitude × data-utilization signal (Eq. 3).
//! Because only previously-selected experts have fresh gradients, the
//! assigner mixes exploitation (top-utility experts) with exploration
//! (randomly sampled experts whose utility is refreshed with a cheap
//! forward-only gradient estimate), and the exploitation share ε grows as
//! training progresses.

use std::collections::{HashMap, HashSet};

use serde::{Deserialize, Serialize};

use flux_data::Sample;
use flux_moe::{ActivationProfile, ExpertGrad, ExpertKey, MoeModel};
use flux_tensor::{stats, SeededRng};

/// Expert utility (Eq. 3): `u_e = |D_e| · sqrt(mean per-token gradient
/// magnitude)`.
///
/// `|D_e|` is the number of local samples routed through the expert (data
/// utilization) and the gradient term measures how much the expert would
/// move if trained. Both pieces come for free: the sample sets from the
/// profiling module and the gradients from the previous round's training
/// (or from forward-only estimation for exploration experts).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExpertUtility {
    /// The expert this utility describes (original/global id).
    pub key: ExpertKey,
    /// Utility value; higher means more useful to tune.
    pub value: f32,
    /// Whether the value came from true backpropagation (exploitation) or a
    /// forward-only estimate (exploration).
    pub estimated: bool,
}

/// Computes the utility of an expert from its gradient and data utilization.
pub fn expert_utility(key: ExpertKey, grad: &ExpertGrad, samples_routed: usize) -> ExpertUtility {
    let tokens = grad.token_count.max(1) as f32;
    let mean_grad_magnitude = grad.norm() / tokens.sqrt();
    ExpertUtility {
        key,
        value: samples_routed as f32 * mean_grad_magnitude,
        estimated: false,
    }
}

/// Initial utility used in round 0, before any gradients exist: the
/// normalized activation frequency (the paper initializes `u = Norm(a)`).
pub fn initial_utilities(profile: &ActivationProfile) -> Vec<ExpertUtility> {
    let mut utilities = Vec::new();
    for layer in 0..profile.num_layers() {
        let normalized = stats::min_max_normalize(&profile.frequencies[layer]);
        for (expert, &value) in normalized.iter().enumerate() {
            utilities.push(ExpertUtility {
                key: ExpertKey::new(layer, expert),
                value,
                estimated: true,
            });
        }
    }
    utilities
}

/// Schedule for the exploitation share ε.
///
/// ε is the fraction of the selected experts chosen by utility
/// (exploitation); the remaining `1 − ε` are random exploration picks. Flux
/// grows ε over rounds as utility estimates become reliable.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DynamicEpsilon {
    /// ε used in the first round.
    pub start: f32,
    /// Upper bound ε approaches.
    pub end: f32,
    /// Increase per round.
    pub step: f32,
}

impl DynamicEpsilon {
    /// The paper's dynamic schedule: start exploring heavily (ε = 0.3) and
    /// end almost fully exploiting (ε = 0.9).
    pub fn paper_default() -> Self {
        Self {
            start: 0.3,
            end: 0.9,
            step: 0.1,
        }
    }

    /// A fixed ε (the ablation baselines of Fig. 19).
    pub fn fixed(epsilon: f32) -> Self {
        Self {
            start: epsilon,
            end: epsilon,
            step: 0.0,
        }
    }

    /// ε for the given round.
    pub fn at_round(&self, round: usize) -> f32 {
        (self.start + self.step * round as f32)
            .clamp(self.start.min(self.end), self.start.max(self.end))
    }
}

/// The assignment produced for one participant in one round.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoleAssignment {
    /// Experts selected for exploitation (highest utility).
    pub exploitation: Vec<ExpertKey>,
    /// Experts selected for exploration (random refresh of utility).
    pub exploration: Vec<ExpertKey>,
}

impl RoleAssignment {
    /// All tuning experts (exploitation ∪ exploration).
    pub fn tuning_set(&self) -> HashSet<ExpertKey> {
        self.exploitation
            .iter()
            .chain(self.exploration.iter())
            .copied()
            .collect()
    }

    /// Number of tuning experts.
    pub fn len(&self) -> usize {
        self.exploitation.len() + self.exploration.len()
    }

    /// True when no expert was assigned.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Server-side role assigner (Algorithm 1).
#[derive(Debug, Clone)]
pub struct RoleAssigner {
    epsilon: DynamicEpsilon,
    /// Latest known utility per (participant, expert).
    utilities: HashMap<usize, HashMap<ExpertKey, ExpertUtility>>,
}

impl RoleAssigner {
    /// Creates an assigner with the given ε schedule.
    pub fn new(epsilon: DynamicEpsilon) -> Self {
        Self {
            epsilon,
            utilities: HashMap::new(),
        }
    }

    /// The ε schedule in use.
    pub fn epsilon(&self) -> DynamicEpsilon {
        self.epsilon
    }

    /// Records utilities reported by a participant (overwrites previous
    /// values for the same experts).
    pub fn report_utilities(&mut self, participant: usize, utilities: &[ExpertUtility]) {
        let entry = self.utilities.entry(participant).or_default();
        for &u in utilities {
            entry.insert(u.key, u);
        }
    }

    /// Latest utility table for a participant.
    pub fn utilities_of(&self, participant: usize) -> Option<&HashMap<ExpertKey, ExpertUtility>> {
        self.utilities.get(&participant)
    }

    /// Every recorded utility, sorted by `(participant, layer, expert)` —
    /// a canonical order, so a checkpoint of the table is byte-stable no
    /// matter what order reports arrived in.
    pub fn export_utilities(&self) -> Vec<(usize, ExpertUtility)> {
        let mut all: Vec<(usize, ExpertUtility)> = self
            .utilities
            .iter()
            .flat_map(|(&pid, table)| table.values().map(move |&u| (pid, u)))
            .collect();
        all.sort_by_key(|(pid, u)| (*pid, u.key.layer, u.key.expert));
        all
    }

    /// Rebuilds an assigner from checkpointed state: the ε schedule plus
    /// the utility table exported by [`RoleAssigner::export_utilities`].
    pub fn from_utilities(
        epsilon: DynamicEpsilon,
        utilities: impl IntoIterator<Item = (usize, ExpertUtility)>,
    ) -> Self {
        let mut assigner = Self::new(epsilon);
        for (pid, u) in utilities {
            assigner.utilities.entry(pid).or_default().insert(u.key, u);
        }
        assigner
    }

    /// Runs Algorithm 1 for one participant.
    ///
    /// * Solves the per-participant budgeted selection (Eq. 4): take the
    ///   `B_tune_i` experts with the highest known utility as candidates
    ///   `E_i` (the per-participant constraint makes the greedy choice
    ///   optimal).
    /// * Splits the budget into `ε·|E_i|` exploitation picks (highest
    ///   utility) and `(1-ε)·|E_i|` exploration picks drawn uniformly from
    ///   experts *not* in the candidate set, refreshing their utility
    ///   estimates over time.
    pub fn assign(
        &self,
        participant: usize,
        all_experts: &[ExpertKey],
        tuning_budget: usize,
        round: usize,
        rng: &mut SeededRng,
    ) -> RoleAssignment {
        self.assign_with_table(
            self.utilities.get(&participant),
            all_experts,
            tuning_budget,
            round,
            rng,
        )
    }

    /// Runs Algorithm 1 against an explicit utility table.
    ///
    /// This is the read-only core of [`RoleAssigner::assign`]: passing the
    /// table directly lets a participant running on a worker thread assign
    /// against freshly bootstrapped utilities without mutating the shared
    /// assigner mid-round (the bootstrap is reported back to the server in
    /// participant-id order once the round joins).
    pub fn assign_with_table(
        &self,
        table: Option<&HashMap<ExpertKey, ExpertUtility>>,
        all_experts: &[ExpertKey],
        tuning_budget: usize,
        round: usize,
        rng: &mut SeededRng,
    ) -> RoleAssignment {
        if tuning_budget == 0 || all_experts.is_empty() {
            return RoleAssignment {
                exploitation: Vec::new(),
                exploration: Vec::new(),
            };
        }
        let budget = tuning_budget.min(all_experts.len());
        // Rank all experts by known utility (unknown experts rank last but
        // above nothing, so they are reachable through exploration).
        let mut ranked: Vec<(ExpertKey, f32)> = all_experts
            .iter()
            .map(|&k| {
                let value = table
                    .and_then(|t| t.get(&k))
                    .map(|u| u.value)
                    .unwrap_or(0.0);
                (k, value)
            })
            .collect();
        ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        let candidates: Vec<ExpertKey> = ranked.iter().take(budget).map(|&(k, _)| k).collect();

        let epsilon = self.epsilon.at_round(round);
        let exploit_count = ((budget as f32) * epsilon).round() as usize;
        let exploit_count = exploit_count.min(budget);
        let explore_count = budget - exploit_count;

        let exploitation: Vec<ExpertKey> = candidates[..exploit_count].to_vec();
        // Exploration pool: experts outside the candidate set.
        let candidate_set: HashSet<ExpertKey> = candidates.iter().copied().collect();
        let mut pool: Vec<ExpertKey> = all_experts
            .iter()
            .copied()
            .filter(|k| !candidate_set.contains(k))
            .collect();
        rng.shuffle(&mut pool);
        let mut exploration: Vec<ExpertKey> = pool.into_iter().take(explore_count).collect();
        // If the pool was too small (budget ≈ all experts), fall back to the
        // remaining candidates so the budget is still used.
        let mut next_candidate = exploit_count;
        while exploration.len() < explore_count && next_candidate < candidates.len() {
            exploration.push(candidates[next_candidate]);
            next_candidate += 1;
        }
        RoleAssignment {
            exploitation,
            exploration,
        }
    }
}

/// Forward-only gradient estimation for exploration experts (§6.2).
///
/// Instead of running backpropagation, the expert's parameters are perturbed
/// with Gaussian noise and the loss difference over a handful of samples is
/// used to estimate the gradient direction (simultaneous-perturbation /
/// zeroth-order estimation, as in BAFFLE and FwdLLM). Only the estimated
/// *gradient* is produced — parameters are never updated from it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ForwardGradEstimator {
    /// Standard deviation of the parameter perturbations.
    pub sigma: f32,
    /// Number of perturbation pairs averaged.
    pub num_perturbations: usize,
    /// Samples drawn from the local shard per loss evaluation.
    pub samples_per_eval: usize,
}

impl Default for ForwardGradEstimator {
    fn default() -> Self {
        Self {
            sigma: 0.02,
            num_perturbations: 4,
            samples_per_eval: 2,
        }
    }
}

impl ForwardGradEstimator {
    /// Estimates the gradient of one expert with forward passes only.
    ///
    /// Returns a flattened gradient estimate over the expert's parameters
    /// (same layout as [`ExpertGrad::flatten`]) and the mean loss observed.
    pub fn estimate(
        &self,
        model: &MoeModel,
        expert: ExpertKey,
        samples: &[Sample],
        rng: &mut SeededRng,
    ) -> (Vec<f32>, f32) {
        let mut work_model = model.clone();
        self.estimate_in_place(&mut work_model, expert, samples, rng)
    }

    /// [`ForwardGradEstimator::estimate`] without the defensive model copy:
    /// the target expert is perturbed in place and restored exactly before
    /// returning, so a caller owning a mutable (compact) model pays no
    /// full-model clone per estimated expert.
    pub fn estimate_in_place(
        &self,
        model: &mut MoeModel,
        expert: ExpertKey,
        samples: &[Sample],
        rng: &mut SeededRng,
    ) -> (Vec<f32>, f32) {
        let base_expert = model.expert(expert).clone();
        let dims = base_expert.num_params();
        let mut grad = vec![0.0f32; dims];
        if samples.is_empty() || self.num_perturbations == 0 {
            return (grad, 0.0);
        }
        let eval_samples: Vec<&Sample> =
            samples.iter().take(self.samples_per_eval.max(1)).collect();
        let mut mean_loss = 0.0;
        let mut evaluations = 0.0f32;
        // One reusable direction buffer; the plus/minus experts are written
        // in place over the model's expert (no per-perturbation clones).
        let mut direction = vec![0.0f32; dims];
        for _ in 0..self.num_perturbations {
            // Draw a perturbation direction over all expert parameters.
            for d in &mut direction {
                *d = rng.normal();
            }
            model
                .expert_mut(expert)
                .assign_perturbed(&base_expert, &direction, self.sigma);
            let loss_plus = mean_loss_of(model, &eval_samples);
            model
                .expert_mut(expert)
                .assign_perturbed(&base_expert, &direction, -self.sigma);
            let loss_minus = mean_loss_of(model, &eval_samples);
            mean_loss += 0.5 * (loss_plus + loss_minus);
            evaluations += 1.0;

            // Central-difference directional derivative projected back onto
            // the perturbation direction.
            let directional = (loss_plus - loss_minus) / (2.0 * self.sigma);
            for (g, &d) in grad.iter_mut().zip(direction.iter()) {
                *g += directional * d / self.num_perturbations as f32;
            }
        }
        // Restore the unperturbed parameters bit-exactly.
        model.expert_mut(expert).copy_from(&base_expert);
        (grad, mean_loss / evaluations.max(1.0))
    }

    /// Estimates the *utility* of an exploration expert: the estimated
    /// gradient magnitude combined with data utilization, mirroring Eq. 3.
    pub fn estimate_utility(
        &self,
        model: &MoeModel,
        expert: ExpertKey,
        samples: &[Sample],
        samples_routed: usize,
        rng: &mut SeededRng,
    ) -> ExpertUtility {
        let mut work_model = model.clone();
        self.estimate_utility_in_place(&mut work_model, expert, samples, samples_routed, rng)
    }

    /// [`ForwardGradEstimator::estimate_utility`] without the defensive
    /// model copy (see [`ForwardGradEstimator::estimate_in_place`]).
    pub fn estimate_utility_in_place(
        &self,
        model: &mut MoeModel,
        expert: ExpertKey,
        samples: &[Sample],
        samples_routed: usize,
        rng: &mut SeededRng,
    ) -> ExpertUtility {
        let (grad, _) = self.estimate_in_place(model, expert, samples, rng);
        let magnitude = stats::l2_norm(&grad) / (grad.len().max(1) as f32).sqrt();
        ExpertUtility {
            key: expert,
            value: samples_routed as f32 * magnitude,
            estimated: true,
        }
    }
}

fn mean_loss_of(model: &MoeModel, samples: &[&Sample]) -> f32 {
    // One packed forward over all evaluation samples (see
    // `MoeModel::batch_loss`) instead of one forward per sample.
    model.batch_loss(samples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use flux_data::{DatasetGenerator, DatasetKind};
    use flux_moe::{ExpertGrad, MoeConfig};

    fn model_and_data() -> (MoeModel, flux_data::Dataset) {
        let mut rng = SeededRng::new(1);
        let model = MoeModel::new(MoeConfig::tiny().with_classes(8), &mut rng);
        let cfg = flux_data::DatasetConfig::for_kind(DatasetKind::Gsm8k, 64)
            .with_num_samples(10)
            .with_mean_seq_len(8);
        let data = DatasetGenerator::new(cfg).generate(&mut rng);
        (model, data)
    }

    #[test]
    fn utility_scales_with_data_and_gradient() {
        let mut grad = ExpertGrad::zeros(4, 8);
        grad.w1.set(0, 0, 2.0);
        grad.token_count = 4;
        let small = expert_utility(ExpertKey::new(0, 0), &grad, 5);
        let big_data = expert_utility(ExpertKey::new(0, 0), &grad, 50);
        assert!(big_data.value > small.value);
        let mut bigger_grad = grad.clone();
        bigger_grad.w1.set(0, 0, 8.0);
        let big_grad = expert_utility(ExpertKey::new(0, 0), &bigger_grad, 5);
        assert!(big_grad.value > small.value);
        assert!(!small.estimated);
    }

    #[test]
    fn initial_utilities_follow_activation_frequency() {
        let (model, data) = model_and_data();
        let profile = model.profile(&data);
        let utilities = initial_utilities(&profile);
        assert_eq!(utilities.len(), 32);
        // The most frequent expert of layer 0 has the maximum (1.0) utility.
        let layer0: Vec<&ExpertUtility> = utilities.iter().filter(|u| u.key.layer == 0).collect();
        let max = layer0
            .iter()
            .max_by(|a, b| a.value.partial_cmp(&b.value).unwrap())
            .unwrap();
        let best_freq = stats::argmax(&profile.frequencies[0]).unwrap();
        assert_eq!(max.key.expert, best_freq);
        assert!(utilities.iter().all(|u| u.estimated));
    }

    #[test]
    fn dynamic_epsilon_grows_and_clamps() {
        let eps = DynamicEpsilon::paper_default();
        assert!((eps.at_round(0) - 0.3).abs() < 1e-6);
        assert!(eps.at_round(3) > eps.at_round(1));
        assert!((eps.at_round(100) - 0.9).abs() < 1e-6);
        let fixed = DynamicEpsilon::fixed(0.7);
        assert_eq!(fixed.at_round(0), 0.7);
        assert_eq!(fixed.at_round(50), 0.7);
    }

    #[test]
    fn assignment_respects_budget_and_disjointness() {
        let (model, data) = model_and_data();
        let profile = model.profile(&data);
        let mut assigner = RoleAssigner::new(DynamicEpsilon::paper_default());
        assigner.report_utilities(0, &initial_utilities(&profile));
        let all = model.expert_keys();
        let mut rng = SeededRng::new(2);
        let assignment = assigner.assign(0, &all, 8, 0, &mut rng);
        assert_eq!(assignment.len(), 8);
        let set = assignment.tuning_set();
        assert_eq!(
            set.len(),
            8,
            "exploitation and exploration must not overlap"
        );
        // ε = 0.3 at round 0: ~2-3 exploitation picks, rest exploration.
        assert!(assignment.exploitation.len() <= 3);
        assert!(!assignment.exploration.is_empty());
    }

    #[test]
    fn later_rounds_exploit_more() {
        let (model, data) = model_and_data();
        let profile = model.profile(&data);
        let mut assigner = RoleAssigner::new(DynamicEpsilon::paper_default());
        assigner.report_utilities(0, &initial_utilities(&profile));
        let all = model.expert_keys();
        let early = assigner.assign(0, &all, 10, 0, &mut SeededRng::new(3));
        let late = assigner.assign(0, &all, 10, 10, &mut SeededRng::new(3));
        assert!(late.exploitation.len() > early.exploitation.len());
    }

    #[test]
    fn exploitation_picks_highest_utility_experts() {
        let mut assigner = RoleAssigner::new(DynamicEpsilon::fixed(1.0));
        let all: Vec<ExpertKey> = (0..10).map(|e| ExpertKey::new(0, e)).collect();
        let utilities: Vec<ExpertUtility> = all
            .iter()
            .enumerate()
            .map(|(i, &key)| ExpertUtility {
                key,
                value: i as f32,
                estimated: false,
            })
            .collect();
        assigner.report_utilities(3, &utilities);
        let assignment = assigner.assign(3, &all, 3, 5, &mut SeededRng::new(4));
        // With ε = 1.0 everything is exploitation: the top-3 utilities are
        // experts 9, 8, 7.
        let chosen: HashSet<usize> = assignment.exploitation.iter().map(|k| k.expert).collect();
        assert_eq!(chosen, HashSet::from([9, 8, 7]));
        assert!(assignment.exploration.is_empty());
    }

    #[test]
    fn unknown_participant_still_gets_assignment() {
        let assigner = RoleAssigner::new(DynamicEpsilon::fixed(0.5));
        let all: Vec<ExpertKey> = (0..6).map(|e| ExpertKey::new(0, e)).collect();
        let assignment = assigner.assign(42, &all, 4, 0, &mut SeededRng::new(5));
        assert_eq!(assignment.len(), 4);
    }

    #[test]
    fn zero_budget_gives_empty_assignment() {
        let assigner = RoleAssigner::new(DynamicEpsilon::paper_default());
        let all: Vec<ExpertKey> = (0..6).map(|e| ExpertKey::new(0, e)).collect();
        let assignment = assigner.assign(0, &all, 0, 0, &mut SeededRng::new(6));
        assert!(assignment.is_empty());
    }

    #[test]
    fn forward_estimate_correlates_with_true_gradient() {
        // Fig. 18: the forward-only estimate should point in a direction
        // similar to the backpropagated gradient (cosine distance well below
        // the ~1.0 expected of random vectors).
        let (model, data) = model_and_data();
        let expert = ExpertKey::new(0, 0);
        let mut tuning = HashSet::new();
        tuning.insert(expert);
        let grads = model.batch_gradients(&data.samples[..4], Some(&tuning));
        let Some(true_grad) = grads.expert_grads.get(&expert) else {
            // Expert never activated in this tiny setup; nothing to compare.
            return;
        };
        let estimator = ForwardGradEstimator {
            sigma: 0.02,
            num_perturbations: 24,
            samples_per_eval: 4,
        };
        let mut rng = SeededRng::new(7);
        let (estimate, _) = estimator.estimate(&model, expert, &data.samples[..4], &mut rng);
        let distance = stats::cosine_distance(&estimate, &true_grad.flatten());
        assert!(
            distance < 0.95,
            "estimate should beat a random direction: distance {distance}"
        );
    }

    #[test]
    fn forward_estimate_empty_samples_is_zero() {
        let (model, _) = model_and_data();
        let estimator = ForwardGradEstimator::default();
        let mut rng = SeededRng::new(8);
        let (grad, loss) = estimator.estimate(&model, ExpertKey::new(0, 0), &[], &mut rng);
        assert!(grad.iter().all(|&g| g == 0.0));
        assert_eq!(loss, 0.0);
    }

    #[test]
    fn estimate_utility_is_positive_for_active_expert() {
        let (model, data) = model_and_data();
        let estimator = ForwardGradEstimator::default();
        let mut rng = SeededRng::new(9);
        let utility = estimator.estimate_utility(
            &model,
            ExpertKey::new(0, 0),
            &data.samples[..2],
            12,
            &mut rng,
        );
        assert!(utility.estimated);
        assert!(utility.value >= 0.0);
    }
}
