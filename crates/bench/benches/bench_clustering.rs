//! Criterion bench backing Figure 16: per-layer versus fused clustering of
//! 128 non-tuning experts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use flux_core::merging::{cluster_non_tuning_experts, ClusteringMode};
use flux_moe::{MoeConfig, MoeModel};
use flux_tensor::SeededRng;

fn clustering(c: &mut Criterion) {
    let config = MoeConfig::small();
    let mut rng = SeededRng::new(2);
    let model = MoeModel::new(config.clone(), &mut rng);
    let non_tuning: Vec<Vec<usize>> = (0..config.num_layers)
        .map(|l| (0..config.experts_in_layer(l)).collect())
        .collect();
    let budgets = vec![4usize; config.num_layers];

    let mut group = c.benchmark_group("fig16_clustering");
    for (label, mode) in [
        ("per_layer", ClusteringMode::PerLayer),
        ("fused", ClusteringMode::Fused),
    ] {
        group.bench_with_input(BenchmarkId::new("cluster_128", label), &mode, |b, &mode| {
            b.iter(|| {
                cluster_non_tuning_experts(
                    &model,
                    &non_tuning,
                    &budgets,
                    mode,
                    8,
                    &mut SeededRng::new(3),
                )
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = clustering
}
criterion_main!(benches);
