//! Simulated clock and per-phase time accounting.

use serde::{Deserialize, Serialize};

use crate::cost::RoundCostBreakdown;

/// Accumulated per-phase times over a whole federated run, in seconds.
///
/// This is the data behind the paper's overhead breakdown (Fig. 20) and the
/// stale-profiling round-time comparison (Fig. 14).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct PhaseTimes {
    /// Quantization + profiling.
    pub profiling_s: f64,
    /// Non-tuning expert merging.
    pub merging_s: f64,
    /// Expert role assignment.
    pub assignment_s: f64,
    /// Local fine-tuning.
    pub fine_tuning_s: f64,
    /// Expert offloading traffic.
    pub offloading_s: f64,
    /// Communication with the parameter server.
    pub communication_s: f64,
}

impl PhaseTimes {
    /// Adds a per-round breakdown into the running totals.
    pub fn accumulate(&mut self, round: &RoundCostBreakdown) {
        self.profiling_s += round.profiling_s;
        self.merging_s += round.merging_s;
        self.assignment_s += round.assignment_s;
        self.fine_tuning_s += round.fine_tuning_s;
        self.offloading_s += round.offloading_s;
        self.communication_s += round.communication_s;
    }

    /// Total seconds across all phases.
    pub fn total_s(&self) -> f64 {
        self.profiling_s
            + self.merging_s
            + self.assignment_s
            + self.fine_tuning_s
            + self.offloading_s
            + self.communication_s
    }

    /// Fraction of the total spent per phase, as
    /// `(profiling, merging, assignment, fine_tuning + offloading + comm)`.
    ///
    /// Matches the four-way split of the paper's Fig. 20 (offloading and
    /// communication are folded into fine-tuning there).
    pub fn fractions(&self) -> (f64, f64, f64, f64) {
        let total = self.total_s().max(f64::EPSILON);
        (
            self.profiling_s / total,
            self.merging_s / total,
            self.assignment_s / total,
            (self.fine_tuning_s + self.offloading_s + self.communication_s) / total,
        )
    }
}

/// Simulated wall clock for one federated run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct SimClock {
    elapsed_s: f64,
}

impl SimClock {
    /// Creates a clock at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Restores a clock at an already-elapsed point in time (checkpoint
    /// recovery).
    ///
    /// # Panics
    ///
    /// Panics on negative or non-finite elapsed times.
    pub fn from_elapsed_s(elapsed_s: f64) -> Self {
        assert!(
            elapsed_s.is_finite() && elapsed_s >= 0.0,
            "invalid elapsed time {elapsed_s}"
        );
        Self { elapsed_s }
    }

    /// Advances the clock by `seconds`.
    ///
    /// # Panics
    ///
    /// Panics on negative or non-finite durations, which would silently
    /// corrupt every downstream time-to-accuracy number.
    pub fn advance_s(&mut self, seconds: f64) {
        assert!(
            seconds.is_finite() && seconds >= 0.0,
            "invalid duration {seconds}"
        );
        self.elapsed_s += seconds;
    }

    /// Advances the clock by one federated round and returns the seconds
    /// this round contributed to the timeline.
    ///
    /// `critical_path_s` is the slowest participant's local round;
    /// `server_tail_s` is the server-side work after the last upload
    /// (aggregation latency). In the barriered schedule the tail always
    /// elapses before the next round starts. In the pipelined schedule the
    /// tail of every round but the last is hidden behind the next round's
    /// participant dispatch (`overlapped = true`), which is exactly the
    /// paper's overlap claim expressed in simulated time: only the final
    /// round pays its server tail on the critical path.
    pub fn advance_round_s(
        &mut self,
        critical_path_s: f64,
        server_tail_s: f64,
        overlapped: bool,
    ) -> f64 {
        let round_s = if overlapped {
            critical_path_s
        } else {
            critical_path_s + server_tail_s
        };
        self.advance_s(round_s);
        round_s
    }

    /// Elapsed simulated seconds.
    pub fn elapsed_s(&self) -> f64 {
        self.elapsed_s
    }

    /// Elapsed simulated hours.
    pub fn elapsed_hours(&self) -> f64 {
        self.elapsed_s / 3600.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_accumulates_and_converts() {
        let mut clock = SimClock::new();
        assert_eq!(clock.elapsed_s(), 0.0);
        clock.advance_s(1800.0);
        clock.advance_s(1800.0);
        assert_eq!(clock.elapsed_s(), 3600.0);
        assert!((clock.elapsed_hours() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "invalid duration")]
    fn clock_rejects_negative_durations() {
        SimClock::new().advance_s(-1.0);
    }

    #[test]
    #[should_panic(expected = "invalid duration")]
    fn clock_rejects_nan() {
        SimClock::new().advance_s(f64::NAN);
    }

    #[test]
    fn advance_round_hides_server_tail_only_when_overlapped() {
        let mut clock = SimClock::new();
        assert_eq!(clock.advance_round_s(10.0, 1.0, true), 10.0);
        assert_eq!(clock.advance_round_s(10.0, 1.0, false), 11.0);
        assert_eq!(clock.elapsed_s(), 21.0);
    }

    #[test]
    fn phase_times_accumulate_and_fraction() {
        let mut phases = PhaseTimes::default();
        phases.accumulate(&RoundCostBreakdown {
            profiling_s: 10.0,
            merging_s: 5.0,
            assignment_s: 5.0,
            fine_tuning_s: 70.0,
            offloading_s: 5.0,
            communication_s: 5.0,
        });
        assert_eq!(phases.total_s(), 100.0);
        let (p, m, a, f) = phases.fractions();
        assert!((p - 0.10).abs() < 1e-9);
        assert!((m - 0.05).abs() < 1e-9);
        assert!((a - 0.05).abs() < 1e-9);
        assert!((f - 0.80).abs() < 1e-9);
    }

    #[test]
    fn empty_phase_times_fraction_is_finite() {
        let (p, m, a, f) = PhaseTimes::default().fractions();
        assert!(p.is_finite() && m.is_finite() && a.is_finite() && f.is_finite());
    }
}
