//! The multi-tenant parameter server.
//!
//! A [`ParameterServer`] hosts any number of *tenants* — independent
//! federated jobs, each with its own global model held in a per-shard
//! locked [`ShardedStore`]. Tenants never share mutable state: two
//! concurrent runs aggregate into disjoint stores, and even within one
//! tenant a round's per-shard reductions install under per-shard locks, so
//! nothing serializes on a model-wide write lock anymore (the scaling wall
//! this type used to have).
//!
//! The original single-run surface (`global_model`, `with_global`,
//! `begin_round`/`apply_round`, `aggregate`, …) is preserved by delegating
//! to the **primary tenant** (tenant 0, registered at construction), so
//! standalone drivers and existing tests are unaffected; the concurrent-run
//! scheduler registers one tenant per job instead.

use parking_lot::RwLock;
use std::sync::Arc;

use flux_moe::{ExpertKey, MoeModel};
use flux_tensor::Matrix;
use threadpool::ThreadPool;

use crate::aggregate::{AggregationTree, ExpertUpdate, ShardedAggregator};
use crate::store::ShardedStore;

/// Default number of expert shards a server partitions each tenant's
/// storage and aggregation into. Shards bound lock granularity during
/// incremental staging, the fan-out width of the parallel finalize, and the
/// write-lock granularity of the store install; the tiny/small presets have
/// dozens of experts, so eight shards keeps every shard populated without
/// contention.
pub const DEFAULT_SHARDS: usize = 8;

/// Central parameter server of the federated system.
///
/// Holds one [`ShardedStore`] per registered tenant and aggregates expert
/// updates with FedAvg. Aggregation is *sharded and incremental*:
/// [`ParameterServer::begin_round`] opens a [`ShardedAggregator`] that
/// participants (or the driver acting for them) feed as their uploads
/// arrive — from any thread, in any order — and
/// [`ParameterServer::apply_round`] reduces shard *i* and installs it under
/// the store's shard-*i* lock alone, so the global model is bit-identical
/// to the barriered one-shot aggregation no matter how updates arrived and
/// no lock covers the whole model. Interior mutability allows the
/// participant simulation to run on worker threads while the server stays
/// shared.
#[derive(Debug)]
pub struct ParameterServer {
    num_shards: usize,
    tenants: RwLock<Vec<Arc<ShardedStore>>>,
}

impl ParameterServer {
    /// Creates a server whose primary tenant holds `global_model`, with
    /// [`DEFAULT_SHARDS`] shards.
    pub fn new(global_model: MoeModel) -> Self {
        Self::with_shards(global_model, DEFAULT_SHARDS)
    }

    /// Creates a server with an explicit per-tenant shard count
    /// (minimum 1).
    pub fn with_shards(global_model: MoeModel, num_shards: usize) -> Self {
        let server = Self::empty(num_shards);
        server.register_tenant(global_model);
        server
    }

    /// Creates a server with no tenants yet; the concurrent-run scheduler
    /// registers one per job. The single-tenant convenience API panics
    /// until the first registration.
    pub fn empty(num_shards: usize) -> Self {
        Self {
            num_shards: num_shards.max(1),
            tenants: RwLock::new(Vec::new()),
        }
    }

    /// Registers a new tenant around its initial global model and returns
    /// its store. The handle is how the tenant's run reads snapshots and
    /// applies rounds; no other tenant's locks are ever touched through it.
    pub fn register_tenant(&self, global_model: MoeModel) -> Arc<ShardedStore> {
        let store = Arc::new(ShardedStore::new(global_model, self.num_shards));
        self.tenants.write().push(Arc::clone(&store));
        store
    }

    /// Adopts an existing store — one restored from a durable checkpoint —
    /// as a tenant, instead of building a fresh one from a model.
    ///
    /// # Panics
    ///
    /// Panics when the store's shard count differs from the server's: a
    /// checkpoint taken under one sharding cannot be served under another
    /// (shard routing would disagree with the on-disk layout).
    pub fn adopt_tenant(&self, store: Arc<ShardedStore>) -> Arc<ShardedStore> {
        assert_eq!(
            store.num_shards(),
            self.num_shards,
            "restored store sharding must match the server"
        );
        self.tenants.write().push(Arc::clone(&store));
        store
    }

    /// The store of one tenant by registration index.
    ///
    /// # Panics
    ///
    /// Panics when no tenant with that index exists.
    pub fn tenant(&self, index: usize) -> Arc<ShardedStore> {
        Arc::clone(&self.tenants.read()[index])
    }

    /// Removes a tenant from the registry (matched by store identity),
    /// releasing the server's reference to its model. Returns whether the
    /// store was registered. A long-lived server hosting a stream of jobs
    /// must deregister each finished tenant or its models accumulate; the
    /// concurrent-run scheduler does this as each job completes. Callers
    /// holding their own `Arc` keep the store alive regardless.
    pub fn deregister_tenant(&self, store: &Arc<ShardedStore>) -> bool {
        let mut tenants = self.tenants.write();
        match tenants.iter().position(|t| Arc::ptr_eq(t, store)) {
            Some(index) => {
                tenants.remove(index);
                true
            }
            None => false,
        }
    }

    /// Number of registered tenants.
    pub fn num_tenants(&self) -> usize {
        self.tenants.read().len()
    }

    /// Number of expert shards per tenant.
    pub fn num_shards(&self) -> usize {
        self.num_shards
    }

    /// The primary tenant (tenant 0), which the single-run legacy API
    /// delegates to.
    fn primary(&self) -> Arc<ShardedStore> {
        self.tenant(0)
    }

    /// A full copy of the primary tenant's current global model (what a
    /// participant downloads at the start of a round).
    pub fn global_model(&self) -> MoeModel {
        self.primary().global_model()
    }

    /// Runs `f` against the primary tenant's current global model without
    /// cloning it. The model is a materialized snapshot shared through an
    /// `Arc`; no store lock is held while `f` runs, so concurrent tenants
    /// (and even this tenant's next aggregation) proceed undisturbed.
    pub fn with_global<R>(&self, f: impl FnOnce(&MoeModel) -> R) -> R {
        self.primary().with_global(f)
    }

    /// Number of aggregation rounds applied to the primary tenant.
    pub fn rounds_completed(&self) -> usize {
        self.primary().rounds_completed()
    }

    /// Opens the incremental aggregator for one round of the primary
    /// tenant. Participant uploads are staged into it as they arrive;
    /// [`ParameterServer::apply_round`] closes the round.
    pub fn begin_round(&self) -> ShardedAggregator {
        self.primary().begin_round()
    }

    /// Closes a round of the primary tenant: reduces the staged shards
    /// (fanning out to `pool`) and installs each shard's aggregated experts
    /// under that shard's lock. Experts nobody updated keep their previous
    /// global parameters.
    pub fn apply_round(&self, aggregator: &ShardedAggregator, pool: &ThreadPool) {
        self.primary().apply_round(aggregator, pool);
    }

    /// Opens a *two-level* round of the primary tenant: `num_edges` edge
    /// aggregators pre-reduce their cohort slice (shard bucketing, payload
    /// decode/validation, duplicate rejection) before the root reduces into
    /// the store. `num_edges <= 1` degenerates to the flat
    /// [`ParameterServer::begin_round`]; any edge count produces a
    /// bit-identical global model, because edges forward `(pid, update)`
    /// pairs and the root reduces in pid order either way.
    pub fn begin_tree_round(&self, num_edges: usize) -> AggregationTree {
        AggregationTree::new(self.begin_round(), num_edges)
    }

    /// Closes a two-level round of the primary tenant: collapses the edge
    /// aggregators into the root and installs the reduced shards exactly
    /// like [`ParameterServer::apply_round`].
    pub fn apply_tree_round(&self, tree: &AggregationTree, pool: &ThreadPool) {
        self.apply_round(tree.collapse(), pool);
    }

    /// Applies one round of FedAvg aggregation to the primary tenant in a
    /// single call (the barriered path): the borrowed updates go straight
    /// through the one-shot kernels, copy-free.
    ///
    /// `expert_updates` carries the fine-tuned expert parameters from every
    /// participant (original/global expert ids) in participant-id order;
    /// `head_updates` carries the task-head matrices with their weights.
    /// The incremental sharded path reduces each shard with these same
    /// kernels in participant-id order, and their equality is pinned by
    /// `incremental_round_matches_one_shot_aggregate` below plus the
    /// `sharded_incremental_matches_one_shot_fedavg` property test.
    pub fn aggregate(&self, expert_updates: &[ExpertUpdate], head_updates: &[(Matrix, f32)]) {
        self.primary().aggregate(expert_updates, head_updates);
    }

    /// Convenience: read one expert's current parameters from the primary
    /// tenant (a single per-shard read lock).
    pub fn expert(&self, key: ExpertKey) -> flux_moe::Expert {
        self.primary().expert(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flux_moe::MoeConfig;
    use flux_tensor::SeededRng;

    fn server() -> ParameterServer {
        let mut rng = SeededRng::new(1);
        ParameterServer::new(MoeModel::new(MoeConfig::tiny(), &mut rng))
    }

    #[test]
    fn aggregate_replaces_updated_experts_only() {
        let server = server();
        let before = server.global_model();
        let key = ExpertKey::new(0, 0);
        let untouched = ExpertKey::new(3, 7);
        let mut rng = SeededRng::new(2);
        let new_expert = flux_moe::Expert::new(16, 32, &mut rng);
        server.aggregate(
            &[ExpertUpdate {
                key,
                expert: new_expert.clone(),
                weight: 1.0,
            }],
            &[],
        );
        let after = server.global_model();
        assert_eq!(after.expert(key), &new_expert);
        assert_eq!(after.expert(untouched), before.expert(untouched));
        assert_eq!(server.rounds_completed(), 1);
    }

    #[test]
    fn tree_round_installs_a_bit_identical_global_model() {
        let pool = ThreadPool::new(2);
        let mut rng = SeededRng::new(3);
        let uploads: Vec<(usize, ExpertUpdate)> = (0..6)
            .map(|pid| {
                let key = ExpertKey::new(pid % 2, pid % 4);
                let expert = flux_moe::Expert::new(16, 32, &mut rng);
                (
                    pid,
                    ExpertUpdate {
                        key,
                        expert,
                        weight: 1.0 + pid as f32,
                    },
                )
            })
            .collect();

        let flat_server = server();
        let flat = flat_server.begin_round();
        for (pid, u) in &uploads {
            assert!(flat.submit(*pid, vec![u.clone()], None));
        }
        flat_server.apply_round(&flat, &pool);

        let tree_server = server();
        let tree = tree_server.begin_tree_round(3);
        for (pid, u) in uploads.iter().rev() {
            assert!(tree.submit(*pid, vec![u.clone()], None));
        }
        tree_server.apply_tree_round(&tree, &pool);

        let a = flat_server.global_model();
        let b = tree_server.global_model();
        for key in a.expert_keys() {
            assert_eq!(a.expert(key), b.expert(key), "{key:?} diverged");
        }
        assert_eq!(a.lm_head, b.lm_head);
    }

    #[test]
    fn aggregate_updates_head() {
        let server = server();
        let shape = server.global_model().lm_head.shape();
        let new_head = Matrix::filled(shape.0, shape.1, 0.123);
        server.aggregate(&[], &[(new_head.clone(), 2.0)]);
        assert_eq!(server.global_model().lm_head, new_head);
    }

    #[test]
    fn mismatched_head_is_ignored() {
        let server = server();
        let before = server.global_model().lm_head.clone();
        server.aggregate(&[], &[(Matrix::filled(2, 2, 9.0), 1.0)]);
        assert_eq!(server.global_model().lm_head, before);
    }

    #[test]
    fn out_of_range_expert_update_is_ignored() {
        let server = server();
        let mut rng = SeededRng::new(3);
        let rogue = flux_moe::Expert::new(16, 32, &mut rng);
        server.aggregate(
            &[ExpertUpdate {
                key: ExpertKey::new(99, 99),
                expert: rogue,
                weight: 1.0,
            }],
            &[],
        );
        assert_eq!(server.rounds_completed(), 1);
    }

    #[test]
    fn expert_accessor_matches_model() {
        let server = server();
        let key = ExpertKey::new(1, 2);
        assert_eq!(&server.expert(key), server.global_model().expert(key));
    }

    #[test]
    fn with_global_avoids_clone_and_matches_model() {
        let server = server();
        let shape = server.with_global(|m| m.lm_head.shape());
        assert_eq!(shape, server.global_model().lm_head.shape());
    }

    #[test]
    fn incremental_round_matches_one_shot_aggregate() {
        // The same uploads through (a) the legacy one-shot `aggregate`
        // and (b) begin_round/submit-in-reverse-order/apply_round must
        // produce bit-identical global models.
        let mut rng = SeededRng::new(9);
        let a = server();
        let b = ParameterServer::with_shards(a.global_model(), 3);
        let uploads: Vec<(usize, ExpertUpdate, Matrix, f32)> = (0..4)
            .map(|pid| {
                let e = flux_moe::Expert::new(16, 32, &mut rng);
                let head_shape = a.global_model().lm_head.shape();
                let head = Matrix::filled(head_shape.0, head_shape.1, pid as f32 * 0.1);
                (
                    pid,
                    ExpertUpdate {
                        key: ExpertKey::new(0, pid),
                        expert: e,
                        weight: pid as f32 + 1.0,
                    },
                    head,
                    pid as f32 + 1.0,
                )
            })
            .collect();

        let expert_updates: Vec<ExpertUpdate> =
            uploads.iter().map(|(_, u, _, _)| u.clone()).collect();
        let head_updates: Vec<(Matrix, f32)> =
            uploads.iter().map(|(_, _, h, w)| (h.clone(), *w)).collect();
        a.aggregate(&expert_updates, &head_updates);

        let aggregator = b.begin_round();
        for (pid, update, head, weight) in uploads.iter().rev() {
            assert!(aggregator.submit(*pid, vec![update.clone()], Some((head.clone(), *weight))));
        }
        b.apply_round(&aggregator, &ThreadPool::new(4));

        let ma = a.global_model();
        let mb = b.global_model();
        assert_eq!(ma.lm_head, mb.lm_head);
        for key in ma.expert_keys() {
            assert_eq!(ma.expert(key), mb.expert(key), "{key:?} diverged");
        }
    }

    #[test]
    fn server_is_shareable_across_threads() {
        let server = std::sync::Arc::new(server());
        let mut handles = Vec::new();
        for t in 0..4 {
            let s = server.clone();
            handles.push(std::thread::spawn(move || {
                let mut rng = SeededRng::new(t);
                let e = flux_moe::Expert::new(16, 32, &mut rng);
                s.aggregate(
                    &[ExpertUpdate {
                        key: ExpertKey::new(0, t as usize),
                        expert: e,
                        weight: 1.0,
                    }],
                    &[],
                );
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(server.rounds_completed(), 4);
    }

    #[test]
    fn tenants_are_isolated() {
        let server = ParameterServer::empty(4);
        assert_eq!(server.num_tenants(), 0);
        let mut rng = SeededRng::new(11);
        let model_a = MoeModel::new(MoeConfig::tiny(), &mut rng);
        let model_b = MoeModel::new(MoeConfig::tiny(), &mut rng);
        let a = server.register_tenant(model_a);
        let b = server.register_tenant(model_b);
        assert_eq!(server.num_tenants(), 2);
        let b_before = b.snapshot().param_checksum();

        // Writing tenant A leaves tenant B bit-identical.
        let e = flux_moe::Expert::new(16, 32, &mut rng);
        a.aggregate(
            &[ExpertUpdate {
                key: ExpertKey::new(0, 0),
                expert: e,
                weight: 1.0,
            }],
            &[],
        );
        assert_eq!(b.snapshot().param_checksum(), b_before);
        assert_eq!(a.rounds_completed(), 1);
        assert_eq!(b.rounds_completed(), 0);
        // The server-level legacy API is tenant 0.
        assert_eq!(server.rounds_completed(), 1);
    }

    #[test]
    fn deregister_releases_the_tenant() {
        let server = ParameterServer::empty(4);
        let mut rng = SeededRng::new(13);
        let store = server.register_tenant(MoeModel::new(MoeConfig::tiny(), &mut rng));
        assert_eq!(server.num_tenants(), 1);
        assert!(server.deregister_tenant(&store));
        assert_eq!(server.num_tenants(), 0);
        // The caller's handle still works; a second deregister is a no-op.
        assert_eq!(store.rounds_completed(), 0);
        assert!(!server.deregister_tenant(&store));
    }

    #[test]
    fn adopt_tenant_registers_a_restored_store() {
        let server = ParameterServer::empty(4);
        let mut rng = SeededRng::new(17);
        let store = Arc::new(ShardedStore::new(
            MoeModel::new(MoeConfig::tiny(), &mut rng),
            4,
        ));
        let adopted = server.adopt_tenant(Arc::clone(&store));
        assert!(Arc::ptr_eq(&adopted, &store));
        assert_eq!(server.num_tenants(), 1);
        assert!(Arc::ptr_eq(&server.tenant(0), &store));
        assert!(server.deregister_tenant(&store));
    }

    #[test]
    #[should_panic(expected = "sharding must match")]
    fn adopt_tenant_rejects_mismatched_sharding() {
        let server = ParameterServer::empty(4);
        let mut rng = SeededRng::new(18);
        let store = Arc::new(ShardedStore::new(
            MoeModel::new(MoeConfig::tiny(), &mut rng),
            2,
        ));
        server.adopt_tenant(store);
    }

    #[test]
    fn concurrent_tenant_rounds_do_not_interfere() {
        // Two tenants apply rounds from two threads simultaneously; each
        // must end bit-identical to applying its round alone.
        let mut rng = SeededRng::new(12);
        let model = MoeModel::new(MoeConfig::tiny(), &mut rng);
        let server = std::sync::Arc::new(ParameterServer::empty(4));
        let expected: Vec<u64> = (0..2u64)
            .map(|t| {
                let solo = ShardedStore::new(model.clone(), 4);
                let agg = solo.begin_round();
                let mut rng = SeededRng::new(100 + t);
                agg.submit(
                    0,
                    vec![ExpertUpdate {
                        key: ExpertKey::new(0, t as usize),
                        expert: flux_moe::Expert::new(16, 32, &mut rng),
                        weight: 1.0,
                    }],
                    None,
                );
                solo.apply_round(&agg, &ThreadPool::new(1));
                solo.snapshot().param_checksum()
            })
            .collect();

        let stores: Vec<_> = (0..2)
            .map(|_| server.register_tenant(model.clone()))
            .collect();
        let handles: Vec<_> = stores
            .iter()
            .enumerate()
            .map(|(t, store)| {
                let store = Arc::clone(store);
                std::thread::spawn(move || {
                    let agg = store.begin_round();
                    let mut rng = SeededRng::new(100 + t as u64);
                    agg.submit(
                        0,
                        vec![ExpertUpdate {
                            key: ExpertKey::new(0, t),
                            expert: flux_moe::Expert::new(16, 32, &mut rng),
                            weight: 1.0,
                        }],
                        None,
                    );
                    store.apply_round(&agg, &ThreadPool::new(2));
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        for (t, store) in stores.iter().enumerate() {
            assert_eq!(
                store.snapshot().param_checksum(),
                expected[t],
                "tenant {t} diverged under concurrency"
            );
        }
    }
}
