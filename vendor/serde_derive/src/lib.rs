//! Offline stub of `serde_derive`.
//!
//! The build environment has no access to a crates registry, so the
//! workspace vendors the minimal surface of serde it actually uses. Flux
//! types derive `Serialize`/`Deserialize` purely as a forward-looking marker
//! (no code in the workspace serializes through serde, and the traits are
//! never used as bounds), so these derives intentionally expand to nothing.
//! Swapping the real serde back in later requires only a manifest change.

use proc_macro::TokenStream;

/// Marker derive for [`serde::Serialize`]; expands to nothing. The
/// `serde` helper attribute is registered so field annotations like
/// `#[serde(default)]` parse (they are inert under the stub).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Marker derive for [`serde::Deserialize`]; expands to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
