//! Offline stand-in for a scoped thread-pool crate.
//!
//! The build environment cannot reach a crates registry, so this crate
//! provides the fork-join surface the workspace needs — a bounded pool of
//! workers executing borrowed closures with results returned in submission
//! order, in the spirit of `rayon::scope` — on top of `std::thread::scope`.
//! Workers are spawned per fork-join region rather than kept warm; the
//! regions the workspace parallelizes (per-participant federated rounds,
//! per-expert batched forwards) run for milliseconds to seconds, so the
//! microseconds of spawn cost are noise. Swapping this for `rayon` is a
//! one-line change in the root `Cargo.toml`.
//!
//! Determinism: [`ThreadPool::run`] returns results indexed by submission
//! order regardless of which worker executed which task, so callers that
//! reduce results sequentially get bit-identical output for any thread
//! count (including 1, which runs inline with no threads at all).
//!
//! Known cost of the per-region spawning: worker threads start with cold
//! thread-local state, so e.g. the tensor crate's scratch-buffer pool is
//! empty at the start of every fork-join region and dropped at its end —
//! allocation reuse across regions currently only applies on the calling
//! thread. A persistent-worker pool would lift that (tracked in ROADMAP).

use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};

/// Environment variable overriding the worker count used by
/// [`ThreadPool::from_env`]. `1` disables threading entirely.
pub const THREADS_ENV: &str = "FLUX_THREADS";

thread_local! {
    // Set while a thread is executing tasks as a pool worker, so nested
    // code can avoid fanning out a second level of threads.
    static IS_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// A fixed-width fork-join thread pool.
#[derive(Debug, Clone, Copy)]
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// Creates a pool that uses up to `threads` workers (minimum 1).
    pub fn new(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
        }
    }

    /// Creates a pool sized from the `FLUX_THREADS` environment variable,
    /// falling back to the machine's available parallelism. The resolved
    /// count is cached after the first call (hot paths size a pool per
    /// fork-join region, and the environment does not change mid-process),
    /// and a thread that is itself a pool worker gets an inline pool so
    /// nested fan-outs never oversubscribe the machine.
    pub fn from_env() -> Self {
        if Self::current_is_worker() {
            return Self::new(1);
        }
        static RESOLVED: OnceLock<usize> = OnceLock::new();
        let threads = *RESOLVED.get_or_init(|| {
            std::env::var(THREADS_ENV)
                .ok()
                .and_then(|v| v.trim().parse::<usize>().ok())
                .filter(|&n| n > 0)
                .unwrap_or_else(|| {
                    std::thread::available_parallelism()
                        .map(|n| n.get())
                        .unwrap_or(1)
                })
        });
        Self::new(threads)
    }

    /// Whether the calling thread is currently executing as a pool worker.
    pub fn current_is_worker() -> bool {
        IS_WORKER.with(|w| w.get())
    }

    /// Maximum number of workers this pool uses.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs every task, returning the results in submission order.
    ///
    /// With one worker (or one task) the tasks run inline on the calling
    /// thread. Otherwise up to `threads` scoped workers drain a shared
    /// queue; each result lands in the slot of its task's index, so the
    /// returned `Vec` is independent of scheduling.
    ///
    /// A panicking task re-raises its *own* panic (same payload) on the
    /// calling thread after every task has run — on the inline path and on
    /// the threaded path alike. Workers catch task panics instead of
    /// unwinding through the scope — an unwinding worker would let
    /// `std::thread::scope` replace the payload with a generic
    /// "a scoped thread panicked", and a worker dying while the queue mutex
    /// is poisoned would mask the message further behind a lock failure.
    /// Sibling tasks still run to completion; when several tasks panic, the
    /// first submitted panicking task's payload wins inline, the first
    /// observed one threaded.
    pub fn run<T, F>(&self, tasks: Vec<F>) -> Vec<T>
    where
        T: Send,
        F: FnOnce() -> T + Send,
    {
        let workers = self.threads.min(tasks.len());
        if workers <= 1 {
            // Same panic contract as the threaded path: run everything,
            // then re-raise the first panic with its original payload.
            let mut first_panic: Option<Box<dyn Any + Send>> = None;
            let mut results = Vec::with_capacity(tasks.len());
            for task in tasks {
                match catch_unwind(AssertUnwindSafe(task)) {
                    Ok(value) => results.push(value),
                    Err(payload) => {
                        first_panic.get_or_insert(payload);
                    }
                }
            }
            if let Some(payload) = first_panic {
                resume_unwind(payload);
            }
            return results;
        }
        let mut results: Vec<Option<T>> = Vec::with_capacity(tasks.len());
        results.resize_with(tasks.len(), || None);
        let queue: Mutex<Vec<(F, &mut Option<T>)>> =
            Mutex::new(tasks.into_iter().zip(results.iter_mut()).collect());
        let first_panic: Mutex<Option<Box<dyn Any + Send>>> = Mutex::new(None);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    IS_WORKER.with(|w| w.set(true));
                    loop {
                        // The queue state is a plain Vec whose pop cannot be
                        // observed half-done, so a poisoned mutex is safe to
                        // recover from (and with panics caught below, no
                        // unwinding path holds the guard anyway).
                        let job = lock_unpoisoned(&queue).pop();
                        match job {
                            Some((task, slot)) => match catch_unwind(AssertUnwindSafe(task)) {
                                Ok(value) => *slot = Some(value),
                                Err(payload) => {
                                    let mut first = lock_unpoisoned(&first_panic);
                                    first.get_or_insert(payload);
                                }
                            },
                            None => break,
                        }
                    }
                });
            }
        });
        drop(queue);
        if let Some(payload) = lock_unpoisoned(&first_panic).take() {
            resume_unwind(payload);
        }
        results
            .into_iter()
            .map(|slot| slot.expect("every task ran to completion"))
            .collect()
    }

    /// Scoped spawn API in the spirit of `rayon::scope`: closures registered
    /// via [`Scope::spawn`] are joined before `scope` returns.
    pub fn scope<'env, F>(&self, f: F)
    where
        F: FnOnce(&mut Scope<'env>),
    {
        let mut scope = Scope { tasks: Vec::new() };
        f(&mut scope);
        let _: Vec<()> = self.run(scope.tasks);
    }
}

impl Default for ThreadPool {
    fn default() -> Self {
        Self::from_env()
    }
}

/// Acquires the mutex, recovering from poisoning: the protected queue is
/// structurally consistent at every point a panic can unwind through, so the
/// poison flag carries no information here and must not kill the worker.
fn lock_unpoisoned<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Collects borrowed closures for [`ThreadPool::scope`].
pub struct Scope<'env> {
    tasks: Vec<Box<dyn FnOnce() + Send + 'env>>,
}

impl<'env> Scope<'env> {
    /// Registers a task; it runs (possibly on a worker thread) before the
    /// enclosing [`ThreadPool::scope`] call returns.
    pub fn spawn(&mut self, f: impl FnOnce() + Send + 'env) {
        self.tasks.push(Box::new(f));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn run_preserves_submission_order() {
        let pool = ThreadPool::new(4);
        let tasks: Vec<_> = (0..64).map(|i| move || i * 2).collect();
        let results = pool.run(tasks);
        assert_eq!(results, (0..64).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_runs_inline() {
        let pool = ThreadPool::new(1);
        let main_thread = std::thread::current().id();
        let results = pool.run(vec![move || std::thread::current().id() == main_thread]);
        assert_eq!(results, vec![true]);
    }

    #[test]
    fn tasks_borrow_disjoint_mutable_state() {
        let pool = ThreadPool::new(3);
        let mut slots = vec![0usize; 8];
        let tasks: Vec<_> = slots
            .iter_mut()
            .enumerate()
            .map(|(i, slot)| {
                move || {
                    *slot = i + 1;
                }
            })
            .collect();
        pool.run(tasks);
        assert_eq!(slots, (1..=8).collect::<Vec<_>>());
    }

    #[test]
    fn scope_joins_all_spawns() {
        let pool = ThreadPool::new(4);
        let counter = AtomicUsize::new(0);
        pool.scope(|s| {
            for _ in 0..16 {
                s.spawn(|| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 16);
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        assert_eq!(ThreadPool::new(0).threads(), 1);
    }

    #[test]
    fn from_env_has_at_least_one_thread() {
        assert!(ThreadPool::from_env().threads() >= 1);
    }

    #[test]
    fn panicking_task_propagates_original_message_and_siblings_finish() {
        // Regression: a worker dying on the queue mutex (e.g. observing it
        // poisoned) used to surface as "task queue lock", masking the
        // panicking task's own message. The original panic must propagate
        // intact, and every non-panicking task must still run.
        let pool = ThreadPool::new(4);
        let completed = AtomicUsize::new(0);
        let tasks: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..16)
            .map(|i| {
                let completed = &completed;
                let task: Box<dyn FnOnce() -> usize + Send> = if i == 3 {
                    Box::new(|| panic!("original task panic"))
                } else {
                    Box::new(move || {
                        completed.fetch_add(1, Ordering::SeqCst);
                        i
                    })
                };
                task
            })
            .collect();
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| pool.run(tasks)));
        let payload = outcome.expect_err("the task panic must propagate");
        let message = payload
            .downcast_ref::<&str>()
            .copied()
            .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
            .unwrap_or("<non-string payload>");
        assert!(
            message.contains("original task panic"),
            "first panic must survive intact, got: {message}"
        );
        assert_eq!(completed.load(Ordering::SeqCst), 15);
    }

    #[test]
    fn inline_pool_panic_also_propagates_after_siblings_finish() {
        // The single-worker (inline) path honors the same contract as the
        // threaded path: every task runs, then the first panic re-raises.
        let pool = ThreadPool::new(1);
        let completed = AtomicUsize::new(0);
        let tasks: Vec<Box<dyn FnOnce() + Send>> = (0..4)
            .map(|i| {
                let completed = &completed;
                let task: Box<dyn FnOnce() + Send> = if i == 1 {
                    Box::new(|| panic!("inline task panic"))
                } else {
                    Box::new(move || {
                        completed.fetch_add(1, Ordering::SeqCst);
                    })
                };
                task
            })
            .collect();
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| pool.run(tasks)));
        let payload = outcome.expect_err("the task panic must propagate");
        let message = payload
            .downcast_ref::<&str>()
            .copied()
            .unwrap_or("<non-string payload>");
        assert!(message.contains("inline task panic"), "got: {message}");
        assert_eq!(completed.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn lock_unpoisoned_recovers_queue_state() {
        let mutex = Mutex::new(vec![1, 2, 3]);
        // Poison the mutex by panicking while holding the guard.
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = mutex.lock().unwrap();
            panic!("poison it");
        }));
        assert!(mutex.is_poisoned());
        assert_eq!(lock_unpoisoned(&mutex).pop(), Some(3));
    }

    #[test]
    fn nested_from_env_inside_worker_is_inline() {
        let pool = ThreadPool::new(4);
        let nested_sizes = pool.run(vec![
            || ThreadPool::from_env().threads(),
            || ThreadPool::from_env().threads(),
            || ThreadPool::from_env().threads(),
            || ThreadPool::from_env().threads(),
        ]);
        // Every task ran on a worker thread (4 workers for 4 tasks), where
        // a nested from_env pool must collapse to inline execution.
        assert!(nested_sizes.iter().all(|&n| n == 1), "{nested_sizes:?}");
    }
}
