//! Principal component analysis via power iteration with deflation.
//!
//! Flux reduces the dimensionality of flattened expert parameters before
//! clustering (§5.2 of the paper). Expert parameter vectors are long
//! (`d_model * d_ff * 2` and more), so clustering directly on them is slow
//! and noisy; PCA keeps the directions that explain most of the variance
//! between experts.

use crate::matrix::Matrix;
use crate::rng::SeededRng;
use crate::stats;
use crate::{Result, TensorError};

/// Result of fitting PCA on a data matrix.
#[derive(Debug, Clone)]
pub struct Pca {
    /// Per-feature mean subtracted before projection (length = features).
    pub mean: Vec<f32>,
    /// Principal components, one per row (shape `(k, features)`).
    pub components: Matrix,
    /// Variance explained by each retained component.
    pub explained_variance: Vec<f32>,
}

impl Pca {
    /// Fits PCA on `data` (samples in rows, features in columns), retaining
    /// `k` components.
    ///
    /// Power iteration with deflation is used, which is accurate enough for
    /// the small `k` (2–16) the merging module needs and avoids pulling in a
    /// full eigensolver.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] when `data` is empty or `k`
    /// is zero or larger than the feature count.
    pub fn fit(data: &Matrix, k: usize, rng: &mut SeededRng) -> Result<Self> {
        let (n, d) = data.shape();
        if n == 0 || d == 0 {
            return Err(TensorError::InvalidArgument(
                "PCA requires a non-empty data matrix".into(),
            ));
        }
        if k == 0 || k > d {
            return Err(TensorError::InvalidArgument(format!(
                "PCA component count {k} invalid for {d} features"
            )));
        }

        // Center the data.
        let mut mean = vec![0.0f32; d];
        for r in 0..n {
            for (m, &x) in mean.iter_mut().zip(data.row(r)) {
                *m += x;
            }
        }
        for m in &mut mean {
            *m /= n as f32;
        }
        let mut centered = data.clone();
        for r in 0..n {
            for (x, &m) in centered.row_mut(r).iter_mut().zip(mean.iter()) {
                *x -= m;
            }
        }

        let mut components = Matrix::zeros(k, d);
        let mut explained = Vec::with_capacity(k);
        let mut residual = centered;

        for comp in 0..k {
            let (direction, variance) = dominant_direction(&residual, rng);
            components.row_mut(comp).copy_from_slice(&direction);
            explained.push(variance);
            // Deflate: remove the projection on the found direction.
            for r in 0..n {
                let row = residual.row_mut(r);
                let proj = stats::dot(row, &direction);
                for (x, &dir) in row.iter_mut().zip(direction.iter()) {
                    *x -= proj * dir;
                }
            }
        }

        Ok(Self {
            mean,
            components,
            explained_variance: explained,
        })
    }

    /// Projects `data` (samples in rows) onto the retained components.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when the feature count differs
    /// from the fitted data.
    pub fn transform(&self, data: &Matrix) -> Result<Matrix> {
        let d = self.mean.len();
        if data.cols() != d {
            return Err(TensorError::ShapeMismatch {
                op: "pca_transform",
                lhs: data.shape(),
                rhs: (1, d),
            });
        }
        // Center once, then project every row against every component with
        // the fused `A·Bᵀ` kernel (contiguous dot products, no per-row
        // temporary).
        let mut centered = Matrix::zeros_pooled(data.rows(), d);
        for r in 0..data.rows() {
            for ((c, &x), &m) in centered
                .row_mut(r)
                .iter_mut()
                .zip(data.row(r))
                .zip(self.mean.iter())
            {
                *c = x - m;
            }
        }
        let out = centered.matmul_transb(&self.components)?;
        centered.recycle();
        Ok(out)
    }

    /// Convenience: fit on `data` and immediately project it.
    ///
    /// # Errors
    ///
    /// Propagates errors from [`Pca::fit`].
    pub fn fit_transform(data: &Matrix, k: usize, rng: &mut SeededRng) -> Result<Matrix> {
        let pca = Self::fit(data, k, rng)?;
        pca.transform(data)
    }
}

/// Finds the dominant right singular direction of `x` by power iteration on
/// the covariance operator, returning `(direction, explained_variance)`.
fn dominant_direction(x: &Matrix, rng: &mut SeededRng) -> (Vec<f32>, f32) {
    let (n, d) = x.shape();
    let mut v: Vec<f32> = (0..d).map(|_| rng.normal()).collect();
    normalize(&mut v);
    // Power iteration converges geometrically in the eigenvalue-gap ratio,
    // and the downstream consumer is similarity clustering, which needs the
    // dominant directions only approximately (randomized-SVD practice uses
    // 4–8 power iterations for the same reason). Iterate to a fixed-point
    // tolerance with a small cap. The cap is a deliberate accuracy/speed
    // trade: with a small but nonzero eigenvalue gap the returned direction
    // can still carry contamination from neighbouring components — fine
    // for K-Means features over expert parameters, but raise the cap if
    // this module is ever reused where exact principal axes matter.
    let max_iterations = 8;
    let mut prev = v.clone();
    for _ in 0..max_iterations {
        // w = Xᵀ (X v) computed without forming the covariance matrix,
        // using the blocked matvec/vecmat kernels.
        let xv = x.matvec(&v).expect("direction length matches features");
        let w = x.vecmat(&xv).expect("projection length matches samples");
        let norm = stats::l2_norm(&w);
        if norm < 1e-12 {
            // Residual is (numerically) zero: any unit vector works.
            break;
        }
        for (vi, wi) in v.iter_mut().zip(w.iter()) {
            *vi = wi / norm;
        }
        // Converged when the direction is a fixed point (up to sign).
        let alignment = stats::dot(&v, &prev).abs();
        if 1.0 - alignment < 1e-5 {
            break;
        }
        prev.copy_from_slice(&v);
    }
    // Explained variance = ||X v||² / n.
    let xv = x.matvec(&v).expect("direction length matches features");
    let xv_norm2: f32 = xv.iter().map(|p| p * p).sum();
    (v, xv_norm2 / n.max(1) as f32)
}

fn normalize(v: &mut [f32]) {
    let norm = stats::l2_norm(v);
    if norm > 1e-12 {
        for x in v.iter_mut() {
            *x /= norm;
        }
    } else if let Some(first) = v.first_mut() {
        *first = 1.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a dataset stretched along a known direction.
    fn stretched_data(n: usize, rng: &mut SeededRng) -> Matrix {
        // Points mostly along the (1, 1, 0) direction with small noise.
        let mut data = Matrix::zeros(n, 3);
        for r in 0..n {
            let t = rng.normal() * 5.0;
            data.set(r, 0, t + rng.normal() * 0.1);
            data.set(r, 1, t + rng.normal() * 0.1);
            data.set(r, 2, rng.normal() * 0.1);
        }
        data
    }

    #[test]
    fn first_component_finds_stretch_direction() {
        let mut rng = SeededRng::new(7);
        let data = stretched_data(200, &mut rng);
        let pca = Pca::fit(&data, 1, &mut rng).unwrap();
        let c = pca.components.row(0);
        // Expect roughly (±1/√2, ±1/√2, 0).
        assert!((c[0].abs() - 0.707).abs() < 0.05, "c = {c:?}");
        assert!((c[1].abs() - 0.707).abs() < 0.05);
        assert!(c[2].abs() < 0.1);
    }

    #[test]
    fn components_are_orthonormal() {
        let mut rng = SeededRng::new(8);
        let data = Matrix::random_normal(50, 6, 1.0, &mut rng);
        let pca = Pca::fit(&data, 3, &mut rng).unwrap();
        for i in 0..3 {
            let ci = pca.components.row(i);
            assert!((stats::l2_norm(ci) - 1.0).abs() < 1e-3);
            for j in 0..i {
                let dot = stats::dot(ci, pca.components.row(j));
                assert!(dot.abs() < 1e-2, "components {i},{j} not orthogonal: {dot}");
            }
        }
    }

    #[test]
    fn explained_variance_is_decreasing() {
        let mut rng = SeededRng::new(9);
        let data = stretched_data(100, &mut rng);
        let pca = Pca::fit(&data, 3, &mut rng).unwrap();
        assert!(pca.explained_variance[0] >= pca.explained_variance[1]);
        assert!(pca.explained_variance[1] >= pca.explained_variance[2] - 1e-4);
    }

    #[test]
    fn transform_shape_and_error_handling() {
        let mut rng = SeededRng::new(10);
        let data = Matrix::random_normal(20, 5, 1.0, &mut rng);
        let pca = Pca::fit(&data, 2, &mut rng).unwrap();
        let projected = pca.transform(&data).unwrap();
        assert_eq!(projected.shape(), (20, 2));
        let bad = Matrix::zeros(3, 4);
        assert!(pca.transform(&bad).is_err());
    }

    #[test]
    fn fit_rejects_bad_arguments() {
        let mut rng = SeededRng::new(11);
        let empty = Matrix::zeros(0, 0);
        assert!(Pca::fit(&empty, 1, &mut rng).is_err());
        let data = Matrix::zeros(4, 3);
        assert!(Pca::fit(&data, 0, &mut rng).is_err());
        assert!(Pca::fit(&data, 4, &mut rng).is_err());
    }

    #[test]
    fn fit_transform_matches_manual() {
        let mut rng1 = SeededRng::new(12);
        let mut rng2 = SeededRng::new(12);
        let data = Matrix::random_normal(30, 4, 1.0, &mut SeededRng::new(99));
        let a = Pca::fit_transform(&data, 2, &mut rng1).unwrap();
        let pca = Pca::fit(&data, 2, &mut rng2).unwrap();
        let b = pca.transform(&data).unwrap();
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn constant_data_yields_zero_variance() {
        let mut rng = SeededRng::new(13);
        let data = Matrix::filled(10, 4, 2.5);
        let pca = Pca::fit(&data, 2, &mut rng).unwrap();
        assert!(pca.explained_variance.iter().all(|&v| v < 1e-6));
        let t = pca.transform(&data).unwrap();
        assert!(t.as_slice().iter().all(|&v| v.abs() < 1e-4));
    }
}
