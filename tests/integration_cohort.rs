//! Golden traces for sampled-cohort rounds and hierarchical aggregation.
//!
//! The invariants: a run that registers N clients and samples K per round
//! produces per-round losses, scores, clocks and final weights that are
//! **bit-identical** across thread counts, both execution schedules,
//! shuffled arrival orders and a mid-round checkpoint/restore; routing the
//! same run through edge aggregators of any width changes nothing; fault
//! draws key off stable client ids, so injected faults hit the same
//! clients no matter how the round executes; and a 10,000-client registry
//! completes with only the sampled cohort materialized. CI re-runs this
//! suite at `FLUX_THREADS` 1/4/8.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use threadpool::ThreadPool;

use flux_core::driver::{ExecutionMode, FederatedRun, Method, RunConfig, RunPhase, RunResult};
use flux_data::DatasetKind;
use flux_fl::FaultPlan;
use flux_moe::MoeConfig;

/// 12 registered clients, 4 sampled per round: small enough to finish in
/// seconds, large enough that every round's cohort is a strict subset.
fn sampled() -> RunConfig {
    RunConfig::quick_demo(MoeConfig::tiny(), DatasetKind::Gsm8k)
        .with_participants(12)
        .with_cohort(4)
}

fn pool() -> ThreadPool {
    ThreadPool::from_env()
}

/// A unique scratch directory per test (parallel tests, repeated runs).
fn temp_dir(tag: &str) -> PathBuf {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "flux_cohort_{tag}_{}_{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[derive(Debug, Clone, PartialEq)]
struct Trace {
    rounds: Vec<(f32, f32)>,
    /// Simulated per-round clock. Identical within one schedule; the two
    /// schedules legitimately disagree on the timeline (the pipeline hides
    /// server tails), so cross-schedule comparisons go through
    /// [`Trace::schedule_invariant`].
    clock: Vec<f64>,
    faults: Vec<(Vec<usize>, Vec<usize>, Vec<usize>)>,
    checksum: u64,
}

impl Trace {
    /// The schedule-invariant part: losses, scores, faults and weights —
    /// everything but the simulated timeline.
    fn schedule_invariant(&self) -> Trace {
        Trace {
            clock: Vec::new(),
            ..self.clone()
        }
    }
}

fn trace_of(result: &RunResult) -> Trace {
    Trace {
        rounds: result
            .rounds
            .iter()
            .map(|r| (r.train_loss, r.score))
            .collect(),
        clock: result.rounds.iter().map(|r| r.elapsed_hours).collect(),
        faults: result
            .rounds
            .iter()
            .map(|r| {
                (
                    r.faults.dropped.clone(),
                    r.faults.retried.clone(),
                    r.faults.rejected.clone(),
                )
            })
            .collect(),
        checksum: result.final_model.param_checksum(),
    }
}

#[test]
fn sampled_runs_are_pinned_across_threads_schedules_and_arrivals() {
    let reference = trace_of(
        &FederatedRun::new(sampled(), 31)
            .with_threads(1)
            .run(Method::Flux),
    );
    let pipelined: Vec<(&str, FederatedRun)> = vec![
        (
            "4 threads",
            FederatedRun::new(sampled(), 31).with_threads(4),
        ),
        (
            "shuffled arrivals",
            FederatedRun::new(sampled(), 31)
                .with_threads(4)
                .with_shuffled_arrivals(97),
        ),
        ("env pool", FederatedRun::new(sampled(), 31)),
    ];
    for (label, run) in pipelined {
        assert_eq!(
            trace_of(&run.run(Method::Flux)),
            reference,
            "sampled run diverged under {label}"
        );
    }
    // The barriered schedule agrees on everything but the simulated
    // timeline, and is itself thread-invariant clock included.
    let barriered = trace_of(
        &FederatedRun::new(sampled(), 31)
            .with_threads(1)
            .with_mode(ExecutionMode::Barriered)
            .run(Method::Flux),
    );
    assert_eq!(
        barriered.schedule_invariant(),
        reference.schedule_invariant(),
        "schedules diverged on losses/scores/weights"
    );
    assert_eq!(
        trace_of(
            &FederatedRun::new(sampled(), 31)
                .with_threads(4)
                .with_mode(ExecutionMode::Barriered)
                .run(Method::Flux)
        ),
        barriered,
        "barriered sampled run diverged across thread counts"
    );
}

/// Edge aggregators pre-reduce structurally, so any tree width yields the
/// flat result bit-for-bit — for sampled cohorts under both schedules.
#[test]
fn tree_aggregation_matches_flat_for_sampled_runs() {
    for method in [Method::Flux, Method::Fmq] {
        for mode in [ExecutionMode::Pipelined, ExecutionMode::Barriered] {
            let flat = trace_of(&FederatedRun::new(sampled(), 32).with_mode(mode).run(method));
            for edges in [2, 4] {
                let tree = trace_of(
                    &FederatedRun::new(sampled().with_aggregation_edges(edges), 32)
                        .with_mode(mode)
                        .run(method),
                );
                assert_eq!(
                    tree, flat,
                    "{edges}-edge tree diverged from flat under {mode:?}"
                );
            }
        }
    }
}

/// Every round dispatches exactly the sampler's cohort: K materialized
/// participants, stable ids, identical across separately started runs.
#[test]
fn cohorts_are_deterministic_and_materialize_k_of_n() {
    let pool = pool();
    let run = FederatedRun::new(sampled(), 33);
    let mut active = run.start(Method::Flux);
    assert_eq!(active.registered_clients(), 12);
    assert_eq!(active.active_participants(), 0, "no cohort before round 0");
    let twin = run.start(Method::Flux);
    for round in 0..3 {
        let cohort = active.cohort_of(round);
        assert_eq!(cohort.len(), 4);
        assert!(cohort.windows(2).all(|w| w[0] < w[1]), "sorted stable ids");
        assert!(cohort.iter().all(|&id| id < 12));
        assert_eq!(
            cohort,
            twin.cohort_of(round),
            "cohort differs across starts"
        );
        active.step_round(&pool);
        assert_eq!(
            active.active_participants(),
            4,
            "round {round} kept O(K) state"
        );
    }
}

/// A sampled + tree-aggregated run killed mid-round (fan-out done, reduce
/// pending) restores from its durable checkpoint and replays the rest of
/// the schedule bit-identically, re-deriving the interrupted round's
/// cohort from the seed.
#[test]
fn mid_round_kill_of_a_sampled_tree_run_replays_bit_identically() {
    let pool = pool();
    let run = FederatedRun::new(sampled().with_aggregation_edges(3), 34);
    let reference = trace_of(&run.run(Method::Flux));
    for kill_round in [0, 1] {
        let dir = temp_dir("kill");
        {
            let mut active = run.start(Method::Flux);
            for _ in 0..kill_round {
                active.step_round(&pool);
            }
            active.start_round(&pool);
            assert_eq!(active.poll(), RunPhase::ReadyToFinish { round: kill_round });
            active.checkpoint(&dir).expect("checkpoint succeeds");
            // The process "crashes" here: the live run is dropped.
        }
        let mut restored = run
            .restore(Method::Flux, &dir)
            .expect("checkpoint restores");
        while !restored.is_done() {
            restored.step_round(&pool);
        }
        assert_eq!(
            trace_of(&restored.finish()),
            reference,
            "mid-round kill at round {kill_round} must replay bit-identically"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Resuming a sampled run under a different cohort size or tree shape is
/// refused: both are part of the checkpoint fingerprint.
#[test]
fn restore_rejects_mismatched_cohort_configuration() {
    let pool = pool();
    let dir = temp_dir("fingerprint");
    let run = FederatedRun::new(sampled().with_aggregation_edges(2), 35);
    let mut active = run.start(Method::Flux);
    active.step_round(&pool);
    active.checkpoint(&dir).expect("checkpoint succeeds");
    let wrong_k = FederatedRun::new(sampled().with_participants(12).with_cohort(5), 35);
    assert!(
        wrong_k.restore(Method::Flux, &dir).is_err(),
        "a different cohort size must not resume this checkpoint"
    );
    let wrong_edges = FederatedRun::new(sampled().with_aggregation_edges(4), 35);
    assert!(
        wrong_edges.restore(Method::Flux, &dir).is_err(),
        "a different tree width must not resume this checkpoint"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Fault draws are pure in the **stable client id**, so under sampling the
/// same clients fault no matter the thread count or schedule, and every
/// faulted id is a member of that round's cohort.
#[test]
fn fault_injection_under_sampling_keys_off_stable_client_ids() {
    let config = || sampled().with_fault_plan(FaultPlan::new(77).with_crashes(0.35));
    let reference = trace_of(
        &FederatedRun::new(config(), 36)
            .with_threads(1)
            .run(Method::Flux),
    );
    assert!(
        reference
            .faults
            .iter()
            .any(|(dropped, _, _)| !dropped.is_empty()),
        "the plan must actually drop someone for this test to bite"
    );
    // Dropped ids are stable client ids drawn from the round's cohort.
    let probe = FederatedRun::new(config(), 36).start(Method::Flux);
    for (round, (dropped, _, _)) in reference.faults.iter().enumerate() {
        let cohort = probe.cohort_of(round);
        for id in dropped {
            assert!(
                cohort.contains(id),
                "round {round} dropped non-cohort id {id}"
            );
        }
    }
    assert_eq!(
        trace_of(
            &FederatedRun::new(config(), 36)
                .with_threads(4)
                .run(Method::Flux)
        ),
        reference,
        "fault schedule diverged under 4 threads"
    );
    // The barriered schedule must hit the identical clients (it keeps its
    // own timeline, hence the schedule-invariant comparison).
    assert_eq!(
        trace_of(
            &FederatedRun::new(config(), 36)
                .with_threads(4)
                .with_mode(ExecutionMode::Barriered)
                .run(Method::Flux)
        )
        .schedule_invariant(),
        reference.schedule_invariant(),
        "fault schedule diverged under the barriered schedule"
    );
}

/// The scale target: 10,000 registered clients, 4 sampled per round. The
/// registry holds lightweight specs only; per-round heavy state stays
/// O(K), and the run completes.
#[test]
fn ten_thousand_registered_clients_run_with_cohort_sized_state() {
    let pool = pool();
    let config = RunConfig::quick_demo(MoeConfig::tiny(), DatasetKind::Gsm8k)
        .with_participants(10_000)
        .with_cohort(4)
        .with_rounds(2);
    let mut active = FederatedRun::new(config, 37).start(Method::Flux);
    assert_eq!(active.registered_clients(), 10_000);
    while !active.is_done() {
        active.step_round(&pool);
        assert_eq!(
            active.active_participants(),
            4,
            "only the sampled cohort may be materialized"
        );
    }
    let result = active.finish();
    assert_eq!(result.rounds.len(), 2);
    assert!(result.final_model.param_checksum() != 0);
}
