//! Neural-network primitive operations.
//!
//! Softmax, activation functions, layer normalization and cross-entropy, in
//! both the row-vector form used by the gating network and the matrix form
//! used by the transformer layers. Backward-pass helpers return gradients in
//! the same layout as their forward inputs.

use crate::matrix::Matrix;
use crate::simd;
use crate::Result;

/// Numerically stable softmax over a single row.
///
/// Returns a probability vector summing to 1. An empty input returns an
/// empty vector.
pub fn softmax_row(logits: &[f32]) -> Vec<f32> {
    if logits.is_empty() {
        return Vec::new();
    }
    let max = logits.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let exps: Vec<f32> = logits.iter().map(|&x| (x - max).exp()).collect();
    let sum: f32 = exps.iter().sum();
    if sum <= 0.0 || !sum.is_finite() {
        return vec![1.0 / logits.len() as f32; logits.len()];
    }
    exps.into_iter().map(|e| e / sum).collect()
}

/// Allocation-free softmax over a row slice, bit-identical to
/// [`softmax_row`] (same max-shift, same `exp`, same division, same uniform
/// fallback on a non-finite or non-positive sum). The fused block-diagonal
/// attention applies this to the leading `len` columns of each padded
/// scores row.
pub fn softmax_row_in_place(row: &mut [f32]) {
    if row.is_empty() {
        return;
    }
    let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    for x in row.iter_mut() {
        *x = (*x - max).exp();
    }
    let sum: f32 = row.iter().sum();
    if sum <= 0.0 || !sum.is_finite() {
        let uniform = 1.0 / row.len() as f32;
        for x in row.iter_mut() {
            *x = uniform;
        }
        return;
    }
    for x in row.iter_mut() {
        *x /= sum;
    }
}

/// Softmax applied independently to every row of a matrix.
pub fn softmax_rows(logits: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(logits.rows(), logits.cols());
    for r in 0..logits.rows() {
        let probs = softmax_row(logits.row(r));
        out.row_mut(r).copy_from_slice(&probs);
    }
    out
}

/// Jacobian-vector product of softmax: given the softmax output `p` and an
/// upstream gradient `grad`, returns the gradient with respect to the logits.
pub fn softmax_backward_row(probs: &[f32], grad: &[f32]) -> Vec<f32> {
    debug_assert_eq!(probs.len(), grad.len());
    let dot: f32 = probs.iter().zip(grad.iter()).map(|(p, g)| p * g).sum();
    probs
        .iter()
        .zip(grad.iter())
        .map(|(p, g)| p * (g - dot))
        .collect()
}

/// Allocation-free variant of [`softmax_backward_row`] writing into `out`.
pub fn softmax_backward_row_into(probs: &[f32], grad: &[f32], out: &mut [f32]) {
    debug_assert_eq!(probs.len(), grad.len());
    debug_assert_eq!(probs.len(), out.len());
    let dot: f32 = probs.iter().zip(grad.iter()).map(|(p, g)| p * g).sum();
    for ((o, &p), &g) in out.iter_mut().zip(probs).zip(grad) {
        *o = p * (g - dot);
    }
}

/// GELU activation (tanh approximation), applied element-wise through the
/// dispatched SIMD kernel (bit-identical across kernel levels — the vector
/// implementation replicates [`gelu_scalar`]'s operation order exactly).
pub fn gelu(x: &Matrix) -> Matrix {
    let mut out = x.clone();
    gelu_in_place(&mut out);
    out
}

/// GELU applied in place (no allocation).
pub fn gelu_in_place(x: &mut Matrix) {
    (simd::active().gelu)(x.as_mut_slice());
}

/// Fused `GELU(x · w + bias)`: one kernel pass, bias folded into the output
/// initialization, activation applied in place. This is the shape of both
/// expert projections, so the inference/profiling path allocates exactly
/// one matrix per projection.
///
/// # Errors
///
/// Returns a shape mismatch when the inner dimensions or bias length
/// disagree.
pub fn matmul_bias_gelu(x: &Matrix, w: &Matrix, bias: &[f32]) -> Result<Matrix> {
    let mut out = x.try_matmul_bias(w, bias)?;
    gelu_in_place(&mut out);
    Ok(out)
}

/// Derivative of the GELU activation with respect to its input.
pub fn gelu_backward(x: &Matrix, grad: &Matrix) -> Matrix {
    debug_assert_eq!(x.shape(), grad.shape());
    let mut out = Matrix::zeros(x.rows(), x.cols());
    (simd::active().gelu_grad)(x.as_slice(), grad.as_slice(), out.as_mut_slice());
    out
}

/// Backward pass of GELU reusing the cached forward *output*.
///
/// `y = gelu(x) = 0.5·x·(1 + tanh(u))` stores `tanh(u)` implicitly:
/// `t = 2y/x − 1`. Recovering it spares the `tanh` recomputation that
/// dominated the expert backward pass at small model widths (the hyperbolic
/// is ~10× the cost of the surrounding matmul work there). Near `x = 0` the
/// division is ill-conditioned, so the exact scalar path is used instead;
/// everywhere else the recovered `t` matches the recomputed value to a few
/// ulps, well inside the noise of the f32 gradient itself.
///
/// Shapes must satisfy `x.shape() == y.shape() == grad.shape()`.
pub fn gelu_backward_cached(x: &Matrix, y: &Matrix, grad: &Matrix) -> Matrix {
    debug_assert_eq!(x.shape(), y.shape());
    debug_assert_eq!(x.shape(), grad.shape());
    let mut out = Matrix::zeros_pooled(x.rows(), x.cols());
    (simd::active().gelu_grad_cached)(
        x.as_slice(),
        y.as_slice(),
        grad.as_slice(),
        out.as_mut_slice(),
    );
    out
}

/// Fast `tanh`: the degree-7/6 continued-fraction rational approximation,
/// saturating to ±1 beyond |x| ≥ 4.97 (where `1 − tanh(x) < 1.4e-4`).
/// Absolute error stays below ~2e-6 inside the rational range — well under
/// the f32 noise of the surrounding GEMMs — while avoiding the libm `tanh`
/// call that dominated the expert forward pass at small model widths
/// (tens of thousands of activations per layer against tiny matmuls).
#[inline]
pub fn fast_tanh(x: f32) -> f32 {
    if x.abs() >= 4.97 {
        return if x > 0.0 { 1.0 } else { -1.0 };
    }
    let x2 = x * x;
    let p = x * (135_135.0 + x2 * (17_325.0 + x2 * (378.0 + x2)));
    let q = 135_135.0 + x2 * (62_370.0 + x2 * (3_150.0 + x2 * 28.0));
    p / q
}

/// GELU for a single scalar (tanh approximation, [`fast_tanh`] inside).
pub fn gelu_scalar(x: f32) -> f32 {
    const C: f32 = 0.797_884_6; // sqrt(2/pi)
    0.5 * x * (1.0 + fast_tanh(C * (x + 0.044715 * x * x * x)))
}

/// Derivative of [`gelu_scalar`].
pub fn gelu_grad_scalar(x: f32) -> f32 {
    const C: f32 = 0.797_884_6;
    // Pre-folded `3 · 0.044715` so the SIMD kernels can splat the exact
    // same f32 constant the compiler folds here.
    const THREE_A: f32 = 3.0 * 0.044715;
    let x3 = x * x * x;
    let inner = C * (x + 0.044715 * x3);
    let t = fast_tanh(inner);
    let sech2 = 1.0 - t * t;
    0.5 * (1.0 + t) + 0.5 * x * sech2 * C * (1.0 + THREE_A * x * x)
}

/// ReLU activation applied element-wise.
pub fn relu(x: &Matrix) -> Matrix {
    x.map(|v| v.max(0.0))
}

/// Derivative of ReLU given the forward input and the upstream gradient.
pub fn relu_backward(x: &Matrix, grad: &Matrix) -> Matrix {
    debug_assert_eq!(x.shape(), grad.shape());
    let mut out = grad.clone();
    for (o, &xi) in out.as_mut_slice().iter_mut().zip(x.as_slice()) {
        if xi <= 0.0 {
            *o = 0.0;
        }
    }
    out
}

/// Per-row layer normalization (no learned affine parameters).
///
/// Each row is shifted to zero mean and scaled to unit variance. `eps`
/// guards against division by zero on constant rows.
pub fn layer_norm(x: &Matrix, eps: f32) -> Matrix {
    let mut out = Matrix::zeros(x.rows(), x.cols());
    for r in 0..x.rows() {
        let row = x.row(r);
        let mean: f32 = row.iter().sum::<f32>() / row.len() as f32;
        let var: f32 = row.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / row.len() as f32;
        let denom = (var + eps).sqrt();
        for (o, &v) in out.row_mut(r).iter_mut().zip(row.iter()) {
            *o = (v - mean) / denom;
        }
    }
    out
}

/// Backward pass of [`layer_norm`] (no affine parameters).
///
/// Given the forward input `x` and the upstream gradient `grad_y`, returns
/// the gradient with respect to `x`. Uses the standard per-row formula
/// `dx = (dy - mean(dy) - y * mean(dy ⊙ y)) / std`.
pub fn layer_norm_backward(x: &Matrix, grad_y: &Matrix, eps: f32) -> Matrix {
    debug_assert_eq!(x.shape(), grad_y.shape());
    let mut out = Matrix::zeros(x.rows(), x.cols());
    let n = x.cols() as f32;
    for r in 0..x.rows() {
        let row = x.row(r);
        let gy = grad_y.row(r);
        let mean: f32 = row.iter().sum::<f32>() / n;
        let var: f32 = row.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / n;
        let std = (var + eps).sqrt();
        let y: Vec<f32> = row.iter().map(|v| (v - mean) / std).collect();
        let mean_gy: f32 = gy.iter().sum::<f32>() / n;
        let mean_gy_y: f32 = gy.iter().zip(y.iter()).map(|(g, yv)| g * yv).sum::<f32>() / n;
        for (c, o) in out.row_mut(r).iter_mut().enumerate() {
            *o = (gy[c] - mean_gy - y[c] * mean_gy_y) / std;
        }
    }
    out
}

/// Cross-entropy loss between per-row class logits and integer targets.
///
/// Returns `(mean_loss, grad_logits)` where the gradient is with respect to
/// the logits (softmax folded in), averaged over rows.
///
/// # Panics
///
/// Panics if `targets.len() != logits.rows()` or a target index is out of
/// range for the number of classes.
pub fn cross_entropy(logits: &Matrix, targets: &[usize]) -> (f32, Matrix) {
    assert_eq!(logits.rows(), targets.len(), "one target per logits row");
    let n = logits.rows().max(1);
    let mut grad = Matrix::zeros(logits.rows(), logits.cols());
    let mut total_loss = 0.0;
    for (r, &target) in targets.iter().enumerate() {
        assert!(target < logits.cols(), "target class out of range");
        let probs = softmax_row(logits.row(r));
        total_loss += -(probs[target].max(1e-12)).ln();
        let grad_row = grad.row_mut(r);
        for (c, &p) in probs.iter().enumerate() {
            grad_row[c] = (p - if c == target { 1.0 } else { 0.0 }) / n as f32;
        }
    }
    (total_loss / n as f32, grad)
}

/// Loss-only variant of [`cross_entropy`]: no gradient matrix is built
/// (loss probes such as SPSA evaluations discard the gradients).
///
/// # Panics
///
/// Panics if `targets.len() != logits.rows()` or a target index is out of
/// range for the number of classes.
pub fn cross_entropy_loss(logits: &Matrix, targets: &[usize]) -> f32 {
    assert_eq!(logits.rows(), targets.len(), "one target per logits row");
    let n = logits.rows().max(1);
    let mut total_loss = 0.0;
    for (r, &target) in targets.iter().enumerate() {
        assert!(target < logits.cols(), "target class out of range");
        let probs = softmax_row(logits.row(r));
        total_loss += -(probs[target].max(1e-12)).ln();
    }
    total_loss / n as f32
}

/// Clips the Frobenius norm of a gradient matrix to `max_norm`.
///
/// Returns the scaling factor applied (1.0 when no clipping occurred).
pub fn clip_grad_norm(grad: &mut Matrix, max_norm: f32) -> f32 {
    let norm = grad.frobenius_norm();
    if norm <= max_norm || norm == 0.0 {
        return 1.0;
    }
    let scale = max_norm / norm;
    grad.scale_in_place(scale);
    scale
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SeededRng;

    fn close(a: f32, b: f32, tol: f32) -> bool {
        (a - b).abs() < tol
    }

    #[test]
    fn softmax_row_sums_to_one() {
        let p = softmax_row(&[1.0, 2.0, 3.0, 4.0]);
        assert!(close(p.iter().sum::<f32>(), 1.0, 1e-6));
        assert!(p.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn softmax_row_handles_large_logits() {
        let p = softmax_row(&[1000.0, 1000.0]);
        assert!(close(p[0], 0.5, 1e-6));
        assert!(p.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn softmax_empty() {
        assert!(softmax_row(&[]).is_empty());
    }

    #[test]
    fn softmax_row_in_place_is_bit_identical_to_allocating() {
        let cases: Vec<Vec<f32>> = vec![
            vec![1.0, 2.0, 3.0, 4.0],
            vec![1000.0, 1000.0],
            vec![-0.3],
            vec![f32::NEG_INFINITY, f32::NEG_INFINITY], // uniform fallback
            vec![],
        ];
        for case in cases {
            let reference = softmax_row(&case);
            let mut inplace = case.clone();
            softmax_row_in_place(&mut inplace);
            assert_eq!(inplace, reference, "input {case:?}");
        }
    }

    #[test]
    fn softmax_rows_matches_row_version() {
        let m = Matrix::from_rows(&[vec![0.0, 1.0], vec![3.0, -1.0]]);
        let s = softmax_rows(&m);
        assert_eq!(s.row(0), softmax_row(m.row(0)).as_slice());
        assert_eq!(s.row(1), softmax_row(m.row(1)).as_slice());
    }

    #[test]
    fn softmax_backward_matches_finite_difference() {
        let logits = [0.3f32, -0.7, 1.2];
        let grad_out = [0.5f32, -0.25, 1.0];
        let probs = softmax_row(&logits);
        let analytic = softmax_backward_row(&probs, &grad_out);
        let eps = 1e-3;
        for i in 0..logits.len() {
            let mut plus = logits;
            plus[i] += eps;
            let mut minus = logits;
            minus[i] -= eps;
            let f = |l: &[f32]| -> f32 {
                softmax_row(l)
                    .iter()
                    .zip(grad_out.iter())
                    .map(|(p, g)| p * g)
                    .sum()
            };
            let numeric = (f(&plus) - f(&minus)) / (2.0 * eps);
            assert!(
                close(analytic[i], numeric, 1e-2),
                "i={i} analytic={} numeric={}",
                analytic[i],
                numeric
            );
        }
    }

    #[test]
    fn fast_tanh_tracks_libm_tanh() {
        let mut x = -8.0f32;
        while x <= 8.0 {
            let err = (fast_tanh(x) - x.tanh()).abs();
            assert!(err < 2e-4, "fast_tanh({x}) off by {err}");
            x += 0.01;
        }
        assert_eq!(fast_tanh(100.0), 1.0);
        assert_eq!(fast_tanh(-100.0), -1.0);
        assert_eq!(fast_tanh(0.0), 0.0);
    }

    #[test]
    fn gelu_reference_values() {
        assert!(close(gelu_scalar(0.0), 0.0, 1e-6));
        assert!(gelu_scalar(3.0) > 2.9);
        assert!(gelu_scalar(-3.0).abs() < 0.02);
    }

    #[test]
    fn gelu_grad_matches_finite_difference() {
        let eps = 1e-3;
        for &x in &[-2.0f32, -0.5, 0.0, 0.7, 2.5] {
            let numeric = (gelu_scalar(x + eps) - gelu_scalar(x - eps)) / (2.0 * eps);
            assert!(
                close(gelu_grad_scalar(x), numeric, 5e-3),
                "x={x}: {} vs {}",
                gelu_grad_scalar(x),
                numeric
            );
        }
    }

    #[test]
    fn gelu_backward_cached_matches_recompute() {
        let mut rng = crate::SeededRng::new(17);
        let x = Matrix::random_normal(13, 9, 2.0, &mut rng);
        let y = gelu(&x);
        let grad = Matrix::random_normal(13, 9, 1.0, &mut rng);
        let cached = gelu_backward_cached(&x, &y, &grad);
        let recomputed = gelu_backward(&x, &grad);
        for (a, b) in cached.as_slice().iter().zip(recomputed.as_slice()) {
            assert!(
                (a - b).abs() <= 1e-4 * b.abs().max(1.0),
                "cached {a} vs recomputed {b}"
            );
        }
    }

    #[test]
    fn relu_and_backward() {
        let x = Matrix::from_rows(&[vec![-1.0, 2.0]]);
        assert_eq!(relu(&x).as_slice(), &[0.0, 2.0]);
        let g = Matrix::from_rows(&[vec![5.0, 5.0]]);
        assert_eq!(relu_backward(&x, &g).as_slice(), &[0.0, 5.0]);
    }

    #[test]
    fn layer_norm_zero_mean_unit_var() {
        let mut rng = SeededRng::new(4);
        let x = Matrix::random_normal(3, 16, 2.0, &mut rng);
        let y = layer_norm(&x, 1e-5);
        for r in 0..y.rows() {
            let row = y.row(r);
            let mean: f32 = row.iter().sum::<f32>() / row.len() as f32;
            let var: f32 = row.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / row.len() as f32;
            assert!(mean.abs() < 1e-4);
            assert!(close(var, 1.0, 1e-2));
        }
    }

    #[test]
    fn layer_norm_constant_row_is_finite() {
        let x = Matrix::filled(1, 4, 3.0);
        let y = layer_norm(&x, 1e-5);
        assert!(y.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn layer_norm_backward_matches_finite_difference() {
        let mut rng = SeededRng::new(17);
        let x = Matrix::random_normal(2, 6, 1.0, &mut rng);
        // Loss = sum of (layer_norm(x) .* coeff) for an arbitrary coeff matrix.
        let coeff = Matrix::random_normal(2, 6, 1.0, &mut rng);
        let loss = |m: &Matrix| -> f32 { layer_norm(m, 1e-5).hadamard(&coeff).unwrap().sum() };
        let analytic = layer_norm_backward(&x, &coeff, 1e-5);
        let eps = 1e-3;
        for r in 0..2 {
            for c in 0..6 {
                let mut plus = x.clone();
                plus.set(r, c, plus.get(r, c) + eps);
                let mut minus = x.clone();
                minus.set(r, c, minus.get(r, c) - eps);
                let numeric = (loss(&plus) - loss(&minus)) / (2.0 * eps);
                assert!(
                    (numeric - analytic.get(r, c)).abs() < 2e-2,
                    "({r},{c}): numeric {numeric} analytic {}",
                    analytic.get(r, c)
                );
            }
        }
    }

    #[test]
    fn cross_entropy_perfect_prediction_small_loss() {
        let logits = Matrix::from_rows(&[vec![10.0, -10.0], vec![-10.0, 10.0]]);
        let (loss, _grad) = cross_entropy(&logits, &[0, 1]);
        assert!(loss < 1e-3);
    }

    #[test]
    fn cross_entropy_uniform_is_log_k() {
        let logits = Matrix::zeros(1, 4);
        let (loss, _grad) = cross_entropy(&logits, &[2]);
        assert!(close(loss, (4.0f32).ln(), 1e-4));
    }

    #[test]
    fn cross_entropy_gradient_matches_finite_difference() {
        let logits = Matrix::from_rows(&[vec![0.2, -0.4, 0.9]]);
        let targets = [2usize];
        let (_, grad) = cross_entropy(&logits, &targets);
        let eps = 1e-3;
        for c in 0..3 {
            let mut plus = logits.clone();
            plus.set(0, c, plus.get(0, c) + eps);
            let mut minus = logits.clone();
            minus.set(0, c, minus.get(0, c) - eps);
            let (lp, _) = cross_entropy(&plus, &targets);
            let (lm, _) = cross_entropy(&minus, &targets);
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(close(grad.get(0, c), numeric, 1e-2));
        }
    }

    #[test]
    fn clip_grad_norm_respects_threshold() {
        let mut g = Matrix::filled(2, 2, 10.0);
        let norm_before = g.frobenius_norm();
        assert!(norm_before > 1.0);
        let scale = clip_grad_norm(&mut g, 1.0);
        assert!(scale < 1.0);
        assert!(close(g.frobenius_norm(), 1.0, 1e-5));
        // A small gradient is untouched.
        let mut small = Matrix::filled(1, 1, 0.1);
        assert_eq!(clip_grad_norm(&mut small, 1.0), 1.0);
    }
}
