//! Figure 3: fine-tuning convergence when non-tuning experts are kept
//! (merged) versus discarded.
//!
//! The paper fine-tunes the 64 most-activated experts of LLaMA-MoE and
//! scores with ROUGE; the reproduction uses the generation-scored Dolly
//! analogue (the classification analogues saturate too quickly at the tiny
//! scale to show the gap).
//! Discarding the remaining experts markedly degrades the score across
//! rounds. The tuning set is the top-activated quarter of the experts, and
//! the rest are either merged (Flux-style) or zeroed out (FedMoE-style).

use std::collections::HashSet;

use flux_bench::{fmt, llama_config, print_header, Scale, EXPERIMENT_SEED};
use flux_core::baselines::{local_train, top_frequency_experts};
use flux_core::merging::{CompactModelPlan, MergingConfig};
use flux_data::{DatasetConfig, DatasetGenerator, DatasetKind};
use flux_moe::{ExpertKey, MoeModel};
use flux_tensor::SeededRng;

fn main() {
    let scale = Scale::from_env();
    let config = llama_config(scale);
    let mut rng = SeededRng::new(EXPERIMENT_SEED);
    let data_cfg = DatasetConfig::for_kind(DatasetKind::Dolly, config.vocab_size)
        .with_num_samples(if scale == Scale::Quick { 48 } else { 160 });
    let data = DatasetGenerator::new(data_cfg).generate(&mut rng);
    let (train, test) = data.train_test_split(0.8);

    // The paper starts from a *pretrained* checkpoint, so non-tuning experts
    // carry useful function. Emulate that by training the global model on
    // the local data before the keep-vs-discard comparison; the comparison
    // then measures how much of that function each variant preserves.
    let mut global = MoeModel::new(config.clone(), &mut rng);
    for _ in 0..8 {
        local_train(&mut global, &train.samples, None, 0.03, 8);
    }
    let profile = global.profile(&train);
    // Tune the most-activated quarter of the experts (the paper tunes 64 of
    // 512); keep or discard the rest.
    let tuning = top_frequency_experts(&profile, config.total_experts() / 4);

    let rounds = if scale == Scale::Quick { 6 } else { 10 };
    let keep_scores = run_case(&global, &profile, &tuning, false, &train, &test, rounds);
    let discard_scores = run_case(&global, &profile, &tuning, true, &train, &test, rounds);

    print_header(
        &format!(
            "Figure 3: keep vs discard non-tuning experts (ROUGE-scored, {})",
            scale.label()
        ),
        &["Round", "Keep (merged)", "Discard"],
    );
    for round in 0..rounds {
        println!(
            "{round}\t{}\t{}",
            fmt(keep_scores[round] as f64),
            fmt(discard_scores[round] as f64)
        );
    }
    println!(
        "\nfinal: keep={} discard={} (paper: discarding significantly degrades the score)",
        fmt(*keep_scores.last().unwrap() as f64),
        fmt(*discard_scores.last().unwrap() as f64)
    );
}

fn run_case(
    global: &MoeModel,
    profile: &flux_moe::ActivationProfile,
    tuning: &HashSet<ExpertKey>,
    discard: bool,
    train: &flux_data::Dataset,
    test: &flux_data::Dataset,
    rounds: usize,
) -> Vec<f32> {
    let mut rng = SeededRng::new(EXPERIMENT_SEED + 1);
    let plan = if discard {
        CompactModelPlan::build_discard(global, tuning)
    } else {
        CompactModelPlan::build(
            global,
            profile,
            tuning,
            global.config.total_experts() / 8,
            MergingConfig::default(),
            &mut rng,
        )
    };
    let mut model = plan.apply(global, profile);
    let key_map = plan.tuning_key_map();
    let tuning_compact: HashSet<ExpertKey> = tuning
        .iter()
        .filter_map(|k| key_map.get(k).copied())
        .collect();
    let mut scores = Vec::new();
    for _ in 0..rounds {
        local_train(&mut model, &train.samples, Some(&tuning_compact), 0.03, 8);
        scores.push(model.evaluate(test).score);
    }
    scores
}
