//! Quantized linear forward pass.
//!
//! The profiling path runs the gating network (and, optionally, whole MoE
//! layers) with quantized weights. The activation is kept in `f32` and the
//! weight is dequantized on the fly row-by-row, mirroring how weight-only
//! quantization kernels behave: the output carries the rounding error of
//! the weights, which is exactly the error source behind the paper's Fig. 5.

use flux_tensor::{Matrix, Result, TensorError};

use crate::matrix::QuantizedMatrix;

/// Computes `x * W` where `W` is quantized, returning a full-precision
/// output that carries the quantization error of `W`.
///
/// `x` has shape `(n, d_in)` and the quantized weight has shape
/// `(d_in, d_out)`.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] when the inner dimensions differ.
pub fn quantized_matmul(x: &Matrix, w: &QuantizedMatrix) -> Result<Matrix> {
    if x.cols() != w.rows() {
        return Err(TensorError::ShapeMismatch {
            op: "quantized_matmul",
            lhs: x.shape(),
            rhs: w.shape(),
        });
    }
    let mut out = Matrix::zeros(x.rows(), w.cols());
    for i in 0..x.rows() {
        for k in 0..x.cols() {
            let a = x.get(i, k);
            if a == 0.0 {
                continue;
            }
            let scale = w.scales()[k];
            let coeff = a * scale;
            let out_row = out.row_mut(i);
            for (c, o) in out_row.iter_mut().enumerate() {
                *o += coeff * w.level(k, c) as f32;
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::BitWidth;
    use flux_tensor::SeededRng;

    #[test]
    fn matches_full_precision_closely_at_int8() {
        let mut rng = SeededRng::new(1);
        let x = Matrix::random_normal(4, 16, 1.0, &mut rng);
        let w = Matrix::random_normal(16, 8, 1.0, &mut rng);
        let q = QuantizedMatrix::quantize(&w, BitWidth::Int8);
        let exact = x.matmul(&w);
        let approx = quantized_matmul(&x, &q).unwrap();
        let err = exact.sub(&approx).unwrap().frobenius_norm() / exact.frobenius_norm();
        assert!(err < 0.02, "relative error {err}");
    }

    #[test]
    fn error_ordering_by_bit_width() {
        let mut rng = SeededRng::new(2);
        let x = Matrix::random_normal(8, 32, 1.0, &mut rng);
        let w = Matrix::random_normal(32, 16, 1.0, &mut rng);
        let exact = x.matmul(&w);
        let rel_err = |b: BitWidth| {
            let q = QuantizedMatrix::quantize(&w, b);
            let approx = quantized_matmul(&x, &q).unwrap();
            exact.sub(&approx).unwrap().frobenius_norm() / exact.frobenius_norm()
        };
        let e2 = rel_err(BitWidth::Int2);
        let e4 = rel_err(BitWidth::Int4);
        let e8 = rel_err(BitWidth::Int8);
        assert!(e2 > e4 && e4 > e8, "e2={e2} e4={e4} e8={e8}");
    }

    #[test]
    fn shape_mismatch_is_error() {
        let x = Matrix::zeros(2, 3);
        let w = QuantizedMatrix::quantize(&Matrix::zeros(4, 5), BitWidth::Int4);
        assert!(quantized_matmul(&x, &w).is_err());
    }

    #[test]
    fn zero_input_gives_zero_output() {
        let mut rng = SeededRng::new(3);
        let x = Matrix::zeros(3, 8);
        let w =
            QuantizedMatrix::quantize(&Matrix::random_normal(8, 4, 1.0, &mut rng), BitWidth::Int4);
        let out = quantized_matmul(&x, &w).unwrap();
        assert!(out.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn output_shape() {
        let mut rng = SeededRng::new(4);
        let x = Matrix::random_normal(5, 6, 1.0, &mut rng);
        let w =
            QuantizedMatrix::quantize(&Matrix::random_normal(6, 9, 1.0, &mut rng), BitWidth::Int2);
        assert_eq!(quantized_matmul(&x, &w).unwrap().shape(), (5, 9));
    }
}
