//! Non-IID partitioning of a dataset across federated participants.
//!
//! The paper partitions every dataset "into non-IID subsets following the
//! FedNLP benchmark", i.e. Dirichlet label/topic skew: for every topic, the
//! per-participant share is drawn from `Dirichlet(alpha)`, so small `alpha`
//! concentrates a topic on a few participants. An IID splitter is provided
//! for ablations.

use serde::{Deserialize, Serialize};

use flux_tensor::SeededRng;

use crate::dataset::Dataset;

/// Configuration of the non-IID partitioner.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PartitionConfig {
    /// Number of participants to split across.
    pub num_participants: usize,
    /// Dirichlet concentration; smaller is more skewed. FedNLP commonly uses
    /// 0.1–1.0; the reproduction defaults to 0.5.
    pub alpha: f32,
    /// Minimum number of samples every participant must receive.
    pub min_samples_per_participant: usize,
}

impl PartitionConfig {
    /// Creates a config with the default `alpha = 0.5` skew.
    pub fn new(num_participants: usize) -> Self {
        Self {
            num_participants,
            alpha: 0.5,
            min_samples_per_participant: 2,
        }
    }

    /// Overrides the Dirichlet concentration.
    pub fn with_alpha(mut self, alpha: f32) -> Self {
        self.alpha = alpha;
        self
    }
}

/// Computes the IID split (round-robin after shuffling) as index shards.
///
/// This is the lazy half of [`partition_iid`]: it consumes the RNG exactly
/// as the materializing form does but returns only row indices, so a fleet
/// registry can hold shards without cloning any samples.
pub fn partition_indices_iid(
    num_samples: usize,
    num_participants: usize,
    rng: &mut SeededRng,
) -> Vec<Vec<usize>> {
    assert!(num_participants > 0, "need at least one participant");
    let mut indices: Vec<usize> = (0..num_samples).collect();
    rng.shuffle(&mut indices);
    let mut shards: Vec<Vec<usize>> = vec![Vec::new(); num_participants];
    for (i, idx) in indices.into_iter().enumerate() {
        shards[i % num_participants].push(idx);
    }
    shards
}

/// Splits a dataset IID (round-robin after shuffling) across participants.
pub fn partition_iid(
    dataset: &Dataset,
    num_participants: usize,
    rng: &mut SeededRng,
) -> Vec<Dataset> {
    partition_indices_iid(dataset.len(), num_participants, rng)
        .iter()
        .map(|s| dataset.subset(s))
        .collect()
}

/// Computes the non-IID Dirichlet split as index shards.
///
/// The lazy half of [`partition_non_iid`]: identical RNG consumption and
/// identical assignments, but no sample is cloned — shard `p` lists the
/// dataset rows participant `p` would own. Materializing shard `p` with
/// [`Dataset::subset`] reproduces the eager partition bit-for-bit.
pub fn partition_indices_non_iid(
    dataset: &Dataset,
    config: &PartitionConfig,
    rng: &mut SeededRng,
) -> Vec<Vec<usize>> {
    assert!(config.num_participants > 0, "need at least one participant");
    let n = config.num_participants;
    let mut shards: Vec<Vec<usize>> = vec![Vec::new(); n];

    // Group sample indices by topic.
    let max_topic = dataset.samples.iter().map(|s| s.topic).max().unwrap_or(0);
    let mut by_topic: Vec<Vec<usize>> = vec![Vec::new(); max_topic + 1];
    for (i, s) in dataset.samples.iter().enumerate() {
        by_topic[s.topic].push(i);
    }

    for topic_samples in by_topic.iter().filter(|t| !t.is_empty()) {
        let shares = rng.dirichlet(config.alpha, n);
        // Turn shares into integer counts with largest-remainder rounding.
        let total = topic_samples.len();
        let mut counts: Vec<usize> = shares
            .iter()
            .map(|&s| (s * total as f32).floor() as usize)
            .collect();
        let mut assigned: usize = counts.iter().sum();
        // Distribute the remainder to the participants with the largest shares.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| {
            shares[b]
                .partial_cmp(&shares[a])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut cursor = 0;
        while assigned < total {
            counts[order[cursor % n]] += 1;
            assigned += 1;
            cursor += 1;
        }
        // Hand out the samples in shuffled order.
        let mut pool = topic_samples.clone();
        rng.shuffle(&mut pool);
        let mut offset = 0;
        for (p, &count) in counts.iter().enumerate() {
            shards[p].extend_from_slice(&pool[offset..offset + count]);
            offset += count;
        }
    }

    rebalance(&mut shards, config.min_samples_per_participant);
    shards
}

/// Splits a dataset non-IID by topic with Dirichlet skew.
///
/// For every topic, the samples of that topic are distributed to
/// participants according to a fresh `Dirichlet(alpha)` draw. Afterwards a
/// rebalancing pass moves samples from the largest shards to any shard below
/// `min_samples_per_participant`, so no participant starves.
pub fn partition_non_iid(
    dataset: &Dataset,
    config: &PartitionConfig,
    rng: &mut SeededRng,
) -> Vec<Dataset> {
    partition_indices_non_iid(dataset, config, rng)
        .iter()
        .map(|s| dataset.subset(s))
        .collect()
}

/// Moves samples from the largest shards into shards below the minimum.
fn rebalance(shards: &mut [Vec<usize>], min_per_shard: usize) {
    loop {
        let Some(smallest) = (0..shards.len()).min_by_key(|&i| shards[i].len()) else {
            return;
        };
        if shards[smallest].len() >= min_per_shard {
            return;
        }
        let Some(largest) = (0..shards.len()).max_by_key(|&i| shards[i].len()) else {
            return;
        };
        if largest == smallest || shards[largest].len() <= min_per_shard {
            // Nothing left to take without starving the donor.
            return;
        }
        let moved = shards[largest].pop().expect("largest shard is non-empty");
        shards[smallest].push(moved);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetKind;
    use crate::generator::DatasetGenerator;

    fn dataset(seed: u64) -> Dataset {
        let mut rng = SeededRng::new(seed);
        DatasetGenerator::for_kind(DatasetKind::Mmlu, 256).generate(&mut rng)
    }

    #[test]
    fn iid_partition_covers_all_samples() {
        let ds = dataset(1);
        let mut rng = SeededRng::new(2);
        let shards = partition_iid(&ds, 10, &mut rng);
        assert_eq!(shards.len(), 10);
        let total: usize = shards.iter().map(Dataset::len).sum();
        assert_eq!(total, ds.len());
        // Shards are balanced within one sample.
        let max = shards.iter().map(Dataset::len).max().unwrap();
        let min = shards.iter().map(Dataset::len).min().unwrap();
        assert!(max - min <= 1);
    }

    #[test]
    fn non_iid_partition_covers_all_samples() {
        let ds = dataset(3);
        let mut rng = SeededRng::new(4);
        let cfg = PartitionConfig::new(10).with_alpha(0.3);
        let shards = partition_non_iid(&ds, &cfg, &mut rng);
        assert_eq!(shards.len(), 10);
        let total: usize = shards.iter().map(Dataset::len).sum();
        assert_eq!(total, ds.len());
    }

    #[test]
    fn non_iid_is_more_skewed_than_iid() {
        let ds = dataset(5);
        let mut rng = SeededRng::new(6);
        let iid = partition_iid(&ds, 8, &mut rng);
        let cfg = PartitionConfig::new(8).with_alpha(0.1);
        let non_iid = partition_non_iid(&ds, &cfg, &mut rng);

        // Measure topic skew as the mean (over shards) of the max topic share.
        let skew = |shards: &[Dataset]| {
            let mut total = 0.0f32;
            let mut counted = 0.0f32;
            for s in shards {
                if s.is_empty() {
                    continue;
                }
                let hist = s.topic_histogram();
                let max = *hist.iter().max().unwrap() as f32;
                total += max / s.len() as f32;
                counted += 1.0;
            }
            total / counted.max(1.0)
        };
        assert!(
            skew(&non_iid) > skew(&iid),
            "non-IID split should concentrate topics"
        );
    }

    #[test]
    fn every_participant_gets_minimum_samples() {
        let ds = dataset(7);
        let mut rng = SeededRng::new(8);
        let cfg = PartitionConfig {
            num_participants: 20,
            alpha: 0.05,
            min_samples_per_participant: 3,
        };
        let shards = partition_non_iid(&ds, &cfg, &mut rng);
        assert!(shards.iter().all(|s| s.len() >= 3));
    }

    #[test]
    fn partition_is_deterministic() {
        let ds = dataset(9);
        let cfg = PartitionConfig::new(5);
        let a = partition_non_iid(&ds, &cfg, &mut SeededRng::new(10));
        let b = partition_non_iid(&ds, &cfg, &mut SeededRng::new(10));
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.samples, y.samples);
        }
    }

    #[test]
    fn index_split_matches_materialized_split() {
        // The lazy index form must consume the RNG identically to the eager
        // form, so the same seed yields the same assignment either way.
        let ds = dataset(13);
        let cfg = PartitionConfig::new(7).with_alpha(0.2);
        let indices = partition_indices_non_iid(&ds, &cfg, &mut SeededRng::new(14));
        let eager = partition_non_iid(&ds, &cfg, &mut SeededRng::new(14));
        assert_eq!(indices.len(), eager.len());
        for (shard, materialized) in indices.iter().zip(eager.iter()) {
            assert_eq!(ds.subset(shard).samples, materialized.samples);
        }

        let iid_indices = partition_indices_iid(ds.len(), 7, &mut SeededRng::new(15));
        let iid_eager = partition_iid(&ds, 7, &mut SeededRng::new(15));
        for (shard, materialized) in iid_indices.iter().zip(iid_eager.iter()) {
            assert_eq!(ds.subset(shard).samples, materialized.samples);
        }
    }

    #[test]
    fn single_participant_gets_everything() {
        let ds = dataset(11);
        let mut rng = SeededRng::new(12);
        let shards = partition_non_iid(&ds, &PartitionConfig::new(1), &mut rng);
        assert_eq!(shards.len(), 1);
        assert_eq!(shards[0].len(), ds.len());
    }
}
