//! End-to-end scalar-vs-SIMD equivalence of the kernel dispatch layer.
//!
//! The scalar kernels are the pinned reference semantics; the SIMD levels
//! (SSE2 bit-identical, AVX2+FMA tolerance-equal) must not change what the
//! system *learns*: the final evaluation score of every method in the
//! paper's comparison must be identical whether the whole federated run
//! executes on scalar or on the best vectorized kernels. CI additionally
//! sweeps `FLUX_SIMD=0/1` over the golden-trace suites, which pins the full
//! per-round traces bit-identically for each fixed level.
//!
//! This file holds exactly one `#[test]`: [`flux_tensor::simd::set_global_level`]
//! is process-global (it must reach the worker pool's threads, which a
//! thread-local override cannot), so concurrently running tests in the same
//! binary would race on it.

use flux_core::driver::{FederatedRun, Method, RunConfig};
use flux_data::DatasetKind;
use flux_moe::MoeConfig;
use flux_tensor::simd::{self, SimdLevel};

#[test]
fn final_scores_are_identical_across_simd_levels() {
    let best = simd::detect_best();
    if best == SimdLevel::Scalar {
        eprintln!("host has no SIMD support; scalar-vs-SIMD equivalence is vacuous");
        return;
    }
    let quick = || RunConfig::quick_demo(MoeConfig::tiny(), DatasetKind::Gsm8k);
    let methods = [Method::Flux, Method::Fmd, Method::Fmq, Method::Fmes];

    simd::set_global_level(SimdLevel::Scalar);
    let scalar_scores: Vec<f32> = methods
        .iter()
        .map(|&m| {
            let result = FederatedRun::new(quick(), 404).run(m);
            result.rounds.last().expect("quick demo has rounds").score
        })
        .collect();

    simd::set_global_level(best);
    for (&method, &expected) in methods.iter().zip(&scalar_scores) {
        let result = FederatedRun::new(quick(), 404).run(method);
        let got = result.rounds.last().expect("quick demo has rounds").score;
        assert_eq!(
            got, expected,
            "{method:?}: final score diverged between scalar and {best:?} kernels"
        );
    }
}
