//! Figure 14: impact of stale profiling — estimation error and per-round
//! time with and without the stale (overlapped) profiling pipeline.
//!
//! The paper reports that stale profiling adds < 2% estimation error while
//! cutting the fine-tuning round time by ~28% (profiling runs concurrently
//! with aggregation instead of on the critical path).

use flux_bench::{fmt, llama_config, print_header, run_config, Scale, EXPERIMENT_SEED};
use flux_core::driver::{FederatedRun, Method};
use flux_core::profiling::{LocalProfiler, ProfilingConfig};
use flux_data::{DatasetConfig, DatasetGenerator, DatasetKind};
use flux_moe::MoeModel;
use flux_quant::BitWidth;
use flux_tensor::SeededRng;

fn main() {
    let scale = Scale::from_env();
    let model_config = llama_config(scale);

    // Part 1: estimation error with fresh vs stale (one-round-old) profiles.
    print_header(
        &format!(
            "Figure 14a: estimation error with 2-bit profiling ({})",
            scale.label()
        ),
        &["Dataset", "fresh profile (%)", "stale profile (%)"],
    );
    for kind in DatasetKind::all() {
        let cfg = match kind.num_classes() {
            Some(c) => model_config.clone().with_classes(c),
            None => model_config.clone(),
        };
        let mut rng = SeededRng::new(EXPERIMENT_SEED + kind as u64);
        let mut model = MoeModel::new(cfg.clone(), &mut rng);
        let data_cfg = DatasetConfig::for_kind(kind, cfg.vocab_size).with_num_samples(32);
        let data = DatasetGenerator::new(data_cfg).generate(&mut rng);
        let profiler = LocalProfiler::new(ProfilingConfig::default().with_width(BitWidth::Int2));
        // Fresh error: quantized profile of the current model vs ground truth.
        let fresh_error = profiler.estimation_error_pct(&model, &data);
        // Stale error: quantized profile of the *previous* model vs the
        // ground truth of the current model (one training step later).
        let stale_estimate = profiler.profile(&model, &data);
        model.train_step(&data.samples[..data.len().min(8)], None, 0.02);
        let truth = profiler.profile_full_precision(&model, &data);
        let stale_error = stale_estimate.estimation_error_pct(&truth);
        println!(
            "{}\t{}\t{}",
            kind.name(),
            fmt(fresh_error as f64),
            fmt(stale_error as f64)
        );
    }

    // Part 2: per-round time with and without stale profiling.
    print_header(
        "Figure 14b: mean round time (s) with and without stale profiling",
        &["Dataset", "w/o stale (s)", "w/ stale (s)", "reduction (%)"],
    );
    for kind in DatasetKind::all() {
        let base = run_config(scale, model_config.clone(), kind);
        let without = base
            .clone()
            .with_profiling(ProfilingConfig::default().with_stale(false));
        let with = base.with_profiling(ProfilingConfig::default().with_stale(true));
        let run_without = FederatedRun::new(without, EXPERIMENT_SEED).run(Method::Flux);
        let run_with = FederatedRun::new(with, EXPERIMENT_SEED).run(Method::Flux);
        let mean = |r: &flux_core::driver::RunResult| {
            r.rounds.iter().map(|x| x.round_seconds).sum::<f64>() / r.rounds.len().max(1) as f64
        };
        let a = mean(&run_without);
        let b = mean(&run_with);
        println!(
            "{}\t{}\t{}\t{}",
            kind.name(),
            fmt(a),
            fmt(b),
            fmt(100.0 * (a - b) / a.max(1e-9))
        );
    }
    println!("\npaper: stale profiling adds <2% error and cuts round time by ~28%.");
}
