//! Runtime-dispatched SIMD microkernels.
//!
//! The cache-blocked GEMM ([`crate::matrix`]) and the hot element-wise loops
//! (GELU forward/backward, AXPY accumulation, SPSA perturbation) funnel
//! through a small table of function pointers resolved **once per process**
//! from the host CPU and the `FLUX_SIMD` environment variable:
//!
//! | `FLUX_SIMD`      | meaning                                            |
//! |------------------|----------------------------------------------------|
//! | `0` / `scalar`   | pinned scalar reference kernels                    |
//! | `1` / `auto` / _unset_ | best level the CPU supports (AVX2+FMA, else SSE2, else scalar) |
//! | `sse2` / `avx2`  | force a specific level (panics if unsupported)     |
//!
//! # Determinism contract
//!
//! Every kernel variant is **individually deterministic**: for a fixed
//! `FLUX_SIMD` setting the whole training stack produces bit-identical
//! results across `FLUX_THREADS` 1/4/8, schedules and arrival orders,
//! because the per-element accumulation association of each variant is
//! fixed and independent of blocking, row counts and column counts.
//!
//! Across variants the contract is tiered:
//!
//! - **SSE2 ≡ scalar bitwise.** The SSE2 GEMM kernels replicate the scalar
//!   reference's 4-term grouping exactly (`t = a₀b₀ + a₁b₁ + a₂b₂ + a₃b₃;
//!   acc += t`, left-associated, no FMA), so SSE2 results are bit-identical
//!   to the scalar kernels — vectorization only changes how many columns
//!   are processed per instruction, never the per-element operation order.
//! - **AVX2+FMA agrees within tolerance.** The AVX2 kernels use one fused
//!   multiply-add per depth step (`acc = fma(aₚ, bₚⱼ, acc)`, sequential over
//!   the depth), which is *more* accurate than the scalar grouping but not
//!   bit-equal to it; scalar-vs-AVX2 agreement is pinned by tolerance
//!   proptests (≤1e-5 relative) and end-to-end score-equality tests.
//!   Its scalar column tails use [`f32::mul_add`] inside an FMA-enabled
//!   function so tail lanes round exactly like the vector lanes.
//! - **Element-wise kernels are bitwise level-independent.** AXPY, the SPSA
//!   perturbation and the GELU family deliberately avoid FMA and replicate
//!   the scalar association, so they are bit-identical at every level.
//!
//! The active level is process-global ([`global_level`], resolved lazily
//! from the environment); tests and benches compare variants in-process via
//! the scoped, thread-local [`with_level`] override. The override applies
//! to the **current thread only** — never wrap pool-parallel code in it, or
//! jobs executed by worker threads would run at a different level than jobs
//! drained inline by the caller.

use std::sync::atomic::{AtomicU8, Ordering};

/// Register-tile height of the scalar and SSE2 GEMM microkernels. Each
/// level publishes its own height via [`Kernels::mr`]; the panel packing in
/// `matrix.rs` interleaves `A` rows with exactly that stride.
const MR4: usize = 4;

/// Register-tile height of the AVX2 GEMM microkernel: six rows × 16 columns
/// uses 12 accumulator registers + 2 `B` vectors + 1 broadcast (15 of the
/// 16 ymm registers) and is FMA-throughput-bound where the four-row tile is
/// load-bound.
const MR6: usize = 6;

/// A SIMD instruction-set level with a complete kernel set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SimdLevel {
    /// Pinned scalar reference kernels (the pre-dispatch behavior).
    Scalar = 0,
    /// SSE2 128-bit kernels, bit-identical to scalar.
    Sse2 = 1,
    /// AVX2+FMA 256-bit kernels (tolerance-equivalent to scalar).
    Avx2 = 2,
}

impl SimdLevel {
    /// Short lowercase name (matches the `FLUX_SIMD` spellings).
    pub fn label(self) -> &'static str {
        match self {
            SimdLevel::Scalar => "scalar",
            SimdLevel::Sse2 => "sse2",
            SimdLevel::Avx2 => "avx2",
        }
    }

    fn from_u8(v: u8) -> Self {
        match v {
            0 => SimdLevel::Scalar,
            1 => SimdLevel::Sse2,
            _ => SimdLevel::Avx2,
        }
    }
}

/// Whether this build/host can run the given level's kernels.
pub fn is_supported(level: SimdLevel) -> bool {
    match level {
        SimdLevel::Scalar => true,
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Sse2 => true, // baseline of the x86-64 ABI
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => {
            std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("fma")
        }
        #[cfg(not(target_arch = "x86_64"))]
        _ => false,
    }
}

/// Best level the host CPU supports.
pub fn detect_best() -> SimdLevel {
    if is_supported(SimdLevel::Avx2) {
        SimdLevel::Avx2
    } else if is_supported(SimdLevel::Sse2) {
        SimdLevel::Sse2
    } else {
        SimdLevel::Scalar
    }
}

fn resolve_from_env() -> SimdLevel {
    match std::env::var("FLUX_SIMD").as_deref() {
        Ok("0") | Ok("scalar") => SimdLevel::Scalar,
        Ok("sse2") => {
            assert!(
                is_supported(SimdLevel::Sse2),
                "FLUX_SIMD=sse2 unsupported on this host"
            );
            SimdLevel::Sse2
        }
        Ok("avx2") => {
            assert!(
                is_supported(SimdLevel::Avx2),
                "FLUX_SIMD=avx2 unsupported on this host"
            );
            SimdLevel::Avx2
        }
        Ok("1") | Ok("auto") | Ok("") | Err(_) => detect_best(),
        Ok(other) => {
            panic!("FLUX_SIMD: unrecognized value {other:?} (expected 0|1|auto|scalar|sse2|avx2)")
        }
    }
}

/// Sentinel meaning "not yet resolved from the environment".
const LEVEL_UNSET: u8 = u8::MAX;

static GLOBAL_LEVEL: AtomicU8 = AtomicU8::new(LEVEL_UNSET);

/// The process-wide kernel level, resolved from `FLUX_SIMD` on first use.
pub fn global_level() -> SimdLevel {
    match GLOBAL_LEVEL.load(Ordering::Relaxed) {
        LEVEL_UNSET => {
            let level = resolve_from_env();
            // A racing first resolution computes the same value (the env is
            // fixed), so a plain store is fine.
            GLOBAL_LEVEL.store(level as u8, Ordering::Relaxed);
            level
        }
        v => SimdLevel::from_u8(v),
    }
}

/// Overrides the process-wide level (tests and benches that compare whole
/// training runs across levels, where work fans out to pool threads that a
/// thread-local override cannot reach). Returns the previous level. Must
/// only be called between runs — never while kernels may be executing on
/// other threads.
///
/// # Panics
///
/// Panics if the level is unsupported on this host.
pub fn set_global_level(level: SimdLevel) -> SimdLevel {
    assert!(
        is_supported(level),
        "{} kernels unsupported on this host",
        level.label()
    );
    let prev = global_level();
    GLOBAL_LEVEL.store(level as u8, Ordering::Relaxed);
    prev
}

thread_local! {
    static OVERRIDE: std::cell::Cell<Option<SimdLevel>> = const { std::cell::Cell::new(None) };
}

/// The level kernels dispatch on for the current thread: the innermost
/// [`with_level`] override if one is active, else [`global_level`].
pub fn active_level() -> SimdLevel {
    OVERRIDE.with(|c| c.get()).unwrap_or_else(global_level)
}

/// Runs `f` with kernels pinned to `level` **on the current thread**
/// (panic-safe, restores the previous override). For in-process variant
/// comparison in tests and microbenches; see the module docs for why this
/// must not wrap pool-parallel code.
///
/// # Panics
///
/// Panics if the level is unsupported on this host.
pub fn with_level<R>(level: SimdLevel, f: impl FnOnce() -> R) -> R {
    assert!(
        is_supported(level),
        "{} kernels unsupported on this host",
        level.label()
    );
    struct Restore(Option<SimdLevel>);
    impl Drop for Restore {
        fn drop(&mut self) {
            OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let _guard = Restore(OVERRIDE.with(|c| c.replace(Some(level))));
    f()
}

/// `out_row += a_row · b_panel` where `b_panel` rows are `ldb` apart and
/// `n` columns are written. `a_row.len()` is the depth.
pub type RowKernel = fn(a_row: &[f32], b: &[f32], ldb: usize, n: usize, out_row: &mut [f32]);

/// Register tile of [`Kernels::mr`] rows: `pack` holds the depth-major
/// mr-interleaved A-panel (`pack[p * mr + r]`), `b` rows are `ldb` apart,
/// output row `r` starts at `out[r · ldc]`.
pub type TileKernel =
    fn(pack: &[f32], kc: usize, b: &[f32], ldb: usize, n: usize, out: &mut [f32], ldc: usize);

/// `dst += scale * src`, element-wise.
pub type AxpyKernel = fn(dst: &mut [f32], src: &[f32], scale: f32);

/// `dst = base + scale * dir`, element-wise (the SPSA perturbation shape).
pub type PerturbKernel = fn(dst: &mut [f32], base: &[f32], dir: &[f32], scale: f32);

/// In-place element-wise map (GELU forward).
pub type MapKernel = fn(data: &mut [f32]);

/// `out = f'(x) ⊙ grad` (GELU backward recomputing the tanh).
pub type GradKernel = fn(x: &[f32], grad: &[f32], out: &mut [f32]);

/// `out = f'(x, y) ⊙ grad` reusing the cached forward output `y`.
pub type GradCachedKernel = fn(x: &[f32], y: &[f32], grad: &[f32], out: &mut [f32]);

/// The complete kernel set of one SIMD level.
pub struct Kernels {
    /// Level these kernels implement.
    pub level: SimdLevel,
    /// Register-tile height of [`Kernels::tile`]: how many output rows the
    /// tile kernel accumulates at once, and the A-panel pack interleave.
    /// Row counts only group work — they never change any element's
    /// accumulation order — so differing heights per level cannot break a
    /// level's internal determinism.
    pub mr: usize,
    /// GEMM row-remainder / vecmat kernel.
    pub row: RowKernel,
    /// GEMM mr×NR register-tile kernel.
    pub tile: TileKernel,
    /// `dst += scale * src` (bit-identical across levels).
    pub axpy: AxpyKernel,
    /// `dst = base + scale * dir` (bit-identical across levels).
    pub perturb: PerturbKernel,
    /// In-place GELU forward (bit-identical across levels).
    pub gelu: MapKernel,
    /// GELU backward (bit-identical across levels).
    pub gelu_grad: GradKernel,
    /// Cached-output GELU backward (bit-identical across levels).
    pub gelu_grad_cached: GradCachedKernel,
}

/// The kernel table for the current thread's [`active_level`].
pub fn active() -> &'static Kernels {
    kernels_for(active_level())
}

/// The kernel table of an explicit level (unsupported levels fall back to
/// scalar; dispatch paths only pass supported levels).
pub fn kernels_for(level: SimdLevel) -> &'static Kernels {
    match level {
        SimdLevel::Scalar => &SCALAR_KERNELS,
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Sse2 => &SSE2_KERNELS,
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => &AVX2_KERNELS,
        #[cfg(not(target_arch = "x86_64"))]
        _ => &SCALAR_KERNELS,
    }
}

static SCALAR_KERNELS: Kernels = Kernels {
    level: SimdLevel::Scalar,
    mr: MR4,
    row: row_scalar,
    tile: tile4_scalar,
    axpy: axpy_scalar,
    perturb: perturb_scalar,
    gelu: gelu_scalar_slice,
    gelu_grad: gelu_grad_scalar_slice,
    gelu_grad_cached: gelu_grad_cached_scalar_slice,
};

#[cfg(target_arch = "x86_64")]
static SSE2_KERNELS: Kernels = Kernels {
    level: SimdLevel::Sse2,
    mr: MR4,
    row: row_sse2_dispatch,
    tile: tile4_sse2_dispatch,
    // The element-wise scalar loops are already bit-identical across levels
    // and auto-vectorize under the SSE2 baseline target; only the GEMM
    // kernels gain from hand-written SSE2.
    axpy: axpy_scalar,
    perturb: perturb_scalar,
    gelu: gelu_scalar_slice,
    gelu_grad: gelu_grad_scalar_slice,
    gelu_grad_cached: gelu_grad_cached_scalar_slice,
};

#[cfg(target_arch = "x86_64")]
static AVX2_KERNELS: Kernels = Kernels {
    level: SimdLevel::Avx2,
    mr: MR6,
    row: row_avx2_dispatch,
    tile: tile6_avx2_dispatch,
    axpy: axpy_avx2_dispatch,
    perturb: perturb_avx2_dispatch,
    gelu: gelu_avx2_dispatch,
    gelu_grad: gelu_grad_avx2_dispatch,
    gelu_grad_cached: gelu_grad_cached_avx2_dispatch,
};

// ---------------------------------------------------------------------------
// Scalar reference kernels (the pinned pre-dispatch behavior).
// ---------------------------------------------------------------------------

/// One-row kernel: `out_row += a_row · b_panel`, unrolled 4-way over the
/// depth with the grouping `t = a₀b₀ + a₁b₁ + a₂b₂ + a₃b₃; out += t`.
/// Shared by the row remainder of the blocked GEMM and by `Matrix::vecmat`
/// so both produce bit-identical accumulation order.
fn row_scalar(a_row: &[f32], b: &[f32], ldb: usize, n: usize, out_row: &mut [f32]) {
    let kc = a_row.len();
    let mut p = 0;
    while p + 4 <= kc {
        let (a0, a1, a2, a3) = (a_row[p], a_row[p + 1], a_row[p + 2], a_row[p + 3]);
        let b0 = &b[p * ldb..][..n];
        let b1 = &b[(p + 1) * ldb..][..n];
        let b2 = &b[(p + 2) * ldb..][..n];
        let b3 = &b[(p + 3) * ldb..][..n];
        for j in 0..n {
            out_row[j] += a0 * b0[j] + a1 * b1[j] + a2 * b2[j] + a3 * b3[j];
        }
        p += 4;
    }
    while p < kc {
        let a0 = a_row[p];
        for (o, &v) in out_row.iter_mut().zip(&b[p * ldb..][..n]) {
            *o += a0 * v;
        }
        p += 1;
    }
}

/// Four-row register tile with the same per-element grouping as
/// [`row_scalar`] (so tiled rows are bitwise equal to row-kernel rows).
fn tile4_scalar(
    pack: &[f32],
    kc: usize,
    b: &[f32],
    ldb: usize,
    n: usize,
    out: &mut [f32],
    ldc: usize,
) {
    let (r0, rest) = out.split_at_mut(ldc);
    let (r1, rest) = rest.split_at_mut(ldc);
    let (r2, r3) = rest.split_at_mut(ldc);
    let (o0, o1, o2) = (&mut r0[..n], &mut r1[..n], &mut r2[..n]);
    let o3 = &mut r3[..n];
    let mut p = 0;
    while p + 4 <= kc {
        let ap = &pack[p * MR4..(p + 4) * MR4];
        let b0 = &b[p * ldb..][..n];
        let b1 = &b[(p + 1) * ldb..][..n];
        let b2 = &b[(p + 2) * ldb..][..n];
        let b3 = &b[(p + 3) * ldb..][..n];
        for j in 0..n {
            let (v0, v1, v2, v3) = (b0[j], b1[j], b2[j], b3[j]);
            o0[j] += ap[0] * v0 + ap[4] * v1 + ap[8] * v2 + ap[12] * v3;
            o1[j] += ap[1] * v0 + ap[5] * v1 + ap[9] * v2 + ap[13] * v3;
            o2[j] += ap[2] * v0 + ap[6] * v1 + ap[10] * v2 + ap[14] * v3;
            o3[j] += ap[3] * v0 + ap[7] * v1 + ap[11] * v2 + ap[15] * v3;
        }
        p += 4;
    }
    while p < kc {
        let ap = &pack[p * MR4..p * MR4 + MR4];
        let brow = &b[p * ldb..][..n];
        for j in 0..n {
            let v = brow[j];
            o0[j] += ap[0] * v;
            o1[j] += ap[1] * v;
            o2[j] += ap[2] * v;
            o3[j] += ap[3] * v;
        }
        p += 1;
    }
}

fn axpy_scalar(dst: &mut [f32], src: &[f32], scale: f32) {
    debug_assert_eq!(dst.len(), src.len());
    for (a, &b) in dst.iter_mut().zip(src) {
        *a += scale * b;
    }
}

fn perturb_scalar(dst: &mut [f32], base: &[f32], dir: &[f32], scale: f32) {
    debug_assert_eq!(dst.len(), base.len());
    debug_assert_eq!(dst.len(), dir.len());
    for ((o, &b), &d) in dst.iter_mut().zip(base).zip(dir) {
        *o = b + scale * d;
    }
}

fn gelu_scalar_slice(data: &mut [f32]) {
    for v in data {
        *v = crate::ops::gelu_scalar(*v);
    }
}

fn gelu_grad_scalar_slice(x: &[f32], grad: &[f32], out: &mut [f32]) {
    debug_assert_eq!(x.len(), grad.len());
    debug_assert_eq!(x.len(), out.len());
    for (o, (&xi, &gi)) in out.iter_mut().zip(x.iter().zip(grad)) {
        *o = crate::ops::gelu_grad_scalar(xi) * gi;
    }
}

fn gelu_grad_cached_scalar_slice(x: &[f32], y: &[f32], grad: &[f32], out: &mut [f32]) {
    debug_assert_eq!(x.len(), y.len());
    debug_assert_eq!(x.len(), grad.len());
    debug_assert_eq!(x.len(), out.len());
    for (o, ((&xi, &yi), &gi)) in out.iter_mut().zip(x.iter().zip(y).zip(grad)) {
        let d = if xi.abs() > CACHED_GRAD_CUTOFF {
            let t = (2.0 * yi / xi - 1.0).clamp(-1.0, 1.0);
            let sech2 = 1.0 - t * t;
            0.5 * (1.0 + t) + 0.5 * xi * sech2 * GELU_C * (1.0 + GELU_3A * xi * xi)
        } else {
            crate::ops::gelu_grad_scalar(xi)
        };
        *o = d * gi;
    }
}

/// `sqrt(2/π)`, the tanh-GELU constant (must match `ops::gelu_scalar`).
const GELU_C: f32 = 0.797_884_6;
/// The cubic coefficient of the tanh-GELU argument.
const GELU_A: f32 = 0.044715;
/// `3 · 0.044715` pre-folded at f32 precision, exactly as LLVM folds the
/// `3.0 * 0.044715` constant product in the scalar gradient formula.
const GELU_3A: f32 = 3.0 * 0.044715;
/// Below this |x| the cached-output gradient recovery is ill-conditioned
/// and the exact recompute path is used instead.
const CACHED_GRAD_CUTOFF: f32 = 1e-3;

// ---------------------------------------------------------------------------
// x86-64 kernels.
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
fn row_sse2_dispatch(a_row: &[f32], b: &[f32], ldb: usize, n: usize, out_row: &mut [f32]) {
    debug_assert!(out_row.len() >= n);
    debug_assert!(a_row.is_empty() || b.len() >= (a_row.len() - 1) * ldb + n);
    // SAFETY: SSE2 is part of the x86-64 baseline ABI.
    unsafe { x86::row_sse2(a_row, b, ldb, n, out_row) }
}

#[cfg(target_arch = "x86_64")]
fn tile4_sse2_dispatch(
    pack: &[f32],
    kc: usize,
    b: &[f32],
    ldb: usize,
    n: usize,
    out: &mut [f32],
    ldc: usize,
) {
    debug_assert!(pack.len() >= kc * MR4);
    debug_assert!(out.len() >= 3 * ldc + n);
    debug_assert!(kc == 0 || b.len() >= (kc - 1) * ldb + n);
    // SAFETY: SSE2 is part of the x86-64 baseline ABI; bounds checked above.
    unsafe { x86::tile4_sse2(pack, kc, b, ldb, n, out, ldc) }
}

#[cfg(target_arch = "x86_64")]
fn row_avx2_dispatch(a_row: &[f32], b: &[f32], ldb: usize, n: usize, out_row: &mut [f32]) {
    debug_assert!(out_row.len() >= n);
    debug_assert!(a_row.is_empty() || b.len() >= (a_row.len() - 1) * ldb + n);
    // SAFETY: the AVX2 table is only selected after `is_x86_feature_detected!`
    // confirmed avx2+fma (see `is_supported`).
    unsafe { x86::row_avx2(a_row, b, ldb, n, out_row) }
}

#[cfg(target_arch = "x86_64")]
fn tile6_avx2_dispatch(
    pack: &[f32],
    kc: usize,
    b: &[f32],
    ldb: usize,
    n: usize,
    out: &mut [f32],
    ldc: usize,
) {
    debug_assert!(pack.len() >= kc * MR6);
    debug_assert!(out.len() >= 5 * ldc + n);
    debug_assert!(kc == 0 || b.len() >= (kc - 1) * ldb + n);
    // SAFETY: avx2+fma detected before this table is selected.
    unsafe { x86::tile6_avx2(pack, kc, b, ldb, n, out, ldc) }
}

#[cfg(target_arch = "x86_64")]
fn axpy_avx2_dispatch(dst: &mut [f32], src: &[f32], scale: f32) {
    debug_assert_eq!(dst.len(), src.len());
    // SAFETY: avx2 detected before this table is selected.
    unsafe { x86::axpy_avx2(dst, src, scale) }
}

#[cfg(target_arch = "x86_64")]
fn perturb_avx2_dispatch(dst: &mut [f32], base: &[f32], dir: &[f32], scale: f32) {
    debug_assert_eq!(dst.len(), base.len());
    debug_assert_eq!(dst.len(), dir.len());
    // SAFETY: avx2 detected before this table is selected.
    unsafe { x86::perturb_avx2(dst, base, dir, scale) }
}

#[cfg(target_arch = "x86_64")]
fn gelu_avx2_dispatch(data: &mut [f32]) {
    // SAFETY: avx2 detected before this table is selected.
    unsafe { x86::gelu_avx2(data) }
}

#[cfg(target_arch = "x86_64")]
fn gelu_grad_avx2_dispatch(x: &[f32], grad: &[f32], out: &mut [f32]) {
    debug_assert_eq!(x.len(), grad.len());
    debug_assert_eq!(x.len(), out.len());
    // SAFETY: avx2 detected before this table is selected.
    unsafe { x86::gelu_grad_avx2(x, grad, out) }
}

#[cfg(target_arch = "x86_64")]
fn gelu_grad_cached_avx2_dispatch(x: &[f32], y: &[f32], grad: &[f32], out: &mut [f32]) {
    debug_assert_eq!(x.len(), y.len());
    debug_assert_eq!(x.len(), grad.len());
    debug_assert_eq!(x.len(), out.len());
    // SAFETY: avx2 detected before this table is selected.
    unsafe { x86::gelu_grad_cached_avx2(x, y, grad, out) }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    //! The `std::arch` kernel bodies. Everything here is `unsafe fn` with a
    //! `#[target_feature]` attribute; the safe dispatch wrappers above hold
    //! the detection invariant.
    #![allow(clippy::missing_safety_doc)]

    use super::{CACHED_GRAD_CUTOFF, GELU_3A, GELU_A, GELU_C, MR4, MR6};
    use core::arch::x86_64::*;

    // -- SSE2 GEMM: bit-identical to the scalar reference -------------------

    /// SSE2 row kernel. Per element this performs exactly the scalar
    /// reference's operation sequence (`t = a₀b₀ + a₁b₁ + a₂b₂ + a₃b₃`,
    /// left-associated multiply/adds, then `acc += t`), four columns per
    /// instruction. No FMA: SSE2 multiply and add round like the scalar ops,
    /// so results are bitwise equal to [`super::row_scalar`].
    #[target_feature(enable = "sse2")]
    pub unsafe fn row_sse2(a_row: &[f32], b: &[f32], ldb: usize, n: usize, out_row: &mut [f32]) {
        let kc = a_row.len();
        let bp = b.as_ptr();
        let op = out_row.as_mut_ptr();
        let mut j = 0;
        while j + 4 <= n {
            let mut acc = _mm_loadu_ps(op.add(j));
            let mut p = 0;
            while p + 4 <= kc {
                let base = bp.add(p * ldb + j);
                let t = _mm_add_ps(
                    _mm_add_ps(
                        _mm_add_ps(
                            _mm_mul_ps(_mm_set1_ps(*a_row.get_unchecked(p)), _mm_loadu_ps(base)),
                            _mm_mul_ps(
                                _mm_set1_ps(*a_row.get_unchecked(p + 1)),
                                _mm_loadu_ps(base.add(ldb)),
                            ),
                        ),
                        _mm_mul_ps(
                            _mm_set1_ps(*a_row.get_unchecked(p + 2)),
                            _mm_loadu_ps(base.add(2 * ldb)),
                        ),
                    ),
                    _mm_mul_ps(
                        _mm_set1_ps(*a_row.get_unchecked(p + 3)),
                        _mm_loadu_ps(base.add(3 * ldb)),
                    ),
                );
                acc = _mm_add_ps(acc, t);
                p += 4;
            }
            while p < kc {
                let a0 = _mm_set1_ps(*a_row.get_unchecked(p));
                acc = _mm_add_ps(acc, _mm_mul_ps(a0, _mm_loadu_ps(bp.add(p * ldb + j))));
                p += 1;
            }
            _mm_storeu_ps(op.add(j), acc);
            j += 4;
        }
        while j < n {
            let mut acc = *op.add(j);
            let mut p = 0;
            while p + 4 <= kc {
                let t = *a_row.get_unchecked(p) * *bp.add(p * ldb + j)
                    + *a_row.get_unchecked(p + 1) * *bp.add((p + 1) * ldb + j)
                    + *a_row.get_unchecked(p + 2) * *bp.add((p + 2) * ldb + j)
                    + *a_row.get_unchecked(p + 3) * *bp.add((p + 3) * ldb + j);
                acc += t;
                p += 4;
            }
            while p < kc {
                acc += *a_row.get_unchecked(p) * *bp.add(p * ldb + j);
                p += 1;
            }
            *op.add(j) = acc;
            j += 1;
        }
    }

    /// SSE2 four-row tile, same per-element sequence as
    /// [`super::tile4_scalar`] (bitwise equal results).
    #[target_feature(enable = "sse2")]
    pub unsafe fn tile4_sse2(
        pack: &[f32],
        kc: usize,
        b: &[f32],
        ldb: usize,
        n: usize,
        out: &mut [f32],
        ldc: usize,
    ) {
        let pk = pack.as_ptr();
        let bp = b.as_ptr();
        let op = out.as_mut_ptr();
        let mut j = 0;
        while j + 4 <= n {
            let mut acc0 = _mm_loadu_ps(op.add(j));
            let mut acc1 = _mm_loadu_ps(op.add(ldc + j));
            let mut acc2 = _mm_loadu_ps(op.add(2 * ldc + j));
            let mut acc3 = _mm_loadu_ps(op.add(3 * ldc + j));
            let mut p = 0;
            while p + 4 <= kc {
                let base = bp.add(p * ldb + j);
                let v0 = _mm_loadu_ps(base);
                let v1 = _mm_loadu_ps(base.add(ldb));
                let v2 = _mm_loadu_ps(base.add(2 * ldb));
                let v3 = _mm_loadu_ps(base.add(3 * ldb));
                let ap = pk.add(p * MR4);
                acc0 = _mm_add_ps(
                    acc0,
                    _mm_add_ps(
                        _mm_add_ps(
                            _mm_add_ps(
                                _mm_mul_ps(_mm_set1_ps(*ap), v0),
                                _mm_mul_ps(_mm_set1_ps(*ap.add(4)), v1),
                            ),
                            _mm_mul_ps(_mm_set1_ps(*ap.add(8)), v2),
                        ),
                        _mm_mul_ps(_mm_set1_ps(*ap.add(12)), v3),
                    ),
                );
                acc1 = _mm_add_ps(
                    acc1,
                    _mm_add_ps(
                        _mm_add_ps(
                            _mm_add_ps(
                                _mm_mul_ps(_mm_set1_ps(*ap.add(1)), v0),
                                _mm_mul_ps(_mm_set1_ps(*ap.add(5)), v1),
                            ),
                            _mm_mul_ps(_mm_set1_ps(*ap.add(9)), v2),
                        ),
                        _mm_mul_ps(_mm_set1_ps(*ap.add(13)), v3),
                    ),
                );
                acc2 = _mm_add_ps(
                    acc2,
                    _mm_add_ps(
                        _mm_add_ps(
                            _mm_add_ps(
                                _mm_mul_ps(_mm_set1_ps(*ap.add(2)), v0),
                                _mm_mul_ps(_mm_set1_ps(*ap.add(6)), v1),
                            ),
                            _mm_mul_ps(_mm_set1_ps(*ap.add(10)), v2),
                        ),
                        _mm_mul_ps(_mm_set1_ps(*ap.add(14)), v3),
                    ),
                );
                acc3 = _mm_add_ps(
                    acc3,
                    _mm_add_ps(
                        _mm_add_ps(
                            _mm_add_ps(
                                _mm_mul_ps(_mm_set1_ps(*ap.add(3)), v0),
                                _mm_mul_ps(_mm_set1_ps(*ap.add(7)), v1),
                            ),
                            _mm_mul_ps(_mm_set1_ps(*ap.add(11)), v2),
                        ),
                        _mm_mul_ps(_mm_set1_ps(*ap.add(15)), v3),
                    ),
                );
                p += 4;
            }
            while p < kc {
                let v = _mm_loadu_ps(bp.add(p * ldb + j));
                let ap = pk.add(p * MR4);
                acc0 = _mm_add_ps(acc0, _mm_mul_ps(_mm_set1_ps(*ap), v));
                acc1 = _mm_add_ps(acc1, _mm_mul_ps(_mm_set1_ps(*ap.add(1)), v));
                acc2 = _mm_add_ps(acc2, _mm_mul_ps(_mm_set1_ps(*ap.add(2)), v));
                acc3 = _mm_add_ps(acc3, _mm_mul_ps(_mm_set1_ps(*ap.add(3)), v));
                p += 1;
            }
            _mm_storeu_ps(op.add(j), acc0);
            _mm_storeu_ps(op.add(ldc + j), acc1);
            _mm_storeu_ps(op.add(2 * ldc + j), acc2);
            _mm_storeu_ps(op.add(3 * ldc + j), acc3);
            j += 4;
        }
        while j < n {
            let mut acc = [
                *op.add(j),
                *op.add(ldc + j),
                *op.add(2 * ldc + j),
                *op.add(3 * ldc + j),
            ];
            let mut p = 0;
            while p + 4 <= kc {
                let v0 = *bp.add(p * ldb + j);
                let v1 = *bp.add((p + 1) * ldb + j);
                let v2 = *bp.add((p + 2) * ldb + j);
                let v3 = *bp.add((p + 3) * ldb + j);
                let ap = pk.add(p * MR4);
                for (r, a) in acc.iter_mut().enumerate() {
                    *a += *ap.add(r) * v0
                        + *ap.add(4 + r) * v1
                        + *ap.add(8 + r) * v2
                        + *ap.add(12 + r) * v3;
                }
                p += 4;
            }
            while p < kc {
                let v = *bp.add(p * ldb + j);
                let ap = pk.add(p * MR4);
                for (r, a) in acc.iter_mut().enumerate() {
                    *a += *ap.add(r) * v;
                }
                p += 1;
            }
            *op.add(j) = acc[0];
            *op.add(ldc + j) = acc[1];
            *op.add(2 * ldc + j) = acc[2];
            *op.add(3 * ldc + j) = acc[3];
            j += 1;
        }
    }

    // -- AVX2+FMA GEMM: sequential depth-ordered FMA chains -----------------

    /// AVX2 row kernel: per element, `acc = fma(aₚ, bₚⱼ, acc)` sequentially
    /// over the depth. The scalar tail uses [`f32::mul_add`] inside this
    /// FMA-enabled function so tail columns round identically to the vector
    /// lanes (both compile to `vfmadd`).
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn row_avx2(a_row: &[f32], b: &[f32], ldb: usize, n: usize, out_row: &mut [f32]) {
        let kc = a_row.len();
        let bp = b.as_ptr();
        let op = out_row.as_mut_ptr();
        let mut j = 0;
        while j + 16 <= n {
            let mut acc0 = _mm256_loadu_ps(op.add(j));
            let mut acc1 = _mm256_loadu_ps(op.add(j + 8));
            for p in 0..kc {
                let a = _mm256_set1_ps(*a_row.get_unchecked(p));
                let base = bp.add(p * ldb + j);
                acc0 = _mm256_fmadd_ps(a, _mm256_loadu_ps(base), acc0);
                acc1 = _mm256_fmadd_ps(a, _mm256_loadu_ps(base.add(8)), acc1);
            }
            _mm256_storeu_ps(op.add(j), acc0);
            _mm256_storeu_ps(op.add(j + 8), acc1);
            j += 16;
        }
        while j + 8 <= n {
            let mut acc = _mm256_loadu_ps(op.add(j));
            for p in 0..kc {
                let a = _mm256_set1_ps(*a_row.get_unchecked(p));
                acc = _mm256_fmadd_ps(a, _mm256_loadu_ps(bp.add(p * ldb + j)), acc);
            }
            _mm256_storeu_ps(op.add(j), acc);
            j += 8;
        }
        while j < n {
            let mut acc = *op.add(j);
            for p in 0..kc {
                acc = a_row.get_unchecked(p).mul_add(*bp.add(p * ldb + j), acc);
            }
            *op.add(j) = acc;
            j += 1;
        }
    }

    /// AVX2 six-row tile, same per-element FMA chain as [`row_avx2`]
    /// (tiled rows bitwise equal row-kernel rows within the AVX2 variant).
    ///
    /// The 16-column main loop keeps 12 accumulators, 2 `B` vectors and 1
    /// broadcast live (15 ymm registers) and issues 12 FMAs per 8 loads, so
    /// it is bound by FMA throughput; a four-row tile at the same width
    /// issues 8 FMAs per 6 loads and stalls on the load ports instead.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn tile6_avx2(
        pack: &[f32],
        kc: usize,
        b: &[f32],
        ldb: usize,
        n: usize,
        out: &mut [f32],
        ldc: usize,
    ) {
        let pk = pack.as_ptr();
        let bp = b.as_ptr();
        let op = out.as_mut_ptr();
        let mut j = 0;
        while j + 16 <= n {
            let mut a0l = _mm256_loadu_ps(op.add(j));
            let mut a0h = _mm256_loadu_ps(op.add(j + 8));
            let mut a1l = _mm256_loadu_ps(op.add(ldc + j));
            let mut a1h = _mm256_loadu_ps(op.add(ldc + j + 8));
            let mut a2l = _mm256_loadu_ps(op.add(2 * ldc + j));
            let mut a2h = _mm256_loadu_ps(op.add(2 * ldc + j + 8));
            let mut a3l = _mm256_loadu_ps(op.add(3 * ldc + j));
            let mut a3h = _mm256_loadu_ps(op.add(3 * ldc + j + 8));
            let mut a4l = _mm256_loadu_ps(op.add(4 * ldc + j));
            let mut a4h = _mm256_loadu_ps(op.add(4 * ldc + j + 8));
            let mut a5l = _mm256_loadu_ps(op.add(5 * ldc + j));
            let mut a5h = _mm256_loadu_ps(op.add(5 * ldc + j + 8));
            for p in 0..kc {
                let base = bp.add(p * ldb + j);
                let bl = _mm256_loadu_ps(base);
                let bh = _mm256_loadu_ps(base.add(8));
                let ap = pk.add(p * MR6);
                let a = _mm256_set1_ps(*ap);
                a0l = _mm256_fmadd_ps(a, bl, a0l);
                a0h = _mm256_fmadd_ps(a, bh, a0h);
                let a = _mm256_set1_ps(*ap.add(1));
                a1l = _mm256_fmadd_ps(a, bl, a1l);
                a1h = _mm256_fmadd_ps(a, bh, a1h);
                let a = _mm256_set1_ps(*ap.add(2));
                a2l = _mm256_fmadd_ps(a, bl, a2l);
                a2h = _mm256_fmadd_ps(a, bh, a2h);
                let a = _mm256_set1_ps(*ap.add(3));
                a3l = _mm256_fmadd_ps(a, bl, a3l);
                a3h = _mm256_fmadd_ps(a, bh, a3h);
                let a = _mm256_set1_ps(*ap.add(4));
                a4l = _mm256_fmadd_ps(a, bl, a4l);
                a4h = _mm256_fmadd_ps(a, bh, a4h);
                let a = _mm256_set1_ps(*ap.add(5));
                a5l = _mm256_fmadd_ps(a, bl, a5l);
                a5h = _mm256_fmadd_ps(a, bh, a5h);
            }
            _mm256_storeu_ps(op.add(j), a0l);
            _mm256_storeu_ps(op.add(j + 8), a0h);
            _mm256_storeu_ps(op.add(ldc + j), a1l);
            _mm256_storeu_ps(op.add(ldc + j + 8), a1h);
            _mm256_storeu_ps(op.add(2 * ldc + j), a2l);
            _mm256_storeu_ps(op.add(2 * ldc + j + 8), a2h);
            _mm256_storeu_ps(op.add(3 * ldc + j), a3l);
            _mm256_storeu_ps(op.add(3 * ldc + j + 8), a3h);
            _mm256_storeu_ps(op.add(4 * ldc + j), a4l);
            _mm256_storeu_ps(op.add(4 * ldc + j + 8), a4h);
            _mm256_storeu_ps(op.add(5 * ldc + j), a5l);
            _mm256_storeu_ps(op.add(5 * ldc + j + 8), a5h);
            j += 16;
        }
        while j + 8 <= n {
            let mut acc0 = _mm256_loadu_ps(op.add(j));
            let mut acc1 = _mm256_loadu_ps(op.add(ldc + j));
            let mut acc2 = _mm256_loadu_ps(op.add(2 * ldc + j));
            let mut acc3 = _mm256_loadu_ps(op.add(3 * ldc + j));
            let mut acc4 = _mm256_loadu_ps(op.add(4 * ldc + j));
            let mut acc5 = _mm256_loadu_ps(op.add(5 * ldc + j));
            for p in 0..kc {
                let bv = _mm256_loadu_ps(bp.add(p * ldb + j));
                let ap = pk.add(p * MR6);
                acc0 = _mm256_fmadd_ps(_mm256_set1_ps(*ap), bv, acc0);
                acc1 = _mm256_fmadd_ps(_mm256_set1_ps(*ap.add(1)), bv, acc1);
                acc2 = _mm256_fmadd_ps(_mm256_set1_ps(*ap.add(2)), bv, acc2);
                acc3 = _mm256_fmadd_ps(_mm256_set1_ps(*ap.add(3)), bv, acc3);
                acc4 = _mm256_fmadd_ps(_mm256_set1_ps(*ap.add(4)), bv, acc4);
                acc5 = _mm256_fmadd_ps(_mm256_set1_ps(*ap.add(5)), bv, acc5);
            }
            _mm256_storeu_ps(op.add(j), acc0);
            _mm256_storeu_ps(op.add(ldc + j), acc1);
            _mm256_storeu_ps(op.add(2 * ldc + j), acc2);
            _mm256_storeu_ps(op.add(3 * ldc + j), acc3);
            _mm256_storeu_ps(op.add(4 * ldc + j), acc4);
            _mm256_storeu_ps(op.add(5 * ldc + j), acc5);
            j += 8;
        }
        while j < n {
            let mut acc = [
                *op.add(j),
                *op.add(ldc + j),
                *op.add(2 * ldc + j),
                *op.add(3 * ldc + j),
                *op.add(4 * ldc + j),
                *op.add(5 * ldc + j),
            ];
            for p in 0..kc {
                let v = *bp.add(p * ldb + j);
                let ap = pk.add(p * MR6);
                for (r, a) in acc.iter_mut().enumerate() {
                    *a = (*ap.add(r)).mul_add(v, *a);
                }
            }
            *op.add(j) = acc[0];
            *op.add(ldc + j) = acc[1];
            *op.add(2 * ldc + j) = acc[2];
            *op.add(3 * ldc + j) = acc[3];
            *op.add(4 * ldc + j) = acc[4];
            *op.add(5 * ldc + j) = acc[5];
            j += 1;
        }
    }

    // -- AVX2 element-wise kernels: bit-identical to scalar -----------------
    //
    // These deliberately use separate multiply/add intrinsics (never FMA) in
    // the scalar formulas' exact association, so every level produces the
    // same bits. Only "avx2" is enabled (not "fma") as a belt-and-braces
    // guard against contraction.

    #[target_feature(enable = "avx2")]
    pub unsafe fn axpy_avx2(dst: &mut [f32], src: &[f32], scale: f32) {
        let n = dst.len();
        let dp = dst.as_mut_ptr();
        let sp = src.as_ptr();
        let sv = _mm256_set1_ps(scale);
        let mut i = 0;
        while i + 8 <= n {
            let d = _mm256_loadu_ps(dp.add(i));
            let s = _mm256_loadu_ps(sp.add(i));
            _mm256_storeu_ps(dp.add(i), _mm256_add_ps(d, _mm256_mul_ps(sv, s)));
            i += 8;
        }
        while i < n {
            *dp.add(i) += scale * *sp.add(i);
            i += 1;
        }
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn perturb_avx2(dst: &mut [f32], base: &[f32], dir: &[f32], scale: f32) {
        let n = dst.len();
        let dp = dst.as_mut_ptr();
        let bp = base.as_ptr();
        let rp = dir.as_ptr();
        let sv = _mm256_set1_ps(scale);
        let mut i = 0;
        while i + 8 <= n {
            let b = _mm256_loadu_ps(bp.add(i));
            let d = _mm256_loadu_ps(rp.add(i));
            _mm256_storeu_ps(dp.add(i), _mm256_add_ps(b, _mm256_mul_ps(sv, d)));
            i += 8;
        }
        while i < n {
            *dp.add(i) = *bp.add(i) + scale * *rp.add(i);
            i += 1;
        }
    }

    /// Vector `fast_tanh`: the exact operation sequence of
    /// [`crate::ops::fast_tanh`] (same rational, same Horner association,
    /// same ±1 saturation at |x| ≥ 4.97), eight lanes at a time.
    #[target_feature(enable = "avx2")]
    #[inline]
    unsafe fn tanh8(x: __m256) -> __m256 {
        let x2 = _mm256_mul_ps(x, x);
        let p = _mm256_mul_ps(
            x,
            _mm256_add_ps(
                _mm256_set1_ps(135_135.0),
                _mm256_mul_ps(
                    x2,
                    _mm256_add_ps(
                        _mm256_set1_ps(17_325.0),
                        _mm256_mul_ps(x2, _mm256_add_ps(_mm256_set1_ps(378.0), x2)),
                    ),
                ),
            ),
        );
        let q = _mm256_add_ps(
            _mm256_set1_ps(135_135.0),
            _mm256_mul_ps(
                x2,
                _mm256_add_ps(
                    _mm256_set1_ps(62_370.0),
                    _mm256_mul_ps(
                        x2,
                        _mm256_add_ps(
                            _mm256_set1_ps(3_150.0),
                            _mm256_mul_ps(x2, _mm256_set1_ps(28.0)),
                        ),
                    ),
                ),
            ),
        );
        let rational = _mm256_div_ps(p, q);
        // Saturation: |x| ≥ 4.97 → sign(x) · 1.0 (matching the scalar
        // branch `if x > 0.0 { 1.0 } else { -1.0 }` for all such x).
        let sign_mask = _mm256_set1_ps(-0.0);
        let absx = _mm256_andnot_ps(sign_mask, x);
        let saturate = _mm256_cmp_ps::<_CMP_GE_OQ>(absx, _mm256_set1_ps(4.97));
        let signed_one = _mm256_or_ps(_mm256_and_ps(sign_mask, x), _mm256_set1_ps(1.0));
        _mm256_blendv_ps(rational, signed_one, saturate)
    }

    /// Vector GELU forward: `(0.5·x) · (1 + tanh(C · (x + ((A·x)·x)·x)))`,
    /// the exact association of [`crate::ops::gelu_scalar`].
    #[target_feature(enable = "avx2")]
    #[inline]
    unsafe fn gelu8(x: __m256) -> __m256 {
        let ax = _mm256_mul_ps(_mm256_set1_ps(GELU_A), x);
        let x3 = _mm256_mul_ps(_mm256_mul_ps(ax, x), x);
        let u = _mm256_mul_ps(_mm256_set1_ps(GELU_C), _mm256_add_ps(x, x3));
        let t = tanh8(u);
        _mm256_mul_ps(
            _mm256_mul_ps(_mm256_set1_ps(0.5), x),
            _mm256_add_ps(_mm256_set1_ps(1.0), t),
        )
    }

    /// Vector GELU derivative, the exact association of
    /// [`crate::ops::gelu_grad_scalar`].
    #[target_feature(enable = "avx2")]
    #[inline]
    unsafe fn gelu_grad8(x: __m256) -> __m256 {
        // x3 = (x·x)·x; inner = C · (x + A·x3).
        let x3 = _mm256_mul_ps(_mm256_mul_ps(x, x), x);
        let inner = _mm256_mul_ps(
            _mm256_set1_ps(GELU_C),
            _mm256_add_ps(x, _mm256_mul_ps(_mm256_set1_ps(GELU_A), x3)),
        );
        let t = tanh8(inner);
        let sech2 = _mm256_sub_ps(_mm256_set1_ps(1.0), _mm256_mul_ps(t, t));
        grad_from_t(x, t, sech2)
    }

    /// `0.5·(1+t) + ((((0.5·x)·sech²)·C) · (1 + ((3A·x)·x)))` — the shared
    /// tail of both gradient formulas, in the scalar association.
    #[target_feature(enable = "avx2")]
    #[inline]
    unsafe fn grad_from_t(x: __m256, t: __m256, sech2: __m256) -> __m256 {
        let one = _mm256_set1_ps(1.0);
        let half = _mm256_set1_ps(0.5);
        let term1 = _mm256_mul_ps(half, _mm256_add_ps(one, t));
        let coeff = _mm256_mul_ps(
            _mm256_mul_ps(_mm256_mul_ps(half, x), sech2),
            _mm256_set1_ps(GELU_C),
        );
        let paren = _mm256_add_ps(
            one,
            _mm256_mul_ps(_mm256_mul_ps(_mm256_set1_ps(GELU_3A), x), x),
        );
        _mm256_add_ps(term1, _mm256_mul_ps(coeff, paren))
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn gelu_avx2(data: &mut [f32]) {
        let n = data.len();
        let dp = data.as_mut_ptr();
        let mut i = 0;
        while i + 8 <= n {
            _mm256_storeu_ps(dp.add(i), gelu8(_mm256_loadu_ps(dp.add(i))));
            i += 8;
        }
        while i < n {
            *dp.add(i) = crate::ops::gelu_scalar(*dp.add(i));
            i += 1;
        }
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn gelu_grad_avx2(x: &[f32], grad: &[f32], out: &mut [f32]) {
        let n = x.len();
        let xp = x.as_ptr();
        let gp = grad.as_ptr();
        let op = out.as_mut_ptr();
        let mut i = 0;
        while i + 8 <= n {
            let d = gelu_grad8(_mm256_loadu_ps(xp.add(i)));
            _mm256_storeu_ps(op.add(i), _mm256_mul_ps(d, _mm256_loadu_ps(gp.add(i))));
            i += 8;
        }
        while i < n {
            *op.add(i) = crate::ops::gelu_grad_scalar(*xp.add(i)) * *gp.add(i);
            i += 1;
        }
    }

    /// Cached-output GELU backward: both the recovered-tanh formula and the
    /// exact recompute are evaluated for all lanes and blended on
    /// `|x| > 1e-3`, matching the scalar branch lane-for-lane. The division
    /// by near-zero `x` in masked-out lanes produces inf/NaN that the blend
    /// discards (IEEE divisions do not trap).
    #[target_feature(enable = "avx2")]
    pub unsafe fn gelu_grad_cached_avx2(x: &[f32], y: &[f32], grad: &[f32], out: &mut [f32]) {
        let n = x.len();
        let xp = x.as_ptr();
        let yp = y.as_ptr();
        let gp = grad.as_ptr();
        let op = out.as_mut_ptr();
        let one = _mm256_set1_ps(1.0);
        let sign_mask = _mm256_set1_ps(-0.0);
        let mut i = 0;
        while i + 8 <= n {
            let xv = _mm256_loadu_ps(xp.add(i));
            let yv = _mm256_loadu_ps(yp.add(i));
            // t = clamp(2y/x − 1, −1, 1).
            let ratio = _mm256_div_ps(_mm256_mul_ps(_mm256_set1_ps(2.0), yv), xv);
            let t_raw = _mm256_sub_ps(ratio, one);
            let t = _mm256_min_ps(_mm256_max_ps(t_raw, _mm256_set1_ps(-1.0)), one);
            let sech2 = _mm256_sub_ps(one, _mm256_mul_ps(t, t));
            let d_cached = grad_from_t(xv, t, sech2);
            let d_exact = gelu_grad8(xv);
            let absx = _mm256_andnot_ps(sign_mask, xv);
            let use_cached = _mm256_cmp_ps::<_CMP_GT_OQ>(absx, _mm256_set1_ps(CACHED_GRAD_CUTOFF));
            let d = _mm256_blendv_ps(d_exact, d_cached, use_cached);
            _mm256_storeu_ps(op.add(i), _mm256_mul_ps(d, _mm256_loadu_ps(gp.add(i))));
            i += 8;
        }
        while i < n {
            let xi = *xp.add(i);
            let d = if xi.abs() > CACHED_GRAD_CUTOFF {
                let t = (2.0 * *yp.add(i) / xi - 1.0).clamp(-1.0, 1.0);
                let sech2 = 1.0 - t * t;
                0.5 * (1.0 + t) + 0.5 * xi * sech2 * GELU_C * (1.0 + GELU_3A * xi * xi)
            } else {
                crate::ops::gelu_grad_scalar(xi)
            };
            *op.add(i) = d * *gp.add(i);
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SeededRng;

    fn sample(len: usize, seed: u64) -> Vec<f32> {
        let mut rng = SeededRng::new(seed);
        (0..len).map(|_| rng.normal_with(0.0, 1.5)).collect()
    }

    /// Runs a GEMM through a level's kernels the way `matrix.rs` drives
    /// them: full `kern.mr`-row tiles, remainder rows through the row
    /// kernel.
    fn run_gemm(level: SimdLevel, m: usize, k: usize, n: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
        let kern = kernels_for(level);
        let mr = kern.mr;
        let mut out = vec![0.0f32; m * n];
        let mut pack = vec![0.0f32; mr * k];
        let mut i0 = 0;
        while i0 + mr <= m {
            for p in 0..k {
                for r in 0..mr {
                    pack[p * mr + r] = a[(i0 + r) * k + p];
                }
            }
            (kern.tile)(&pack[..k * mr], k, b, n, n, &mut out[i0 * n..], n);
            i0 += mr;
        }
        for i in i0..m {
            (kern.row)(&a[i * k..(i + 1) * k], b, n, n, &mut out[i * n..][..n]);
        }
        out
    }

    #[test]
    fn env_spellings_resolve() {
        // Can't mutate the process env safely under parallel tests; check
        // the pure pieces instead.
        assert!(is_supported(SimdLevel::Scalar));
        assert!(detect_best() >= SimdLevel::Scalar);
        assert_eq!(SimdLevel::Scalar.label(), "scalar");
        assert_eq!(SimdLevel::Avx2.label(), "avx2");
    }

    #[test]
    fn with_level_overrides_and_restores() {
        let base = active_level();
        with_level(SimdLevel::Scalar, || {
            assert_eq!(active_level(), SimdLevel::Scalar);
            assert_eq!(active().level, SimdLevel::Scalar);
        });
        assert_eq!(active_level(), base);
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn sse2_gemm_is_bit_identical_to_scalar() {
        for &(m, k, n) in &[
            (5usize, 7usize, 9usize),
            (4, 16, 16),
            (9, 1, 3),
            (6, 130, 5),
        ] {
            let a = sample(m * k, 1000 + (m * 31 + k * 7 + n) as u64);
            let b = sample(k * n, 2000 + (m + k + n) as u64);
            let scalar = run_gemm(SimdLevel::Scalar, m, k, n, &a, &b);
            let sse2 = run_gemm(SimdLevel::Sse2, m, k, n, &a, &b);
            assert_eq!(scalar, sse2, "({m},{k},{n})");
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn avx2_gemm_matches_scalar_within_tolerance() {
        if !is_supported(SimdLevel::Avx2) {
            return;
        }
        for &(m, k, n) in &[
            (5usize, 7usize, 9usize),
            (4, 16, 16),
            (8, 33, 17),
            (6, 130, 21),
            (13, 20, 26),
        ] {
            let a = sample(m * k, 3000 + (m * 31 + k * 7 + n) as u64);
            let b = sample(k * n, 4000 + (m + k + n) as u64);
            let scalar = run_gemm(SimdLevel::Scalar, m, k, n, &a, &b);
            let avx2 = run_gemm(SimdLevel::Avx2, m, k, n, &a, &b);
            for (i, (&s, &v)) in scalar.iter().zip(&avx2).enumerate() {
                let tol = 1e-5 * s.abs().max(1.0) * k as f32;
                assert!((s - v).abs() <= tol, "({m},{k},{n}) elem {i}: {s} vs {v}");
            }
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn avx2_tile_rows_match_avx2_row_kernel() {
        // The per-variant determinism contract: the tile kernel and the row
        // kernel of one level share the per-element accumulation order.
        if !is_supported(SimdLevel::Avx2) {
            return;
        }
        for level in [SimdLevel::Sse2, SimdLevel::Avx2] {
            // m covers ≥2 full tiles of either height (4 or 6) plus a
            // remainder row; n covers the 16-wide, 8-wide and scalar column
            // paths of the AVX2 tile.
            let (m, k, n) = (13usize, 19usize, 26usize);
            let a = sample(m * k, 71);
            let b = sample(k * n, 72);
            let tiled = run_gemm(level, m, k, n, &a, &b);
            let kern = kernels_for(level);
            let mut by_rows = vec![0.0f32; m * n];
            for i in 0..m {
                (kern.row)(&a[i * k..(i + 1) * k], &b, n, n, &mut by_rows[i * n..][..n]);
            }
            assert_eq!(tiled, by_rows, "{level:?}");
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn elementwise_kernels_are_bit_identical_across_levels() {
        if !is_supported(SimdLevel::Avx2) {
            return;
        }
        let n = 103; // odd length exercises the tails
        let x = sample(n, 11);
        let y = sample(n, 12);
        let g = sample(n, 13);
        let scalar = kernels_for(SimdLevel::Scalar);
        let avx2 = kernels_for(SimdLevel::Avx2);

        let mut a1 = x.clone();
        let mut a2 = x.clone();
        (scalar.axpy)(&mut a1, &y, 0.37);
        (avx2.axpy)(&mut a2, &y, 0.37);
        assert_eq!(a1, a2, "axpy");

        let mut p1 = vec![0.0; n];
        let mut p2 = vec![0.0; n];
        (scalar.perturb)(&mut p1, &x, &y, -1.25);
        (avx2.perturb)(&mut p2, &x, &y, -1.25);
        assert_eq!(p1, p2, "perturb");

        let mut g1 = x.clone();
        let mut g2 = x.clone();
        (scalar.gelu)(&mut g1);
        (avx2.gelu)(&mut g2);
        assert_eq!(g1, g2, "gelu forward");

        let mut d1 = vec![0.0; n];
        let mut d2 = vec![0.0; n];
        (scalar.gelu_grad)(&x, &g, &mut d1);
        (avx2.gelu_grad)(&x, &g, &mut d2);
        assert_eq!(d1, d2, "gelu grad");

        // Cached backward: y must be the true forward output (g1 above),
        // plus a tiny-x element to hit the fallback lane.
        let mut xs = x.clone();
        xs[5] = 1e-4;
        xs[50] = 0.0;
        let mut ys = xs.clone();
        (scalar.gelu)(&mut ys);
        let mut c1 = vec![0.0; n];
        let mut c2 = vec![0.0; n];
        (scalar.gelu_grad_cached)(&xs, &ys, &g, &mut c1);
        (avx2.gelu_grad_cached)(&xs, &ys, &g, &mut c2);
        assert_eq!(c1, c2, "gelu grad cached");
    }

    #[test]
    fn gelu_saturation_region_matches_scalar_sign_branch() {
        // ±big inputs exercise the tanh saturation blend.
        let kern = kernels_for(detect_best());
        let mut v = vec![-100.0f32, -5.0, -4.97, 4.97, 5.0, 100.0, 0.0];
        let expect: Vec<f32> = v.iter().map(|&x| crate::ops::gelu_scalar(x)).collect();
        (kern.gelu)(&mut v);
        assert_eq!(v, expect);
    }
}
