//! Figure 1: one-round fine-tuning cost versus the number of experts.
//!
//! The paper measures LLaMA-MoE with 8/32/128/256 experts on an NVIDIA L20
//! over 60 Dolly samples and reports 62.85 / 103.73 / 163.57 / 394.16
//! seconds. The reproduction prices the same workload with the analytic cost
//! model; the shape (monotone growth, ~6× from 8 to 256 experts) is the
//! reproduction target.

use flux_bench::{fmt, print_header};
use flux_data::DatasetKind;
use flux_fl::{CostModel, DeviceClass};
use flux_moe::MoeConfig;

fn main() {
    let cost = CostModel::default();
    let device = DeviceClass::ServerL20.profile();
    let config = MoeConfig::llama_moe_sim();
    // 60 Dolly samples at the Dolly mean sequence length (the Fig. 1
    // micro-benchmark workload the cost model was calibrated against).
    let tokens = 60 * DatasetKind::Dolly.mean_seq_len();
    let paper = [(8usize, 62.85), (32, 103.73), (128, 163.57), (256, 394.16)];

    print_header(
        "Figure 1: one-round fine-tuning cost vs #experts (L20, 60 Dolly samples)",
        &["#Experts", "Measured (s)", "Paper (s)"],
    );
    for (experts, paper_seconds) in paper {
        let measured =
            cost.fine_tune_time_s(&device, &config, tokens, experts, config.total_experts());
        println!("{experts}\t{}\t{paper_seconds}", fmt(measured));
    }
}
