//! Table 2: final achieved score per model family × dataset × method.
//!
//! The paper's finding: FMD and FLUX reach essentially the same final
//! quality, while FMQ and FMES land noticeably lower (quantization noise and
//! discarded experts respectively).

use flux_bench::{
    deepseek_config, fmt, llama_config, print_header, run_config, Scale, EXPERIMENT_SEED,
};
use flux_core::driver::{FederatedRun, Method};
use flux_data::DatasetKind;

fn main() {
    let scale = Scale::from_env();
    for (family, model) in [
        ("LLaMA-MoE", llama_config(scale)),
        ("DeepSeek-MoE", deepseek_config(scale)),
    ] {
        print_header(
            &format!("Table 2: final scores ({family}, {})", scale.label()),
            &["Method", "Dolly", "GSM8K", "MMLU", "PIQA"],
        );
        for method in Method::all() {
            let mut cells = Vec::new();
            for kind in DatasetKind::all() {
                let config = run_config(scale, model.clone(), kind);
                let result = FederatedRun::new(config, EXPERIMENT_SEED).run(method);
                cells.push(fmt(result.best_score() as f64));
            }
            println!("{}\t{}", method.label(), cells.join("\t"));
        }
    }
    println!("\npaper shape: FLUX ~= FMD > FMES > FMQ on every dataset.");
}
