//! Gating network and post-merge routing map.

use serde::{Deserialize, Serialize};

use flux_tensor::{init, ops, stats, Matrix, SeededRng};

/// The gating network of one MoE layer.
///
/// A single linear projection from the hidden state to per-expert logits.
/// Routing selects the top-k experts per token and renormalizes their
/// probabilities, the standard switch/top-k MoE scheme.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Gate {
    /// Projection matrix `(d_model, num_experts)`.
    pub weight: Matrix,
    /// Number of experts routed per token.
    pub top_k: usize,
}

/// Routing decision for one token.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TokenRouting {
    /// Selected expert indices (original, pre-remap ids), highest prob first.
    pub experts: Vec<usize>,
    /// Renormalized probabilities aligned with `experts`.
    pub weights: Vec<f32>,
    /// Full softmax distribution over experts (pre-top-k), used by profiling.
    pub full_distribution: Vec<f32>,
}

impl Gate {
    /// Creates a randomly initialized gate for `num_experts` experts.
    pub fn new(d_model: usize, num_experts: usize, top_k: usize, rng: &mut SeededRng) -> Self {
        Self {
            weight: init::xavier_uniform(d_model, num_experts, rng),
            top_k: top_k.max(1),
        }
    }

    /// Number of experts this gate routes over.
    pub fn num_experts(&self) -> usize {
        self.weight.cols()
    }

    /// Routes a single token row, returning its top-k routing decision.
    pub fn route(&self, token: &[f32]) -> TokenRouting {
        debug_assert_eq!(token.len(), self.weight.rows());
        // Vector–matrix fast path: streams the weight rows once instead of
        // gathering one column per expert.
        let logits = self.weight.vecmat(token).expect("token width matches");
        self.route_logits(&logits)
    }

    fn route_logits(&self, logits: &[f32]) -> TokenRouting {
        let probs = ops::softmax_row(logits);
        let k = self.top_k.min(probs.len());
        let top = stats::top_k_indices(&probs, k);
        let mass: f32 = top.iter().map(|&i| probs[i]).sum();
        let weights: Vec<f32> = top
            .iter()
            .map(|&i| {
                if mass > 0.0 {
                    probs[i] / mass
                } else {
                    1.0 / k as f32
                }
            })
            .collect();
        TokenRouting {
            experts: top,
            weights,
            full_distribution: probs,
        }
    }

    /// Routes every row of a hidden-state matrix.
    ///
    /// All logits come from one blocked matmul; because the matmul kernel
    /// and [`flux_tensor::Matrix::vecmat`] share their accumulation order,
    /// the decisions are bit-identical to routing each row via
    /// [`Gate::route`].
    pub fn route_all(&self, hidden: &Matrix) -> Vec<TokenRouting> {
        let logits = hidden.matmul(&self.weight);
        let routings = (0..hidden.rows())
            .map(|r| self.route_logits(logits.row(r)))
            .collect();
        logits.recycle();
        routings
    }
}

/// Remapping of original expert ids to compact (post-merge) expert ids.
///
/// After non-tuning experts are merged, the gate still produces logits over
/// the *original* expert ids; the routing map redirects a selected original
/// expert to the compact model's expert that now serves it. This is the
/// paper's "gate re-routing" (§7).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoutingMap {
    /// `map[original_expert] = compact_expert`.
    map: Vec<usize>,
    /// Number of compact experts.
    num_compact: usize,
}

impl RoutingMap {
    /// Identity mapping over `n` experts.
    pub fn identity(n: usize) -> Self {
        Self {
            map: (0..n).collect(),
            num_compact: n,
        }
    }

    /// Builds a map from an explicit original→compact table.
    ///
    /// # Panics
    ///
    /// Panics if the table is empty or references a compact id that is not
    /// dense in `0..num_compact`.
    pub fn from_table(map: Vec<usize>) -> Self {
        assert!(!map.is_empty(), "routing map cannot be empty");
        let num_compact = map.iter().max().copied().unwrap_or(0) + 1;
        for compact in 0..num_compact {
            assert!(
                map.contains(&compact),
                "compact expert {compact} has no originals mapped to it"
            );
        }
        Self { map, num_compact }
    }

    /// Number of original experts.
    pub fn num_original(&self) -> usize {
        self.map.len()
    }

    /// Number of compact experts.
    pub fn num_compact(&self) -> usize {
        self.num_compact
    }

    /// Redirects an original expert id to its compact id.
    ///
    /// # Panics
    ///
    /// Panics if `original` is out of range.
    pub fn redirect(&self, original: usize) -> usize {
        self.map[original]
    }

    /// Original experts that map to the given compact expert.
    pub fn originals_of(&self, compact: usize) -> Vec<usize> {
        self.map
            .iter()
            .enumerate()
            .filter(|(_, &c)| c == compact)
            .map(|(o, _)| o)
            .collect()
    }

    /// The raw table.
    pub fn table(&self) -> &[usize] {
        &self.map
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn route_selects_top_k_and_normalizes() {
        let mut rng = SeededRng::new(1);
        let gate = Gate::new(8, 6, 2, &mut rng);
        let token: Vec<f32> = (0..8).map(|_| rng.normal()).collect();
        let routing = gate.route(&token);
        assert_eq!(routing.experts.len(), 2);
        assert_eq!(routing.weights.len(), 2);
        assert!((routing.weights.iter().sum::<f32>() - 1.0).abs() < 1e-5);
        assert!(routing.weights[0] >= routing.weights[1]);
        assert_eq!(routing.full_distribution.len(), 6);
        assert!((routing.full_distribution.iter().sum::<f32>() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn top_k_larger_than_experts_is_clamped() {
        let mut rng = SeededRng::new(2);
        let gate = Gate::new(4, 3, 10, &mut rng);
        let routing = gate.route(&[0.1, -0.2, 0.3, 0.4]);
        assert_eq!(routing.experts.len(), 3);
    }

    #[test]
    fn route_all_covers_every_row() {
        let mut rng = SeededRng::new(3);
        let gate = Gate::new(4, 8, 2, &mut rng);
        let hidden = Matrix::random_normal(5, 4, 1.0, &mut rng);
        let routings = gate.route_all(&hidden);
        assert_eq!(routings.len(), 5);
    }

    #[test]
    fn routing_is_deterministic() {
        let mut rng = SeededRng::new(4);
        let gate = Gate::new(4, 8, 2, &mut rng);
        let token = [0.5, -0.5, 0.25, 1.0];
        assert_eq!(gate.route(&token), gate.route(&token));
    }

    #[test]
    fn different_tokens_can_route_differently() {
        let mut rng = SeededRng::new(5);
        let gate = Gate::new(8, 16, 1, &mut rng);
        let mut distinct = std::collections::HashSet::new();
        for _ in 0..32 {
            let token: Vec<f32> = (0..8).map(|_| rng.normal() * 3.0).collect();
            distinct.insert(gate.route(&token).experts[0]);
        }
        assert!(distinct.len() > 1, "expected multiple experts to be used");
    }

    #[test]
    fn identity_map_is_noop() {
        let map = RoutingMap::identity(8);
        assert_eq!(map.num_original(), 8);
        assert_eq!(map.num_compact(), 8);
        for i in 0..8 {
            assert_eq!(map.redirect(i), i);
        }
    }

    #[test]
    fn from_table_redirects_and_inverts() {
        // Experts 0 and 2 merge into compact 0; 1 and 3 into compact 1.
        let map = RoutingMap::from_table(vec![0, 1, 0, 1]);
        assert_eq!(map.num_compact(), 2);
        assert_eq!(map.redirect(2), 0);
        assert_eq!(map.originals_of(1), vec![1, 3]);
    }

    #[test]
    #[should_panic(expected = "no originals")]
    fn from_table_rejects_sparse_compacts() {
        // Compact id 1 is skipped.
        RoutingMap::from_table(vec![0, 2, 0]);
    }

    #[test]
    #[should_panic(expected = "cannot be empty")]
    fn from_table_rejects_empty() {
        RoutingMap::from_table(vec![]);
    }
}
