//! Golden-trace suite for the upload-compression layer.
//!
//! The dense-upload run is the reference semantics. Lossless delta
//! encoding (XOR bit patterns against the round-start snapshot) must
//! reproduce its per-round losses, per-round scores, and final global
//! weights **bit-identically** — across thread counts, both execution
//! schedules, and shuffled arrival orders — while shipping strictly fewer
//! bytes. Lossy modes (int8/int4 quantized deltas, top-k sparsification)
//! trade accuracy for bytes; their scores are pinned within tolerance of
//! the dense run and their byte counts must shrink monotonically with the
//! configured width and sparsity.
//!
//! CI runs this suite under `FLUX_THREADS` 1/4/8, so the default-pool runs
//! exercise every pool width.

use flux_core::driver::{ExecutionMode, FederatedRun, Method, RunConfig, RunResult};
use flux_core::scheduler::{JobSpec, SchedulePolicy, Scheduler};
use flux_data::DatasetKind;
use flux_fl::{CompressionConfig, LinkProfile};
use flux_moe::MoeConfig;
use flux_quant::BitWidth;
use threadpool::ThreadPool;

fn quick() -> RunConfig {
    RunConfig::quick_demo(MoeConfig::tiny(), DatasetKind::Gsm8k)
}

/// The golden trace of one run: (train_loss, score) per round plus the
/// final weight checksum.
#[derive(Debug, Clone, PartialEq)]
struct Trace {
    rounds: Vec<(f32, f32)>,
    checksum: u64,
}

fn trace_of(result: &RunResult) -> Trace {
    Trace {
        rounds: result
            .rounds
            .iter()
            .map(|r| (r.train_loss, r.score))
            .collect(),
        checksum: result.final_model.param_checksum(),
    }
}

#[test]
fn lossless_delta_is_bit_identical_to_dense_uploads() {
    // Reference: dense uploads, barriered, fully sequential.
    let dense = FederatedRun::new(quick(), 404)
        .with_mode(ExecutionMode::Barriered)
        .with_threads(1)
        .run(Method::Flux);
    let golden = trace_of(&dense);
    assert_eq!(golden.rounds.len(), 3);

    // Lossless compression must not change a single bit, whatever the
    // schedule or thread count. The default-pool run (no with_threads)
    // sizes its pool from FLUX_THREADS, which the CI legs sweep over 1/4/8.
    let configs: Vec<FederatedRun> = vec![
        FederatedRun::new(
            quick().with_compression(CompressionConfig::LosslessDelta),
            404,
        ),
        FederatedRun::new(
            quick().with_compression(CompressionConfig::LosslessDelta),
            404,
        )
        .with_mode(ExecutionMode::Barriered),
        FederatedRun::new(
            quick().with_compression(CompressionConfig::LosslessDelta),
            404,
        )
        .with_threads(1),
        FederatedRun::new(
            quick().with_compression(CompressionConfig::LosslessDelta),
            404,
        )
        .with_threads(4),
    ];
    for (i, run) in configs.into_iter().enumerate() {
        let compressed = run.run(Method::Flux);
        assert_eq!(
            golden,
            trace_of(&compressed),
            "lossless variant {i} diverged from the dense golden trace"
        );
        // ...while actually compressing: every round ships fewer bytes.
        assert!(
            compressed.upload_bytes_compressed < compressed.upload_bytes_dense,
            "variant {i}: encoded {} >= dense {}",
            compressed.upload_bytes_compressed,
            compressed.upload_bytes_dense
        );
        assert_eq!(compressed.upload_bytes_dense, dense.upload_bytes_dense);
    }
}

#[test]
fn lossless_delta_survives_shuffled_arrival_orders() {
    let golden = trace_of(
        &FederatedRun::new(
            quick().with_compression(CompressionConfig::LosslessDelta),
            404,
        )
        .with_threads(1)
        .run(Method::Flux),
    );
    for arrival_seed in [1u64, 2, 3] {
        let shuffled = trace_of(
            &FederatedRun::new(
                quick().with_compression(CompressionConfig::LosslessDelta),
                404,
            )
            .with_threads(4)
            .with_shuffled_arrivals(arrival_seed)
            .run(Method::Flux),
        );
        assert_eq!(
            golden, shuffled,
            "arrival seed {arrival_seed} changed the compressed trace"
        );
    }
}

#[test]
fn lossy_modes_stay_within_tolerance_of_the_dense_run() {
    let dense = FederatedRun::new(quick(), 404).run(Method::Flux);
    for (label, config) in [
        ("int8", CompressionConfig::quantized(BitWidth::Int8)),
        ("int4", CompressionConfig::quantized(BitWidth::Int4)),
        (
            "int4+topk25",
            CompressionConfig::quantized_sparse(BitWidth::Int4, 0.25),
        ),
    ] {
        let lossy = FederatedRun::new(quick().with_compression(config), 404).run(Method::Flux);
        assert_eq!(lossy.rounds.len(), dense.rounds.len());
        for (d, l) in dense.rounds.iter().zip(lossy.rounds.iter()) {
            assert!(
                (d.score - l.score).abs() <= 0.15,
                "{label} round {}: score {} vs dense {}",
                d.round,
                l.score,
                d.score
            );
            assert!(
                (d.train_loss - l.train_loss).abs() <= 0.25,
                "{label} round {}: loss {} vs dense {}",
                d.round,
                l.train_loss,
                d.train_loss
            );
        }
    }
}

#[test]
fn lossy_runs_are_bit_identical_across_thread_counts_and_arrivals() {
    // Lossy ≠ nondeterministic: the quantized/sparsified payload is a pure
    // function of the upload and the snapshot, so the whole run stays
    // bit-identical across pool widths and arrival orders.
    let config = CompressionConfig::quantized_sparse(BitWidth::Int4, 0.25);
    let reference = FederatedRun::new(quick().with_compression(config), 404)
        .with_threads(1)
        .run(Method::Flux);
    let golden = trace_of(&reference);
    for threads in [2usize, 4] {
        let threaded = FederatedRun::new(quick().with_compression(config), 404)
            .with_threads(threads)
            .run(Method::Flux);
        assert_eq!(golden, trace_of(&threaded), "threads {threads} diverged");
        assert_eq!(reference.rounds, threaded.rounds);
    }
    let shuffled = FederatedRun::new(quick().with_compression(config), 404)
        .with_threads(4)
        .with_shuffled_arrivals(7)
        .run(Method::Flux);
    assert_eq!(golden, trace_of(&shuffled), "shuffled arrivals diverged");
}

#[test]
fn encoded_bytes_shrink_with_width_and_sparsity() {
    let bytes_of = |config: CompressionConfig| {
        FederatedRun::new(quick().with_compression(config), 404)
            .run(Method::Flux)
            .upload_bytes_compressed
    };
    let dense = bytes_of(CompressionConfig::Dense);
    let lossless = bytes_of(CompressionConfig::LosslessDelta);
    let int8 = bytes_of(CompressionConfig::quantized(BitWidth::Int8));
    let int4 = bytes_of(CompressionConfig::quantized(BitWidth::Int4));
    let int4_sparse = bytes_of(CompressionConfig::quantized_sparse(BitWidth::Int4, 0.25));
    assert!(lossless < dense, "lossless {lossless} dense {dense}");
    assert!(int8 < dense, "int8 {int8} dense {dense}");
    assert!(int4 < int8, "int4 {int4} int8 {int8}");
    assert!(int4_sparse < int4, "sparse {int4_sparse} int4 {int4}");
}

#[test]
fn compression_cuts_simulated_communication_on_a_slow_uplink() {
    // The acceptance scenario: on a 3G link, int4 + top-k uploads must cut
    // simulated communication seconds by at least 4× versus dense uploads.
    let dense = FederatedRun::new(quick().with_link(LinkProfile::three_g()), 404).run(Method::Flux);
    let compressed = FederatedRun::new(
        quick()
            .with_link(LinkProfile::three_g())
            .with_compression(CompressionConfig::quantized_sparse(BitWidth::Int4, 0.25)),
        404,
    )
    .run(Method::Flux);
    let dense_comm = dense.phase_times.communication_s;
    let compressed_comm = compressed.phase_times.communication_s;
    assert!(
        dense_comm / compressed_comm >= 4.0,
        "3G speedup {:.2}x (dense {dense_comm}s, compressed {compressed_comm}s)",
        dense_comm / compressed_comm
    );
}

#[test]
fn compression_threads_through_the_scheduler() {
    // A compressed job stepped through the multi-run scheduler must equal
    // the same run executed standalone — JobSpec carries the full
    // RunConfig, compression knob included.
    let config = quick().with_compression(CompressionConfig::LosslessDelta);
    let standalone = trace_of(
        &FederatedRun::new(config.clone(), 404)
            .with_threads(2)
            .run(Method::Flux),
    );
    let scheduler = Scheduler::on_pool(ThreadPool::new(2), SchedulePolicy::Concurrent);
    let mut results = scheduler.run_all(vec![
        JobSpec::new(
            "compressed",
            FederatedRun::new(config, 404).with_threads(2),
            Method::Flux,
        ),
        JobSpec::new(
            "dense-neighbor",
            FederatedRun::new(quick(), 405).with_threads(2),
            Method::Fmd,
        ),
    ]);
    let scheduled = results.remove(0);
    assert_eq!(scheduled.name, "compressed");
    assert_eq!(
        standalone,
        trace_of(&scheduled.result),
        "scheduler interleaving changed the compressed run"
    );
}
