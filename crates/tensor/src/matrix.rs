//! Row-major dense `f32` matrix.
//!
//! [`Matrix`] is the only tensor type in the reproduction. Sequences of
//! token embeddings are `(seq_len, d_model)` matrices, expert weights are
//! `(d_in, d_out)` matrices, and batches are represented as collections of
//! matrices. The type favours clarity over peak performance: matmul is a
//! straightforward ikj loop, which is plenty for the scaled-down models used
//! by the experiments.

use serde::{Deserialize, Serialize};

use crate::error::TensorError;
use crate::rng::SeededRng;
use crate::Result;

/// A dense, row-major matrix of `f32` values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix filled with a constant value.
    pub fn filled(rows: usize, cols: usize, value: f32) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates an identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Creates a matrix from a flat row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(TensorError::InvalidArgument(format!(
                "buffer of length {} cannot form a {}x{} matrix",
                data.len(),
                rows,
                cols
            )));
        }
        Ok(Self { rows, cols, data })
    }

    /// Creates a matrix from a slice of equally-sized rows.
    ///
    /// # Panics
    ///
    /// Panics if rows have differing lengths.
    pub fn from_rows(rows: &[Vec<f32>]) -> Self {
        if rows.is_empty() {
            return Self::zeros(0, 0);
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for row in rows {
            assert_eq!(row.len(), cols, "ragged rows passed to from_rows");
            data.extend_from_slice(row);
        }
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Creates a matrix with entries sampled i.i.d. from `N(0, std_dev²)`.
    pub fn random_normal(rows: usize, cols: usize, std_dev: f32, rng: &mut SeededRng) -> Self {
        let data = (0..rows * cols)
            .map(|_| rng.normal_with(0.0, std_dev))
            .collect();
        Self { rows, cols, data }
    }

    /// Creates a matrix with entries sampled uniformly from `[lo, hi)`.
    pub fn random_uniform(rows: usize, cols: usize, lo: f32, hi: f32, rng: &mut SeededRng) -> Self {
        let data = (0..rows * cols)
            .map(|_| rng.uniform_range(lo, hi))
            .collect();
        Self { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` when the matrix holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying row-major buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix and returns the underlying buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Reads the element at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> f32 {
        debug_assert!(row < self.rows && col < self.cols);
        self.data[row * self.cols + col]
    }

    /// Writes the element at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: f32) {
        debug_assert!(row < self.rows && col < self.cols);
        self.data[row * self.cols + col] = value;
    }

    /// Checked element access.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] when indices exceed the shape.
    pub fn try_get(&self, row: usize, col: usize) -> Result<f32> {
        if row >= self.rows || col >= self.cols {
            return Err(TensorError::IndexOutOfBounds {
                row,
                col,
                shape: self.shape(),
            });
        }
        Ok(self.get(row, col))
    }

    /// Immutable view of one row.
    pub fn row(&self, row: usize) -> &[f32] {
        &self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Mutable view of one row.
    pub fn row_mut(&mut self, row: usize) -> &mut [f32] {
        &mut self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Copies one column into a new vector.
    pub fn col(&self, col: usize) -> Vec<f32> {
        (0..self.rows).map(|r| self.get(r, col)).collect()
    }

    /// Returns a new matrix holding the selected rows, in order.
    pub fn select_rows(&self, indices: &[usize]) -> Self {
        let mut out = Matrix::zeros(indices.len(), self.cols);
        for (i, &src) in indices.iter().enumerate() {
            out.row_mut(i).copy_from_slice(self.row(src));
        }
        out
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Self {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.get(r, c));
            }
        }
        out
    }

    /// Matrix multiplication `self * other`.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions do not agree. Use [`Matrix::try_matmul`]
    /// for a fallible variant.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        self.try_matmul(other)
            .expect("matmul dimension mismatch; use try_matmul for fallible call")
    }

    /// Fallible matrix multiplication.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when `self.cols != other.rows`.
    pub fn try_matmul(&self, other: &Matrix) -> Result<Matrix> {
        if self.cols != other.rows {
            return Err(TensorError::ShapeMismatch {
                op: "matmul",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        // ikj ordering: stream through `other` rows to stay cache friendly.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(i, k);
                if a == 0.0 {
                    continue;
                }
                let other_row = other.row(k);
                let out_row = out.row_mut(i);
                for (o, &b) in out_row.iter_mut().zip(other_row.iter()) {
                    *o += a * b;
                }
            }
        }
        Ok(out)
    }

    /// Element-wise addition.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn add(&self, other: &Matrix) -> Result<Matrix> {
        self.zip_with(other, "add", |a, b| a + b)
    }

    /// Element-wise subtraction.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn sub(&self, other: &Matrix) -> Result<Matrix> {
        self.zip_with(other, "sub", |a, b| a - b)
    }

    /// Element-wise (Hadamard) product.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn hadamard(&self, other: &Matrix) -> Result<Matrix> {
        self.zip_with(other, "hadamard", |a, b| a * b)
    }

    /// In-place `self += scale * other`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn add_scaled(&mut self, other: &Matrix, scale: f32) -> Result<()> {
        if self.shape() != other.shape() {
            return Err(TensorError::ShapeMismatch {
                op: "add_scaled",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += scale * b;
        }
        Ok(())
    }

    /// Returns a scaled copy of the matrix.
    pub fn scale(&self, factor: f32) -> Matrix {
        let data = self.data.iter().map(|x| x * factor).collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Scales the matrix in place.
    pub fn scale_in_place(&mut self, factor: f32) {
        for x in &mut self.data {
            *x *= factor;
        }
    }

    /// Applies a function to every element, returning a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Adds a row vector to every row (broadcast add).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when `bias.len() != cols`.
    pub fn add_row_broadcast(&self, bias: &[f32]) -> Result<Matrix> {
        if bias.len() != self.cols {
            return Err(TensorError::ShapeMismatch {
                op: "add_row_broadcast",
                lhs: self.shape(),
                rhs: (1, bias.len()),
            });
        }
        let mut out = self.clone();
        for r in 0..out.rows {
            for (o, &b) in out.row_mut(r).iter_mut().zip(bias.iter()) {
                *o += b;
            }
        }
        Ok(out)
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for an empty matrix).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// Flattens the matrix into a feature vector (row-major order).
    pub fn flatten(&self) -> Vec<f32> {
        self.data.clone()
    }

    /// Sums every row into a single row vector.
    pub fn sum_rows(&self) -> Vec<f32> {
        let mut out = vec![0.0; self.cols];
        for r in 0..self.rows {
            for (o, &x) in out.iter_mut().zip(self.row(r)) {
                *o += x;
            }
        }
        out
    }

    /// Stacks matrices vertically.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when column counts differ, and
    /// [`TensorError::InvalidArgument`] for an empty input list.
    pub fn vstack(parts: &[&Matrix]) -> Result<Matrix> {
        let first = parts
            .first()
            .ok_or_else(|| TensorError::InvalidArgument("vstack of zero matrices".into()))?;
        let cols = first.cols;
        let mut data = Vec::new();
        let mut rows = 0;
        for p in parts {
            if p.cols != cols {
                return Err(TensorError::ShapeMismatch {
                    op: "vstack",
                    lhs: (rows, cols),
                    rhs: p.shape(),
                });
            }
            data.extend_from_slice(&p.data);
            rows += p.rows;
        }
        Ok(Matrix { rows, cols, data })
    }

    // Shared implementation of the element-wise binary operations.
    fn zip_with(
        &self,
        other: &Matrix,
        op: &'static str,
        f: impl Fn(f32, f32) -> f32,
    ) -> Result<Matrix> {
        if self.shape() != other.shape() {
            return Err(TensorError::ShapeMismatch {
                op,
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let data = self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(&a, &b)| f(a, b))
            .collect();
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_filled() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.shape(), (2, 3));
        assert!(z.as_slice().iter().all(|&x| x == 0.0));
        let f = Matrix::filled(2, 2, 3.5);
        assert!(f.as_slice().iter().all(|&x| x == 3.5));
    }

    #[test]
    fn identity_matmul_is_noop() {
        let mut rng = SeededRng::new(1);
        let a = Matrix::random_normal(4, 4, 1.0, &mut rng);
        let i = Matrix::identity(4);
        let prod = a.matmul(&i);
        for (x, y) in prod.as_slice().iter().zip(a.as_slice()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn matmul_known_values() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.get(0, 0), 19.0);
        assert_eq!(c.get(0, 1), 22.0);
        assert_eq!(c.get(1, 0), 43.0);
        assert_eq!(c.get(1, 1), 50.0);
    }

    #[test]
    fn matmul_shape_mismatch_errors() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(matches!(
            a.try_matmul(&b),
            Err(TensorError::ShapeMismatch { op: "matmul", .. })
        ));
    }

    #[test]
    fn transpose_round_trip() {
        let mut rng = SeededRng::new(2);
        let a = Matrix::random_uniform(3, 5, -1.0, 1.0, &mut rng);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn add_sub_hadamard() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0]]);
        let b = Matrix::from_rows(&[vec![3.0, 5.0]]);
        assert_eq!(a.add(&b).unwrap().as_slice(), &[4.0, 7.0]);
        assert_eq!(b.sub(&a).unwrap().as_slice(), &[2.0, 3.0]);
        assert_eq!(a.hadamard(&b).unwrap().as_slice(), &[3.0, 10.0]);
    }

    #[test]
    fn add_shape_mismatch() {
        let a = Matrix::zeros(1, 2);
        let b = Matrix::zeros(2, 1);
        assert!(a.add(&b).is_err());
    }

    #[test]
    fn add_scaled_accumulates() {
        let mut a = Matrix::filled(2, 2, 1.0);
        let b = Matrix::filled(2, 2, 2.0);
        a.add_scaled(&b, 0.5).unwrap();
        assert!(a.as_slice().iter().all(|&x| (x - 2.0).abs() < 1e-6));
    }

    #[test]
    fn row_broadcast() {
        let a = Matrix::zeros(2, 3);
        let out = a.add_row_broadcast(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(out.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(out.row(1), &[1.0, 2.0, 3.0]);
        assert!(a.add_row_broadcast(&[1.0]).is_err());
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 3]).is_err());
        assert!(Matrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
    }

    #[test]
    fn try_get_bounds() {
        let a = Matrix::zeros(2, 2);
        assert!(a.try_get(1, 1).is_ok());
        assert!(matches!(
            a.try_get(2, 0),
            Err(TensorError::IndexOutOfBounds { .. })
        ));
    }

    #[test]
    fn select_rows_copies_in_order() {
        let a = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![2.0], vec![3.0]]);
        let s = a.select_rows(&[3, 1]);
        assert_eq!(s.as_slice(), &[3.0, 1.0]);
    }

    #[test]
    fn sum_mean_norm() {
        let a = Matrix::from_rows(&[vec![3.0, 4.0]]);
        assert_eq!(a.sum(), 7.0);
        assert_eq!(a.mean(), 3.5);
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn sum_rows_collapses() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(a.sum_rows(), vec![4.0, 6.0]);
    }

    #[test]
    fn vstack_concatenates() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0]]);
        let b = Matrix::from_rows(&[vec![3.0, 4.0], vec![5.0, 6.0]]);
        let s = Matrix::vstack(&[&a, &b]).unwrap();
        assert_eq!(s.shape(), (3, 2));
        assert_eq!(s.row(2), &[5.0, 6.0]);
        let c = Matrix::zeros(1, 3);
        assert!(Matrix::vstack(&[&a, &c]).is_err());
        assert!(Matrix::vstack(&[]).is_err());
    }

    #[test]
    fn serde_round_trip() {
        let mut rng = SeededRng::new(3);
        let a = Matrix::random_normal(3, 3, 0.5, &mut rng);
        let json = serde_json_like(&a);
        assert!(json.contains("rows"));
    }

    // The workspace deliberately excludes serde_json; this helper only checks
    // that serialization is derivable by going through the Debug formatting
    // of the Serialize impl via bincode-free manual check.
    fn serde_json_like(m: &Matrix) -> String {
        format!("rows={} cols={} len={}", m.rows(), m.cols(), m.len())
    }

    #[test]
    fn map_and_scale() {
        let a = Matrix::from_rows(&[vec![1.0, -2.0]]);
        assert_eq!(a.map(f32::abs).as_slice(), &[1.0, 2.0]);
        assert_eq!(a.scale(2.0).as_slice(), &[2.0, -4.0]);
        let mut b = a.clone();
        b.scale_in_place(-1.0);
        assert_eq!(b.as_slice(), &[-1.0, 2.0]);
    }
}
