//! Figure 19: fixed ε = 0.3, fixed ε = 0.7, and the dynamic ε schedule.
//!
//! The paper finds that a small fixed ε over-explores (unstable), a large
//! fixed ε over-exploits (leaves useful experts untouched), and the dynamic
//! schedule converges fastest.

use flux_bench::{fmt, llama_config, print_header, run_config, Scale, EXPERIMENT_SEED};
use flux_core::assignment::DynamicEpsilon;
use flux_core::driver::{FederatedRun, Method};
use flux_data::DatasetKind;

fn main() {
    let scale = Scale::from_env();
    let schedules = [
        ("eps=0.3", DynamicEpsilon::fixed(0.3)),
        ("eps=0.7", DynamicEpsilon::fixed(0.7)),
        ("dyn eps", DynamicEpsilon::paper_default()),
    ];
    for kind in DatasetKind::all() {
        print_header(
            &format!(
                "Figure 19: epsilon strategies on {} ({})",
                kind.name(),
                scale.label()
            ),
            &[
                "Strategy",
                "Final score",
                "Best score",
                "Time to 90% of best (h)",
            ],
        );
        let mut results = Vec::new();
        for (label, epsilon) in schedules {
            let config = run_config(scale, llama_config(scale), kind).with_epsilon(epsilon);
            let result = FederatedRun::new(config, EXPERIMENT_SEED).run(Method::Flux);
            results.push((label, result));
        }
        let best = results
            .iter()
            .map(|(_, r)| r.best_score())
            .fold(0.0f32, f32::max);
        let target = best * 0.9;
        for (label, result) in &results {
            let tta = match result.time_to_score(target) {
                Some(t) => fmt(t),
                None => "n/r".to_string(),
            };
            println!(
                "{label}\t{}\t{}\t{}",
                fmt(result.final_score as f64),
                fmt(result.best_score() as f64),
                tta
            );
        }
    }
    println!(
        "\npaper: dynamic epsilon converges fastest; eps=0.3 is unstable, eps=0.7 under-explores."
    );
}
