//! The parameter server holding the global model.

use parking_lot::RwLock;

use flux_moe::{ExpertKey, MoeModel};
use flux_tensor::Matrix;

use crate::aggregate::{fedavg_experts, fedavg_matrices, ExpertUpdate};

/// Central parameter server of the federated system.
///
/// Holds the global MoE model, aggregates expert updates with FedAvg, and
/// hands out copies (or per-expert parameters) to participants. Interior
/// mutability allows the participant simulation to run on worker threads
/// while the server stays shared.
#[derive(Debug)]
pub struct ParameterServer {
    global: RwLock<MoeModel>,
    rounds_completed: RwLock<usize>,
}

impl ParameterServer {
    /// Creates a server around an initial global model.
    pub fn new(global_model: MoeModel) -> Self {
        Self {
            global: RwLock::new(global_model),
            rounds_completed: RwLock::new(0),
        }
    }

    /// A full copy of the current global model (what a participant downloads
    /// at the start of a round).
    pub fn global_model(&self) -> MoeModel {
        self.global.read().clone()
    }

    /// Number of aggregation rounds applied so far.
    pub fn rounds_completed(&self) -> usize {
        *self.rounds_completed.read()
    }

    /// Applies one round of FedAvg aggregation.
    ///
    /// `expert_updates` carries the fine-tuned expert parameters from every
    /// participant (original/global expert ids); `head_updates` carries the
    /// task-head matrices with their weights. Experts nobody updated keep
    /// their previous global parameters.
    pub fn aggregate(&self, expert_updates: &[ExpertUpdate], head_updates: &[(Matrix, f32)]) {
        let aggregated = fedavg_experts(expert_updates);
        let head = fedavg_matrices(head_updates);
        let mut global = self.global.write();
        for (key, expert) in aggregated {
            if key.layer < global.layers.len()
                && key.expert < global.layers[key.layer].moe.num_experts()
            {
                global.set_expert(key, expert);
            }
        }
        if let Some(head) = head {
            let target = match &mut global.cls_head {
                Some(h) => h,
                None => &mut global.lm_head,
            };
            if target.shape() == head.shape() {
                *target = head;
            }
        }
        *self.rounds_completed.write() += 1;
    }

    /// Convenience: read one expert's current global parameters.
    pub fn expert(&self, key: ExpertKey) -> flux_moe::Expert {
        self.global.read().expert(key).clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flux_moe::MoeConfig;
    use flux_tensor::SeededRng;

    fn server() -> ParameterServer {
        let mut rng = SeededRng::new(1);
        ParameterServer::new(MoeModel::new(MoeConfig::tiny(), &mut rng))
    }

    #[test]
    fn aggregate_replaces_updated_experts_only() {
        let server = server();
        let before = server.global_model();
        let key = ExpertKey::new(0, 0);
        let untouched = ExpertKey::new(3, 7);
        let mut rng = SeededRng::new(2);
        let new_expert = flux_moe::Expert::new(16, 32, &mut rng);
        server.aggregate(
            &[ExpertUpdate {
                key,
                expert: new_expert.clone(),
                weight: 1.0,
            }],
            &[],
        );
        let after = server.global_model();
        assert_eq!(after.expert(key), &new_expert);
        assert_eq!(after.expert(untouched), before.expert(untouched));
        assert_eq!(server.rounds_completed(), 1);
    }

    #[test]
    fn aggregate_updates_head() {
        let server = server();
        let shape = server.global_model().lm_head.shape();
        let new_head = Matrix::filled(shape.0, shape.1, 0.123);
        server.aggregate(&[], &[(new_head.clone(), 2.0)]);
        assert_eq!(server.global_model().lm_head, new_head);
    }

    #[test]
    fn mismatched_head_is_ignored() {
        let server = server();
        let before = server.global_model().lm_head.clone();
        server.aggregate(&[], &[(Matrix::filled(2, 2, 9.0), 1.0)]);
        assert_eq!(server.global_model().lm_head, before);
    }

    #[test]
    fn out_of_range_expert_update_is_ignored() {
        let server = server();
        let mut rng = SeededRng::new(3);
        let rogue = flux_moe::Expert::new(16, 32, &mut rng);
        server.aggregate(
            &[ExpertUpdate {
                key: ExpertKey::new(99, 99),
                expert: rogue,
                weight: 1.0,
            }],
            &[],
        );
        assert_eq!(server.rounds_completed(), 1);
    }

    #[test]
    fn expert_accessor_matches_model() {
        let server = server();
        let key = ExpertKey::new(1, 2);
        assert_eq!(&server.expert(key), server.global_model().expert(key));
    }

    #[test]
    fn server_is_shareable_across_threads() {
        let server = std::sync::Arc::new(server());
        let mut handles = Vec::new();
        for t in 0..4 {
            let s = server.clone();
            handles.push(std::thread::spawn(move || {
                let mut rng = SeededRng::new(t);
                let e = flux_moe::Expert::new(16, 32, &mut rng);
                s.aggregate(
                    &[ExpertUpdate {
                        key: ExpertKey::new(0, t as usize),
                        expert: e,
                        weight: 1.0,
                    }],
                    &[],
                );
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(server.rounds_completed(), 4);
    }
}
