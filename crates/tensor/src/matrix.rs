//! Row-major dense `f32` matrix.
//!
//! [`Matrix`] is the only tensor type in the reproduction. Sequences of
//! token embeddings are `(seq_len, d_model)` matrices, expert weights are
//! `(d_in, d_out)` matrices, and batches are represented as collections of
//! matrices. Matmul — the training hot path — runs through a cache-blocked,
//! panel-packed kernel ([`Matrix::try_matmul`]) with fused-transpose
//! variants ([`Matrix::matmul_transa`], [`Matrix::matmul_transb`]) and
//! vector fast paths ([`Matrix::matvec`], [`Matrix::vecmat`]) so the
//! backward pass never materializes transposed weights. A zero-skipping
//! entry point ([`Matrix::try_matmul_sparse`]) remains for genuinely sparse
//! operands such as gating masks.

use serde::{Deserialize, Serialize};

use crate::error::TensorError;
use crate::rng::SeededRng;
use crate::simd;
use crate::{scratch, Result};

/// Depth (k) blocking factor of the matmul kernel. Panels of `A` spanning
/// `KC` depth steps are packed into contiguous scratch so the micro-kernel
/// streams them linearly while the touched rows of `B` stay cache-resident.
/// Must remain a multiple of the depth unroll factor (4) so accumulation
/// grouping is identical across block boundaries — [`Matrix::vecmat`] and
/// the blocked kernel rely on that to produce bit-identical results.
const KC: usize = 128;

/// Accumulates `out += a · b` where `a` is `(m, k)`, `b` is `(k, n)` and
/// `out` is `(m, n)`, all row-major. The caller provides `out` already
/// initialized (zeros for a plain matmul, broadcast bias rows for the fused
/// bias path), which is what makes the bias fusion free.
fn gemm_accumulate(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    gemm_strided(m, k, n, a, k, b, n, out, n);
}

/// The strided general form of the blocked GEMM: `a` rows are `lda` apart,
/// `b` rows `ldb` apart, `out` rows `ldc` apart (all row-major views; the
/// depth runs along `a`'s rows, so each packed panel row is contiguous).
/// The fused block-diagonal attention path drives this directly on row
/// slices of packed activations, with the padded scores matrix as `out` —
/// no `copy_rows`/`paste_rows` staging, and **bit-identical** results to
/// the dense entry points because the leading dimensions never enter the
/// arithmetic.
///
/// The inner microkernels come from the runtime dispatch table
/// ([`crate::simd::active`]): the scalar reference, SSE2 (bit-identical to
/// scalar) or AVX2+FMA. Each variant's per-element accumulation order is
/// fixed and independent of `m`/`n`/blocking, which is what keeps every
/// variant individually deterministic across thread counts and batch
/// shapes.
#[allow(clippy::too_many_arguments)]
fn gemm_strided(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    lda: usize,
    b: &[f32],
    ldb: usize,
    out: &mut [f32],
    ldc: usize,
) {
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    debug_assert!(a.len() >= (m - 1) * lda + k);
    debug_assert!(b.len() >= (k - 1) * ldb + n);
    debug_assert!(out.len() >= (m - 1) * ldc + n);
    let kern = simd::active();
    let mr = kern.mr;
    scratch::with(mr * KC.min(k), |pack| {
        let mut kk0 = 0;
        while kk0 < k {
            let kc = KC.min(k - kk0);
            let b_panel = &b[kk0 * ldb..];
            let mut i0 = 0;
            while i0 + mr <= m {
                // Pack the mr×kc panel of `a` depth-major: the micro-kernel
                // then reads it strictly linearly.
                for p in 0..kc {
                    let dst = &mut pack[p * mr..p * mr + mr];
                    for (r, slot) in dst.iter_mut().enumerate() {
                        *slot = a[(i0 + r) * lda + kk0 + p];
                    }
                }
                (kern.tile)(
                    &pack[..kc * mr],
                    kc,
                    b_panel,
                    ldb,
                    n,
                    &mut out[i0 * ldc..],
                    ldc,
                );
                i0 += mr;
            }
            for i in i0..m {
                let a_row = &a[i * lda + kk0..][..kc];
                (kern.row)(a_row, b_panel, ldb, n, &mut out[i * ldc..][..n]);
            }
            kk0 += KC;
        }
    });
}

/// Dot product with four independent accumulators (instruction-level
/// parallelism plus a fixed, deterministic association order).
fn dot4(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut s = [0.0f32; 4];
    let chunks = a.len() / 4;
    for c in 0..chunks {
        let i = 4 * c;
        s[0] += a[i] * b[i];
        s[1] += a[i + 1] * b[i + 1];
        s[2] += a[i + 2] * b[i + 2];
        s[3] += a[i + 3] * b[i + 3];
    }
    let mut tail = 0.0;
    for i in 4 * chunks..a.len() {
        tail += a[i] * b[i];
    }
    (s[0] + s[1]) + (s[2] + s[3]) + tail
}

/// A dense, row-major matrix of `f32` values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a zeroed matrix whose buffer comes from the thread-local
    /// scratch pool (see [`Matrix::recycle`]). Hot paths use this for
    /// intermediates so steady-state training does no per-call allocation;
    /// the result is an ordinary matrix in every other respect.
    pub fn zeros_pooled(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: scratch::take(rows * cols),
        }
    }

    /// Retires this matrix's buffer into the thread-local scratch pool, to
    /// be reused by a later [`Matrix::zeros_pooled`] or kernel scratch
    /// request. Purely an optimization — dropping the matrix instead is
    /// always correct.
    pub fn recycle(self) {
        scratch::give(self.data);
    }

    /// Creates a matrix filled with a constant value.
    pub fn filled(rows: usize, cols: usize, value: f32) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates an identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Creates a matrix from a flat row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(TensorError::InvalidArgument(format!(
                "buffer of length {} cannot form a {}x{} matrix",
                data.len(),
                rows,
                cols
            )));
        }
        Ok(Self { rows, cols, data })
    }

    /// Creates a matrix from a slice of equally-sized rows.
    ///
    /// # Panics
    ///
    /// Panics if rows have differing lengths.
    pub fn from_rows(rows: &[Vec<f32>]) -> Self {
        if rows.is_empty() {
            return Self::zeros(0, 0);
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for row in rows {
            assert_eq!(row.len(), cols, "ragged rows passed to from_rows");
            data.extend_from_slice(row);
        }
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Creates a matrix with entries sampled i.i.d. from `N(0, std_dev²)`.
    pub fn random_normal(rows: usize, cols: usize, std_dev: f32, rng: &mut SeededRng) -> Self {
        let data = (0..rows * cols)
            .map(|_| rng.normal_with(0.0, std_dev))
            .collect();
        Self { rows, cols, data }
    }

    /// Creates a matrix with entries sampled uniformly from `[lo, hi)`.
    pub fn random_uniform(rows: usize, cols: usize, lo: f32, hi: f32, rng: &mut SeededRng) -> Self {
        let data = (0..rows * cols)
            .map(|_| rng.uniform_range(lo, hi))
            .collect();
        Self { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` when the matrix holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix and returns the underlying buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Reads the element at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> f32 {
        debug_assert!(row < self.rows && col < self.cols);
        self.data[row * self.cols + col]
    }

    /// Writes the element at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: f32) {
        debug_assert!(row < self.rows && col < self.cols);
        self.data[row * self.cols + col] = value;
    }

    /// Checked element access.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] when indices exceed the shape.
    pub fn try_get(&self, row: usize, col: usize) -> Result<f32> {
        if row >= self.rows || col >= self.cols {
            return Err(TensorError::IndexOutOfBounds {
                row,
                col,
                shape: self.shape(),
            });
        }
        Ok(self.get(row, col))
    }

    /// Immutable view of one row.
    #[inline]
    pub fn row(&self, row: usize) -> &[f32] {
        &self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Mutable view of one row.
    #[inline]
    pub fn row_mut(&mut self, row: usize) -> &mut [f32] {
        &mut self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Copies one column into a new vector.
    pub fn col(&self, col: usize) -> Vec<f32> {
        (0..self.rows).map(|r| self.get(r, col)).collect()
    }

    /// Returns a new matrix holding the selected rows, in order.
    pub fn select_rows(&self, indices: &[usize]) -> Self {
        let mut out = Matrix::zeros(indices.len(), self.cols);
        for (i, &src) in indices.iter().enumerate() {
            out.row_mut(i).copy_from_slice(self.row(src));
        }
        out
    }

    /// Copies the contiguous row range `[start, end)` into a new matrix
    /// whose buffer comes from the scratch pool. This is the segment-slicing
    /// primitive of the batched training path: per-sample blocks of a packed
    /// `(total_tokens, d)` activation matrix are carved out without touching
    /// the allocator.
    ///
    /// # Panics
    ///
    /// Panics if `start > end` or `end > self.rows()`.
    pub fn copy_rows(&self, start: usize, end: usize) -> Self {
        assert!(start <= end && end <= self.rows, "row range out of bounds");
        let mut out = Matrix::zeros_pooled(end - start, self.cols);
        out.data
            .copy_from_slice(&self.data[start * self.cols..end * self.cols]);
        out
    }

    /// Copies the contiguous column range `[start, end)` into a new matrix
    /// whose buffer comes from the scratch pool. Used to split the output of
    /// a fused wide GEMM (e.g. the attention Q/K/V projection) back into its
    /// logical operands.
    ///
    /// # Panics
    ///
    /// Panics if `start > end` or `end > self.cols()`.
    pub fn copy_cols(&self, start: usize, end: usize) -> Self {
        assert!(
            start <= end && end <= self.cols,
            "column range out of bounds"
        );
        let width = end - start;
        let mut out = Matrix::zeros_pooled(self.rows, width);
        for r in 0..self.rows {
            out.row_mut(r)
                .copy_from_slice(&self.data[r * self.cols + start..r * self.cols + end]);
        }
        out
    }

    /// Writes `block` over the rows starting at `start` (the inverse of
    /// [`Matrix::copy_rows`]).
    ///
    /// # Panics
    ///
    /// Panics if the column counts differ or the block overruns the rows.
    pub fn paste_rows(&mut self, start: usize, block: &Matrix) {
        assert_eq!(self.cols, block.cols, "paste_rows column mismatch");
        assert!(start + block.rows <= self.rows, "paste_rows overruns rows");
        self.data[start * self.cols..(start + block.rows) * self.cols].copy_from_slice(&block.data);
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Self {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.get(r, c));
            }
        }
        out
    }

    /// Matrix multiplication `self * other`.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions do not agree. Use [`Matrix::try_matmul`]
    /// for a fallible variant.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        self.try_matmul(other)
            .expect("matmul dimension mismatch; use try_matmul for fallible call")
    }

    /// Fallible matrix multiplication.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when `self.cols != other.rows`.
    pub fn try_matmul(&self, other: &Matrix) -> Result<Matrix> {
        if self.cols != other.rows {
            return Err(TensorError::ShapeMismatch {
                op: "matmul",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let mut out = Matrix::zeros_pooled(self.rows, other.cols);
        gemm_accumulate(
            self.rows,
            self.cols,
            other.cols,
            &self.data,
            &other.data,
            &mut out.data,
        );
        Ok(out)
    }

    /// Fused `self · other + bias` where `bias` broadcasts over rows.
    ///
    /// The output rows are initialized with the bias before the blocked
    /// kernel accumulates into them, so the fusion costs nothing beyond the
    /// matmul itself (and saves the full extra pass plus allocation a
    /// separate broadcast-add would pay).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when `self.cols != other.rows`
    /// or `bias.len() != other.cols`.
    pub fn try_matmul_bias(&self, other: &Matrix, bias: &[f32]) -> Result<Matrix> {
        if self.cols != other.rows {
            return Err(TensorError::ShapeMismatch {
                op: "matmul_bias",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        if bias.len() != other.cols {
            return Err(TensorError::ShapeMismatch {
                op: "matmul_bias",
                lhs: other.shape(),
                rhs: (1, bias.len()),
            });
        }
        let mut out = Matrix::zeros_pooled(self.rows, other.cols);
        for r in 0..self.rows {
            out.row_mut(r).copy_from_slice(bias);
        }
        gemm_accumulate(
            self.rows,
            self.cols,
            other.cols,
            &self.data,
            &other.data,
            &mut out.data,
        );
        Ok(out)
    }

    /// Sparse-aware matmul that skips zero entries of `self`.
    ///
    /// The dense kernel behind [`Matrix::try_matmul`] deliberately dropped
    /// the per-element zero branch; this entry point keeps it for operands
    /// that are genuinely sparse (one-hot gating masks, routing selector
    /// matrices), where skipping whole `B` rows pays for the branch.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when `self.cols != other.rows`.
    pub fn try_matmul_sparse(&self, other: &Matrix) -> Result<Matrix> {
        if self.cols != other.rows {
            return Err(TensorError::ShapeMismatch {
                op: "matmul",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let mut out = Matrix::zeros_pooled(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(i, k);
                if a == 0.0 {
                    continue;
                }
                let other_row = other.row(k);
                let out_row = out.row_mut(i);
                for (o, &b) in out_row.iter_mut().zip(other_row.iter()) {
                    *o += a * b;
                }
            }
        }
        Ok(out)
    }

    /// `selfᵀ · other` without materializing the transpose.
    ///
    /// `self` is `(k, m)`, `other` is `(k, n)`, the result is `(m, n)`.
    /// Replaces the `a.transpose().matmul(b)` pattern of the backward
    /// passes: both operands are streamed row-contiguously and no transposed
    /// copy is allocated.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when the row counts differ.
    pub fn matmul_transa(&self, other: &Matrix) -> Result<Matrix> {
        if self.rows != other.rows {
            return Err(TensorError::ShapeMismatch {
                op: "matmul_transa",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let (k, m, n) = (self.rows, self.cols, other.cols);
        let mut out = Matrix::zeros_pooled(m, n);
        if m == 0 || n == 0 || k == 0 {
            return Ok(out);
        }
        // Transpose `self` once into scratch — one cheap pass — and reuse
        // the dispatched blocked kernel, exactly like `matmul_transb`. This
        // replaced a hand-unrolled rank-1-update loop nest that duplicated
        // the kernel's tail handling and could not vectorize through the
        // dispatch layer.
        scratch::with(k * m, |at| {
            for p in 0..k {
                for (c, &v) in self.row(p).iter().enumerate() {
                    at[c * k + p] = v;
                }
            }
            gemm_strided(m, k, n, at, k, &other.data, n, &mut out.data, n);
        });
        Ok(out)
    }

    /// `self · otherᵀ` without materializing the transpose.
    ///
    /// `self` is `(m, k)`, `other` is `(n, k)`, the result is `(m, n)`:
    /// every output element is a dot product of two contiguous rows, the
    /// cache-friendliest shape there is. Replaces the
    /// `a.matmul(&b.transpose())` pattern of attention scores and weight
    /// backward passes.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when the column counts differ.
    pub fn matmul_transb(&self, other: &Matrix) -> Result<Matrix> {
        if self.cols != other.cols {
            return Err(TensorError::ShapeMismatch {
                op: "matmul_transb",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let (m, n, k) = (self.rows, other.rows, self.cols);
        let mut out = Matrix::zeros_pooled(m, n);
        if m == 0 || n == 0 || k == 0 {
            return Ok(out);
        }
        // Per-element dot products (the obvious formulation) are scalar
        // ILP-bound and ran ~5× slower than the blocked kernel at a few
        // hundred columns. Instead, transpose `other` once into scratch —
        // one cheap pass — and reuse the vectorizing blocked kernel.
        scratch::with(k * n, |bt| {
            for j in 0..n {
                for (kk, &v) in other.row(j).iter().enumerate() {
                    bt[kk * n + j] = v;
                }
            }
            gemm_strided(m, k, n, &self.data, k, bt, n, &mut out.data, n);
        });
        Ok(out)
    }

    /// Matrix–vector product `self · x` (fast path, no `Matrix` wrapping).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when `x.len() != self.cols`.
    pub fn matvec(&self, x: &[f32]) -> Result<Vec<f32>> {
        if x.len() != self.cols {
            return Err(TensorError::ShapeMismatch {
                op: "matvec",
                lhs: self.shape(),
                rhs: (x.len(), 1),
            });
        }
        Ok((0..self.rows).map(|r| dot4(self.row(r), x)).collect())
    }

    /// Vector–matrix product `xᵀ · self` (fast path, no `Matrix` wrapping).
    ///
    /// Produces bit-identical results to routing a `(1, k)` matrix through
    /// [`Matrix::try_matmul`]: both share the same depth-unrolled kernel.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when `x.len() != self.rows`.
    pub fn vecmat(&self, x: &[f32]) -> Result<Vec<f32>> {
        if x.len() != self.rows {
            return Err(TensorError::ShapeMismatch {
                op: "vecmat",
                lhs: (1, x.len()),
                rhs: self.shape(),
            });
        }
        let mut out = vec![0.0; self.cols];
        let row_kernel = simd::active().row;
        let mut p = 0;
        // Mirror the KC blocking of the matmul kernel exactly (KC is a
        // multiple of the unroll factor, so the grouping already matches;
        // the explicit blocks keep that true if KC ever changes). Using the
        // same dispatched row kernel as the blocked GEMM's row remainder
        // keeps vecmat bit-identical to a `(1, k)` matmul at every level.
        while p < self.rows {
            let kc = KC.min(self.rows - p);
            (row_kernel)(
                &x[p..p + kc],
                &self.data[p * self.cols..],
                self.cols,
                self.cols,
                &mut out,
            );
            p += kc;
        }
        Ok(out)
    }

    /// Block-diagonal `selfᵢ · otherᵢᵀ` over per-sample row blocks.
    ///
    /// `self` and `other` are packed `(total_rows, d)` matrices sharing the
    /// same `bounds` partition; for each block `[start, end)` of length
    /// `len` the `(len, len)` product `self[start..end) · other[start..end)ᵀ`
    /// is written into rows `[start, end)`, columns `[0, len)` of the padded
    /// `(total_rows, pad_cols)` result (remaining columns stay zero). This
    /// is the attention-scores shape: one fused pass over the packed batch
    /// instead of per-sample `copy_rows` + `matmul_transb` + `paste_rows`,
    /// **bit-identical** per element because the same dispatched kernels run
    /// over the same values (leading dimensions never enter the arithmetic).
    ///
    /// # Panics
    ///
    /// Panics if the widths differ, a bound overruns the rows, or a block is
    /// longer than `pad_cols`.
    pub fn block_diag_matmul_transb(
        &self,
        other: &Matrix,
        bounds: &[(usize, usize)],
        pad_cols: usize,
    ) -> Matrix {
        assert_eq!(self.cols, other.cols, "block_diag_matmul_transb widths");
        let d = self.cols;
        let mut out = Matrix::zeros_pooled(self.rows, pad_cols);
        for &(start, end) in bounds {
            assert!(start <= end && end <= self.rows && end <= other.rows);
            let len = end - start;
            assert!(len <= pad_cols, "block longer than pad_cols");
            if len == 0 || d == 0 {
                continue;
            }
            // Transpose the B block once into scratch (as matmul_transb
            // does), then run the strided kernel straight on the row slices.
            scratch::with(d * len, |bt| {
                for (j, row) in (start..end).enumerate() {
                    for (kk, &v) in other.row(row).iter().enumerate() {
                        bt[kk * len + j] = v;
                    }
                }
                gemm_strided(
                    len,
                    d,
                    len,
                    &self.data[start * d..],
                    d,
                    bt,
                    len,
                    &mut out.data[start * pad_cols..],
                    pad_cols,
                );
            });
        }
        out
    }

    /// Block-diagonal `selfᵢ · otherᵢ` where `self` is a padded
    /// `(total_rows, pad_cols)` block matrix (square `(len, len)` blocks in
    /// the leading columns, as produced by
    /// [`Matrix::block_diag_matmul_transb`]) and `other` is a packed
    /// `(total_rows, d)` matrix. Returns the packed `(total_rows, d)`
    /// result — the attention `probs · V` shape.
    ///
    /// # Panics
    ///
    /// Panics if a bound overruns the rows or a block is wider than the
    /// padding.
    pub fn block_diag_matmul(&self, other: &Matrix, bounds: &[(usize, usize)]) -> Matrix {
        let pad = self.cols;
        let d = other.cols;
        let mut out = Matrix::zeros_pooled(self.rows, d);
        for &(start, end) in bounds {
            assert!(start <= end && end <= self.rows && end <= other.rows);
            let len = end - start;
            assert!(len <= pad, "block wider than padding");
            if len == 0 || d == 0 {
                continue;
            }
            gemm_strided(
                len,
                len,
                d,
                &self.data[start * pad..],
                pad,
                &other.data[start * d..],
                d,
                &mut out.data[start * d..],
                d,
            );
        }
        out
    }

    /// Block-diagonal `selfᵢᵀ · otherᵢ` where `self` is a padded
    /// `(total_rows, pad_cols)` block matrix with square blocks and `other`
    /// is packed `(total_rows, d)`. Returns the packed `(total_rows, d)`
    /// result — the attention `probsᵀ · grad` shape of the backward pass.
    ///
    /// # Panics
    ///
    /// Panics if a bound overruns the rows or a block is wider than the
    /// padding.
    pub fn block_diag_matmul_transa(&self, other: &Matrix, bounds: &[(usize, usize)]) -> Matrix {
        let pad = self.cols;
        let d = other.cols;
        let mut out = Matrix::zeros_pooled(self.rows, d);
        for &(start, end) in bounds {
            assert!(start <= end && end <= self.rows && end <= other.rows);
            let len = end - start;
            assert!(len <= pad, "block wider than padding");
            if len == 0 || d == 0 {
                continue;
            }
            // Transpose the (len, len) block out of the padded storage (as
            // matmul_transa does) and reuse the dispatched kernel.
            scratch::with(len * len, |at| {
                for (p, row) in (start..end).enumerate() {
                    let src = &self.data[row * pad..][..len];
                    for (c, &v) in src.iter().enumerate() {
                        at[c * len + p] = v;
                    }
                }
                gemm_strided(
                    len,
                    len,
                    d,
                    at,
                    len,
                    &other.data[start * d..],
                    d,
                    &mut out.data[start * d..],
                    d,
                );
            });
        }
        out
    }

    /// Element-wise addition.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn add(&self, other: &Matrix) -> Result<Matrix> {
        self.zip_with(other, "add", |a, b| a + b)
    }

    /// Element-wise subtraction.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn sub(&self, other: &Matrix) -> Result<Matrix> {
        self.zip_with(other, "sub", |a, b| a - b)
    }

    /// Element-wise (Hadamard) product.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn hadamard(&self, other: &Matrix) -> Result<Matrix> {
        self.zip_with(other, "hadamard", |a, b| a * b)
    }

    /// In-place `self += scale * other`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn add_scaled(&mut self, other: &Matrix, scale: f32) -> Result<()> {
        if self.shape() != other.shape() {
            return Err(TensorError::ShapeMismatch {
                op: "add_scaled",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        // Dispatched AXPY kernel (bit-identical across SIMD levels): this is
        // the FedAvg reduce / gradient-accumulation hot loop.
        (simd::active().axpy)(&mut self.data, &other.data, scale);
        Ok(())
    }

    /// Returns a scaled copy of the matrix.
    pub fn scale(&self, factor: f32) -> Matrix {
        let data = self.data.iter().map(|x| x * factor).collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Scales the matrix in place.
    pub fn scale_in_place(&mut self, factor: f32) {
        for x in &mut self.data {
            *x *= factor;
        }
    }

    /// Applies a function to every element, returning a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Adds a row vector to every row (broadcast add).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when `bias.len() != cols`.
    pub fn add_row_broadcast(&self, bias: &[f32]) -> Result<Matrix> {
        if bias.len() != self.cols {
            return Err(TensorError::ShapeMismatch {
                op: "add_row_broadcast",
                lhs: self.shape(),
                rhs: (1, bias.len()),
            });
        }
        let mut out = self.clone();
        for r in 0..out.rows {
            for (o, &b) in out.row_mut(r).iter_mut().zip(bias.iter()) {
                *o += b;
            }
        }
        Ok(out)
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for an empty matrix).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// Flattens the matrix into a feature vector (row-major order).
    pub fn flatten(&self) -> Vec<f32> {
        self.data.clone()
    }

    /// Sums every row into a single row vector.
    pub fn sum_rows(&self) -> Vec<f32> {
        let mut out = vec![0.0; self.cols];
        for r in 0..self.rows {
            for (o, &x) in out.iter_mut().zip(self.row(r)) {
                *o += x;
            }
        }
        out
    }

    /// Stacks matrices vertically.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when column counts differ, and
    /// [`TensorError::InvalidArgument`] for an empty input list.
    pub fn vstack(parts: &[&Matrix]) -> Result<Matrix> {
        let first = parts
            .first()
            .ok_or_else(|| TensorError::InvalidArgument("vstack of zero matrices".into()))?;
        let cols = first.cols;
        let mut data = Vec::new();
        let mut rows = 0;
        for p in parts {
            if p.cols != cols {
                return Err(TensorError::ShapeMismatch {
                    op: "vstack",
                    lhs: (rows, cols),
                    rhs: p.shape(),
                });
            }
            data.extend_from_slice(&p.data);
            rows += p.rows;
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Stacks matrices horizontally (side by side).
    ///
    /// The fused attention projection concatenates `[Wq | Wk | Wv]` this
    /// way once and caches the result, turning three GEMMs into one.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when row counts differ, and
    /// [`TensorError::InvalidArgument`] for an empty input list.
    pub fn hstack(parts: &[&Matrix]) -> Result<Matrix> {
        let first = parts
            .first()
            .ok_or_else(|| TensorError::InvalidArgument("hstack of zero matrices".into()))?;
        let rows = first.rows;
        let mut cols = 0;
        for p in parts {
            if p.rows != rows {
                return Err(TensorError::ShapeMismatch {
                    op: "hstack",
                    lhs: (rows, cols),
                    rhs: p.shape(),
                });
            }
            cols += p.cols;
        }
        let mut out = Matrix::zeros(rows, cols);
        for r in 0..rows {
            let mut offset = 0;
            let out_row = out.row_mut(r);
            for p in parts {
                out_row[offset..offset + p.cols].copy_from_slice(p.row(r));
                offset += p.cols;
            }
        }
        Ok(out)
    }

    // Shared implementation of the element-wise binary operations.
    fn zip_with(
        &self,
        other: &Matrix,
        op: &'static str,
        f: impl Fn(f32, f32) -> f32,
    ) -> Result<Matrix> {
        if self.shape() != other.shape() {
            return Err(TensorError::ShapeMismatch {
                op,
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let data = self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(&a, &b)| f(a, b))
            .collect();
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_filled() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.shape(), (2, 3));
        assert!(z.as_slice().iter().all(|&x| x == 0.0));
        let f = Matrix::filled(2, 2, 3.5);
        assert!(f.as_slice().iter().all(|&x| x == 3.5));
    }

    #[test]
    fn identity_matmul_is_noop() {
        let mut rng = SeededRng::new(1);
        let a = Matrix::random_normal(4, 4, 1.0, &mut rng);
        let i = Matrix::identity(4);
        let prod = a.matmul(&i);
        for (x, y) in prod.as_slice().iter().zip(a.as_slice()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn matmul_known_values() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.get(0, 0), 19.0);
        assert_eq!(c.get(0, 1), 22.0);
        assert_eq!(c.get(1, 0), 43.0);
        assert_eq!(c.get(1, 1), 50.0);
    }

    #[test]
    fn matmul_shape_mismatch_errors() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(matches!(
            a.try_matmul(&b),
            Err(TensorError::ShapeMismatch { op: "matmul", .. })
        ));
    }

    #[test]
    fn transpose_round_trip() {
        let mut rng = SeededRng::new(2);
        let a = Matrix::random_uniform(3, 5, -1.0, 1.0, &mut rng);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn add_sub_hadamard() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0]]);
        let b = Matrix::from_rows(&[vec![3.0, 5.0]]);
        assert_eq!(a.add(&b).unwrap().as_slice(), &[4.0, 7.0]);
        assert_eq!(b.sub(&a).unwrap().as_slice(), &[2.0, 3.0]);
        assert_eq!(a.hadamard(&b).unwrap().as_slice(), &[3.0, 10.0]);
    }

    #[test]
    fn add_shape_mismatch() {
        let a = Matrix::zeros(1, 2);
        let b = Matrix::zeros(2, 1);
        assert!(a.add(&b).is_err());
    }

    #[test]
    fn add_scaled_accumulates() {
        let mut a = Matrix::filled(2, 2, 1.0);
        let b = Matrix::filled(2, 2, 2.0);
        a.add_scaled(&b, 0.5).unwrap();
        assert!(a.as_slice().iter().all(|&x| (x - 2.0).abs() < 1e-6));
    }

    #[test]
    fn row_broadcast() {
        let a = Matrix::zeros(2, 3);
        let out = a.add_row_broadcast(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(out.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(out.row(1), &[1.0, 2.0, 3.0]);
        assert!(a.add_row_broadcast(&[1.0]).is_err());
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 3]).is_err());
        assert!(Matrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
    }

    #[test]
    fn try_get_bounds() {
        let a = Matrix::zeros(2, 2);
        assert!(a.try_get(1, 1).is_ok());
        assert!(matches!(
            a.try_get(2, 0),
            Err(TensorError::IndexOutOfBounds { .. })
        ));
    }

    #[test]
    fn select_rows_copies_in_order() {
        let a = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![2.0], vec![3.0]]);
        let s = a.select_rows(&[3, 1]);
        assert_eq!(s.as_slice(), &[3.0, 1.0]);
    }

    #[test]
    fn copy_and_paste_rows_round_trip() {
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![2.0, 3.0], vec![4.0, 5.0]]);
        let block = a.copy_rows(1, 3);
        assert_eq!(block.shape(), (2, 2));
        assert_eq!(block.as_slice(), &[2.0, 3.0, 4.0, 5.0]);
        let mut b = Matrix::zeros(3, 2);
        b.paste_rows(1, &block);
        assert_eq!(b.row(0), &[0.0, 0.0]);
        assert_eq!(b.row(1), &[2.0, 3.0]);
        assert_eq!(b.row(2), &[4.0, 5.0]);
        // An empty range is a valid (0, cols) matrix.
        assert_eq!(a.copy_rows(2, 2).shape(), (0, 2));
    }

    #[test]
    #[should_panic(expected = "row range out of bounds")]
    fn copy_rows_rejects_overrun() {
        Matrix::zeros(2, 2).copy_rows(1, 3);
    }

    #[test]
    #[should_panic(expected = "overruns rows")]
    fn paste_rows_rejects_overrun() {
        let block = Matrix::zeros(2, 2);
        Matrix::zeros(2, 2).paste_rows(1, &block);
    }

    #[test]
    fn copy_cols_slices_columns() {
        let a = Matrix::from_rows(&[vec![0.0, 1.0, 2.0], vec![3.0, 4.0, 5.0]]);
        let mid = a.copy_cols(1, 3);
        assert_eq!(mid.shape(), (2, 2));
        assert_eq!(mid.as_slice(), &[1.0, 2.0, 4.0, 5.0]);
        // An empty range is a valid (rows, 0) matrix.
        assert_eq!(a.copy_cols(2, 2).shape(), (2, 0));
    }

    #[test]
    #[should_panic(expected = "column range out of bounds")]
    fn copy_cols_rejects_overrun() {
        Matrix::zeros(2, 2).copy_cols(1, 3);
    }

    #[test]
    fn hstack_concatenates() {
        let a = Matrix::from_rows(&[vec![1.0], vec![3.0]]);
        let b = Matrix::from_rows(&[vec![2.0, 9.0], vec![4.0, 8.0]]);
        let s = Matrix::hstack(&[&a, &b]).unwrap();
        assert_eq!(s.shape(), (2, 3));
        assert_eq!(s.row(0), &[1.0, 2.0, 9.0]);
        assert_eq!(s.row(1), &[3.0, 4.0, 8.0]);
        // Round-trip: copy_cols splits what hstack joined.
        assert_eq!(s.copy_cols(0, 1), a);
        assert_eq!(s.copy_cols(1, 3), b);
        let c = Matrix::zeros(3, 1);
        assert!(Matrix::hstack(&[&a, &c]).is_err());
        assert!(Matrix::hstack(&[]).is_err());
    }

    #[test]
    fn matmul_cols_are_independent_of_col_count() {
        // The fused attention projection relies on this: widening B by
        // stacking more columns must not change any individual output
        // column's result bits.
        let mut rng = SeededRng::new(11);
        let a = Matrix::random_normal(17, 93, 1.0, &mut rng);
        let b1 = Matrix::random_normal(93, 19, 1.0, &mut rng);
        let b2 = Matrix::random_normal(93, 19, 1.0, &mut rng);
        let fused = a.matmul(&Matrix::hstack(&[&b1, &b2]).unwrap());
        assert_eq!(fused.copy_cols(0, 19), a.matmul(&b1));
        assert_eq!(fused.copy_cols(19, 38), a.matmul(&b2));
    }

    #[test]
    fn matmul_rows_are_independent_of_row_count() {
        // The batched training path relies on this: packing more rows into
        // one operand must not change any individual row's result bits.
        let mut rng = SeededRng::new(7);
        let a = Matrix::random_normal(9, 150, 1.0, &mut rng);
        let b = Matrix::random_normal(150, 31, 1.0, &mut rng);
        let full = a.matmul(&b);
        for r in 0..a.rows() {
            let single = a.copy_rows(r, r + 1).matmul(&b);
            assert_eq!(single.as_slice(), full.row(r), "row {r} diverged");
        }
    }

    #[test]
    fn block_diag_ops_match_per_block_reference() {
        // Ragged blocks, including a length-1 and an empty block; the fused
        // block-diagonal entry points must be bitwise equal to slicing each
        // block out and using the dense kernels.
        let mut rng = SeededRng::new(23);
        let bounds = [(0usize, 3usize), (3, 3), (3, 4), (4, 9)];
        let total = 9;
        let d = 6;
        let a = Matrix::random_normal(total, d, 1.0, &mut rng);
        let b = Matrix::random_normal(total, d, 1.0, &mut rng);
        let pad = bounds.iter().map(|&(s, e)| e - s).max().unwrap();
        let scores = a.block_diag_matmul_transb(&b, &bounds, pad);
        assert_eq!(scores.shape(), (total, pad));
        for &(start, end) in &bounds {
            let len = end - start;
            let reference = a
                .copy_rows(start, end)
                .matmul_transb(&b.copy_rows(start, end))
                .unwrap();
            for r in 0..len {
                assert_eq!(&scores.row(start + r)[..len], reference.row(r));
                // Padding stays zero.
                assert!(scores.row(start + r)[len..].iter().all(|&x| x == 0.0));
            }
        }
        let mixed = scores.block_diag_matmul(&b, &bounds);
        let folded = scores.block_diag_matmul_transa(&b, &bounds);
        for &(start, end) in &bounds {
            let len = end - start;
            if len == 0 {
                continue;
            }
            let mut block = Matrix::zeros(len, len);
            for r in 0..len {
                block
                    .row_mut(r)
                    .copy_from_slice(&scores.row(start + r)[..len]);
            }
            let bs = b.copy_rows(start, end);
            let expect_mixed = block.matmul(&bs);
            let expect_folded = block.matmul_transa(&bs).unwrap();
            assert_eq!(mixed.copy_rows(start, end), expect_mixed);
            assert_eq!(folded.copy_rows(start, end), expect_folded);
        }
    }

    #[test]
    fn matmul_transa_matches_explicit_transpose() {
        let mut rng = SeededRng::new(29);
        for &(k, m, n) in &[(7usize, 5usize, 9usize), (1, 3, 2), (130, 4, 4)] {
            let a = Matrix::random_normal(k, m, 1.0, &mut rng);
            let b = Matrix::random_normal(k, n, 1.0, &mut rng);
            let fused = a.matmul_transa(&b).unwrap();
            let reference = a.transpose().matmul(&b);
            assert_eq!(fused, reference, "({k},{m},{n})");
        }
    }

    #[test]
    fn sum_mean_norm() {
        let a = Matrix::from_rows(&[vec![3.0, 4.0]]);
        assert_eq!(a.sum(), 7.0);
        assert_eq!(a.mean(), 3.5);
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn sum_rows_collapses() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(a.sum_rows(), vec![4.0, 6.0]);
    }

    #[test]
    fn vstack_concatenates() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0]]);
        let b = Matrix::from_rows(&[vec![3.0, 4.0], vec![5.0, 6.0]]);
        let s = Matrix::vstack(&[&a, &b]).unwrap();
        assert_eq!(s.shape(), (3, 2));
        assert_eq!(s.row(2), &[5.0, 6.0]);
        let c = Matrix::zeros(1, 3);
        assert!(Matrix::vstack(&[&a, &c]).is_err());
        assert!(Matrix::vstack(&[]).is_err());
    }

    #[test]
    fn serde_round_trip() {
        let mut rng = SeededRng::new(3);
        let a = Matrix::random_normal(3, 3, 0.5, &mut rng);
        let json = serde_json_like(&a);
        assert!(json.contains("rows"));
    }

    // The workspace deliberately excludes serde_json; this helper only checks
    // that serialization is derivable by going through the Debug formatting
    // of the Serialize impl via bincode-free manual check.
    fn serde_json_like(m: &Matrix) -> String {
        format!("rows={} cols={} len={}", m.rows(), m.cols(), m.len())
    }

    #[test]
    fn map_and_scale() {
        let a = Matrix::from_rows(&[vec![1.0, -2.0]]);
        assert_eq!(a.map(f32::abs).as_slice(), &[1.0, 2.0]);
        assert_eq!(a.scale(2.0).as_slice(), &[2.0, -4.0]);
        let mut b = a.clone();
        b.scale_in_place(-1.0);
        assert_eq!(b.as_slice(), &[-1.0, 2.0]);
    }
}
