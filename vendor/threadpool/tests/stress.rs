//! Stress tests for the work-stealing persistent pool's park/wake path.
//!
//! The failure mode these hunt is a *lost wakeup*: a parked worker that
//! stays parked although a claimable region is on the board, stalling a
//! caller in `wait_done` forever. Every scenario therefore carries a hard
//! deadline — publication storms from several OS threads, long regions
//! squatting on workers while short regions flow past them, and nested
//! regions needing idle workers to steal. These run in their own process
//! (pool widths here exceed what the unit tests' spawn-count bound
//! allows).

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::time::{Duration, Instant};

use threadpool::ThreadPool;

/// Publication storm: several OS threads each publish many short regions
/// concurrently. Any lost wakeup (or a worker wedged on a stale claim)
/// turns into a missed deadline instead of a silent hang.
#[test]
fn many_short_regions_from_many_os_threads_complete_before_deadline() {
    const PUBLISHERS: usize = 6;
    const REGIONS_PER_PUBLISHER: usize = 80;
    const JOBS_PER_REGION: usize = 8;
    let (done_tx, done_rx) = mpsc::channel();
    let handles: Vec<_> = (0..PUBLISHERS)
        .map(|t| {
            let done_tx = done_tx.clone();
            std::thread::spawn(move || {
                let pool = ThreadPool::new(1 + (t % 4)); // widths 1..=4 mixed
                for r in 0..REGIONS_PER_PUBLISHER {
                    let results = pool.run(
                        (0..JOBS_PER_REGION)
                            .map(|i| move || t * 100_000 + r * 100 + i)
                            .collect::<Vec<_>>(),
                    );
                    let expected: Vec<usize> = (0..JOBS_PER_REGION)
                        .map(|i| t * 100_000 + r * 100 + i)
                        .collect();
                    assert_eq!(results, expected, "publisher {t} region {r} misordered");
                }
                done_tx.send(t).unwrap();
            })
        })
        .collect();
    // The deadline is deliberately generous for slow shared runners; a
    // lost wakeup hangs forever, so any finite bound catches it.
    let deadline = Instant::now() + Duration::from_secs(120);
    for _ in 0..PUBLISHERS {
        let remaining = deadline.saturating_duration_since(Instant::now());
        done_rx
            .recv_timeout(remaining)
            .expect("a publisher stalled: worker never woke for its regions");
    }
    for h in handles {
        h.join().expect("publisher thread panicked");
    }
}

/// A long region squatting on part of the worker set must not starve
/// short regions published by another OS thread: the short publisher's
/// caller always drains its own shards, and remaining workers rotate onto
/// the short regions. The long jobs only release once every short region
/// has finished — if shorts were starved, this deadlocks into the
/// deadline.
#[test]
fn short_regions_flow_past_a_long_occupying_region() {
    static RELEASE: AtomicBool = AtomicBool::new(false);
    let long_publisher = std::thread::spawn(|| {
        let pool = ThreadPool::new(3);
        pool.run(
            (0..2)
                .map(|_| {
                    || {
                        let deadline = Instant::now() + Duration::from_secs(60);
                        while !RELEASE.load(Ordering::SeqCst) {
                            assert!(
                                Instant::now() < deadline,
                                "short regions never completed while the long region ran"
                            );
                            std::thread::yield_now();
                        }
                    }
                })
                .collect::<Vec<_>>(),
        );
    });
    let short_publisher = std::thread::spawn(|| {
        let pool = ThreadPool::new(3);
        for r in 0..40 {
            let results = pool.run((0..4).map(|i| move || r * 10 + i).collect::<Vec<_>>());
            assert_eq!(results, (0..4).map(|i| r * 10 + i).collect::<Vec<_>>());
        }
    });
    short_publisher
        .join()
        .expect("short publisher stalled or panicked");
    RELEASE.store(true, Ordering::SeqCst);
    long_publisher.join().expect("long publisher panicked");
}

/// Two concurrent tenants' regions must hold live workers *simultaneously*
/// (cross-tenant overlap, the `multi_run_2x` shape): each tenant's two
/// jobs spin until all four jobs — two per tenant — are running at once.
#[test]
fn two_tenants_regions_overlap_on_the_shared_worker_set() {
    static LIVE: AtomicUsize = AtomicUsize::new(0);
    let tenant = |_t: usize| {
        std::thread::spawn(move || {
            let pool = ThreadPool::new(3);
            pool.run(
                (0..2)
                    .map(|_| {
                        || {
                            LIVE.fetch_add(1, Ordering::SeqCst);
                            let deadline = Instant::now() + Duration::from_secs(60);
                            while LIVE.load(Ordering::SeqCst) < 4 {
                                assert!(
                                    Instant::now() < deadline,
                                    "tenants' fan-outs never overlapped 4-wide"
                                );
                                std::thread::yield_now();
                            }
                        }
                    })
                    .collect::<Vec<_>>(),
            );
        })
    };
    let a = tenant(0);
    let b = tenant(1);
    a.join().expect("tenant a stalled");
    b.join().expect("tenant b stalled");
}

/// Nested fan-outs inside a wide outer region: every nested region is
/// drained by its own caller even when every worker is busy, and idle
/// workers steal nested jobs when they exist. Mixed depths and widths,
/// repeated enough to shake out claim/leave races.
#[test]
fn nested_regions_under_load_always_terminate() {
    let pool = ThreadPool::new(8);
    for round in 0..10 {
        let tasks: Vec<_> = (0..16)
            .map(|i| {
                move || {
                    let inner = ThreadPool::new(1 + (i % 3));
                    let inner_sum: usize = inner
                        .run(
                            (0..6)
                                .map(|j| move || round + i * 10 + j)
                                .collect::<Vec<_>>(),
                        )
                        .into_iter()
                        .sum();
                    inner_sum
                }
            })
            .collect();
        let results = pool.run(tasks);
        let expected: Vec<usize> = (0..16)
            .map(|i| (0..6).map(|j| round + i * 10 + j).sum())
            .collect();
        assert_eq!(results, expected, "round {round} nested results diverged");
    }
}
