//! Crash-recovery golden traces for durable per-shard checkpoints.
//!
//! The invariant: a run killed at round *k* — at a round boundary or in
//! the middle of a round, after its fan-out but before its reduction —
//! and restored from its durable checkpoint replays to per-round losses,
//! per-round scores and final global weights **bit-identical** to the
//! uninterrupted run, under the pipelined schedule and every
//! `FLUX_THREADS` setting (CI re-runs this suite at 1/4/8). Nothing the
//! checkpoint does not persist may influence the result: dataset, fleet
//! and RNG chain are rebuilt deterministically from the seed.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use threadpool::ThreadPool;

use flux_core::driver::{FederatedRun, Method, RunConfig, RunPhase, RunResult};
use flux_core::scheduler::{JobSpec, SchedulePolicy, Scheduler};
use flux_data::DatasetKind;
use flux_fl::snapshot::{corrupt_file_byte, shard_file};
use flux_fl::{ParameterServer, SnapshotError};
use flux_moe::MoeConfig;

fn quick() -> RunConfig {
    RunConfig::quick_demo(MoeConfig::tiny(), DatasetKind::Gsm8k)
}

fn pool() -> ThreadPool {
    ThreadPool::from_env()
}

/// A unique scratch directory per test (parallel tests, repeated runs).
fn temp_dir(tag: &str) -> PathBuf {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "flux_recovery_{tag}_{}_{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[derive(Debug, Clone, PartialEq)]
struct Trace {
    rounds: Vec<(f32, f32, f64)>,
    checksum: u64,
}

fn trace_of(result: &RunResult) -> Trace {
    Trace {
        rounds: result
            .rounds
            .iter()
            .map(|r| (r.train_loss, r.score, r.elapsed_hours))
            .collect(),
        checksum: result.final_model.param_checksum(),
    }
}

/// Runs to completion, checkpointing at the requested point and simulating
/// the kill by dropping the live run, then restoring and finishing.
fn run_with_kill(run: &FederatedRun, method: Method, kill_round: usize, mid_round: bool) -> Trace {
    let pool = pool();
    let dir = temp_dir("kill");
    {
        let mut active = run.start(method);
        for _ in 0..kill_round {
            active.step_round(&pool);
        }
        if mid_round {
            active.start_round(&pool);
            assert_eq!(active.poll(), RunPhase::ReadyToFinish { round: kill_round });
        }
        active.checkpoint(&dir).expect("checkpoint succeeds");
        // The process "crashes" here: the live run is dropped on the floor.
    }
    let mut restored = run.restore(method, &dir).expect("checkpoint restores");
    assert_eq!(
        restored.poll(),
        RunPhase::ReadyToStart { round: kill_round },
        "a restored run re-enters the interrupted round"
    );
    while !restored.is_done() {
        restored.step_round(&pool);
    }
    let result = restored.finish();
    let _ = std::fs::remove_dir_all(&dir);
    trace_of(&result)
}

#[test]
fn kill_at_round_boundary_replays_bit_identically() {
    let run = FederatedRun::new(quick(), 21);
    let reference = trace_of(&run.run(Method::Flux));
    for kill_round in [1, 2] {
        let recovered = run_with_kill(&run, Method::Flux, kill_round, false);
        assert_eq!(
            recovered, reference,
            "kill at round {kill_round} boundary must replay bit-identically"
        );
    }
}

#[test]
fn kill_mid_round_replays_bit_identically() {
    let run = FederatedRun::new(quick(), 22);
    let reference = trace_of(&run.run(Method::Flux));
    for kill_round in [0, 1] {
        let recovered = run_with_kill(&run, Method::Flux, kill_round, true);
        assert_eq!(
            recovered, reference,
            "kill inside round {kill_round} must replay bit-identically"
        );
    }
}

#[test]
fn every_method_survives_a_mid_run_kill() {
    for method in Method::all() {
        let run = FederatedRun::new(quick(), 23);
        let reference = trace_of(&run.run(method));
        let recovered = run_with_kill(&run, method, 1, false);
        assert_eq!(
            recovered,
            reference,
            "{} must recover bit-identically",
            method.label()
        );
    }
}

#[test]
fn checkpoints_after_a_quiet_interval_are_incremental() {
    let pool = pool();
    let dir = temp_dir("incremental");
    let run = FederatedRun::new(quick(), 24);
    let mut active = run.start(Method::Flux);
    active.step_round(&pool);
    let first = active.checkpoint(&dir).expect("first checkpoint");
    assert!(first.shards_written > 0);
    assert!(
        first.frozen_written,
        "first checkpoint writes the frozen base"
    );
    // Nothing changed since: only the manifest is rewritten.
    let second = active.checkpoint(&dir).expect("second checkpoint");
    assert_eq!(second.shards_written, 0, "clean shards are skipped");
    assert!(!second.frozen_written);
    assert!(!second.head_written);
    assert!(second.bytes_written < first.bytes_written);
    // Another round dirties only the shards it touched.
    active.step_round(&pool);
    let third = active.checkpoint(&dir).expect("third checkpoint");
    assert!(third.shards_written >= 1);
    assert!(
        !third.frozen_written,
        "the frozen base is written exactly once"
    );
    assert_eq!(
        third.shards_written + third.shards_skipped,
        first.shards_written + first.shards_skipped,
        "every shard is either written or skipped"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupted_shard_is_detected_and_named() {
    let pool = pool();
    let dir = temp_dir("corrupt");
    let run = FederatedRun::new(quick(), 25);
    let mut active = run.start(Method::Flux);
    active.step_round(&pool);
    active.checkpoint(&dir).expect("checkpoint succeeds");
    corrupt_file_byte(dir.join(shard_file(3)), 17).expect("damage one shard file");
    let err = match run.restore(Method::Flux, &dir) {
        Err(err) => err,
        Ok(_) => panic!("a damaged shard must fail the restore"),
    };
    match &err {
        SnapshotError::ChecksumMismatch { file } => {
            assert_eq!(file, &shard_file(3), "the error names the damaged shard")
        }
        other => panic!("expected a checksum mismatch, got {other}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn restore_rejects_a_foreign_fingerprint() {
    let pool = pool();
    let dir = temp_dir("fingerprint");
    let run = FederatedRun::new(quick(), 26);
    let mut active = run.start(Method::Flux);
    active.step_round(&pool);
    active.checkpoint(&dir).expect("checkpoint succeeds");
    // Wrong seed.
    let other_seed = FederatedRun::new(quick(), 27);
    assert!(matches!(
        other_seed.restore(Method::Flux, &dir),
        Err(SnapshotError::Mismatch(_))
    ));
    // Wrong method.
    assert!(matches!(
        run.restore(Method::Fmd, &dir),
        Err(SnapshotError::Mismatch(_))
    ));
    // Missing directory.
    assert!(run
        .restore(Method::Flux, temp_dir("does_not_exist"))
        .is_err());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn scheduler_resumes_a_tenant_from_its_checkpoint() {
    let pool = pool();
    let run = FederatedRun::new(quick(), 28);
    let reference = trace_of(&run.run(Method::Fmes));
    // Kill a standalone run after one round.
    let dir = temp_dir("scheduler");
    {
        let mut active = run.start(Method::Fmes);
        active.step_round(&pool);
        active.checkpoint(&dir).expect("checkpoint succeeds");
    }
    // Resume it as one tenant among others on a shared server.
    let server = ParameterServer::empty(flux_fl::DEFAULT_SHARDS);
    let scheduler = Scheduler::on_pool(pool, SchedulePolicy::RoundRobin);
    let results = scheduler.run_all_on(
        &server,
        vec![
            JobSpec::new("resumed", run, Method::Fmes).with_resume(&dir),
            JobSpec::new("fresh", FederatedRun::new(quick(), 29), Method::Fmd),
        ],
    );
    assert_eq!(trace_of(&results[0].result), reference);
    assert_eq!(results[1].result.rounds.len(), 3);
    assert_eq!(server.num_tenants(), 0, "finished tenants deregister");
    let _ = std::fs::remove_dir_all(&dir);
}
