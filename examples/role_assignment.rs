//! Dynamic expert role assignment in isolation: utilities, the ε schedule,
//! and how assignments evolve over rounds.
//!
//! ```sh
//! cargo run --release --example role_assignment
//! ```

use std::collections::HashSet;

use flux_core::assignment::{expert_utility, initial_utilities, DynamicEpsilon, RoleAssigner};
use flux_data::{DatasetConfig, DatasetGenerator, DatasetKind};
use flux_moe::{ExpertKey, MoeConfig, MoeModel};
use flux_tensor::SeededRng;

fn main() {
    let config = MoeConfig::tiny().with_classes(2);
    let mut rng = SeededRng::new(11);
    let model = MoeModel::new(config.clone(), &mut rng);
    let data = DatasetGenerator::new(
        DatasetConfig::for_kind(DatasetKind::Piqa, config.vocab_size).with_num_samples(24),
    )
    .generate(&mut rng);
    let profile = model.profile(&data);

    let epsilon = DynamicEpsilon::paper_default();
    println!("dynamic epsilon schedule:");
    for round in [0usize, 2, 4, 6, 8] {
        println!("  round {round}: epsilon = {:.2}", epsilon.at_round(round));
    }

    let mut assigner = RoleAssigner::new(epsilon);
    assigner.report_utilities(0, &initial_utilities(&profile));
    let all = model.expert_keys();
    let budget = 6;

    println!("\nassignments over rounds (budget = {budget} tuning experts):");
    for round in 0..5 {
        let assignment = assigner.assign(0, &all, budget, round, &mut rng);
        println!(
            "  round {round}: exploit {:?} explore {:?}",
            keys(&assignment.exploitation),
            keys(&assignment.exploration)
        );
        // Simulate utility feedback: compute true gradients for the
        // exploited experts on a small batch and report them back.
        let tuning: HashSet<ExpertKey> = assignment.tuning_set();
        let grads = model.batch_gradients(&data.samples[..8], Some(&tuning));
        let mut utilities = Vec::new();
        for (key, grad) in &grads.expert_grads {
            utilities.push(expert_utility(*key, grad, profile.samples_of(*key).len()));
        }
        assigner.report_utilities(0, &utilities);
    }

    println!("\ntop utilities after feedback:");
    if let Some(table) = assigner.utilities_of(0) {
        let mut entries: Vec<_> = table.values().collect();
        entries.sort_by(|a, b| b.value.partial_cmp(&a.value).unwrap());
        for u in entries.iter().take(6) {
            println!(
                "  layer {} expert {}: utility {:.4} ({})",
                u.key.layer,
                u.key.expert,
                u.value,
                if u.estimated { "estimated" } else { "backprop" }
            );
        }
    }
}

fn keys(list: &[ExpertKey]) -> Vec<String> {
    list.iter()
        .map(|k| format!("L{}E{}", k.layer, k.expert))
        .collect()
}
