//! Cross-crate integration tests of quantization-based profiling.

use flux_core::profiling::{LocalProfiler, ProfilingConfig, StaleProfiler};
use flux_data::{DatasetConfig, DatasetGenerator, DatasetKind};
use flux_moe::{MoeConfig, MoeModel};
use flux_quant::BitWidth;
use flux_tensor::SeededRng;

fn setup(kind: DatasetKind) -> (MoeModel, flux_data::Dataset) {
    let base = MoeConfig::tiny();
    let config = match kind.num_classes() {
        Some(c) => base.with_classes(c),
        None => base,
    };
    let mut rng = SeededRng::new(3);
    let model = MoeModel::new(config.clone(), &mut rng);
    let data = DatasetGenerator::new(
        DatasetConfig::for_kind(kind, config.vocab_size)
            .with_num_samples(24)
            .with_mean_seq_len(10),
    )
    .generate(&mut rng);
    (model, data)
}

#[test]
fn quantized_profiles_are_close_to_full_precision_on_every_dataset() {
    for kind in DatasetKind::all() {
        let (model, data) = setup(kind);
        let profiler = LocalProfiler::new(ProfilingConfig::default().with_width(BitWidth::Int8));
        let error = profiler.estimation_error_pct(&model, &data);
        assert!(
            error < 40.0,
            "{}: INT8 profiling error unexpectedly high ({error}%)",
            kind.name()
        );
    }
}

#[test]
fn profile_frequencies_sum_to_top_k_per_layer() {
    let (model, data) = setup(DatasetKind::Dolly);
    let profile = model.profile(&data);
    for layer in 0..profile.num_layers() {
        let total: f32 = profile.frequencies[layer].iter().sum();
        assert!((total - model.config.top_k as f32).abs() < 1e-3);
    }
}

#[test]
fn profile_exposes_per_expert_sample_sets() {
    let (model, data) = setup(DatasetKind::Mmlu);
    let profile = model.profile(&data);
    // Every sample must be routed through at least one expert of layer 0.
    let mut covered = std::collections::HashSet::new();
    for expert in 0..profile.frequencies[0].len() {
        for &sample in profile.samples_of(flux_moe::ExpertKey::new(0, expert)) {
            covered.insert(sample);
        }
    }
    assert_eq!(covered.len(), data.len());
}

#[test]
fn stale_profiler_integrates_with_model_updates() {
    let (mut model, data) = setup(DatasetKind::Gsm8k);
    let mut stale = StaleProfiler::new(ProfilingConfig::default().with_width(BitWidth::Int4));
    let first = stale.refresh_blocking(&model, &data);
    // One round of training shifts activations only slightly; the stale
    // profile is still a usable estimate of the new ground truth.
    model.train_step(&data.samples[..8], None, 0.02);
    let truth = model.profile(&data);
    let stale_error = first.estimation_error_pct(&truth);
    assert!(stale_error < 60.0, "stale error {stale_error}% too large");
    // Refreshing tracks the new model.
    stale.refresh(&model, &data);
    assert_eq!(stale.refreshes(), 2);
}
