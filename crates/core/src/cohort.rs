//! Per-round seeded cohort sampling.
//!
//! Production fleets register far more clients than any round can use: the
//! server samples K of N registered clients per round and only those K are
//! dispatched (and materialized). The sampler here is a **pure function**
//! of `(seed, num_clients, cohort_size, round)` — it holds no mutable
//! state, so checkpoint/restore needs only the three scalars (all already
//! part of the run fingerprint) to replay the identical cohort sequence,
//! and thread count or execution schedule cannot perturb it.

use flux_tensor::SeededRng;

/// Deterministic K-of-N cohort sampler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CohortSampler {
    num_clients: usize,
    cohort_size: usize,
    seed: u64,
}

impl CohortSampler {
    /// A sampler drawing `cohort_size` of `num_clients` clients per round
    /// (clamped to the fleet size; a cohort of 0 is promoted to 1).
    pub fn new(num_clients: usize, cohort_size: usize, seed: u64) -> Self {
        assert!(num_clients > 0, "cannot sample from an empty fleet");
        Self {
            num_clients,
            cohort_size: cohort_size.clamp(1, num_clients),
            seed,
        }
    }

    /// Number of registered clients sampled from.
    pub fn num_clients(&self) -> usize {
        self.num_clients
    }

    /// Clients per round after clamping.
    pub fn cohort_size(&self) -> usize {
        self.cohort_size
    }

    /// The stable client ids of round `round`'s cohort, ascending.
    ///
    /// A partial Fisher–Yates over `0..N` driven by a per-round derived
    /// stream: pure in `(seed, round)`, so any round's cohort can be
    /// recomputed in isolation — mid-round restore re-derives the exact
    /// cohort without persisting any draw state.
    pub fn cohort(&self, round: usize) -> Vec<usize> {
        let k = self.cohort_size;
        if k >= self.num_clients {
            return (0..self.num_clients).collect();
        }
        let mut rng = SeededRng::new(self.seed).derive(round as u64 + 1);
        let mut ids: Vec<usize> = (0..self.num_clients).collect();
        for i in 0..k {
            let j = i + rng.below(self.num_clients - i);
            ids.swap(i, j);
        }
        ids.truncate(k);
        ids.sort_unstable();
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cohorts_are_pure_and_replayable() {
        let a = CohortSampler::new(100, 8, 42);
        let b = CohortSampler::new(100, 8, 42);
        for round in 0..10 {
            assert_eq!(a.cohort(round), b.cohort(round));
        }
        // Rounds can be recomputed out of order.
        let late = a.cohort(7);
        let _ = a.cohort(0);
        assert_eq!(a.cohort(7), late);
    }

    #[test]
    fn cohorts_are_sorted_unique_and_in_range() {
        let s = CohortSampler::new(50, 12, 7);
        for round in 0..20 {
            let cohort = s.cohort(round);
            assert_eq!(cohort.len(), 12);
            assert!(cohort.windows(2).all(|w| w[0] < w[1]), "sorted + unique");
            assert!(cohort.iter().all(|&id| id < 50));
        }
    }

    #[test]
    fn cohorts_vary_across_rounds_and_seeds() {
        let s = CohortSampler::new(1000, 32, 1);
        assert_ne!(s.cohort(0), s.cohort(1));
        let t = CohortSampler::new(1000, 32, 2);
        assert_ne!(s.cohort(0), t.cohort(0));
    }

    #[test]
    fn full_participation_and_clamping() {
        // K >= N → everyone, in id order (the legacy fleet).
        let s = CohortSampler::new(5, 9, 3);
        assert_eq!(s.cohort(4), vec![0, 1, 2, 3, 4]);
        assert_eq!(s.cohort_size(), 5);
        // K = 0 is promoted to one participant.
        let s = CohortSampler::new(5, 0, 3);
        assert_eq!(s.cohort(0).len(), 1);
    }

    #[test]
    fn every_client_is_eventually_sampled() {
        let s = CohortSampler::new(20, 4, 11);
        let mut seen = [false; 20];
        for round in 0..200 {
            for id in s.cohort(round) {
                seen[id] = true;
            }
        }
        assert!(seen.iter().all(|&v| v), "sampling starves some clients");
    }
}
