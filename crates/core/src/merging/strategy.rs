//! Importance-based merging strategies (§5.3, Eq. 2).

use serde::{Deserialize, Serialize};

use flux_moe::{ActivationProfile, Expert, ExpertKey, MoeModel};

/// How the experts of one cluster are combined into a merged expert.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MergeStrategy {
    /// Plain parameter averaging (ablation baseline "Avg." of Fig. 17).
    Average,
    /// Weights proportional to activation frequency only (the prior-work
    /// baseline "Weighted Mer. (Frq.)" of Fig. 17).
    Frequency,
    /// The Flux strategy: weights proportional to activation frequency times
    /// the mean attention of the tokens the expert processes (Eq. 2,
    /// "Weighted Mer. (Att. + Frq.)").
    AttentionFrequency,
}

impl MergeStrategy {
    /// All strategies, in the order the paper's ablation lists them.
    pub fn all() -> [MergeStrategy; 3] {
        [
            MergeStrategy::Average,
            MergeStrategy::Frequency,
            MergeStrategy::AttentionFrequency,
        ]
    }

    /// Short label used by the experiment harness output.
    pub fn label(self) -> &'static str {
        match self {
            MergeStrategy::Average => "avg",
            MergeStrategy::Frequency => "weighted(freq)",
            MergeStrategy::AttentionFrequency => "weighted(att+freq)",
        }
    }

    /// The merge weight α_e assigned to one expert.
    pub fn weight(self, frequency: f32, attention: f32) -> f32 {
        match self {
            MergeStrategy::Average => 1.0,
            MergeStrategy::Frequency => frequency.max(1e-6),
            // Eq. (2): α_e = f_e · ā_e; the floor keeps never-activated
            // experts from being dropped to exactly zero weight, which would
            // erase their parameters entirely instead of merging them.
            MergeStrategy::AttentionFrequency => (frequency * attention).max(1e-6),
        }
    }
}

/// Merges the experts of one cluster in `layer` into a single expert.
///
/// Frequencies and attention scores come from the activation profile; the
/// weights follow the chosen strategy and are normalized inside
/// [`Expert::weighted_merge`].
///
/// # Panics
///
/// Panics if `members` is empty or references an expert outside the layer.
pub fn merge_cluster(
    model: &MoeModel,
    profile: &ActivationProfile,
    layer: usize,
    members: &[usize],
    strategy: MergeStrategy,
) -> Expert {
    assert!(!members.is_empty(), "cannot merge an empty cluster");
    let experts: Vec<&Expert> = members
        .iter()
        .map(|&e| model.expert(ExpertKey::new(layer, e)))
        .collect();
    let weights: Vec<f32> = members
        .iter()
        .map(|&e| {
            let key = ExpertKey::new(layer, e);
            strategy.weight(profile.frequency(key), profile.attention_of(key))
        })
        .collect();
    Expert::weighted_merge(&experts, &weights)
}

#[cfg(test)]
mod tests {
    use super::*;
    use flux_moe::{ActivationTracker, MoeConfig};
    use flux_tensor::SeededRng;

    fn model() -> MoeModel {
        let mut rng = SeededRng::new(1);
        MoeModel::new(MoeConfig::tiny(), &mut rng)
    }

    /// Profile where expert 0 of layer 0 is hot with high attention and
    /// expert 1 is cold with low attention.
    fn biased_profile() -> ActivationProfile {
        let mut tracker = ActivationTracker::new(vec![8; 4]);
        for _ in 0..100 {
            tracker.record_layer_token(0);
        }
        for _ in 0..80 {
            tracker.record(0, 0, 0.9);
        }
        for _ in 0..20 {
            tracker.record(0, 1, 0.1);
        }
        tracker.finish()
    }

    #[test]
    fn strategy_weights_ordering() {
        let avg = MergeStrategy::Average;
        assert_eq!(avg.weight(0.1, 0.5), 1.0);
        assert_eq!(avg.weight(0.9, 0.1), 1.0);
        let freq = MergeStrategy::Frequency;
        assert!(freq.weight(0.9, 0.0) > freq.weight(0.1, 0.0));
        let att = MergeStrategy::AttentionFrequency;
        assert!(att.weight(0.5, 0.9) > att.weight(0.5, 0.1));
        // A rarely-activated but high-attention expert can outweigh a more
        // active low-attention expert (the paper's Fig. 9 observation).
        assert!(att.weight(0.2, 0.9) > att.weight(0.6, 0.05));
    }

    #[test]
    fn labels_and_all() {
        assert_eq!(MergeStrategy::all().len(), 3);
        assert_eq!(MergeStrategy::Average.label(), "avg");
        assert!(MergeStrategy::AttentionFrequency.label().contains("att"));
    }

    #[test]
    fn average_merge_is_midpoint_of_two_experts() {
        let model = model();
        let profile = biased_profile();
        let merged = merge_cluster(&model, &profile, 0, &[0, 1], MergeStrategy::Average);
        let a = model.expert(ExpertKey::new(0, 0));
        let b = model.expert(ExpertKey::new(0, 1));
        for ((m, x), y) in merged
            .w1
            .as_slice()
            .iter()
            .zip(a.w1.as_slice())
            .zip(b.w1.as_slice())
        {
            assert!((m - 0.5 * (x + y)).abs() < 1e-5);
        }
    }

    #[test]
    fn attention_frequency_merge_leans_toward_hot_expert() {
        let model = model();
        let profile = biased_profile();
        let merged = merge_cluster(
            &model,
            &profile,
            0,
            &[0, 1],
            MergeStrategy::AttentionFrequency,
        );
        let hot = model.expert(ExpertKey::new(0, 0));
        let cold = model.expert(ExpertKey::new(0, 1));
        // Distance to the hot expert must be much smaller than to the cold.
        let dist = |a: &Expert, b: &Expert| {
            a.w1.sub(&b.w1).unwrap().frobenius_norm() + a.w2.sub(&b.w2).unwrap().frobenius_norm()
        };
        assert!(dist(&merged, hot) < dist(&merged, cold));
    }

    #[test]
    fn singleton_cluster_is_identity() {
        let model = model();
        let profile = biased_profile();
        let merged = merge_cluster(&model, &profile, 0, &[3], MergeStrategy::AttentionFrequency);
        let original = model.expert(ExpertKey::new(0, 3));
        for (a, b) in merged.w2.as_slice().iter().zip(original.w2.as_slice()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = "empty cluster")]
    fn empty_cluster_panics() {
        let model = model();
        let profile = biased_profile();
        merge_cluster(&model, &profile, 0, &[], MergeStrategy::Average);
    }
}
