//! Expert-merging ablation: how budget policies and merging strategies
//! affect the output error of the compact model.
//!
//! ```sh
//! cargo run --release --example merging_ablation
//! ```

use std::collections::HashSet;

use flux_core::baselines::top_frequency_experts;
use flux_core::merging::{BudgetPolicy, CompactModelPlan, MergeStrategy, MergingConfig};
use flux_data::{DatasetConfig, DatasetGenerator, DatasetKind};
use flux_moe::{MoeConfig, MoeModel};
use flux_tensor::{stats, SeededRng};

fn main() {
    let config = MoeConfig::small();
    let mut rng = SeededRng::new(7);
    let model = MoeModel::new(config.clone(), &mut rng);
    let data = DatasetGenerator::new(
        DatasetConfig::for_kind(DatasetKind::Gsm8k, config.vocab_size).with_num_samples(32),
    )
    .generate(&mut rng);
    let profile = model.profile(&data);

    // Tune the top quarter of experts; merge the rest under a quarter budget.
    let tuning: HashSet<_> = top_frequency_experts(&profile, config.total_experts() / 4);
    let budget = config.total_experts() / 4;

    let output_error = |merging: MergingConfig, rng: &mut SeededRng| -> f32 {
        let plan = CompactModelPlan::build(&model, &profile, &tuning, budget, merging, rng);
        let compact = plan.apply(&model, &profile);
        let mut error = 0.0;
        for sample in data.samples.iter().take(12) {
            error += stats::cosine_distance(
                &model.final_embedding(sample),
                &compact.final_embedding(sample),
            );
        }
        error / 12.0
    };

    println!("budget policy ablation (strategy = attention+frequency):");
    for policy in [
        BudgetPolicy::SinglePerLayer,
        BudgetPolicy::Uniform,
        BudgetPolicy::Adaptive,
    ] {
        let err = output_error(
            MergingConfig::default().with_budget_policy(policy),
            &mut rng.derive(policy as u64),
        );
        println!("  {policy:?}: output error {err:.4}");
    }

    println!("\nmerging strategy ablation (budget policy = adaptive):");
    for strategy in MergeStrategy::all() {
        let err = output_error(
            MergingConfig::default().with_strategy(strategy),
            &mut rng.derive(10 + strategy as u64),
        );
        println!("  {}: output error {err:.4}", strategy.label());
    }

    // Discarding for contrast (the FedMoE-style baseline).
    let discard = CompactModelPlan::build_discard(&model, &tuning).apply(&model, &profile);
    let mut discard_error = 0.0;
    for sample in data.samples.iter().take(12) {
        discard_error += stats::cosine_distance(
            &model.final_embedding(sample),
            &discard.final_embedding(sample),
        );
    }
    println!(
        "\ndiscarding non-tuning experts instead of merging: output error {:.4}",
        discard_error / 12.0
    );
}
