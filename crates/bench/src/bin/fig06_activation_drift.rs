//! Figure 6: drift of expert activation frequencies across fine-tuning
//! rounds, and the CDF of per-round frequency change.
//!
//! The paper tracks four experts over 20 rounds (frequencies move a few
//! percentage points) and shows that the per-round change is small — the
//! justification for stale profiling.

use flux_bench::{fmt, llama_config, print_header, Scale, EXPERIMENT_SEED};
use flux_data::{DatasetConfig, DatasetGenerator, DatasetKind};
use flux_moe::{ExpertKey, MoeModel};
use flux_tensor::{stats, SeededRng};

fn main() {
    let scale = Scale::from_env();
    let config = llama_config(scale).with_classes(8);
    let mut rng = SeededRng::new(EXPERIMENT_SEED);
    let data_cfg = DatasetConfig::for_kind(DatasetKind::Gsm8k, config.vocab_size)
        .with_num_samples(if scale == Scale::Quick { 40 } else { 120 });
    let data = DatasetGenerator::new(data_cfg).generate(&mut rng);
    let mut model = MoeModel::new(config.clone(), &mut rng);

    let rounds = if scale == Scale::Quick { 10 } else { 20 };
    // Track the four most active experts of layer 0.
    let initial = model.profile(&data);
    let tracked: Vec<ExpertKey> = stats::top_k_indices(&initial.frequencies[0], 4)
        .into_iter()
        .map(|e| ExpertKey::new(0, e))
        .collect();

    let mut histories: Vec<Vec<f32>> = vec![Vec::new(); tracked.len()];
    let mut per_round_changes: Vec<f32> = Vec::new();
    let mut previous = initial;
    for _ in 0..rounds {
        model.train_step(&data.samples[..data.len().min(16)], None, 0.02);
        let profile = model.profile(&data);
        for (history, key) in histories.iter_mut().zip(&tracked) {
            history.push(profile.frequency(*key) * 100.0);
        }
        // Per-round absolute change in percentage points across all experts.
        for layer in 0..profile.num_layers() {
            for (a, b) in profile.frequencies[layer]
                .iter()
                .zip(previous.frequencies[layer].iter())
            {
                per_round_changes.push((a - b).abs() * 100.0);
            }
        }
        previous = profile;
    }

    print_header(
        &format!(
            "Figure 6a: activation frequency (%) over rounds ({})",
            scale.label()
        ),
        &["Round", "Expert-1", "Expert-2", "Expert-3", "Expert-4"],
    );
    let mut history_iters: Vec<_> = histories.iter().map(|h| h.iter()).collect();
    for round in 0..rounds {
        let cells: Vec<String> = history_iters
            .iter_mut()
            .map(|it| fmt(*it.next().expect("one frequency per round") as f64))
            .collect();
        println!("{round}\t{}", cells.join("\t"));
    }

    print_header(
        "Figure 6b: CDF of per-round activation frequency change (pct points)",
        &["Change", "CDF"],
    );
    let points = [0.1f32, 0.25, 0.5, 1.0, 1.5, 2.0];
    for (p, cdf) in stats::empirical_cdf(&per_round_changes, &points) {
        println!("{}\t{}", fmt(p as f64), fmt(cdf as f64));
    }
}
