//! Figure 11: convergence (relative accuracy vs simulated time) on the
//! DeepSeek-MoE family, four datasets × four methods.

use flux_bench::{deepseek_config, fmt, print_header, run_config, Scale, EXPERIMENT_SEED};
use flux_core::driver::{FederatedRun, Method};
use flux_data::DatasetKind;

fn main() {
    let scale = Scale::from_env();
    for kind in DatasetKind::all() {
        print_header(
            &format!(
                "Figure 11: convergence on {} (DeepSeek-MoE family, {})",
                kind.name(),
                scale.label()
            ),
            &[
                "Method",
                "Round",
                "Elapsed (h)",
                "Score",
                "Relative accuracy",
            ],
        );
        for method in Method::all() {
            let config = run_config(scale, deepseek_config(scale), kind);
            let result = FederatedRun::new(config, EXPERIMENT_SEED).run(method);
            for point in result.tracker.points() {
                println!(
                    "{}\t{}\t{}\t{}\t{}",
                    method.label(),
                    point.round,
                    fmt(point.elapsed_hours),
                    fmt(point.score as f64),
                    fmt(point.relative_accuracy as f64)
                );
            }
        }
    }
    println!("\npaper shape: same ordering as Fig. 10, with longer absolute times (larger model).");
}
