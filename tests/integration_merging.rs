//! Cross-crate integration tests of the merging pipeline: profiling feeds
//! budgets, clustering, merging, and gate re-routing on a real model.

use std::collections::HashSet;

use flux_core::baselines::top_frequency_experts;
use flux_core::merging::{
    layer_budgets, BudgetPolicy, CompactModelPlan, MergeStrategy, MergingConfig,
};
use flux_data::{DatasetConfig, DatasetGenerator, DatasetKind};
use flux_moe::{ExpertKey, MoeConfig, MoeModel};
use flux_tensor::{stats, SeededRng};

fn setup() -> (MoeModel, flux_data::Dataset) {
    let config = MoeConfig::tiny();
    let mut rng = SeededRng::new(1);
    let model = MoeModel::new(config.clone(), &mut rng);
    let data = DatasetGenerator::new(
        DatasetConfig::for_kind(DatasetKind::Dolly, config.vocab_size)
            .with_num_samples(20)
            .with_mean_seq_len(12),
    )
    .generate(&mut rng);
    (model, data)
}

#[test]
fn adaptive_budgets_feed_a_valid_plan() {
    let (model, data) = setup();
    let profile = model.profile(&data);
    let tuning: HashSet<ExpertKey> = top_frequency_experts(&profile, 8);
    let non_tuning_counts: Vec<usize> = model
        .experts_per_layer()
        .iter()
        .enumerate()
        .map(|(layer, &n)| n - tuning.iter().filter(|k| k.layer == layer).count())
        .collect();
    let budgets = layer_budgets(BudgetPolicy::Adaptive, &profile, &non_tuning_counts, 8);
    assert_eq!(budgets.len(), 4);
    assert!(budgets.iter().sum::<usize>() >= 4);

    let mut rng = SeededRng::new(2);
    let plan = CompactModelPlan::build(
        &model,
        &profile,
        &tuning,
        8,
        MergingConfig::default(),
        &mut rng,
    );
    let compact = plan.apply(&model, &profile);
    // The compact model is smaller and still runs end to end.
    assert!(compact.num_params() < model.num_params());
    let eval = compact.evaluate(&data);
    assert!(eval.loss.is_finite());
}

#[test]
fn merging_preserves_outputs_better_than_discarding() {
    let (model, data) = setup();
    let profile = model.profile(&data);
    let tuning: HashSet<ExpertKey> = top_frequency_experts(&profile, 8);
    let discard = CompactModelPlan::build_discard(&model, &tuning).apply(&model, &profile);
    let discard_err = mean_output_error(&model, &discard, &data);
    for strategy in MergeStrategy::all() {
        let mut rng = SeededRng::new(3);
        let merged = CompactModelPlan::build(
            &model,
            &profile,
            &tuning,
            8,
            MergingConfig::default().with_strategy(strategy),
            &mut rng,
        )
        .apply(&model, &profile);
        let merged_err = mean_output_error(&model, &merged, &data);
        if strategy == MergeStrategy::AttentionFrequency {
            // The paper's strategy must strictly beat discarding.
            assert!(
                merged_err < discard_err,
                "{}: merged error {merged_err} should beat discard {discard_err}",
                strategy.label()
            );
        } else {
            // The ablation strategies may be close to discarding on this
            // tiny random model, but must not be dramatically worse.
            assert!(
                merged_err < discard_err * 1.25,
                "{}: merged error {merged_err} far worse than discard {discard_err}",
                strategy.label()
            );
        }
    }
}

#[test]
fn gate_rerouting_covers_every_original_expert() {
    let (model, data) = setup();
    let profile = model.profile(&data);
    let tuning: HashSet<ExpertKey> = top_frequency_experts(&profile, 6);
    let mut rng = SeededRng::new(4);
    let plan = CompactModelPlan::build(
        &model,
        &profile,
        &tuning,
        6,
        MergingConfig::default(),
        &mut rng,
    );
    let compact = plan.apply(&model, &profile);
    for (layer_idx, layer) in compact.layers.iter().enumerate() {
        let map = &layer.moe.routing_map;
        assert_eq!(
            map.num_original(),
            model.layers[layer_idx].moe.num_experts()
        );
        assert_eq!(map.num_compact(), layer.moe.num_experts());
        for original in 0..map.num_original() {
            assert!(map.redirect(original) < layer.moe.num_experts());
        }
    }
}

#[test]
fn tuning_experts_keep_their_exact_parameters() {
    let (model, data) = setup();
    let profile = model.profile(&data);
    let tuning: HashSet<ExpertKey> = top_frequency_experts(&profile, 8);
    let mut rng = SeededRng::new(5);
    let plan = CompactModelPlan::build(
        &model,
        &profile,
        &tuning,
        8,
        MergingConfig::default(),
        &mut rng,
    );
    let compact = plan.apply(&model, &profile);
    for (&original, &compact_key) in &plan.tuning_key_map() {
        assert_eq!(compact.expert(compact_key), model.expert(original));
    }
}

fn mean_output_error(reference: &MoeModel, other: &MoeModel, data: &flux_data::Dataset) -> f32 {
    let n = data.len().min(10);
    let mut error = 0.0;
    for sample in data.samples.iter().take(n) {
        error += stats::cosine_distance(
            &reference.final_embedding(sample),
            &other.final_embedding(sample),
        );
    }
    error / n as f32
}
