//! Expert feed-forward networks and their gradients.

use serde::{Deserialize, Serialize};

use flux_tensor::{init, ops, simd, Matrix, SeededRng};

/// One expert: a two-layer feed-forward network with GELU activation.
///
/// `y = GELU(x·W1 + b1)·W2 + b2`, with `W1: (d_model, d_ff)` and
/// `W2: (d_ff, d_model)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Expert {
    /// Input projection.
    pub w1: Matrix,
    /// Input projection bias.
    pub b1: Vec<f32>,
    /// Output projection.
    pub w2: Matrix,
    /// Output projection bias.
    pub b2: Vec<f32>,
}

/// Cache of intermediate activations needed for the expert backward pass.
#[derive(Debug, Clone)]
pub struct ExpertCache {
    /// Input rows the expert processed (one per routed token).
    pub input: Matrix,
    /// Pre-activation of the first projection.
    pub pre_activation: Matrix,
    /// Post-GELU hidden activations.
    pub hidden: Matrix,
}

/// Gradient of an expert's parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExpertGrad {
    /// Gradient of [`Expert::w1`].
    pub w1: Matrix,
    /// Gradient of [`Expert::b1`].
    pub b1: Vec<f32>,
    /// Gradient of [`Expert::w2`].
    pub w2: Matrix,
    /// Gradient of [`Expert::b2`].
    pub b2: Vec<f32>,
    /// Number of token rows that contributed to this gradient.
    pub token_count: usize,
}

impl Expert {
    /// Creates a randomly initialized expert.
    pub fn new(d_model: usize, d_ff: usize, rng: &mut SeededRng) -> Self {
        Self {
            w1: init::kaiming_normal(d_model, d_ff, rng),
            b1: init::zeros_bias(d_ff),
            w2: init::kaiming_normal(d_ff, d_model, rng),
            b2: init::zeros_bias(d_model),
        }
    }

    /// Input dimension (`d_model`).
    pub fn d_model(&self) -> usize {
        self.w1.rows()
    }

    /// Hidden dimension (`d_ff`).
    pub fn d_ff(&self) -> usize {
        self.w1.cols()
    }

    /// Number of parameters.
    pub fn num_params(&self) -> usize {
        self.w1.len() + self.b1.len() + self.w2.len() + self.b2.len()
    }

    /// Forward pass over a batch of routed token rows `(n, d_model)`.
    ///
    /// Returns the expert output `(n, d_model)` and a cache for backward.
    pub fn forward(&self, input: &Matrix) -> (Matrix, ExpertCache) {
        self.forward_owned(input.clone())
    }

    /// Forward pass that takes ownership of the input rows, storing them in
    /// the cache without the defensive copy [`Expert::forward`] pays.
    pub fn forward_owned(&self, input: Matrix) -> (Matrix, ExpertCache) {
        debug_assert_eq!(input.cols(), self.d_model());
        let pre = input
            .try_matmul_bias(&self.w1, &self.b1)
            .expect("bias length matches d_ff");
        let hidden = ops::gelu(&pre);
        let output = hidden
            .try_matmul_bias(&self.w2, &self.b2)
            .expect("bias length matches d_model");
        (
            output,
            ExpertCache {
                input,
                pre_activation: pre,
                hidden,
            },
        )
    }

    /// Forward pass without building a cache (inference / profiling path).
    pub fn forward_no_cache(&self, input: &Matrix) -> Matrix {
        let hidden =
            ops::matmul_bias_gelu(input, &self.w1, &self.b1).expect("bias length matches d_ff");
        let output = hidden
            .try_matmul_bias(&self.w2, &self.b2)
            .expect("bias length matches d_model");
        hidden.recycle();
        output
    }

    /// Backward pass.
    ///
    /// Given the upstream gradient `grad_output` (same shape as the forward
    /// output), returns the parameter gradient and the gradient with respect
    /// to the expert input.
    pub fn backward(&self, cache: &ExpertCache, grad_output: &Matrix) -> (ExpertGrad, Matrix) {
        debug_assert_eq!(grad_output.shape(), (cache.input.rows(), self.d_model()));
        // Output layer: y = hidden·W2 + b2. The fused-transpose kernels
        // avoid materializing any transposed weight or activation matrix.
        let grad_w2 = cache.hidden.matmul_transa(grad_output).expect("row counts");
        let grad_b2 = grad_output.sum_rows();
        let grad_hidden = grad_output.matmul_transb(&self.w2).expect("col counts");
        // Activation.
        // The cached hidden activations carry tanh(u) implicitly, sparing
        // its recomputation (see `ops::gelu_backward_cached`).
        let grad_pre =
            ops::gelu_backward_cached(&cache.pre_activation, &cache.hidden, &grad_hidden);
        grad_hidden.recycle();
        // Input layer: pre = x·W1 + b1.
        let grad_w1 = cache.input.matmul_transa(&grad_pre).expect("row counts");
        let grad_b1 = grad_pre.sum_rows();
        let grad_input = grad_pre.matmul_transb(&self.w1).expect("col counts");
        grad_pre.recycle();
        (
            ExpertGrad {
                w1: grad_w1,
                b1: grad_b1,
                w2: grad_w2,
                b2: grad_b2,
                token_count: cache.input.rows(),
            },
            grad_input,
        )
    }

    /// Applies a gradient with plain SGD (used by tests and the baselines;
    /// the federated driver uses the optimizers in `flux-tensor`).
    pub fn apply_sgd(&mut self, grad: &ExpertGrad, learning_rate: f32) {
        self.w1
            .add_scaled(&grad.w1, -learning_rate)
            .expect("w1 gradient shape");
        self.w2
            .add_scaled(&grad.w2, -learning_rate)
            .expect("w2 gradient shape");
        let axpy = simd::active().axpy;
        axpy(&mut self.b1, &grad.b1, -learning_rate);
        axpy(&mut self.b2, &grad.b2, -learning_rate);
    }

    /// Overwrites this expert's parameters with `base`'s (no allocation;
    /// dimensions must match).
    pub fn copy_from(&mut self, base: &Expert) {
        debug_assert_eq!(self.w1.shape(), base.w1.shape());
        debug_assert_eq!(self.w2.shape(), base.w2.shape());
        self.w1.as_mut_slice().copy_from_slice(base.w1.as_slice());
        self.b1.copy_from_slice(&base.b1);
        self.w2.as_mut_slice().copy_from_slice(base.w2.as_slice());
        self.b2.copy_from_slice(&base.b2);
    }

    /// Overwrites this expert's parameters with `base + scale · direction`,
    /// where `direction` is laid out like [`Expert::flatten_params`]
    /// (`w1`, `b1`, `w2`, `b2`).
    ///
    /// This is the allocation-free primitive behind SPSA / forward-only
    /// gradient estimation: the plus/minus perturbed experts are written
    /// into one reusable work expert instead of being cloned per
    /// perturbation, and restoring is a [`Expert::copy_from`] of the base.
    pub fn assign_perturbed(&mut self, base: &Expert, direction: &[f32], scale: f32) {
        debug_assert_eq!(direction.len(), base.num_params());
        let perturb = simd::active().perturb;
        let mut cursor = 0;
        let mut segment = |len: usize| {
            let s = &direction[cursor..cursor + len];
            cursor += len;
            s
        };
        perturb(
            self.w1.as_mut_slice(),
            base.w1.as_slice(),
            segment(base.w1.len()),
            scale,
        );
        perturb(&mut self.b1, &base.b1, segment(base.b1.len()), scale);
        perturb(
            self.w2.as_mut_slice(),
            base.w2.as_slice(),
            segment(base.w2.len()),
            scale,
        );
        perturb(&mut self.b2, &base.b2, segment(base.b2.len()), scale);
    }

    /// Flattens all parameters into a single feature vector (used by the
    /// similarity-based clustering of the merging module).
    pub fn flatten_params(&self) -> Vec<f32> {
        let mut out =
            Vec::with_capacity(self.w1.len() + self.b1.len() + self.w2.len() + self.b2.len());
        out.extend_from_slice(self.w1.as_slice());
        out.extend_from_slice(&self.b1);
        out.extend_from_slice(self.w2.as_slice());
        out.extend_from_slice(&self.b2);
        out
    }

    /// Builds an expert as the weighted average of several experts.
    ///
    /// Weights are normalized internally; experts must share dimensions.
    /// This is the primitive behind the paper's Eq. (2).
    ///
    /// # Panics
    ///
    /// Panics when `experts` is empty, lengths differ, or all weights are
    /// non-positive.
    pub fn weighted_merge(experts: &[&Expert], weights: &[f32]) -> Expert {
        assert!(!experts.is_empty(), "cannot merge zero experts");
        assert_eq!(experts.len(), weights.len(), "one weight per expert");
        let total: f32 = weights.iter().map(|w| w.max(0.0)).sum();
        assert!(total > 0.0, "merge weights must have positive mass");
        let (d_model, d_ff) = (experts[0].d_model(), experts[0].d_ff());
        let mut merged = Expert {
            w1: Matrix::zeros(d_model, d_ff),
            b1: vec![0.0; d_ff],
            w2: Matrix::zeros(d_ff, d_model),
            b2: vec![0.0; d_model],
        };
        for (expert, &w) in experts.iter().zip(weights.iter()) {
            assert_eq!(expert.d_model(), d_model, "expert dims must match");
            assert_eq!(expert.d_ff(), d_ff, "expert dims must match");
            let alpha = w.max(0.0) / total;
            merged.w1.add_scaled(&expert.w1, alpha).expect("same shape");
            merged.w2.add_scaled(&expert.w2, alpha).expect("same shape");
            let axpy = simd::active().axpy;
            axpy(&mut merged.b1, &expert.b1, alpha);
            axpy(&mut merged.b2, &expert.b2, alpha);
        }
        merged
    }
}

impl ExpertGrad {
    /// A zero gradient with the given dimensions.
    pub fn zeros(d_model: usize, d_ff: usize) -> Self {
        Self {
            w1: Matrix::zeros(d_model, d_ff),
            b1: vec![0.0; d_ff],
            w2: Matrix::zeros(d_ff, d_model),
            b2: vec![0.0; d_model],
            token_count: 0,
        }
    }

    /// Accumulates another gradient into this one.
    pub fn accumulate(&mut self, other: &ExpertGrad) {
        self.w1.add_scaled(&other.w1, 1.0).expect("same shape");
        self.w2.add_scaled(&other.w2, 1.0).expect("same shape");
        let axpy = simd::active().axpy;
        axpy(&mut self.b1, &other.b1, 1.0);
        axpy(&mut self.b2, &other.b2, 1.0);
        self.token_count += other.token_count;
    }

    /// Scales the gradient in place.
    pub fn scale(&mut self, factor: f32) {
        self.w1.scale_in_place(factor);
        self.w2.scale_in_place(factor);
        for b in &mut self.b1 {
            *b *= factor;
        }
        for b in &mut self.b2 {
            *b *= factor;
        }
    }

    /// L2 norm over all gradient entries. This is the signal the Flux
    /// expert-utility definition (Eq. 3) is built on.
    pub fn norm(&self) -> f32 {
        let mut sum = 0.0f32;
        sum += self.w1.as_slice().iter().map(|x| x * x).sum::<f32>();
        sum += self.w2.as_slice().iter().map(|x| x * x).sum::<f32>();
        sum += self.b1.iter().map(|x| x * x).sum::<f32>();
        sum += self.b2.iter().map(|x| x * x).sum::<f32>();
        sum.sqrt()
    }

    /// Flattens the gradient into one vector (used by gradient-estimation
    /// accuracy measurements, Fig. 18).
    pub fn flatten(&self) -> Vec<f32> {
        let mut out = Vec::new();
        out.extend_from_slice(self.w1.as_slice());
        out.extend_from_slice(&self.b1);
        out.extend_from_slice(self.w2.as_slice());
        out.extend_from_slice(&self.b2);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn expert(seed: u64) -> Expert {
        let mut rng = SeededRng::new(seed);
        Expert::new(8, 16, &mut rng)
    }

    #[test]
    fn forward_shapes() {
        let e = expert(1);
        let mut rng = SeededRng::new(2);
        let x = Matrix::random_normal(5, 8, 1.0, &mut rng);
        let (y, cache) = e.forward(&x);
        assert_eq!(y.shape(), (5, 8));
        assert_eq!(cache.hidden.shape(), (5, 16));
        let y2 = e.forward_no_cache(&x);
        assert_eq!(y, y2);
    }

    #[test]
    fn num_params_matches_config_formula() {
        let e = expert(3);
        assert_eq!(e.num_params(), 8 * 16 + 16 + 16 * 8 + 8);
    }

    #[test]
    fn backward_gradient_matches_finite_difference() {
        let e = expert(4);
        let mut rng = SeededRng::new(5);
        let x = Matrix::random_normal(3, 8, 1.0, &mut rng);
        // Scalar loss = sum of outputs; upstream gradient is all ones.
        let (_, cache) = e.forward(&x);
        let ones = Matrix::filled(3, 8, 1.0);
        let (grad, grad_input) = e.backward(&cache, &ones);

        let loss = |e: &Expert, x: &Matrix| -> f32 { e.forward_no_cache(x).sum() };
        let eps = 1e-2;

        // Check a few W1 entries.
        for &(r, c) in &[(0usize, 0usize), (3, 7), (7, 15)] {
            let mut plus = e.clone();
            plus.w1.set(r, c, plus.w1.get(r, c) + eps);
            let mut minus = e.clone();
            minus.w1.set(r, c, minus.w1.get(r, c) - eps);
            let numeric = (loss(&plus, &x) - loss(&minus, &x)) / (2.0 * eps);
            let analytic = grad.w1.get(r, c);
            assert!(
                (numeric - analytic).abs() < 0.05 * numeric.abs().max(1.0),
                "w1[{r},{c}] numeric {numeric} analytic {analytic}"
            );
        }
        // Check an input gradient entry.
        let mut x_plus = x.clone();
        x_plus.set(1, 3, x_plus.get(1, 3) + eps);
        let mut x_minus = x.clone();
        x_minus.set(1, 3, x_minus.get(1, 3) - eps);
        let numeric = (loss(&e, &x_plus) - loss(&e, &x_minus)) / (2.0 * eps);
        let analytic = grad_input.get(1, 3);
        assert!(
            (numeric - analytic).abs() < 0.05 * numeric.abs().max(1.0),
            "input grad numeric {numeric} analytic {analytic}"
        );
    }

    #[test]
    fn sgd_step_reduces_loss() {
        let mut e = expert(6);
        let mut rng = SeededRng::new(7);
        let x = Matrix::random_normal(4, 8, 1.0, &mut rng);
        let target = Matrix::random_normal(4, 8, 1.0, &mut rng);
        let loss_of = |e: &Expert| -> f32 {
            let y = e.forward_no_cache(&x);
            y.sub(&target).unwrap().frobenius_norm()
        };
        let before = loss_of(&e);
        for _ in 0..50 {
            let (y, cache) = e.forward(&x);
            let grad_out = y.sub(&target).unwrap().scale(2.0);
            let (grad, _) = e.backward(&cache, &grad_out);
            e.apply_sgd(&grad, 0.01);
        }
        assert!(loss_of(&e) < before * 0.5, "loss should halve");
    }

    #[test]
    fn weighted_merge_of_identical_experts_is_identity() {
        let e = expert(8);
        let merged = Expert::weighted_merge(&[&e, &e, &e], &[1.0, 2.0, 3.0]);
        for (a, b) in merged.w1.as_slice().iter().zip(e.w1.as_slice()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn weighted_merge_respects_weights() {
        let a = expert(9);
        let b = expert(10);
        // All weight on `a` must reproduce `a`.
        let merged = Expert::weighted_merge(&[&a, &b], &[1.0, 0.0]);
        for (x, y) in merged.w2.as_slice().iter().zip(a.w2.as_slice()) {
            assert!((x - y).abs() < 1e-6);
        }
        // Equal weights give the midpoint.
        let mid = Expert::weighted_merge(&[&a, &b], &[1.0, 1.0]);
        for ((m, x), y) in mid
            .w1
            .as_slice()
            .iter()
            .zip(a.w1.as_slice())
            .zip(b.w1.as_slice())
        {
            assert!((m - 0.5 * (x + y)).abs() < 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = "positive mass")]
    fn weighted_merge_zero_weights_panics() {
        let a = expert(11);
        Expert::weighted_merge(&[&a], &[0.0]);
    }

    #[test]
    fn grad_accumulate_and_norm() {
        let e = expert(12);
        let mut rng = SeededRng::new(13);
        let x = Matrix::random_normal(2, 8, 1.0, &mut rng);
        let (_, cache) = e.forward(&x);
        let (g, _) = e.backward(&cache, &Matrix::filled(2, 8, 1.0));
        let mut acc = ExpertGrad::zeros(8, 16);
        assert_eq!(acc.norm(), 0.0);
        acc.accumulate(&g);
        acc.accumulate(&g);
        assert_eq!(acc.token_count, 4);
        // Accumulating the same gradient twice doubles the norm.
        assert!((acc.norm() - 2.0 * g.norm()).abs() < 1e-3);
        acc.scale(0.5);
        assert!((acc.norm() - g.norm()).abs() < 1e-3);
    }

    #[test]
    fn assign_perturbed_matches_flatten_layout_and_restores() {
        let base = expert(15);
        let mut work = base.clone();
        let mut rng = SeededRng::new(16);
        let direction: Vec<f32> = (0..base.num_params()).map(|_| rng.normal()).collect();
        work.assign_perturbed(&base, &direction, 0.25);
        // Perturbation follows the flatten_params layout exactly.
        let flat_base = base.flatten_params();
        let flat_work = work.flatten_params();
        for ((w, b), d) in flat_work.iter().zip(&flat_base).zip(&direction) {
            assert!((w - (b + 0.25 * d)).abs() < 1e-6);
        }
        // copy_from restores the base bit-for-bit.
        work.copy_from(&base);
        assert_eq!(work, base);
    }

    #[test]
    fn flatten_params_length() {
        let e = expert(14);
        assert_eq!(e.flatten_params().len(), e.num_params());
        let g = ExpertGrad::zeros(8, 16);
        assert_eq!(g.flatten().len(), e.num_params());
    }
}
