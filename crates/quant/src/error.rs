//! Quantization error metrics.

use flux_tensor::Matrix;

use crate::matrix::{BitWidth, QuantizedMatrix};

/// Mean squared error introduced by quantizing `weights` at `width`.
pub fn quantization_mse(weights: &Matrix, width: BitWidth) -> f32 {
    let q = QuantizedMatrix::quantize(weights, width).dequantize();
    let n = weights.len().max(1) as f32;
    weights
        .as_slice()
        .iter()
        .zip(q.as_slice())
        .map(|(a, b)| (a - b).powi(2))
        .sum::<f32>()
        / n
}

/// Relative Frobenius-norm error introduced by quantizing at `width`.
///
/// Returns 0 for an all-zero matrix.
pub fn quantization_relative_error(weights: &Matrix, width: BitWidth) -> f32 {
    let norm = weights.frobenius_norm();
    if norm == 0.0 {
        return 0.0;
    }
    let q = QuantizedMatrix::quantize(weights, width).dequantize();
    weights.sub(&q).expect("same shape").frobenius_norm() / norm
}

#[cfg(test)]
mod tests {
    use super::*;
    use flux_tensor::SeededRng;

    #[test]
    fn mse_decreases_with_precision() {
        let mut rng = SeededRng::new(1);
        let w = Matrix::random_normal(24, 24, 1.0, &mut rng);
        let m2 = quantization_mse(&w, BitWidth::Int2);
        let m4 = quantization_mse(&w, BitWidth::Int4);
        let m8 = quantization_mse(&w, BitWidth::Int8);
        assert!(m2 > m4 && m4 > m8);
    }

    #[test]
    fn relative_error_zero_for_zero_matrix() {
        let w = Matrix::zeros(4, 4);
        assert_eq!(quantization_relative_error(&w, BitWidth::Int2), 0.0);
    }

    #[test]
    fn relative_error_bounded_for_int8() {
        let mut rng = SeededRng::new(2);
        let w = Matrix::random_normal(16, 16, 2.0, &mut rng);
        assert!(quantization_relative_error(&w, BitWidth::Int8) < 0.01);
    }
}
