//! Compact model construction: keep tuning experts, merge the rest,
//! re-route the gate.

use std::collections::{HashMap, HashSet};

use serde::{Deserialize, Serialize};

use flux_moe::{ActivationProfile, Expert, ExpertKey, MoeModel, RoutingMap};
use flux_tensor::{Matrix, SeededRng};

use super::budget::layer_budgets;
use super::cluster::cluster_non_tuning_experts;
use super::strategy::merge_cluster;
use super::MergingConfig;

/// One expert position in the compact per-participant model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ExpertSlot {
    /// A tuning expert kept at full fidelity.
    Keep {
        /// Original expert id within the layer.
        original: usize,
    },
    /// A frozen merged expert standing in for several non-tuning experts.
    Merged {
        /// Original expert ids merged into this slot.
        originals: Vec<usize>,
    },
    /// A zero expert: the originals are *discarded* (FMES-style), tokens
    /// routed to them receive no FFN contribution at this layer.
    Zero {
        /// Original expert ids that were discarded.
        originals: Vec<usize>,
    },
}

impl ExpertSlot {
    /// Original experts represented by this slot.
    pub fn originals(&self) -> Vec<usize> {
        match self {
            ExpertSlot::Keep { original } => vec![*original],
            ExpertSlot::Merged { originals } | ExpertSlot::Zero { originals } => originals.clone(),
        }
    }

    /// Whether the slot holds a trainable (tuning) expert.
    pub fn is_tuning(&self) -> bool {
        matches!(self, ExpertSlot::Keep { .. })
    }
}

/// A full plan describing how each layer of the global model is compacted
/// for one participant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompactModelPlan {
    /// Per-layer expert slots, compact index order.
    pub slots: Vec<Vec<ExpertSlot>>,
    /// Per-layer gate re-routing tables (`table[original] = compact`).
    pub routing_tables: Vec<Vec<usize>>,
    /// Merge strategy used when the plan is applied.
    pub config: MergingConfig,
}

impl CompactModelPlan {
    /// Builds the Flux merging plan.
    ///
    /// * `tuning` — the set of original experts this participant will tune.
    /// * `non_tuning_budget` — the participant's `B_non_i` (total merged
    ///   experts across layers).
    ///
    /// # Panics
    ///
    /// Panics if the profile shape does not match the model.
    pub fn build(
        model: &MoeModel,
        profile: &ActivationProfile,
        tuning: &HashSet<ExpertKey>,
        non_tuning_budget: usize,
        config: MergingConfig,
        rng: &mut SeededRng,
    ) -> Self {
        let num_layers = model.layers.len();
        assert_eq!(profile.num_layers(), num_layers, "profile/model mismatch");
        // Partition experts into tuning / non-tuning per layer.
        let mut tuning_per_layer: Vec<Vec<usize>> = vec![Vec::new(); num_layers];
        let mut non_tuning_per_layer: Vec<Vec<usize>> = vec![Vec::new(); num_layers];
        for layer in 0..num_layers {
            let total = model.layers[layer].moe.num_original_experts();
            for e in 0..total {
                if tuning.contains(&ExpertKey::new(layer, e)) {
                    tuning_per_layer[layer].push(e);
                } else {
                    non_tuning_per_layer[layer].push(e);
                }
            }
        }
        let non_tuning_counts: Vec<usize> = non_tuning_per_layer.iter().map(Vec::len).collect();
        let budgets = layer_budgets(
            config.budget_policy,
            profile,
            &non_tuning_counts,
            non_tuning_budget,
        );
        let clusters = cluster_non_tuning_experts(
            model,
            &non_tuning_per_layer,
            &budgets,
            config.clustering,
            config.pca_dims,
            rng,
        );

        let mut slots = Vec::with_capacity(num_layers);
        let mut routing_tables = Vec::with_capacity(num_layers);
        for (layer, layer_tuning) in tuning_per_layer.iter().enumerate() {
            let total = model.layers[layer].moe.num_original_experts();
            let mut layer_slots = Vec::new();
            let mut table = vec![usize::MAX; total];
            for &e in layer_tuning {
                table[e] = layer_slots.len();
                layer_slots.push(ExpertSlot::Keep { original: e });
            }
            for group in &clusters.clusters[layer] {
                let slot_idx = layer_slots.len();
                for &e in group {
                    table[e] = slot_idx;
                }
                layer_slots.push(ExpertSlot::Merged {
                    originals: group.clone(),
                });
            }
            debug_assert!(
                table.iter().all(|&t| t != usize::MAX),
                "every original expert must be mapped"
            );
            slots.push(layer_slots);
            routing_tables.push(table);
        }
        Self {
            slots,
            routing_tables,
            config,
        }
    }

    /// Builds an FMES-style plan: keep the tuning experts, *discard* all
    /// others (tokens routed to them are skipped at that layer).
    pub fn build_discard(model: &MoeModel, tuning: &HashSet<ExpertKey>) -> Self {
        let num_layers = model.layers.len();
        let mut slots = Vec::with_capacity(num_layers);
        let mut routing_tables = Vec::with_capacity(num_layers);
        for layer in 0..num_layers {
            let total = model.layers[layer].moe.num_original_experts();
            let mut layer_slots = Vec::new();
            let mut table = vec![usize::MAX; total];
            let mut discarded = Vec::new();
            for (e, entry) in table.iter_mut().enumerate() {
                if tuning.contains(&ExpertKey::new(layer, e)) {
                    *entry = layer_slots.len();
                    layer_slots.push(ExpertSlot::Keep { original: e });
                } else {
                    discarded.push(e);
                }
            }
            if !discarded.is_empty() {
                let slot_idx = layer_slots.len();
                for &e in &discarded {
                    table[e] = slot_idx;
                }
                layer_slots.push(ExpertSlot::Zero {
                    originals: discarded,
                });
            }
            slots.push(layer_slots);
            routing_tables.push(table);
        }
        Self {
            slots,
            routing_tables,
            config: MergingConfig::default(),
        }
    }

    /// Materializes the compact model described by this plan.
    pub fn apply(&self, global: &MoeModel, profile: &ActivationProfile) -> MoeModel {
        let mut compact = global.clone();
        for (layer, layer_slots) in self.slots.iter().enumerate() {
            let mut experts = Vec::with_capacity(layer_slots.len());
            for slot in layer_slots {
                let expert = match slot {
                    ExpertSlot::Keep { original } => {
                        global.expert(ExpertKey::new(layer, *original)).clone()
                    }
                    ExpertSlot::Merged { originals } => {
                        merge_cluster(global, profile, layer, originals, self.config.strategy)
                    }
                    ExpertSlot::Zero { .. } => zero_expert(global, layer),
                };
                experts.push(expert);
            }
            let map = RoutingMap::from_table(self.routing_tables[layer].clone());
            compact.set_layer_experts(layer, experts, map);
        }
        compact.config.experts_per_layer = compact.experts_per_layer();
        compact
    }

    /// The compact key a tuning (kept) original expert maps to, if any.
    pub fn compact_key_of(&self, original: ExpertKey) -> Option<ExpertKey> {
        let table = self.routing_tables.get(original.layer)?;
        let compact = *table.get(original.expert)?;
        match self.slots[original.layer].get(compact)? {
            ExpertSlot::Keep { original: o } if *o == original.expert => {
                Some(ExpertKey::new(original.layer, compact))
            }
            _ => None,
        }
    }

    /// The original expert a kept compact slot corresponds to, if it is a
    /// tuning slot.
    pub fn original_of_compact(&self, compact: ExpertKey) -> Option<ExpertKey> {
        match self.slots.get(compact.layer)?.get(compact.expert)? {
            ExpertSlot::Keep { original } => Some(ExpertKey::new(compact.layer, *original)),
            _ => None,
        }
    }

    /// Map from every kept original expert to its compact key.
    pub fn tuning_key_map(&self) -> HashMap<ExpertKey, ExpertKey> {
        let mut map = HashMap::new();
        for (layer, layer_slots) in self.slots.iter().enumerate() {
            for (compact, slot) in layer_slots.iter().enumerate() {
                if let ExpertSlot::Keep { original } = slot {
                    map.insert(
                        ExpertKey::new(layer, *original),
                        ExpertKey::new(layer, compact),
                    );
                }
            }
        }
        map
    }

    /// Total number of compact experts materialized across layers.
    pub fn total_compact_experts(&self) -> usize {
        self.slots.iter().map(Vec::len).sum()
    }

    /// Total number of *merged* (frozen) experts across layers.
    pub fn total_merged_experts(&self) -> usize {
        self.slots
            .iter()
            .flat_map(|layer| layer.iter())
            .filter(|slot| matches!(slot, ExpertSlot::Merged { .. }))
            .count()
    }
}

/// An expert whose output is identically zero (used for discarded experts).
fn zero_expert(global: &MoeModel, layer: usize) -> Expert {
    let reference = &global.layers[layer].moe.experts[0];
    Expert {
        w1: Matrix::zeros(reference.d_model(), reference.d_ff()),
        b1: vec![0.0; reference.d_ff()],
        w2: Matrix::zeros(reference.d_ff(), reference.d_model()),
        b2: vec![0.0; reference.d_model()],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flux_data::{DatasetGenerator, DatasetKind};
    use flux_moe::MoeConfig;

    fn setup() -> (MoeModel, ActivationProfile, flux_data::Dataset) {
        let mut rng = SeededRng::new(1);
        let model = MoeModel::new(MoeConfig::tiny(), &mut rng);
        let cfg = flux_data::DatasetConfig::for_kind(DatasetKind::Gsm8k, 64)
            .with_num_samples(12)
            .with_mean_seq_len(8);
        let data = DatasetGenerator::new(cfg).generate(&mut rng);
        let profile = model.profile(&data);
        (model, profile, data)
    }

    fn tuning_set() -> HashSet<ExpertKey> {
        // Two tuning experts per layer.
        let mut set = HashSet::new();
        for layer in 0..4 {
            set.insert(ExpertKey::new(layer, 0));
            set.insert(ExpertKey::new(layer, 3));
        }
        set
    }

    #[test]
    fn plan_covers_every_original_expert() {
        let (model, profile, _) = setup();
        let mut rng = SeededRng::new(2);
        let plan = CompactModelPlan::build(
            &model,
            &profile,
            &tuning_set(),
            8,
            MergingConfig::default(),
            &mut rng,
        );
        for (layer, table) in plan.routing_tables.iter().enumerate() {
            assert_eq!(table.len(), 8);
            for (original, &compact) in table.iter().enumerate() {
                assert!(
                    compact < plan.slots[layer].len(),
                    "layer {layer} expert {original}"
                );
            }
        }
    }

    #[test]
    fn plan_shrinks_the_model() {
        let (model, profile, _) = setup();
        let mut rng = SeededRng::new(3);
        let plan = CompactModelPlan::build(
            &model,
            &profile,
            &tuning_set(),
            8,
            MergingConfig::default(),
            &mut rng,
        );
        // 8 tuning (2/layer) + at most 8 merged in total-budget, but at least
        // one merged per layer.
        assert!(plan.total_compact_experts() < 32);
        assert!(plan.total_merged_experts() >= 4);
        let compact = plan.apply(&model, &profile);
        assert!(compact.num_params() < model.num_params());
        assert_eq!(
            compact.config.experts_per_layer,
            compact.experts_per_layer()
        );
    }

    #[test]
    fn compact_model_forward_works_and_is_close_to_global() {
        let (model, profile, data) = setup();
        let mut rng = SeededRng::new(4);
        let plan = CompactModelPlan::build(
            &model,
            &profile,
            &tuning_set(),
            12,
            MergingConfig::default(),
            &mut rng,
        );
        let compact = plan.apply(&model, &profile);
        let sample = &data.samples[0];
        let full = model.final_embedding(sample);
        let merged = compact.final_embedding(sample);
        let err = flux_tensor::stats::cosine_distance(&full, &merged);
        assert!(err < 0.5, "merged model diverges too much: {err}");
    }

    #[test]
    fn merged_model_is_closer_than_discard_model() {
        // The paper's core motivation (Fig. 3): merging non-tuning experts
        // preserves the model output better than discarding them.
        let (model, profile, data) = setup();
        let mut rng = SeededRng::new(5);
        let tuning = tuning_set();
        let merged = CompactModelPlan::build(
            &model,
            &profile,
            &tuning,
            8,
            MergingConfig::default(),
            &mut rng,
        )
        .apply(&model, &profile);
        let discarded = CompactModelPlan::build_discard(&model, &tuning).apply(&model, &profile);
        let mut merged_err = 0.0;
        let mut discard_err = 0.0;
        for sample in data.samples.iter().take(8) {
            let full = model.final_embedding(sample);
            merged_err +=
                flux_tensor::stats::cosine_distance(&full, &merged.final_embedding(sample));
            discard_err +=
                flux_tensor::stats::cosine_distance(&full, &discarded.final_embedding(sample));
        }
        assert!(
            merged_err < discard_err,
            "merging ({merged_err}) should beat discarding ({discard_err})"
        );
    }

    #[test]
    fn tuning_key_map_round_trips() {
        let (model, profile, _) = setup();
        let mut rng = SeededRng::new(6);
        let tuning = tuning_set();
        let plan = CompactModelPlan::build(
            &model,
            &profile,
            &tuning,
            8,
            MergingConfig::default(),
            &mut rng,
        );
        let map = plan.tuning_key_map();
        assert_eq!(map.len(), tuning.len());
        for (&original, &compact) in &map {
            assert_eq!(plan.compact_key_of(original), Some(compact));
            assert_eq!(plan.original_of_compact(compact), Some(original));
        }
        // Non-tuning experts have no compact tuning key.
        assert_eq!(plan.compact_key_of(ExpertKey::new(0, 1)), None);
    }

    #[test]
    fn discard_plan_zeroes_non_tuning_contribution() {
        let (model, profile, _) = setup();
        let tuning = tuning_set();
        let plan = CompactModelPlan::build_discard(&model, &tuning);
        // Every layer: 2 keeps + 1 zero slot.
        for layer_slots in &plan.slots {
            assert_eq!(layer_slots.len(), 3);
            assert!(matches!(layer_slots[2], ExpertSlot::Zero { .. }));
        }
        let compact = plan.apply(&model, &profile);
        // The zero expert truly outputs zero.
        let zero = &compact.layers[0].moe.experts[2];
        let x = Matrix::filled(2, zero.d_model(), 1.0);
        let out = zero.forward_no_cache(&x);
        assert!(out.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn slot_accessors() {
        let keep = ExpertSlot::Keep { original: 5 };
        assert!(keep.is_tuning());
        assert_eq!(keep.originals(), vec![5]);
        let merged = ExpertSlot::Merged {
            originals: vec![1, 2],
        };
        assert!(!merged.is_tuning());
        assert_eq!(merged.originals(), vec![1, 2]);
    }
}
