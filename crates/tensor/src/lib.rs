//! Dense numeric substrate for the Flux reproduction.
//!
//! The Flux paper builds on PyTorch; this crate provides the small subset of
//! dense linear algebra that the scaled-down reproduction needs: a
//! row-major `f32` [`Matrix`], element-wise and reduction operations,
//! softmax/layer-norm/activation functions, seeded random initialization,
//! first-order optimizers, principal component analysis, K-Means clustering
//! (including the cross-layer "fused" variant used by Flux expert
//! clustering), and basic statistics helpers.
//!
//! Everything is deterministic given a seed so that experiments are
//! reproducible run-to-run.
//!
//! # Examples
//!
//! ```
//! use flux_tensor::{Matrix, ops};
//!
//! let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
//! let b = Matrix::identity(2);
//! let c = a.matmul(&b);
//! assert_eq!(c.get(1, 0), 3.0);
//! let probs = ops::softmax_row(&[1.0, 2.0, 3.0]);
//! assert!((probs.iter().sum::<f32>() - 1.0).abs() < 1e-6);
//! ```

pub mod error;
pub mod init;
pub mod kmeans;
pub mod matrix;
pub mod ops;
pub mod optim;
pub mod pca;
pub mod rng;
pub mod scratch;
pub mod simd;
pub mod stats;

pub use error::TensorError;
pub use matrix::Matrix;
pub use rng::SeededRng;

/// Convenience result alias used across the crate.
pub type Result<T> = std::result::Result<T, TensorError>;
