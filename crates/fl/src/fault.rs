//! Seeded, deterministic fault injection for federated rounds.
//!
//! The paper's deployment target — fleets of flaky edge devices on
//! best-effort uplinks — loses participants mid-round, corrupts payloads
//! in flight, and stalls uploads past any reasonable deadline. The
//! simulator injects exactly those failures through a [`FaultPlan`]: a
//! pure function `(round, participant, attempt) → FaultKind` keyed by a
//! seed, so a given plan reproduces the identical failure schedule on
//! every thread count, execution mode and replay — which is what lets the
//! crash-recovery golden traces stay bit-identical under injected faults.
//!
//! The server-side response — retry with backoff, per-round deadlines and
//! quorum finalization — is configured by [`FaultToleranceConfig`] on the
//! run config. The default config is inert: every pre-existing run
//! executes byte-identically with fault tolerance compiled in.

use serde::{Deserialize, Serialize};

/// What happens to one delivery attempt of one participant's upload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum FaultKind {
    /// The attempt succeeds (no fault).
    #[default]
    None,
    /// The participant crashes for the round: no attempt ever arrives and
    /// retrying is pointless (the device is gone until next round).
    Crash,
    /// The payload arrives bit-flipped; the server's checksum-validated
    /// decode rejects it and the attempt counts as failed.
    Corrupt,
    /// The upload stalls: nothing arrives within the attempt's window and
    /// the server retries after its backoff.
    Stall,
}

impl FaultKind {
    /// Whether a later attempt can succeed (crashes are terminal for the
    /// round; corruption and stalls are transient link failures).
    pub fn is_transient(self) -> bool {
        matches!(self, FaultKind::Corrupt | FaultKind::Stall)
    }
}

/// One step of the SplitMix64 generator.
fn splitmix(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Seeded, deterministic failure schedule for a run.
///
/// Each `(round, participant, attempt)` triple hashes to one uniform draw
/// in `[0, 1)`, mapped onto the configured probability bands — crash,
/// then corrupt, then stall. The plan is a pure function: it holds no
/// mutable state, so checkpoint/restore replays the identical schedule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed of the failure schedule.
    pub seed: u64,
    /// Probability a participant crashes for the round.
    pub crash_prob: f32,
    /// Probability a delivery attempt arrives corrupted.
    pub corrupt_prob: f32,
    /// Probability a delivery attempt stalls past its window.
    pub stall_prob: f32,
}

impl FaultPlan {
    /// A plan with the given seed and no faults (compose with the
    /// `with_*` builders).
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            crash_prob: 0.0,
            corrupt_prob: 0.0,
            stall_prob: 0.0,
        }
    }

    /// Sets the per-round crash probability (clamped to `[0, 1]`).
    pub fn with_crashes(mut self, prob: f32) -> Self {
        self.crash_prob = prob.clamp(0.0, 1.0);
        self
    }

    /// Sets the per-attempt corruption probability (clamped to `[0, 1]`).
    pub fn with_corruption(mut self, prob: f32) -> Self {
        self.corrupt_prob = prob.clamp(0.0, 1.0);
        self
    }

    /// Sets the per-attempt stall probability (clamped to `[0, 1]`).
    pub fn with_stalls(mut self, prob: f32) -> Self {
        self.stall_prob = prob.clamp(0.0, 1.0);
        self
    }

    /// The fault injected into delivery `attempt` (0 = the original
    /// upload) of `participant`'s round-`round` upload. Pure and
    /// deterministic in `(seed, round, participant, attempt)`.
    pub fn fault_for(&self, round: usize, participant: usize, attempt: u32) -> FaultKind {
        let mut h = self.seed;
        h = splitmix(h ^ (round as u64).wrapping_mul(0xA076_1D64_78BD_642F));
        h = splitmix(h ^ (participant as u64).wrapping_mul(0xE703_7ED1_A0B4_28DB));
        h = splitmix(h ^ (attempt as u64).wrapping_mul(0x8EBC_6AF0_9C88_C6E3));
        // 53 high bits → uniform double in [0, 1).
        let u = (h >> 11) as f64 / (1u64 << 53) as f64;
        let crash = self.crash_prob as f64;
        let corrupt = crash + self.corrupt_prob as f64;
        let stall = corrupt + self.stall_prob as f64;
        if u < crash {
            FaultKind::Crash
        } else if u < corrupt {
            FaultKind::Corrupt
        } else if u < stall {
            FaultKind::Stall
        } else {
            FaultKind::None
        }
    }

    /// A seed for deterministically damaging the payload of this attempt
    /// (fed to `EncodedUpload::corrupted`).
    pub fn corruption_seed(&self, round: usize, participant: usize, attempt: u32) -> u64 {
        let mut h = self.seed ^ 0x5DEE_CE66;
        h = splitmix(h ^ round as u64);
        h = splitmix(h ^ participant as u64);
        splitmix(h ^ attempt as u64)
    }
}

/// Server-side degradation policy: retries, deadlines and quorum.
///
/// The default is inert — infinite deadline, no retries, full quorum — so
/// runs without faults behave (and price communication) exactly as before.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultToleranceConfig {
    /// Fraction of the round's cohort whose uploads must land before the
    /// round finalizes; later arrivals are dropped from the round.
    /// `1.0` waits for everyone.
    pub quorum: f32,
    /// Delivery attempts retried after a transient failure (corrupt or
    /// stalled upload). `0` = the original attempt only.
    pub max_retries: u32,
    /// Simulated seconds between delivery attempts; retried uploads pay
    /// this penalty on their arrival time.
    pub retry_backoff_s: f64,
    /// Simulated per-round deadline: attempts that would land after it
    /// are dropped. `f64::INFINITY` = no deadline.
    pub round_deadline_s: f64,
}

impl Default for FaultToleranceConfig {
    fn default() -> Self {
        Self {
            quorum: 1.0,
            max_retries: 0,
            retry_backoff_s: 0.0,
            round_deadline_s: f64::INFINITY,
        }
    }
}

impl FaultToleranceConfig {
    /// Finalize a round once `quorum` of the cohort has landed.
    pub fn with_quorum(mut self, quorum: f32) -> Self {
        self.quorum = quorum.clamp(0.0, 1.0);
        self
    }

    /// Retry transient delivery failures up to `retries` times, waiting
    /// `backoff_s` simulated seconds between attempts.
    pub fn with_retries(mut self, retries: u32, backoff_s: f64) -> Self {
        self.max_retries = retries;
        self.retry_backoff_s = backoff_s.max(0.0);
        self
    }

    /// Drop uploads that would land after `deadline_s` simulated seconds.
    pub fn with_deadline(mut self, deadline_s: f64) -> Self {
        self.round_deadline_s = deadline_s.max(0.0);
        self
    }

    /// Smallest number of participants (of a cohort of `cohort`) whose
    /// uploads must land to satisfy the quorum.
    pub fn quorum_count(&self, cohort: usize) -> usize {
        if cohort == 0 {
            return 0;
        }
        // Nudge below the product before ceiling: the f32→f64 widening of
        // e.g. 0.6 lands a hair above 3/5, and ceil would overshoot the
        // intended count by one. The widening error is relative, so the
        // nudge is too.
        let target = self.quorum as f64 * cohort as f64;
        let q = (target * (1.0 - 1e-6)).ceil() as usize;
        q.clamp(1, cohort)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_plan_is_deterministic() {
        let plan = FaultPlan::new(42)
            .with_crashes(0.2)
            .with_corruption(0.2)
            .with_stalls(0.2);
        for round in 0..4 {
            for pid in 0..16 {
                for attempt in 0..3 {
                    assert_eq!(
                        plan.fault_for(round, pid, attempt),
                        plan.fault_for(round, pid, attempt)
                    );
                    assert_eq!(
                        plan.corruption_seed(round, pid, attempt),
                        plan.corruption_seed(round, pid, attempt)
                    );
                }
            }
        }
    }

    #[test]
    fn probability_bands_saturate_and_clamp() {
        let all_crash = FaultPlan::new(1).with_crashes(1.0);
        let all_stall = FaultPlan::new(1).with_stalls(5.0); // clamped to 1
        let none = FaultPlan::new(1);
        for pid in 0..32 {
            assert_eq!(all_crash.fault_for(0, pid, 0), FaultKind::Crash);
            assert_eq!(all_stall.fault_for(0, pid, 0), FaultKind::Stall);
            assert_eq!(none.fault_for(0, pid, 0), FaultKind::None);
        }
    }

    #[test]
    fn mixed_plan_hits_every_band() {
        let plan = FaultPlan::new(7)
            .with_crashes(0.25)
            .with_corruption(0.25)
            .with_stalls(0.25);
        let mut seen = [0usize; 4];
        for pid in 0..256 {
            match plan.fault_for(0, pid, 0) {
                FaultKind::None => seen[0] += 1,
                FaultKind::Crash => seen[1] += 1,
                FaultKind::Corrupt => seen[2] += 1,
                FaultKind::Stall => seen[3] += 1,
            }
        }
        assert!(seen.iter().all(|&c| c > 20), "bands unbalanced: {seen:?}");
    }

    #[test]
    fn attempts_draw_independently() {
        let plan = FaultPlan::new(3).with_stalls(0.5);
        // With per-attempt draws, some stalled first attempts must succeed
        // on retry across a modest cohort.
        let recovered = (0..64)
            .filter(|&pid| {
                plan.fault_for(0, pid, 0) == FaultKind::Stall
                    && plan.fault_for(0, pid, 1) == FaultKind::None
            })
            .count();
        assert!(recovered > 0);
    }

    #[test]
    fn transient_classification() {
        assert!(FaultKind::Corrupt.is_transient());
        assert!(FaultKind::Stall.is_transient());
        assert!(!FaultKind::Crash.is_transient());
        assert!(!FaultKind::None.is_transient());
    }

    #[test]
    fn default_tolerance_is_inert() {
        let cfg = FaultToleranceConfig::default();
        assert_eq!(cfg.quorum, 1.0);
        assert_eq!(cfg.max_retries, 0);
        assert_eq!(cfg.retry_backoff_s, 0.0);
        assert!(cfg.round_deadline_s.is_infinite());
        assert_eq!(cfg.quorum_count(10), 10);
    }

    #[test]
    fn quorum_count_rounds_up_and_clamps() {
        let cfg = FaultToleranceConfig::default().with_quorum(0.6);
        assert_eq!(cfg.quorum_count(5), 3);
        assert_eq!(cfg.quorum_count(10), 6);
        assert_eq!(cfg.quorum_count(0), 0);
        // At least one participant must land, even with quorum 0.
        assert_eq!(cfg.quorum_count(4), 3);
        assert_eq!(
            FaultToleranceConfig::default()
                .with_quorum(0.0)
                .quorum_count(4),
            1
        );
    }
}
