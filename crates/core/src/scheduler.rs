//! Concurrent-run scheduler: many federated jobs, one server, one pool.
//!
//! The paper's parameter server is a *service*: fleets of devices from many
//! simultaneous fine-tuning jobs upload into it. The [`Scheduler`] models
//! that multi-tenant shape end to end. It owns a set of [`RunHandle`]s —
//! each an independent [`FederatedRun`] with its own method, dataset
//! partition, participant fleet, execution mode, simulated clock, and
//! per-run straggler/dropout behaviors — registers each as a tenant of one
//! shared multi-tenant [`ParameterServer`], and multiplexes their rounds
//! onto one shared persistent worker pool through the driver's resumable
//! state machine ([`ActiveRun::start_round`] / [`ActiveRun::finish_round`])
//! instead of blocking inside any single run's loop.
//!
//! Jobs may arrive staggered ([`JobSpec::with_arrival`]): a job joins the
//! schedule at its arrival tick while earlier jobs are mid-flight.
//!
//! Per-run knobs ride the [`FederatedRun`]'s `RunConfig` — including the
//! upload-compression mode, link profile, per-round cohort sampling
//! (`RunConfig::with_cohort`) and aggregation-tree width
//! (`RunConfig::with_aggregation_edges`) — so a scheduled job compresses,
//! prices communication, and samples its cohorts exactly like its
//! standalone twin (`tests/integration_compression.rs` and the test below
//! pin this).
//!
//! # Determinism
//!
//! Every run's trace (per-round losses, scores, final weight checksum) is
//! **bit-identical to executing that run alone**, under both policies, for
//! every thread count and every interleaving: each run owns its RNG chain
//! and reduction order, its tenant store shares no mutable state with other
//! tenants, and the compute kernels are thread-count-invariant.
//! `tests/integration_scheduler.rs` pins this under `FLUX_THREADS` 1/4/8.

use std::path::PathBuf;

use threadpool::ThreadPool;

use flux_fl::{ParameterServer, DEFAULT_SHARDS};

use crate::driver::{ActiveRun, FederatedRun, Method, RunResult};

/// How the scheduler lays concurrent runs onto the worker pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulePolicy {
    /// One round of each runnable job per tick, executed serially in job
    /// order. Each round's *internal* fan-out still uses the full pool.
    /// The deterministic reference interleaving.
    RoundRobin,
    /// Every runnable job's round executes concurrently: one pool task per
    /// job per tick, each driving its round's fan-out inline on the worker
    /// it lands on. Job-level parallelism replaces participant-level
    /// parallelism — aggregation of different tenants overlaps instead of
    /// serializing on a model-wide lock.
    #[default]
    Concurrent,
}

/// Specification of one job handed to [`Scheduler::run_all`].
#[derive(Clone)]
pub struct JobSpec {
    /// Label carried through to the result (reports, benches).
    pub name: String,
    /// The run configuration (its own data partition, mode, behaviors).
    pub run: FederatedRun,
    /// Which method the job fine-tunes with.
    pub method: Method,
    /// Scheduler tick at which the job arrives (0 = present from the
    /// start). One tick ≈ one interleaved round slot.
    pub arrival_tick: usize,
    /// Resume the job from a durable checkpoint directory instead of
    /// starting it fresh (the restored store joins the scheduler's server
    /// as a tenant).
    pub resume_from: Option<PathBuf>,
}

impl JobSpec {
    /// A job present from tick 0.
    pub fn new(name: impl Into<String>, run: FederatedRun, method: Method) -> Self {
        Self {
            name: name.into(),
            run,
            method,
            arrival_tick: 0,
            resume_from: None,
        }
    }

    /// Delays the job's arrival to `tick` (staggered-arrival scenarios).
    pub fn with_arrival(mut self, tick: usize) -> Self {
        self.arrival_tick = tick;
        self
    }

    /// Resumes the job from a checkpoint written by
    /// [`ActiveRun::checkpoint`] when it activates.
    pub fn with_resume(mut self, dir: impl Into<PathBuf>) -> Self {
        self.resume_from = Some(dir.into());
        self
    }
}

/// One job's lifecycle inside the scheduler: waiting for its arrival tick,
/// active (stepping rounds through the resumable driver), then finished.
enum HandleState {
    Waiting(Box<FederatedRun>, Method),
    Active(Box<ActiveRun>),
    Finished(Box<RunResult>),
    /// Transient marker while ownership moves between states.
    Moving,
}

/// One scheduled job the [`Scheduler`] owns: its spec plus its resumable
/// run state.
pub struct RunHandle {
    name: String,
    arrival_tick: usize,
    started_tick: Option<usize>,
    finished_tick: Option<usize>,
    state: HandleState,
    resume_from: Option<PathBuf>,
}

impl RunHandle {
    fn new(spec: JobSpec) -> Self {
        Self {
            name: spec.name,
            arrival_tick: spec.arrival_tick,
            started_tick: None,
            finished_tick: None,
            state: HandleState::Waiting(Box::new(spec.run), spec.method),
            resume_from: spec.resume_from,
        }
    }

    /// Registers the job as a tenant and activates it once its arrival
    /// tick is reached — fresh, or resumed from its checkpoint directory.
    ///
    /// # Panics
    ///
    /// Panics when a [`JobSpec::with_resume`] checkpoint fails to load: a
    /// job scripted to resume has no sensible fresh-start fallback.
    fn activate_if_arrived(&mut self, tick: usize, server: &ParameterServer) {
        if tick < self.arrival_tick {
            return;
        }
        if let HandleState::Waiting(..) = self.state {
            let HandleState::Waiting(run, method) =
                std::mem::replace(&mut self.state, HandleState::Moving)
            else {
                unreachable!("checked above")
            };
            self.started_tick = Some(tick);
            let active = match &self.resume_from {
                Some(dir) => run
                    .restore_on(method, server, dir)
                    .unwrap_or_else(|err| panic!("job {:?} failed to resume: {err}", self.name)),
                None => run.start_on(method, server),
            };
            self.state = HandleState::Active(Box::new(active));
        }
    }

    fn is_active(&self) -> bool {
        matches!(self.state, HandleState::Active(_))
    }

    fn is_finished(&self) -> bool {
        matches!(self.state, HandleState::Finished(_))
    }

    /// Advances an active job by one round; a job whose rounds are all
    /// executed drains its pipeline, deregisters its tenant from the
    /// shared server (so a long-lived server does not accumulate finished
    /// jobs' models), and finishes.
    fn tick(&mut self, tick: usize, pool: &ThreadPool, server: &ParameterServer) {
        let HandleState::Active(mut active) =
            std::mem::replace(&mut self.state, HandleState::Moving)
        else {
            unreachable!("tick is only called on active handles");
        };
        if !active.is_done() {
            active.step_round(pool);
        }
        if active.is_done() {
            self.finished_tick = Some(tick);
            server.deregister_tenant(active.store());
            self.state = HandleState::Finished(Box::new(active.finish()));
        } else {
            self.state = HandleState::Active(active);
        }
    }

    fn into_scheduled(self) -> ScheduledRun {
        let HandleState::Finished(result) = self.state else {
            unreachable!("run_all only returns finished handles")
        };
        let result = *result;
        ScheduledRun {
            name: self.name,
            arrival_tick: self.arrival_tick,
            started_tick: self.started_tick.unwrap_or(0),
            finished_tick: self.finished_tick.unwrap_or(0),
            result,
        }
    }
}

/// A completed job with its scheduling metadata.
pub struct ScheduledRun {
    /// The job's label.
    pub name: String,
    /// Tick the job was eligible from.
    pub arrival_tick: usize,
    /// Tick the job was registered and started.
    pub started_tick: usize,
    /// Tick the job's last round (and pipeline drain) completed.
    pub finished_tick: usize,
    /// The run's full result — bit-identical to running the job alone.
    pub result: RunResult,
}

/// Multiplexes many federated runs onto one worker pool and one
/// multi-tenant parameter server.
pub struct Scheduler {
    pool: ThreadPool,
    policy: SchedulePolicy,
    num_shards: usize,
}

impl Scheduler {
    /// A scheduler on a pool sized from `FLUX_THREADS` (default policy:
    /// [`SchedulePolicy::Concurrent`]).
    pub fn from_env(policy: SchedulePolicy) -> Self {
        Self::on_pool(ThreadPool::from_env(), policy)
    }

    /// A scheduler on an explicit pool.
    pub fn on_pool(pool: ThreadPool, policy: SchedulePolicy) -> Self {
        Self {
            pool,
            policy,
            num_shards: DEFAULT_SHARDS,
        }
    }

    /// Overrides the per-tenant shard count of the server
    /// [`Scheduler::run_all`] creates.
    pub fn with_shards(mut self, num_shards: usize) -> Self {
        self.num_shards = num_shards.max(1);
        self
    }

    /// Runs every job to completion against a fresh shared multi-tenant
    /// server, interleaving rounds according to the policy. Results come
    /// back in job order.
    pub fn run_all(&self, jobs: Vec<JobSpec>) -> Vec<ScheduledRun> {
        let server = ParameterServer::empty(self.num_shards);
        self.run_all_on(&server, jobs)
    }

    /// Like [`Scheduler::run_all`], but tenants register on the caller's
    /// server (which may already host other tenants).
    pub fn run_all_on(&self, server: &ParameterServer, jobs: Vec<JobSpec>) -> Vec<ScheduledRun> {
        let mut handles: Vec<RunHandle> = jobs.into_iter().map(RunHandle::new).collect();
        let mut tick = 0usize;
        while !handles.iter().all(RunHandle::is_finished) {
            for handle in handles.iter_mut() {
                handle.activate_if_arrived(tick, server);
            }
            match self.policy {
                SchedulePolicy::RoundRobin => {
                    for handle in handles.iter_mut().filter(|h| h.is_active()) {
                        handle.tick(tick, &self.pool, server);
                    }
                }
                SchedulePolicy::Concurrent => {
                    let pool = &self.pool;
                    pool.scope(|scope| {
                        for handle in handles.iter_mut().filter(|h| h.is_active()) {
                            scope.spawn(move || handle.tick(tick, pool, server));
                        }
                    });
                }
            }
            tick += 1;
        }
        handles.into_iter().map(RunHandle::into_scheduled).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::RunConfig;
    use flux_data::DatasetKind;
    use flux_moe::MoeConfig;

    fn quick(seed: u64) -> FederatedRun {
        FederatedRun::new(
            RunConfig::quick_demo(MoeConfig::tiny(), DatasetKind::Gsm8k),
            seed,
        )
    }

    #[test]
    fn round_robin_matches_solo_execution() {
        let solo = quick(7).run(Method::Fmes);
        let scheduler = Scheduler::on_pool(ThreadPool::new(1), SchedulePolicy::RoundRobin);
        let mut results = scheduler.run_all(vec![
            JobSpec::new("a", quick(7), Method::Fmes),
            JobSpec::new("b", quick(8), Method::Fmes),
        ]);
        let a = results.remove(0);
        assert_eq!(a.result.rounds, solo.rounds);
        assert_eq!(
            a.result.final_model.param_checksum(),
            solo.final_model.param_checksum()
        );
        // Both jobs ran 3 rounds, interleaved from tick 0.
        assert_eq!(a.started_tick, 0);
        assert_eq!(a.finished_tick, 2);
    }

    #[test]
    fn staggered_arrival_starts_late_and_still_matches_solo() {
        let solo = quick(9).run(Method::Fmes);
        let scheduler = Scheduler::on_pool(ThreadPool::new(2), SchedulePolicy::RoundRobin);
        let results = scheduler.run_all(vec![
            JobSpec::new("early", quick(10), Method::Fmes),
            JobSpec::new("late", quick(9), Method::Fmes).with_arrival(2),
        ]);
        let late = &results[1];
        assert_eq!(late.started_tick, 2);
        assert!(late.finished_tick >= late.started_tick + 2);
        assert_eq!(late.result.rounds, solo.rounds);
    }

    #[test]
    fn concurrent_policy_shares_one_server_and_evicts_finished_tenants() {
        let server = ParameterServer::empty(4);
        let scheduler = Scheduler::on_pool(ThreadPool::new(4), SchedulePolicy::Concurrent);
        let results = scheduler.run_all_on(
            &server,
            vec![
                JobSpec::new("a", quick(11), Method::Fmes),
                JobSpec::new("b", quick(12), Method::Fmd),
            ],
        );
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].name, "a");
        assert_eq!(results[1].result.method, Method::Fmd);
        assert!(results.iter().all(|r| r.result.rounds.len() == 3));
        // Finished jobs deregistered their tenants: a long-lived server
        // does not accumulate completed jobs' models.
        assert_eq!(server.num_tenants(), 0);
    }

    #[test]
    fn sampled_cohort_jobs_match_their_standalone_twin() {
        // A job registering 10 clients and sampling 3 per round, reduced
        // through 2 edge aggregators, scheduled next to an ordinary job on
        // one shared server: trace bit-identical to running it alone.
        let sampled = |seed| {
            FederatedRun::new(
                RunConfig::quick_demo(MoeConfig::tiny(), DatasetKind::Gsm8k)
                    .with_participants(10)
                    .with_cohort(3)
                    .with_aggregation_edges(2),
                seed,
            )
        };
        let solo = sampled(13).run(Method::Flux);
        let scheduler = Scheduler::on_pool(ThreadPool::new(2), SchedulePolicy::Concurrent);
        let results = scheduler.run_all(vec![
            JobSpec::new("sampled", sampled(13), Method::Flux),
            JobSpec::new("full", quick(14), Method::Fmes),
        ]);
        assert_eq!(results[0].result.rounds, solo.rounds);
        assert_eq!(
            results[0].result.final_model.param_checksum(),
            solo.final_model.param_checksum()
        );
    }

    #[test]
    fn empty_job_list_returns_immediately() {
        let scheduler = Scheduler::on_pool(ThreadPool::new(1), SchedulePolicy::RoundRobin);
        assert!(scheduler.run_all(Vec::new()).is_empty());
    }
}
