//! Cross-crate integration tests of the baseline methods against a real
//! fleet and parameter server.

use flux_core::baselines::{fmd_local_round, fmes_local_round, fmq_local_round};
use flux_core::profiling::QuantizedModelCache;
use flux_data::{DatasetConfig, DatasetGenerator, DatasetKind};
use flux_fl::{build_fleet, CostModel, ParameterServer, Participant};
use flux_moe::{MoeConfig, MoeModel};
use flux_tensor::SeededRng;

fn setup() -> (MoeModel, Vec<Participant>, CostModel) {
    let config = MoeConfig::tiny().with_classes(2);
    let mut rng = SeededRng::new(1);
    let model = MoeModel::new(config.clone(), &mut rng);
    let data = DatasetGenerator::new(
        DatasetConfig::for_kind(DatasetKind::Piqa, config.vocab_size)
            .with_num_samples(30)
            .with_mean_seq_len(10),
    )
    .generate(&mut rng);
    let fleet = build_fleet(&data, 4, 0.5, &mut rng);
    (model, fleet, CostModel::default())
}

#[test]
fn fmd_aggregation_changes_the_global_model() {
    let (model, fleet, cost) = setup();
    let server = ParameterServer::new(model.clone());
    let global = server.global_model();
    let mut all_updates = Vec::new();
    let mut heads = Vec::new();
    for p in &fleet {
        let out = fmd_local_round(p, &global, &cost, 50_000, 0.05, 4);
        all_updates.extend(out.expert_updates);
        if let Some(h) = out.head_update {
            heads.push(h);
        }
    }
    server.aggregate(&all_updates, &heads);
    let updated = server.global_model();
    // At least one expert changed after aggregation.
    let changed = model
        .expert_keys()
        .iter()
        .any(|&k| updated.expert(k) != model.expert(k));
    assert!(changed, "aggregation should modify the global model");
    assert_eq!(server.rounds_completed(), 1);
}

#[test]
fn method_round_costs_are_ordered_fmd_heaviest() {
    let (model, fleet, cost) = setup();
    let p = &fleet[0];
    let reference_tokens = p.tokens_per_round() * 500;
    let profile = model.profile(&p.train_data);
    let fmd = fmd_local_round(p, &model, &cost, reference_tokens, 0.01, 4);
    let fmq = fmq_local_round(
        p,
        &model,
        &cost,
        &QuantizedModelCache::new(),
        reference_tokens,
        0.01,
        4,
    );
    let fmes = fmes_local_round(p, &model, &profile, &cost, reference_tokens, 0.01, 4);
    assert!(fmd.cost.total_s() > fmq.cost.total_s());
    assert!(fmd.cost.total_s() > fmes.cost.total_s());
    // Only FMD pays offloading.
    assert!(fmd.cost.offloading_s > 0.0);
    assert_eq!(fmq.cost.offloading_s, 0.0);
    assert_eq!(fmes.cost.offloading_s, 0.0);
}

#[test]
fn fmes_respects_device_capacity() {
    let (model, fleet, cost) = setup();
    for p in &fleet {
        let profile = model.profile(&p.train_data);
        let out = fmes_local_round(p, &model, &profile, &cost, 50_000, 0.01, 4);
        assert!(out.expert_updates.len() <= p.tuning_capacity(&model.config));
    }
}

#[test]
fn fmq_updates_diverge_from_full_precision_training() {
    let (model, fleet, cost) = setup();
    let p = &fleet[0];
    let cache = QuantizedModelCache::new();
    let fmq = fmq_local_round(p, &model, &cost, &cache, 50_000, 0.05, 4);
    let fmd = fmd_local_round(p, &model, &cost, 50_000, 0.05, 4);
    // Same data, same learning rate: the quantized run must produce
    // different (noisier) expert parameters than full precision.
    let mut total_diff = 0.0f32;
    for (a, b) in fmq.expert_updates.iter().zip(fmd.expert_updates.iter()) {
        assert_eq!(a.key, b.key);
        total_diff += a
            .expert
            .w1
            .sub(&b.expert.w1)
            .expect("same shape")
            .frobenius_norm();
    }
    assert!(total_diff > 0.0);
}
