//! Property-based tests for the two-level [`AggregationTree`]: edge-group
//! pre-reduction over arbitrary cohort partitions must be bit-identical to
//! the flat [`ShardedAggregator`] reduction, for every edge count, ragged
//! group assignment, shard count, arrival order and reduce-pool width.

use std::collections::HashMap;

use proptest::prelude::*;

use flux_fl::{AggregationTree, ExpertUpdate, ShardedAggregator};
use flux_moe::{Expert, ExpertKey};
use flux_tensor::{Matrix, SeededRng};
use threadpool::ThreadPool;

/// One participant's generated upload: id, expert updates, optional head.
type Upload = (usize, Vec<ExpertUpdate>, Option<(Matrix, f32)>);

/// Deterministic ragged uploads over a small key space: 1–3 expert updates
/// per participant (shapes derived from the key), weights spanning
/// negative/zero/positive, heads present ~80% of the time with ragged
/// shapes — the same upload distribution the flat-aggregator proptest pins.
fn make_uploads(seed: u64, num_participants: usize) -> Vec<Upload> {
    let mut rng = SeededRng::new(seed);
    (0..num_participants)
        .map(|pid| {
            let n = rng.range(1, 4);
            let updates: Vec<ExpertUpdate> = (0..n)
                .map(|_| {
                    let key = ExpertKey::new(rng.below(3), rng.below(4));
                    let expert = Expert::new(2 + key.layer, 3 + key.expert, &mut rng);
                    let weight = rng.uniform_range(-1.0, 4.0);
                    ExpertUpdate {
                        key,
                        expert,
                        weight,
                    }
                })
                .collect();
            let head = if rng.chance(0.8) {
                let (r, c) = if rng.chance(0.75) { (2, 3) } else { (3, 2) };
                let m = Matrix::random_normal(r, c, 1.0, &mut rng);
                Some((m, rng.uniform_range(-1.0, 4.0)))
            } else {
                None
            };
            (pid, updates, head)
        })
        .collect()
}

/// Flat reference: every upload submitted to a plain [`ShardedAggregator`]
/// in participant-id order, finalized single-threaded.
fn flat_reference(
    uploads: &[Upload],
    num_shards: usize,
) -> (HashMap<ExpertKey, Expert>, Option<Matrix>) {
    let flat = ShardedAggregator::new(num_shards);
    for (pid, updates, head) in uploads {
        assert!(flat.submit(*pid, updates.clone(), head.clone()));
    }
    flat.finalize(&ThreadPool::new(1))
}

fn assert_bit_identical(
    (experts, head): (HashMap<ExpertKey, Expert>, Option<Matrix>),
    (ref_experts, ref_head): &(HashMap<ExpertKey, Expert>, Option<Matrix>),
    label: &str,
) {
    assert_eq!(experts.len(), ref_experts.len(), "{label}: key sets differ");
    for (key, merged) in &experts {
        let reference = &ref_experts[key];
        assert_eq!(merged.w1, reference.w1, "{label}: w1 diverged for {key:?}");
        assert_eq!(merged.w2, reference.w2, "{label}: w2 diverged for {key:?}");
        assert_eq!(merged.b1, reference.b1, "{label}: b1 diverged for {key:?}");
        assert_eq!(merged.b2, reference.b2, "{label}: b2 diverged for {key:?}");
    }
    assert_eq!(&head, ref_head, "{label}: lm head diverged");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Edge pre-reduction over **arbitrary cohort partitions** — every
    /// participant routed to an explicitly chosen edge (ragged groups:
    /// some edges may carry the whole cohort, some none), uploads arriving
    /// in a random order, any shard count and reduce width — collapses to
    /// a result bit-identical to the flat aggregator fed the same uploads
    /// in pid order.
    #[test]
    fn ragged_edge_partitions_match_flat_reduction(
        seed in 0u64..10_000,
        num_edges in 1usize..9,
        num_shards in 1usize..9,
        num_participants in 1usize..10,
        threads in 1usize..4,
        edge_seed in 0u64..1_000,
    ) {
        let uploads = make_uploads(seed, num_participants);
        let reference = flat_reference(&uploads, num_shards);

        // Ragged partition: each pid lands on an arbitrary edge, not the
        // stable `pid % num_edges` routing.
        let mut assign_rng = SeededRng::new(edge_seed);
        let assignment: Vec<usize> =
            (0..num_participants).map(|_| assign_rng.below(num_edges)).collect();

        let mut arrivals = uploads.clone();
        assign_rng.shuffle(&mut arrivals);
        let tree = AggregationTree::new(ShardedAggregator::new(num_shards), num_edges);
        for (pid, updates, head) in arrivals {
            prop_assert!(tree.submit_to_edge(assignment[pid], pid, updates, head));
        }
        prop_assert_eq!(tree.submitted_participants(), num_participants);

        let collapsed = tree.collapse().finalize(&ThreadPool::new(threads));
        assert_bit_identical(collapsed, &reference, "ragged partition");
    }

    /// The stable `pid % num_edges` routing (what the driver uses) is also
    /// bit-identical to flat, and a mid-round [`merged_snapshot`] taken
    /// before collapse finalizes to the same result — so a checkpoint of a
    /// half-aggregated tree replays exactly like the live tree.
    ///
    /// [`merged_snapshot`]: AggregationTree::merged_snapshot
    #[test]
    fn stable_routing_and_snapshot_are_transparent(
        seed in 0u64..10_000,
        num_edges in 1usize..9,
        num_shards in 1usize..9,
        num_participants in 1usize..10,
        threads in 1usize..4,
    ) {
        let uploads = make_uploads(seed, num_participants);
        let reference = flat_reference(&uploads, num_shards);

        let mut arrivals = uploads.clone();
        SeededRng::new(seed ^ 0xA5A5).shuffle(&mut arrivals);
        let tree = AggregationTree::new(ShardedAggregator::new(num_shards), num_edges);
        for (pid, updates, head) in arrivals {
            prop_assert_eq!(tree.edge_of(pid), Some(pid % num_edges).filter(|_| num_edges > 1));
            prop_assert!(tree.submit(pid, updates, head));
        }

        // Snapshot before collapse: non-draining, finalizes identically.
        let snapshot = tree.merged_snapshot();
        let snap_result = snapshot.finalize(&ThreadPool::new(threads));
        assert_bit_identical(snap_result, &reference, "merged snapshot");

        // The live tree still holds everything and collapses to the same.
        prop_assert_eq!(tree.submitted_participants(), num_participants);
        let collapsed = tree.collapse().finalize(&ThreadPool::new(threads));
        assert_bit_identical(collapsed, &reference, "post-snapshot collapse");
    }

    /// Duplicate pids are rejected across tree levels: once accepted at any
    /// edge (or the root), every retransmission — to the same edge, another
    /// edge, or via stable routing — is dropped, and the collapsed result
    /// equals the single-submission flat reference.
    #[test]
    fn duplicates_are_rejected_across_levels(
        seed in 0u64..10_000,
        num_edges in 2usize..9,
        num_shards in 1usize..9,
    ) {
        let uploads = make_uploads(seed, 3);
        let reference = flat_reference(&uploads, num_shards);

        let tree = AggregationTree::new(ShardedAggregator::new(num_shards), num_edges);
        for (pid, updates, head) in uploads.iter().cloned() {
            prop_assert!(tree.submit_to_edge(pid % num_edges, pid, updates, head));
        }
        // Retransmissions under an accepted pid: same edge, a different
        // edge, and the stable route must all reject.
        let (_, retrans, retrans_head) = uploads[1].clone();
        prop_assert!(!tree.submit_to_edge(0, 0, retrans.clone(), retrans_head.clone()));
        prop_assert!(!tree.submit_to_edge(num_edges - 1, 0, retrans.clone(), retrans_head.clone()));
        prop_assert!(!tree.submit(0, retrans, retrans_head));
        prop_assert_eq!(tree.submitted_participants(), 3);

        let collapsed = tree.collapse().finalize(&ThreadPool::new(2));
        assert_bit_identical(collapsed, &reference, "post-duplicate collapse");
    }
}

/// `collapse` is idempotent: a second collapse finds the edges drained and
/// the root unchanged, so schedulers that re-enter the aggregation step
/// (e.g. after a restore) cannot double-count.
#[test]
fn collapse_is_idempotent() {
    let uploads = make_uploads(77, 6);
    let reference = flat_reference(&uploads, 4);

    let tree = AggregationTree::new(ShardedAggregator::new(4), 3);
    for (pid, updates, head) in uploads {
        assert!(tree.submit(pid, updates, head));
    }
    tree.collapse();
    assert_eq!(tree.root().submitted_participants(), 6);
    // Second collapse: edges are empty, nothing is re-admitted.
    let (experts, head) = tree.collapse().finalize(&ThreadPool::new(1));
    let (ref_experts, ref_head) = reference;
    assert_eq!(experts.len(), ref_experts.len());
    for (key, merged) in &experts {
        assert_eq!(merged.w1, ref_experts[key].w1, "w1 diverged for {key:?}");
    }
    assert_eq!(head, ref_head);
}
