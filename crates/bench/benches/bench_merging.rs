//! Criterion bench backing Figures 15/17: building and applying a compact
//! model plan (budgets + clustering + merging + gate re-routing).

use std::collections::HashSet;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use flux_core::baselines::top_frequency_experts;
use flux_core::merging::{CompactModelPlan, MergeStrategy, MergingConfig};
use flux_data::{DatasetConfig, DatasetGenerator, DatasetKind};
use flux_moe::{MoeConfig, MoeModel};
use flux_tensor::SeededRng;

fn merging(c: &mut Criterion) {
    let config = MoeConfig::tiny();
    let mut rng = SeededRng::new(5);
    let model = MoeModel::new(config.clone(), &mut rng);
    let data = DatasetGenerator::new(
        DatasetConfig::for_kind(DatasetKind::Dolly, 64)
            .with_num_samples(12)
            .with_mean_seq_len(10),
    )
    .generate(&mut rng);
    let profile = model.profile(&data);
    let tuning: HashSet<_> = top_frequency_experts(&profile, 8);

    let mut group = c.benchmark_group("fig17_merging");
    for strategy in MergeStrategy::all() {
        group.bench_with_input(
            BenchmarkId::new("plan_build_apply", strategy.label()),
            &strategy,
            |b, &strategy| {
                b.iter(|| {
                    let plan = CompactModelPlan::build(
                        &model,
                        &profile,
                        &tuning,
                        8,
                        MergingConfig::default().with_strategy(strategy),
                        &mut SeededRng::new(6),
                    );
                    plan.apply(&model, &profile)
                });
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = merging
}
criterion_main!(benches);
