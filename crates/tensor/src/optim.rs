//! First-order optimizers.
//!
//! Local fine-tuning in the reproduction uses plain SGD (matching the
//! paper's single local iteration per round with a small learning rate) or
//! Adam for the faster-converging unit-test scenarios. Optimizer state is
//! keyed per-parameter so experts can be added and removed between rounds,
//! which happens constantly as expert roles change.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::matrix::Matrix;

/// Plain stochastic gradient descent with optional momentum.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Sgd {
    /// Learning rate applied to every step.
    pub learning_rate: f32,
    /// Momentum coefficient; 0 disables momentum.
    pub momentum: f32,
    velocity: HashMap<String, Matrix>,
}

impl Sgd {
    /// Creates an SGD optimizer without momentum.
    pub fn new(learning_rate: f32) -> Self {
        Self::with_momentum(learning_rate, 0.0)
    }

    /// Creates an SGD optimizer with momentum.
    pub fn with_momentum(learning_rate: f32, momentum: f32) -> Self {
        Self {
            learning_rate,
            momentum,
            velocity: HashMap::new(),
        }
    }

    /// Applies one update step to `param` given `grad`.
    ///
    /// `key` identifies the parameter so momentum state survives across
    /// steps; passing a stable key per tensor is the caller's contract.
    pub fn step(&mut self, key: &str, param: &mut Matrix, grad: &Matrix) {
        debug_assert_eq!(param.shape(), grad.shape());
        if self.momentum > 0.0 {
            let v = self
                .velocity
                .entry(key.to_string())
                .or_insert_with(|| Matrix::zeros(grad.rows(), grad.cols()));
            // v = momentum * v + grad; param -= lr * v.
            let mut new_v = v.scale(self.momentum);
            new_v
                .add_scaled(grad, 1.0)
                .expect("gradient shape changed between steps");
            param
                .add_scaled(&new_v, -self.learning_rate)
                .expect("parameter/gradient shape mismatch");
            *v = new_v;
        } else {
            param
                .add_scaled(grad, -self.learning_rate)
                .expect("parameter/gradient shape mismatch");
        }
    }

    /// Drops momentum state for parameters whose key is not retained.
    ///
    /// Called when expert roles change and some experts leave the tuning set.
    pub fn retain_keys(&mut self, keep: impl Fn(&str) -> bool) {
        self.velocity.retain(|k, _| keep(k));
    }

    /// Number of parameters with live momentum state.
    pub fn tracked_params(&self) -> usize {
        self.velocity.len()
    }
}

/// Adam optimizer (Kingma & Ba).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Adam {
    /// Learning rate.
    pub learning_rate: f32,
    /// Exponential decay for the first moment.
    pub beta1: f32,
    /// Exponential decay for the second moment.
    pub beta2: f32,
    /// Numerical stability constant.
    pub eps: f32,
    state: HashMap<String, AdamState>,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct AdamState {
    m: Matrix,
    v: Matrix,
    t: u32,
}

impl Adam {
    /// Creates an Adam optimizer with the standard β parameters.
    pub fn new(learning_rate: f32) -> Self {
        Self {
            learning_rate,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            state: HashMap::new(),
        }
    }

    /// Applies one Adam update step to `param` given `grad`.
    pub fn step(&mut self, key: &str, param: &mut Matrix, grad: &Matrix) {
        debug_assert_eq!(param.shape(), grad.shape());
        let state = self
            .state
            .entry(key.to_string())
            .or_insert_with(|| AdamState {
                m: Matrix::zeros(grad.rows(), grad.cols()),
                v: Matrix::zeros(grad.rows(), grad.cols()),
                t: 0,
            });
        state.t += 1;
        let t = state.t as f32;
        let (b1, b2) = (self.beta1, self.beta2);
        for i in 0..grad.len() {
            let g = grad.as_slice()[i];
            let m = &mut state.m.as_mut_slice()[i];
            *m = b1 * *m + (1.0 - b1) * g;
            let v = &mut state.v.as_mut_slice()[i];
            *v = b2 * *v + (1.0 - b2) * g * g;
            let m_hat = *m / (1.0 - b1.powf(t));
            let v_hat = *v / (1.0 - b2.powf(t));
            param.as_mut_slice()[i] -= self.learning_rate * m_hat / (v_hat.sqrt() + self.eps);
        }
    }

    /// Drops state for parameters whose key is not retained.
    pub fn retain_keys(&mut self, keep: impl Fn(&str) -> bool) {
        self.state.retain(|k, _| keep(k));
    }

    /// Number of parameters with live optimizer state.
    pub fn tracked_params(&self) -> usize {
        self.state.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SeededRng;

    /// Quadratic bowl f(x) = ||x - target||²/2 whose gradient is (x - target).
    fn quadratic_grad(x: &Matrix, target: &Matrix) -> Matrix {
        x.sub(target).unwrap()
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut rng = SeededRng::new(1);
        let target = Matrix::random_normal(4, 4, 1.0, &mut rng);
        let mut x = Matrix::zeros(4, 4);
        let mut opt = Sgd::new(0.2);
        for _ in 0..200 {
            let g = quadratic_grad(&x, &target);
            opt.step("x", &mut x, &g);
        }
        assert!(x.sub(&target).unwrap().frobenius_norm() < 1e-3);
    }

    #[test]
    fn sgd_with_momentum_converges_faster_than_without() {
        let target = Matrix::filled(8, 8, 1.0);
        let run = |momentum: f32| {
            let mut x = Matrix::zeros(8, 8);
            let mut opt = Sgd::with_momentum(0.05, momentum);
            for _ in 0..50 {
                let g = quadratic_grad(&x, &target);
                opt.step("x", &mut x, &g);
            }
            x.sub(&target).unwrap().frobenius_norm()
        };
        assert!(run(0.9) < run(0.0));
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut rng = SeededRng::new(2);
        let target = Matrix::random_normal(3, 3, 2.0, &mut rng);
        let mut x = Matrix::zeros(3, 3);
        let mut opt = Adam::new(0.1);
        for _ in 0..500 {
            let g = quadratic_grad(&x, &target);
            opt.step("x", &mut x, &g);
        }
        assert!(x.sub(&target).unwrap().frobenius_norm() < 1e-2);
    }

    #[test]
    fn optimizer_state_is_per_key() {
        let mut opt = Sgd::with_momentum(0.1, 0.9);
        let mut a = Matrix::zeros(1, 1);
        let mut b = Matrix::zeros(2, 2);
        opt.step("a", &mut a, &Matrix::filled(1, 1, 1.0));
        opt.step("b", &mut b, &Matrix::filled(2, 2, 1.0));
        assert_eq!(opt.tracked_params(), 2);
        opt.retain_keys(|k| k == "a");
        assert_eq!(opt.tracked_params(), 1);
    }

    #[test]
    fn adam_retain_keys() {
        let mut opt = Adam::new(0.01);
        let mut a = Matrix::zeros(1, 2);
        opt.step("expert.0", &mut a, &Matrix::filled(1, 2, 0.5));
        opt.step("expert.1", &mut a, &Matrix::filled(1, 2, 0.5));
        assert_eq!(opt.tracked_params(), 2);
        opt.retain_keys(|k| k.ends_with(".1"));
        assert_eq!(opt.tracked_params(), 1);
    }

    #[test]
    fn sgd_step_moves_against_gradient() {
        let mut x = Matrix::filled(1, 1, 1.0);
        let g = Matrix::filled(1, 1, 2.0);
        let mut opt = Sgd::new(0.5);
        opt.step("x", &mut x, &g);
        assert_eq!(x.get(0, 0), 0.0);
    }
}
