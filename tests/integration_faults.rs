//! Fault-injection and graceful-degradation suite.
//!
//! Uploads can crash, arrive bit-flipped or truncated, or stall past the
//! delivery window — scripted per participant with one-shot
//! [`ParticipantBehavior`] incidents or drawn from a seeded
//! [`FaultPlan`]. The server must *degrade*, never panic: damaged
//! payloads are rejected by the checksum-validated decode, transient
//! failures are retried within the round deadline, and rounds finalize on
//! a quorum. Every fault draw is a pure function of the seeds, so faulty
//! runs stay bit-identical across thread counts and schedules (CI re-runs
//! this suite at `FLUX_THREADS` 1/4/8).

use flux_core::driver::{ExecutionMode, FederatedRun, Method, RunConfig, RunResult};
use flux_data::DatasetKind;
use flux_fl::{CompressionConfig, FaultPlan, FaultToleranceConfig, ParticipantBehavior};
use flux_moe::MoeConfig;

fn quick() -> RunConfig {
    RunConfig::quick_demo(MoeConfig::tiny(), DatasetKind::Gsm8k)
}

#[derive(Debug, Clone, PartialEq)]
struct Trace {
    rounds: Vec<(f32, f32)>,
    checksum: u64,
}

/// Losses, scores and the final weight checksum — the schedule-independent
/// part of a result (simulated round times differ between schedules).
fn trace_of(result: &RunResult) -> Trace {
    Trace {
        rounds: result
            .rounds
            .iter()
            .map(|r| (r.train_loss, r.score))
            .collect(),
        checksum: result.final_model.param_checksum(),
    }
}

#[test]
fn corrupt_upload_is_rejected_not_panicking() {
    for compression in [CompressionConfig::Dense, CompressionConfig::LosslessDelta] {
        let result = FederatedRun::new(quick().with_compression(compression), 31)
            .with_behavior(0, ParticipantBehavior::CorruptAt { round: 1 })
            .run(Method::Flux);
        assert_eq!(result.rounds.len(), 3);
        let faulty = &result.rounds[1].faults;
        assert_eq!(faulty.rejected, vec![0], "the damaged upload is rejected");
        assert_eq!(
            faulty.dropped,
            vec![0],
            "with no retry budget the participant misses the round"
        );
        assert!(result.rounds[0].faults.is_clean());
        assert!(result.rounds[2].faults.is_clean());
        assert!(result.final_score.is_finite());
    }
}

#[test]
fn transient_corruption_recovers_with_a_retry() {
    let clean = FederatedRun::new(quick(), 32).run(Method::Flux);
    let result = FederatedRun::new(
        quick().with_fault_tolerance(
            FaultToleranceConfig::default()
                .with_retries(1, 30.0)
                .with_deadline(1e9),
        ),
        32,
    )
    .with_behavior(0, ParticipantBehavior::CorruptAt { round: 1 })
    .run(Method::Flux);
    let faulty = &result.rounds[1].faults;
    assert_eq!(faulty.rejected, vec![0]);
    assert_eq!(faulty.retried, vec![0], "the second attempt lands");
    assert!(faulty.dropped.is_empty());
    assert_eq!(
        trace_of(&result),
        trace_of(&clean),
        "a retried upload leaves the aggregate unchanged"
    );
}

#[test]
fn stalled_upload_drops_without_retry_and_lands_with_one() {
    let clean = FederatedRun::new(quick(), 33).run(Method::Flux);
    let no_retry = FederatedRun::new(quick(), 33)
        .with_behavior(2, ParticipantBehavior::StallAt { round: 0 })
        .run(Method::Flux);
    assert_eq!(no_retry.rounds[0].faults.dropped, vec![2]);
    let with_retry = FederatedRun::new(
        quick().with_fault_tolerance(FaultToleranceConfig::default().with_retries(1, 15.0)),
        33,
    )
    .with_behavior(2, ParticipantBehavior::StallAt { round: 0 })
    .run(Method::Flux);
    assert_eq!(with_retry.rounds[0].faults.retried, vec![2]);
    assert!(with_retry.rounds[0].faults.dropped.is_empty());
    assert_eq!(
        trace_of(&with_retry),
        trace_of(&clean),
        "the retried stall recovers the clean aggregate"
    );
}

#[test]
fn crash_excludes_exactly_one_round() {
    let result = FederatedRun::new(quick(), 34)
        .with_behavior(1, ParticipantBehavior::CrashAt { round: 1 })
        .run(Method::Flux);
    assert!(result.rounds[0].faults.is_clean());
    assert_eq!(result.rounds[1].faults.dropped, vec![1]);
    assert!(result.rounds[1].faults.rejected.is_empty());
    assert!(
        result.rounds[2].faults.is_clean(),
        "a crashed participant returns healthy next round"
    );
}

#[test]
fn quorum_finalizes_rounds_on_the_earliest_arrivals() {
    let result = FederatedRun::new(
        quick().with_fault_tolerance(FaultToleranceConfig::default().with_quorum(0.5)),
        35,
    )
    .run(Method::Flux);
    for record in &result.rounds {
        assert_eq!(
            record.faults.dropped.len(),
            2,
            "quorum 0.5 of 4 keeps the 2 earliest arrivals (round {})",
            record.round
        );
    }
    assert!(result.final_score.is_finite());
}

#[test]
fn fault_plan_runs_are_deterministic_across_schedules() {
    let config = quick()
        .with_fault_plan(FaultPlan::new(9).with_crashes(0.2).with_corruption(0.2))
        .with_fault_tolerance(
            FaultToleranceConfig::default()
                .with_retries(2, 10.0)
                .with_deadline(1e9),
        );
    let pipelined = FederatedRun::new(config.clone(), 36).run(Method::Flux);
    let again = FederatedRun::new(config.clone(), 36).run(Method::Flux);
    assert_eq!(
        pipelined.rounds, again.rounds,
        "identical seeds draw identical faults"
    );
    let barriered = FederatedRun::new(config, 36)
        .with_mode(ExecutionMode::Barriered)
        .run(Method::Flux);
    assert_eq!(trace_of(&pipelined), trace_of(&barriered));
    let faults: Vec<_> = pipelined.rounds.iter().map(|r| &r.faults).collect();
    let barriered_faults: Vec<_> = barriered.rounds.iter().map(|r| &r.faults).collect();
    assert_eq!(faults, barriered_faults);
    assert!(
        pipelined.rounds.iter().any(|r| !r.faults.is_clean()),
        "the plan's rates must actually fire at these seeds"
    );
}

#[test]
fn mid_round_recovery_under_faults_is_bit_identical() {
    use std::path::PathBuf;
    use threadpool::ThreadPool;

    let dir: PathBuf =
        std::env::temp_dir().join(format!("flux_faulty_recovery_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let run = FederatedRun::new(
        quick()
            .with_fault_plan(FaultPlan::new(5).with_corruption(0.3))
            .with_fault_tolerance(FaultToleranceConfig::default().with_retries(1, 5.0)),
        37,
    );
    let reference = run.run(Method::Flux);
    let pool = ThreadPool::from_env();
    {
        let mut active = run.start(Method::Flux);
        active.step_round(&pool);
        active.start_round(&pool);
        active.checkpoint(&dir).expect("mid-round checkpoint");
        // Crash: the in-flight round is dropped with the process.
    }
    let mut restored = run.restore(Method::Flux, &dir).expect("restore succeeds");
    while !restored.is_done() {
        restored.step_round(&pool);
    }
    let recovered = restored.finish();
    assert_eq!(recovered.rounds, reference.rounds);
    assert_eq!(
        recovered.final_model.param_checksum(),
        reference.final_model.param_checksum()
    );
    let _ = std::fs::remove_dir_all(&dir);
}
