//! Figure 20: overhead breakdown of a Flux round — profiling, merging,
//! role assignment and fine-tuning.
//!
//! The paper reports that the three Flux-specific phases together account
//! for roughly 5% of the total federated fine-tuning time (fine-tuning is
//! ~94–96%).

use flux_bench::{fmt, llama_config, print_header, run_config, Scale, EXPERIMENT_SEED};
use flux_core::driver::{FederatedRun, Method};
use flux_data::DatasetKind;

fn main() {
    let scale = Scale::from_env();
    print_header(
        &format!("Figure 20: Flux overhead breakdown ({})", scale.label()),
        &[
            "Dataset",
            "Profiling %",
            "Merging %",
            "Assignment %",
            "Fine-tuning %",
        ],
    );
    for kind in DatasetKind::all() {
        let config = run_config(scale, llama_config(scale), kind);
        let result = FederatedRun::new(config, EXPERIMENT_SEED).run(Method::Flux);
        let (profiling, merging, assignment, fine_tuning) = result.phase_times.fractions();
        println!(
            "{}\t{}\t{}\t{}\t{}",
            kind.name(),
            fmt(profiling * 100.0),
            fmt(merging * 100.0),
            fmt(assignment * 100.0),
            fmt(fine_tuning * 100.0)
        );
    }
    println!("\npaper: profiling 0.75-2.24%, merging 0.92-2.33%, assignment 1.35-2.33%, fine-tuning ~95%.");
}
