//! Quickstart: run a small federated fine-tuning experiment with Flux and
//! print the convergence curve.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use flux_core::driver::{FederatedRun, Method, RunConfig};
use flux_data::DatasetKind;
use flux_moe::MoeConfig;

fn main() {
    // A tiny MoE (4 layers x 8 experts) fine-tuned on the synthetic GSM8K
    // analogue across 4 participants. Finishes in a few seconds.
    let config = RunConfig::quick_demo(MoeConfig::tiny(), DatasetKind::Gsm8k).with_rounds(5);
    println!(
        "Flux quickstart: model={} dataset={} participants={} rounds={}",
        config.model_config.name,
        config.dataset_kind.name(),
        config.num_participants,
        config.rounds
    );

    let run = FederatedRun::new(config, 42);
    let result = run.run(Method::Flux);

    println!("\nround\telapsed (h)\tscore\trelative accuracy");
    for point in result.tracker.points() {
        println!(
            "{}\t{:.3}\t\t{:.3}\t{:.3}",
            point.round, point.elapsed_hours, point.score, point.relative_accuracy
        );
    }
    println!("\nfinal score: {:.3}", result.final_score);
    match result.tracker.time_to_target_hours() {
        Some(h) => println!("time to target: {h:.3} simulated hours"),
        None => println!("target not reached within the demo budget (expected for the tiny run)"),
    }
    let (p, m, a, f) = result.phase_times.fractions();
    println!(
        "phase breakdown: profiling {:.1}%, merging {:.1}%, assignment {:.1}%, fine-tuning {:.1}%",
        p * 100.0,
        m * 100.0,
        a * 100.0,
        f * 100.0
    );
}
