//! Cross-crate integration tests of the full federated pipeline.

use flux_core::driver::{FederatedRun, Method, RunConfig};
use flux_data::DatasetKind;
use flux_moe::MoeConfig;

fn quick(dataset: DatasetKind) -> RunConfig {
    RunConfig::quick_demo(MoeConfig::tiny(), dataset)
}

#[test]
fn flux_end_to_end_produces_monotone_clock_and_scores() {
    let result = FederatedRun::new(quick(DatasetKind::Gsm8k), 101).run(Method::Flux);
    assert_eq!(result.rounds.len(), 3);
    // The simulated clock must advance strictly.
    for pair in result.rounds.windows(2) {
        assert!(pair[1].elapsed_hours > pair[0].elapsed_hours);
    }
    // Every phase total is non-negative and fine-tuning dominates.
    let (p, m, a, f) = result.phase_times.fractions();
    assert!(p >= 0.0 && m >= 0.0 && a >= 0.0);
    assert!(
        f > 0.5,
        "fine-tuning should dominate the breakdown, got {f}"
    );
}

#[test]
fn flux_round_time_beats_fmd_and_fmq() {
    let run = FederatedRun::new(quick(DatasetKind::Piqa), 102);
    let flux: f64 = run
        .run(Method::Flux)
        .rounds
        .iter()
        .map(|r| r.round_seconds)
        .sum();
    let fmd: f64 = run
        .run(Method::Fmd)
        .rounds
        .iter()
        .map(|r| r.round_seconds)
        .sum();
    let fmq: f64 = run
        .run(Method::Fmq)
        .rounds
        .iter()
        .map(|r| r.round_seconds)
        .sum();
    assert!(
        flux < fmd,
        "Flux {flux} should be faster per round than FMD {fmd}"
    );
    assert!(
        flux < fmq,
        "Flux {flux} should be faster per round than FMQ {fmq}"
    );
}

#[test]
fn generation_and_classification_datasets_both_run() {
    for dataset in [DatasetKind::Dolly, DatasetKind::Mmlu] {
        let result = FederatedRun::new(quick(dataset), 103).run(Method::Flux);
        assert_eq!(result.rounds.len(), 3);
        assert!(result.final_score >= 0.0 && result.final_score <= 1.2);
    }
}

#[test]
fn runs_are_reproducible_across_invocations() {
    let a = FederatedRun::new(quick(DatasetKind::Gsm8k), 202).run(Method::Fmes);
    let b = FederatedRun::new(quick(DatasetKind::Gsm8k), 202).run(Method::Fmes);
    assert_eq!(a.rounds.len(), b.rounds.len());
    for (x, y) in a.rounds.iter().zip(b.rounds.iter()) {
        assert_eq!(x.score, y.score);
        assert_eq!(x.round_seconds, y.round_seconds);
    }
}

#[test]
fn different_seeds_change_the_run() {
    let a = FederatedRun::new(quick(DatasetKind::Gsm8k), 1).run(Method::Flux);
    let b = FederatedRun::new(quick(DatasetKind::Gsm8k), 2).run(Method::Flux);
    let same = a
        .rounds
        .iter()
        .zip(b.rounds.iter())
        .filter(|(x, y)| x.score == y.score)
        .count();
    assert!(same < a.rounds.len(), "different seeds should diverge");
}

#[test]
fn more_participants_do_not_slow_down_rounds() {
    // With the same total dataset, more participants means less local data
    // each, so the critical-path round time must not grow.
    let few =
        FederatedRun::new(quick(DatasetKind::Gsm8k).with_participants(2), 7).run(Method::Flux);
    let many =
        FederatedRun::new(quick(DatasetKind::Gsm8k).with_participants(8), 7).run(Method::Flux);
    let mean = |r: &flux_core::driver::RunResult| {
        r.rounds.iter().map(|x| x.round_seconds).sum::<f64>() / r.rounds.len() as f64
    };
    assert!(mean(&many) <= mean(&few) * 1.2);
}
