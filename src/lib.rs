//! Facade over the Flux workspace.
//!
//! Re-exports every subsystem crate under one roof so downstream users (and
//! the root integration tests and examples) can depend on a single `flux`
//! crate. See `ROADMAP.md` for the system overview and `crates/*` for the
//! per-subsystem documentation.

pub use flux_core as core;
pub use flux_data as data;
pub use flux_fl as fl;
pub use flux_metrics as metrics;
pub use flux_moe as moe;
pub use flux_quant as quant;
pub use flux_tensor as tensor;
