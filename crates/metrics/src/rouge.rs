//! ROUGE-L: longest-common-subsequence based generation quality.
//!
//! The paper reports ROUGE-L for the Dolly instruction-following workload
//! with a target value of 0.5. The reproduction computes ROUGE-L over token
//! id sequences (the synthetic datasets have no natural-language surface
//! form), which is exactly how the metric behaves on tokenized text.

/// Computes the ROUGE-L F1 score between a candidate and a reference token
/// sequence.
///
/// ROUGE-L is based on the longest common subsequence (LCS):
/// `precision = LCS / |candidate|`, `recall = LCS / |reference|`, and the
/// returned value is their harmonic mean. Returns 0 when either sequence is
/// empty.
pub fn rouge_l(candidate: &[u32], reference: &[u32]) -> f32 {
    if candidate.is_empty() || reference.is_empty() {
        return 0.0;
    }
    let lcs = lcs_length(candidate, reference) as f32;
    if lcs == 0.0 {
        return 0.0;
    }
    let precision = lcs / candidate.len() as f32;
    let recall = lcs / reference.len() as f32;
    2.0 * precision * recall / (precision + recall)
}

/// Mean ROUGE-L over a batch of (candidate, reference) pairs.
///
/// Returns 0 for an empty batch.
pub fn mean_rouge_l(pairs: &[(Vec<u32>, Vec<u32>)]) -> f32 {
    if pairs.is_empty() {
        return 0.0;
    }
    pairs.iter().map(|(c, r)| rouge_l(c, r)).sum::<f32>() / pairs.len() as f32
}

/// Length of the longest common subsequence, O(n·m) dynamic programming with
/// a rolling row.
fn lcs_length(a: &[u32], b: &[u32]) -> usize {
    if a.is_empty() || b.is_empty() {
        return 0;
    }
    let mut prev = vec![0usize; b.len() + 1];
    let mut cur = vec![0usize; b.len() + 1];
    for &ai in a {
        for (j, &bj) in b.iter().enumerate() {
            cur[j + 1] = if ai == bj {
                prev[j] + 1
            } else {
                prev[j + 1].max(cur[j])
            };
        }
        std::mem::swap(&mut prev, &mut cur);
        cur.fill(0);
    }
    prev[b.len()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_sequences_score_one() {
        let s = vec![1, 2, 3, 4, 5];
        assert!((rouge_l(&s, &s) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn disjoint_sequences_score_zero() {
        assert_eq!(rouge_l(&[1, 2, 3], &[4, 5, 6]), 0.0);
    }

    #[test]
    fn empty_sequences_score_zero() {
        assert_eq!(rouge_l(&[], &[1, 2]), 0.0);
        assert_eq!(rouge_l(&[1, 2], &[]), 0.0);
        assert_eq!(rouge_l(&[], &[]), 0.0);
    }

    #[test]
    fn partial_overlap_known_value() {
        // candidate = [1,2,3,4], reference = [1,3,5]; LCS = [1,3] length 2.
        // precision = 2/4, recall = 2/3, F1 = 2*0.5*0.6667/1.1667 = 0.5714.
        let score = rouge_l(&[1, 2, 3, 4], &[1, 3, 5]);
        assert!((score - 0.5714).abs() < 1e-3, "score {score}");
    }

    #[test]
    fn subsequence_order_matters() {
        // Same multiset, different order -> LCS shrinks.
        let a = rouge_l(&[1, 2, 3], &[1, 2, 3]);
        let b = rouge_l(&[3, 2, 1], &[1, 2, 3]);
        assert!(a > b);
    }

    #[test]
    fn symmetric_in_f1() {
        let x = vec![1, 2, 3, 4, 5, 6];
        let y = vec![2, 4, 6, 8];
        assert!((rouge_l(&x, &y) - rouge_l(&y, &x)).abs() < 1e-6);
    }

    #[test]
    fn mean_rouge_l_averages() {
        let pairs = vec![
            (vec![1, 2, 3], vec![1, 2, 3]),
            (vec![1, 2, 3], vec![7, 8, 9]),
        ];
        assert!((mean_rouge_l(&pairs) - 0.5).abs() < 1e-6);
        assert_eq!(mean_rouge_l(&[]), 0.0);
    }

    #[test]
    fn lcs_known_values() {
        assert_eq!(lcs_length(&[1, 3, 5, 7], &[1, 2, 3, 4, 5]), 3);
        assert_eq!(lcs_length(&[1], &[1]), 1);
        assert_eq!(lcs_length(&[], &[1]), 0);
    }
}
