//! Batched-vs-per-sample training equivalence.
//!
//! The batched path (`MoeModel::batch_gradients`) packs all samples of a
//! mini-batch into one activation matrix per layer. Per-token activations
//! are bit-identical to the per-sample reference because every row-parallel
//! kernel's accumulation order is independent of the operand's row count;
//! accumulated parameter gradients differ only by float-summation order.
//! These tests pin both properties across batch sizes 1, the paper's 16,
//! and a ragged batch of mixed sequence lengths.

use std::collections::HashSet;

use flux_data::{DatasetConfig, DatasetGenerator, DatasetKind, Sample};
use flux_moe::attention::Attention;
use flux_moe::{ExpertKey, GradientSet, MoeConfig, MoeModel};
use flux_tensor::simd::{self, SimdLevel};
use flux_tensor::{Matrix, SeededRng};

/// Documented tolerance of the batched path: accumulated f32 gradients may
/// differ from the sequential reference by summation order only.
const REL_TOL: f32 = 1e-4;

fn gen_model(seed: u64) -> MoeModel {
    let mut rng = SeededRng::new(seed);
    MoeModel::new(MoeConfig::tiny(), &mut rng)
}

fn cls_model(seed: u64, classes: usize) -> MoeModel {
    let mut rng = SeededRng::new(seed);
    MoeModel::new(MoeConfig::tiny().with_classes(classes), &mut rng)
}

fn gen_samples(seed: u64, n: usize) -> Vec<Sample> {
    let mut rng = SeededRng::new(seed);
    let cfg = DatasetConfig::for_kind(DatasetKind::Dolly, 64)
        .with_num_samples(n)
        .with_mean_seq_len(9);
    DatasetGenerator::new(cfg).generate(&mut rng).samples
}

fn cls_samples(seed: u64, n: usize) -> Vec<Sample> {
    let mut rng = SeededRng::new(seed);
    let cfg = DatasetConfig::for_kind(DatasetKind::Piqa, 64)
        .with_num_samples(n)
        .with_mean_seq_len(8);
    DatasetGenerator::new(cfg).generate(&mut rng).samples
}

fn assert_matrices_close(a: &Matrix, b: &Matrix, what: &str) {
    assert_eq!(a.shape(), b.shape(), "{what} shape");
    let scale = b.frobenius_norm().max(1.0);
    for (i, (x, y)) in a.as_slice().iter().zip(b.as_slice()).enumerate() {
        assert!(
            (x - y).abs() <= REL_TOL * scale,
            "{what} entry {i}: batched {x} vs reference {y} (scale {scale})"
        );
    }
}

fn assert_gradients_equivalent(batched: &GradientSet, reference: &GradientSet) {
    assert_eq!(batched.samples, reference.samples, "sample counts");
    assert!(
        (batched.loss - reference.loss).abs() <= REL_TOL * reference.loss.abs().max(1.0),
        "loss: batched {} vs reference {}",
        batched.loss,
        reference.loss
    );
    assert_matrices_close(&batched.head_grad, &reference.head_grad, "head_grad");
    let batched_keys: HashSet<_> = batched.expert_grads.keys().copied().collect();
    let reference_keys: HashSet<_> = reference.expert_grads.keys().copied().collect();
    assert_eq!(batched_keys, reference_keys, "activated expert sets");
    for (key, b) in &batched.expert_grads {
        let r = &reference.expert_grads[key];
        assert_eq!(b.token_count, r.token_count, "token_count of {key:?}");
        assert_matrices_close(&b.w1, &r.w1, "w1 grad");
        assert_matrices_close(&b.w2, &r.w2, "w2 grad");
        for ((x, y), name) in
            b.b1.iter()
                .zip(&r.b1)
                .map(|p| (p, "b1"))
                .chain(b.b2.iter().zip(&r.b2).map(|p| (p, "b2")))
        {
            assert!((x - y).abs() <= REL_TOL, "{name} grad: {x} vs {y}");
        }
    }
}

fn check_equivalence(model: &MoeModel, samples: &[Sample], tuning: Option<&HashSet<ExpertKey>>) {
    let batched = model.batch_gradients(samples, tuning);
    let reference = model.batch_gradients_reference(samples, tuning);
    assert_gradients_equivalent(&batched, &reference);
}

#[test]
fn batch_of_one_matches_reference() {
    let model = gen_model(1);
    let samples = gen_samples(2, 1);
    check_equivalence(&model, &samples, None);
}

#[test]
fn paper_batch_of_16_matches_reference() {
    let model = gen_model(3);
    let samples = gen_samples(4, 16);
    assert_eq!(samples.len(), 16);
    check_equivalence(&model, &samples, None);
}

#[test]
fn ragged_batch_matches_reference() {
    // Mixed sequence lengths in one packed batch (the generator draws
    // varying lengths around the mean).
    let model = gen_model(5);
    let samples = gen_samples(6, 10);
    let lengths: HashSet<usize> = samples.iter().map(|s| s.tokens.len()).collect();
    assert!(lengths.len() > 1, "batch should be ragged: {lengths:?}");
    check_equivalence(&model, &samples, None);
}

#[test]
fn classification_batches_match_reference() {
    let model = cls_model(7, 2);
    let samples = cls_samples(8, 16);
    check_equivalence(&model, &samples, None);
    check_equivalence(&model, &samples[..1], None);
    check_equivalence(&model, &samples[..5], None);
}

#[test]
fn tuning_restriction_matches_reference() {
    let model = gen_model(9);
    let samples = gen_samples(10, 8);
    let mut tuning = HashSet::new();
    tuning.insert(ExpertKey::new(0, 0));
    tuning.insert(ExpertKey::new(1, 3));
    tuning.insert(ExpertKey::new(3, 5));
    check_equivalence(&model, &samples, Some(&tuning));
}

#[test]
fn batched_forward_is_bit_identical_to_per_sample() {
    let model = gen_model(11);
    let samples = gen_samples(12, 6);
    let refs: Vec<&Sample> = samples.iter().collect();
    let cache = model.forward_batch(&refs);
    for (sample, &(start, end)) in samples.iter().zip(cache.batch.bounds()) {
        let single = model.forward(&sample.tokens, None);
        let segment = cache.final_hidden.copy_rows(start, end);
        assert_eq!(
            segment.as_slice(),
            single.final_hidden.as_slice(),
            "packed final hidden must match the per-sample forward bitwise"
        );
    }
}

/// The fused block-diagonal attention (one padded GEMM per stage over the
/// packed batch) must be bit-identical to running each sample through the
/// per-sample [`Attention::forward`]/[`Attention::backward`] alone — at every
/// SIMD dispatch level, over ragged bounds including length-1 samples.
#[test]
fn block_diag_attention_matches_per_sample_at_every_level() {
    let levels: Vec<SimdLevel> = [SimdLevel::Scalar, SimdLevel::Sse2, SimdLevel::Avx2]
        .into_iter()
        .filter(|&l| simd::is_supported(l))
        .collect();
    for level in levels {
        simd::with_level(level, || {
            let mut rng = SeededRng::new(17);
            let attn = Attention::new(8, &mut rng);
            // Ragged sample lengths, including the degenerate length-1 block.
            let lens = [4usize, 1, 7, 2];
            let samples: Vec<Matrix> = lens
                .iter()
                .map(|&l| Matrix::random_normal(l, 8, 1.0, &mut rng))
                .collect();
            let sample_refs: Vec<&Matrix> = samples.iter().collect();
            let packed = Matrix::vstack(&sample_refs).unwrap();
            let mut bounds = Vec::new();
            let mut at = 0;
            for &l in &lens {
                bounds.push((at, at + l));
                at += l;
            }
            let grad = Matrix::random_normal(at, 8, 1.0, &mut rng);

            let (out, cache) = attn.forward_batch(&packed, &bounds);
            let grad_in = attn.backward_batch(&cache, &bounds, &grad);
            for (sample, &(start, end)) in samples.iter().zip(&bounds) {
                let (out_s, cache_s) = attn.forward(sample);
                assert_eq!(
                    out.copy_rows(start, end).as_slice(),
                    out_s.as_slice(),
                    "forward diverged at {level:?} bounds {start}..{end}"
                );
                let grad_s = attn.backward(&cache_s, &grad.copy_rows(start, end));
                assert_eq!(
                    grad_in.copy_rows(start, end).as_slice(),
                    grad_s.as_slice(),
                    "backward diverged at {level:?} bounds {start}..{end}"
                );
            }
        });
    }
}

#[test]
fn batch_loss_matches_mean_sample_loss() {
    let model = cls_model(13, 4);
    let samples = cls_samples(14, 7);
    let refs: Vec<&Sample> = samples.iter().collect();
    let batched = model.batch_loss(&refs);
    let mean: f32 =
        samples.iter().map(|s| model.sample_loss(s)).sum::<f32>() / samples.len() as f32;
    assert_eq!(batched, mean, "batched loss probe diverged");
    assert_eq!(model.batch_loss(&[]), 0.0);
}

#[test]
fn train_step_on_batched_path_reduces_loss() {
    let mut model = cls_model(15, 2);
    let samples = cls_samples(16, 12);
    let ds = flux_data::Dataset {
        kind: DatasetKind::Piqa,
        vocab_size: 64,
        samples: samples.clone(),
    };
    let before = model.evaluate(&ds).loss;
    for _ in 0..10 {
        model.train_step(&samples, None, 0.05);
    }
    let after = model.evaluate(&ds).loss;
    assert!(after < before, "loss should drop: {before} -> {after}");
}
