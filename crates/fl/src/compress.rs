//! Communication compression for expert uploads.
//!
//! Participants encode their updates as `new − base` deltas against the
//! round-start snapshot instead of shipping full-precision dense tensors.
//! Three knobs, all per-run via [`CompressionConfig`]:
//!
//! * **Lossless delta** — the delta is the bitwise XOR of the new and base
//!   f32 words. Decoding XORs the base back in, so the reconstruction is
//!   **bit-identical** for every value (including zeros, subnormals and
//!   NaN payloads) — unlike an arithmetic `base + (new − base)`, which
//!   rounds. Fine-tuning deltas leave sign, exponent and the high mantissa
//!   bits of most weights untouched, so the XOR words are mostly leading
//!   zeros and the simulated wire format charges only the significant
//!   bytes of each changed word (plus a changed-word bitmap).
//! * **Quantization** — the arithmetic delta is quantized with the
//!   symmetric per-row [`QuantizedMatrix`] scheme at int8/int4 (int2 also
//!   works). Lossy: the decoded expert is `base + dequantize(delta)`.
//! * **Top-k sparsification** — only the `⌈k·n⌉` largest-magnitude delta
//!   entries ship; near-zero deltas are dropped. Composes with
//!   quantization (the surviving values quantize against one shared
//!   scale).
//!
//! The decode point is [`crate::aggregate::ShardedAggregator`] staging:
//! decoded updates reduce under the same per-shard locks and
//! participant-id-ordered reduction as dense uploads, so compression never
//! perturbs aggregation order.

use serde::{Deserialize, Serialize};

use flux_moe::{Expert, ExpertKey, MoeModel};
use flux_quant::{BitWidth, QuantizedMatrix};
use flux_tensor::Matrix;

use crate::aggregate::ExpertUpdate;

/// Per-run upload compression knob.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub enum CompressionConfig {
    /// Legacy wire format: full-precision dense tensors, no delta.
    #[default]
    Dense,
    /// Bitwise XOR delta against the round-start snapshot. Decodes
    /// bit-identically; runs with this mode produce the same losses,
    /// scores and weights as [`CompressionConfig::Dense`].
    LosslessDelta,
    /// Arithmetic delta, optionally top-k sparsified and/or quantized.
    /// Lossy: decoded experts carry quantization/sparsification error,
    /// pinned within tolerance of dense golden traces by the integration
    /// suite.
    LossyDelta {
        /// Quantize the (surviving) delta entries at this width.
        quantization: Option<BitWidth>,
        /// Fraction of delta entries kept by top-k magnitude selection
        /// (`1.0` keeps everything; values are clamped to `[0, 1]`).
        top_k_fraction: f32,
    },
}

impl CompressionConfig {
    /// Lossy delta quantized at `width`, keeping every entry.
    pub fn quantized(width: BitWidth) -> Self {
        CompressionConfig::LossyDelta {
            quantization: Some(width),
            top_k_fraction: 1.0,
        }
    }

    /// Lossy delta: top-k sparsified, then quantized at `width`.
    pub fn quantized_sparse(width: BitWidth, top_k_fraction: f32) -> Self {
        CompressionConfig::LossyDelta {
            quantization: Some(width),
            top_k_fraction,
        }
    }

    /// Lossy delta: top-k sparsified full-precision values.
    pub fn sparse(top_k_fraction: f32) -> Self {
        CompressionConfig::LossyDelta {
            quantization: None,
            top_k_fraction,
        }
    }

    /// Whether this is the uncompressed legacy format.
    pub fn is_dense(&self) -> bool {
        matches!(self, CompressionConfig::Dense)
    }

    /// Whether decoding reproduces the dense upload bit-identically.
    pub fn is_lossless(&self) -> bool {
        match self {
            CompressionConfig::Dense | CompressionConfig::LosslessDelta => true,
            CompressionConfig::LossyDelta {
                quantization,
                top_k_fraction,
            } => quantization.is_none() && *top_k_fraction >= 1.0,
        }
    }
}

/// Why an encoded payload failed to decode.
///
/// Malformed uploads — truncated payload vectors, bit-flipped words, rogue
/// expert keys, broken quantization parameters — are an expected input in
/// the paper's deployment (flaky edge links), so every decode path returns
/// a typed error instead of panicking; the aggregator rejects the upload
/// and the round carries on without it.
#[derive(Debug, Clone, PartialEq)]
pub enum DecodeError {
    /// The upload's stored integrity checksum does not match its content.
    ChecksumMismatch {
        /// Checksum stamped at encode time.
        expected: u64,
        /// Checksum recomputed from the received content.
        actual: u64,
    },
    /// A payload or base buffer holds the wrong number of entries.
    LengthMismatch {
        /// Which buffer mismatched.
        what: &'static str,
        /// Entries required by the tensor shape.
        expected: usize,
        /// Entries actually present.
        actual: usize,
    },
    /// An expert key addresses a layer/expert the base model does not have.
    KeyOutOfRange {
        /// The rogue key.
        key: ExpertKey,
    },
    /// A sparse index addresses beyond the end of the tensor.
    IndexOutOfRange {
        /// The rogue flat index.
        index: usize,
        /// Number of entries in the tensor.
        len: usize,
    },
    /// Quantization parameters are unusable (non-finite scale, or a level
    /// that overflows the declared bit width).
    BadQuantization(String),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::ChecksumMismatch { expected, actual } => write!(
                f,
                "upload checksum mismatch: stored {expected:#018x}, content {actual:#018x}"
            ),
            DecodeError::LengthMismatch {
                what,
                expected,
                actual,
            } => write!(
                f,
                "{what} length mismatch: expected {expected}, got {actual}"
            ),
            DecodeError::KeyOutOfRange { key } => write!(
                f,
                "expert key out of range: layer {}, expert {}",
                key.layer, key.expert
            ),
            DecodeError::IndexOutOfRange { index, len } => {
                write!(f, "sparse index {index} out of range for {len} entries")
            }
            DecodeError::BadQuantization(msg) => write!(f, "bad quantization parameters: {msg}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Fixed per-tensor header charged by the simulated wire format (shape,
/// payload tag, scale bookkeeping).
const TENSOR_HEADER_BYTES: usize = 8;

/// FNV-1a offset basis (matches `MoeModel::param_checksum`).
pub(crate) const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime.
const FNV_PRIME: u64 = 0x100_0000_01b3;

pub(crate) fn fnv_bytes(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

fn fnv_u64(hash: u64, v: u64) -> u64 {
    fnv_bytes(hash, &v.to_le_bytes())
}

fn fnv_u32(hash: u64, v: u32) -> u64 {
    fnv_bytes(hash, &v.to_le_bytes())
}

fn fnv_f32(hash: u64, v: f32) -> u64 {
    fnv_u32(hash, v.to_bits())
}

/// One step of the SplitMix64 generator (drives deterministic corruption).
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Wire payload of one encoded tensor.
#[derive(Debug, Clone, Serialize, Deserialize)]
enum DeltaPayload {
    /// Raw f32 values (dense upload; decodes without a base).
    Dense(Vec<f32>),
    /// `new.to_bits() ^ base.to_bits()` per word. Bit-identical decode.
    Xor(Vec<u32>),
    /// Per-row quantized arithmetic delta.
    Quantized(QuantizedMatrix),
    /// Top-k full-precision delta entries at ascending flat indices.
    Sparse {
        /// Flat indices of the surviving entries.
        indices: Vec<u32>,
        /// Delta values at those indices.
        values: Vec<f32>,
    },
    /// Top-k delta entries quantized against one shared symmetric scale.
    SparseQuantized {
        /// Flat indices of the surviving entries.
        indices: Vec<u32>,
        /// Quantized levels at those indices.
        levels: Vec<i8>,
        /// Shared dequantization scale.
        scale: f32,
        /// Quantization width (prices the packed level bytes).
        width: BitWidth,
    },
}

/// One tensor of an expert upload in its encoded wire form.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EncodedTensor {
    rows: usize,
    cols: usize,
    payload: DeltaPayload,
}

impl EncodedTensor {
    /// Encodes `new` against `base` (flattened, row-major; `base` must have
    /// the same length).
    fn encode_slices(
        new: &[f32],
        base: &[f32],
        rows: usize,
        cols: usize,
        config: CompressionConfig,
    ) -> Self {
        debug_assert_eq!(new.len(), base.len());
        debug_assert_eq!(new.len(), rows * cols);
        let payload = match config {
            CompressionConfig::Dense => DeltaPayload::Dense(new.to_vec()),
            CompressionConfig::LosslessDelta => DeltaPayload::Xor(
                new.iter()
                    .zip(base)
                    .map(|(n, b)| n.to_bits() ^ b.to_bits())
                    .collect(),
            ),
            CompressionConfig::LossyDelta {
                quantization,
                top_k_fraction,
            } => {
                let frac = top_k_fraction.clamp(0.0, 1.0);
                if frac >= 1.0 && quantization.is_none() {
                    // Degenerate lossy config: an un-quantized, un-sparsified
                    // delta. The XOR form carries the same information in
                    // fewer bytes and decodes exactly, so use it.
                    return Self::encode_slices(
                        new,
                        base,
                        rows,
                        cols,
                        CompressionConfig::LosslessDelta,
                    );
                }
                let delta: Vec<f32> = new.iter().zip(base).map(|(n, b)| n - b).collect();
                if frac >= 1.0 {
                    let width = quantization.expect("handled above");
                    let delta_matrix = Matrix::from_vec(rows, cols, delta)
                        .expect("encoded tensor shape is consistent");
                    DeltaPayload::Quantized(QuantizedMatrix::quantize(&delta_matrix, width))
                } else {
                    let (indices, values) = top_k_entries(&delta, frac);
                    match quantization {
                        None => DeltaPayload::Sparse { indices, values },
                        Some(width) => {
                            let (levels, scale) = quantize_values(&values, width);
                            DeltaPayload::SparseQuantized {
                                indices,
                                levels,
                                scale,
                                width,
                            }
                        }
                    }
                }
            }
        };
        Self {
            rows,
            cols,
            payload,
        }
    }

    /// Encodes a matrix against its base.
    pub fn encode(new: &Matrix, base: &Matrix, config: CompressionConfig) -> Self {
        let (rows, cols) = new.shape();
        Self::encode_slices(new.as_slice(), base.as_slice(), rows, cols, config)
    }

    /// Encodes a bias vector (a 1×n tensor) against its base.
    pub fn encode_vec(new: &[f32], base: &[f32], config: CompressionConfig) -> Self {
        Self::encode_slices(new, base, 1, new.len(), config)
    }

    /// Tensor shape `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Whether decoding requires the base tensor (everything but the dense
    /// payload is a delta).
    pub fn needs_base(&self) -> bool {
        !matches!(self.payload, DeltaPayload::Dense(_))
    }

    /// Decodes against `base`, returning the reconstructed flat values.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] when the base has the wrong length for a
    /// delta payload, a payload vector is truncated or oversized, a sparse
    /// index is out of range, or quantization parameters are unusable —
    /// every malformed-input case a flaky uplink can produce.
    fn decode_slices(&self, base: &[f32]) -> Result<Vec<f32>, DecodeError> {
        let n = self.rows * self.cols;
        if self.needs_base() && base.len() != n {
            return Err(DecodeError::LengthMismatch {
                what: "base tensor",
                expected: n,
                actual: base.len(),
            });
        }
        let out = match &self.payload {
            DeltaPayload::Dense(values) => {
                if values.len() != n {
                    return Err(DecodeError::LengthMismatch {
                        what: "dense payload",
                        expected: n,
                        actual: values.len(),
                    });
                }
                values.clone()
            }
            DeltaPayload::Xor(words) => {
                if words.len() != n {
                    return Err(DecodeError::LengthMismatch {
                        what: "xor payload",
                        expected: n,
                        actual: words.len(),
                    });
                }
                words
                    .iter()
                    .zip(base)
                    .map(|(w, b)| f32::from_bits(b.to_bits() ^ w))
                    .collect()
            }
            DeltaPayload::Quantized(q) => {
                if q.shape() != (self.rows, self.cols) {
                    return Err(DecodeError::LengthMismatch {
                        what: "quantized delta",
                        expected: n,
                        actual: q.rows() * q.cols(),
                    });
                }
                if q.scales().iter().any(|s| !s.is_finite()) {
                    return Err(DecodeError::BadQuantization("non-finite row scale".into()));
                }
                let max_level = q.width().max_level();
                for row in 0..q.rows() {
                    if q.levels_row(row)
                        .iter()
                        .any(|&l| (l as i32).abs() > max_level)
                    {
                        return Err(DecodeError::BadQuantization(format!(
                            "level overflows {:?}",
                            q.width()
                        )));
                    }
                }
                let delta = q.dequantize();
                base.iter()
                    .zip(delta.as_slice())
                    .map(|(b, d)| b + d)
                    .collect()
            }
            DeltaPayload::Sparse { indices, values } => {
                if values.len() != indices.len() {
                    return Err(DecodeError::LengthMismatch {
                        what: "sparse values",
                        expected: indices.len(),
                        actual: values.len(),
                    });
                }
                let mut out = base.to_vec();
                for (&i, &v) in indices.iter().zip(values) {
                    let slot = out
                        .get_mut(i as usize)
                        .ok_or(DecodeError::IndexOutOfRange {
                            index: i as usize,
                            len: n,
                        })?;
                    *slot += v;
                }
                out
            }
            DeltaPayload::SparseQuantized {
                indices,
                levels,
                scale,
                width,
            } => {
                if levels.len() != indices.len() {
                    return Err(DecodeError::LengthMismatch {
                        what: "sparse levels",
                        expected: indices.len(),
                        actual: levels.len(),
                    });
                }
                if !scale.is_finite() {
                    return Err(DecodeError::BadQuantization("non-finite scale".into()));
                }
                let max_level = width.max_level();
                if levels.iter().any(|&l| (l as i32).abs() > max_level) {
                    return Err(DecodeError::BadQuantization(format!(
                        "level overflows {width:?}"
                    )));
                }
                let mut out = base.to_vec();
                for (&i, &level) in indices.iter().zip(levels) {
                    let slot = out
                        .get_mut(i as usize)
                        .ok_or(DecodeError::IndexOutOfRange {
                            index: i as usize,
                            len: n,
                        })?;
                    *slot += level as f32 * scale;
                }
                out
            }
        };
        debug_assert_eq!(out.len(), n, "every branch validates its length");
        Ok(out)
    }

    /// Decodes into a matrix of this tensor's shape.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] when the payload is malformed (see
    /// [`EncodedTensor::decode_slices`]).
    pub fn decode(&self, base: &Matrix) -> Result<Matrix, DecodeError> {
        let values = self.decode_slices(base.as_slice())?;
        Ok(Matrix::from_vec(self.rows, self.cols, values)
            .expect("decode_slices validated the length"))
    }

    /// Decodes a bias vector.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] when the payload is malformed (see
    /// [`EncodedTensor::decode_slices`]).
    pub fn decode_vec(&self, base: &[f32]) -> Result<Vec<f32>, DecodeError> {
        self.decode_slices(base)
    }

    /// Bytes of the uncompressed dense payload (4 per f32).
    pub fn dense_bytes(&self) -> usize {
        self.rows * self.cols * 4
    }

    /// Simulated wire bytes of this payload.
    ///
    /// * Dense: 4 bytes per word.
    /// * XOR delta: a changed-word bitmap (`⌈n/8⌉` bytes) plus the
    ///   significant bytes of each nonzero word — close values share sign,
    ///   exponent and high mantissa bits, so their XOR has many leading
    ///   zeros.
    /// * Quantized: packed levels plus per-row f32 scales.
    /// * Sparse: a membership mask — the cheaper of a dense bitmap and
    ///   explicit u32 indices — plus the surviving values (f32 or packed
    ///   levels with one shared scale).
    pub fn encoded_bytes(&self) -> usize {
        let n = self.rows * self.cols;
        let body = match &self.payload {
            DeltaPayload::Dense(values) => values.len() * 4,
            DeltaPayload::Xor(words) => {
                let bitmap = n.div_ceil(8);
                let significant: usize = words
                    .iter()
                    .filter(|&&w| w != 0)
                    .map(|&w| (32 - w.leading_zeros() as usize).div_ceil(8))
                    .sum();
                bitmap + significant
            }
            DeltaPayload::Quantized(q) => q.storage_bytes(),
            DeltaPayload::Sparse { indices, values } => {
                sparse_mask_bytes(n, indices.len()) + values.len() * 4
            }
            DeltaPayload::SparseQuantized {
                indices,
                levels,
                width,
                ..
            } => sparse_mask_bytes(n, indices.len()) + width.storage_bytes(levels.len()) + 4,
        };
        TENSOR_HEADER_BYTES + body
    }

    /// Folds this tensor's shape and payload content into an FNV-1a hash.
    fn fold_checksum(&self, mut hash: u64) -> u64 {
        hash = fnv_u64(hash, self.rows as u64);
        hash = fnv_u64(hash, self.cols as u64);
        match &self.payload {
            DeltaPayload::Dense(values) => {
                hash = fnv_u64(hash, 0);
                hash = fnv_u64(hash, values.len() as u64);
                for &v in values {
                    hash = fnv_f32(hash, v);
                }
            }
            DeltaPayload::Xor(words) => {
                hash = fnv_u64(hash, 1);
                hash = fnv_u64(hash, words.len() as u64);
                for &w in words {
                    hash = fnv_u32(hash, w);
                }
            }
            DeltaPayload::Quantized(q) => {
                hash = fnv_u64(hash, 2);
                hash = fnv_u64(hash, q.width().bits() as u64);
                for &s in q.scales() {
                    hash = fnv_f32(hash, s);
                }
                for row in 0..q.rows() {
                    for &l in q.levels_row(row) {
                        hash = fnv_bytes(hash, &[l as u8]);
                    }
                }
            }
            DeltaPayload::Sparse { indices, values } => {
                hash = fnv_u64(hash, 3);
                hash = fnv_u64(hash, indices.len() as u64);
                for (&i, &v) in indices.iter().zip(values) {
                    hash = fnv_u32(hash, i);
                    hash = fnv_f32(hash, v);
                }
            }
            DeltaPayload::SparseQuantized {
                indices,
                levels,
                scale,
                width,
            } => {
                hash = fnv_u64(hash, 4);
                hash = fnv_u64(hash, width.bits() as u64);
                hash = fnv_f32(hash, *scale);
                hash = fnv_u64(hash, indices.len() as u64);
                for (&i, &l) in indices.iter().zip(levels) {
                    hash = fnv_u32(hash, i);
                    hash = fnv_bytes(hash, &[l as u8]);
                }
            }
        }
        hash
    }

    /// Deterministically damages this tensor: flips one payload bit (or,
    /// for payloads without directly addressable words, perturbs the
    /// shape). `r` seeds the choice of word and bit.
    fn corrupt(&mut self, r: u64) {
        let bit = (r >> 32) % 31;
        match &mut self.payload {
            DeltaPayload::Dense(values) if !values.is_empty() => {
                let i = r as usize % values.len();
                values[i] = f32::from_bits(values[i].to_bits() ^ (1 << bit));
            }
            DeltaPayload::Xor(words) if !words.is_empty() => {
                let i = r as usize % words.len();
                words[i] ^= 1 << bit;
            }
            DeltaPayload::Sparse { values, .. } if !values.is_empty() => {
                let i = r as usize % values.len();
                values[i] = f32::from_bits(values[i].to_bits() ^ (1 << bit));
            }
            DeltaPayload::SparseQuantized { scale, .. } => {
                *scale = f32::from_bits(scale.to_bits() ^ (1 << bit));
            }
            _ => self.rows ^= 1,
        }
    }

    /// Deterministically truncates this tensor's payload vector (models a
    /// connection dropped mid-upload). Payloads without a vector body fall
    /// back to bit corruption.
    fn truncate_payload(&mut self, r: u64) {
        match &mut self.payload {
            DeltaPayload::Dense(values) if values.len() > 1 => {
                values.truncate(1 + r as usize % (values.len() - 1));
            }
            DeltaPayload::Xor(words) if words.len() > 1 => {
                words.truncate(1 + r as usize % (words.len() - 1));
            }
            DeltaPayload::Sparse { values, .. } if !values.is_empty() => {
                values.truncate(values.len() - 1);
            }
            DeltaPayload::SparseQuantized { levels, .. } if !levels.is_empty() => {
                levels.truncate(levels.len() - 1);
            }
            _ => self.corrupt(r),
        }
    }
}

/// Bytes needed to transmit which of `n` entries survived: the cheaper of a
/// dense bitmap and an explicit u32 index list.
fn sparse_mask_bytes(n: usize, kept: usize) -> usize {
    n.div_ceil(8).min(kept * 4)
}

/// Deterministic top-k selection by |value|: ties break toward the lower
/// flat index, exact zeros never ship, and the surviving indices come back
/// sorted ascending.
fn top_k_entries(delta: &[f32], fraction: f32) -> (Vec<u32>, Vec<f32>) {
    let n = delta.len();
    let k = ((n as f64) * fraction as f64).ceil() as usize;
    let mut order: Vec<u32> = (0..n as u32)
        .filter(|&i| delta[i as usize] != 0.0)
        .collect();
    order.sort_by(|&a, &b| {
        let ma = delta[a as usize].abs();
        let mb = delta[b as usize].abs();
        mb.partial_cmp(&ma)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    order.truncate(k);
    order.sort_unstable();
    let values = order.iter().map(|&i| delta[i as usize]).collect();
    (order, values)
}

/// Symmetric quantization of a value list against one shared scale.
fn quantize_values(values: &[f32], width: BitWidth) -> (Vec<i8>, f32) {
    let max_level = width.max_level() as f32;
    let max_abs = values.iter().fold(0.0f32, |acc, &v| acc.max(v.abs()));
    let scale = if max_abs > 0.0 {
        max_abs / max_level
    } else {
        1.0
    };
    let levels = values
        .iter()
        .map(|&v| (v / scale).round().clamp(-max_level, max_level) as i8)
        .collect();
    (levels, scale)
}

/// One participant's update for a single expert in encoded wire form.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EncodedExpertUpdate {
    /// Which global expert this update targets.
    pub key: ExpertKey,
    /// Encoded `w1`.
    pub w1: EncodedTensor,
    /// Encoded `b1`.
    pub b1: EncodedTensor,
    /// Encoded `w2`.
    pub w2: EncodedTensor,
    /// Encoded `b2`.
    pub b2: EncodedTensor,
    /// FedAvg aggregation weight.
    pub weight: f32,
}

impl EncodedExpertUpdate {
    /// Encodes one expert update against its base (round-start) expert.
    pub fn encode(
        key: ExpertKey,
        new: &Expert,
        base: &Expert,
        weight: f32,
        config: CompressionConfig,
    ) -> Self {
        Self {
            key,
            w1: EncodedTensor::encode(&new.w1, &base.w1, config),
            b1: EncodedTensor::encode_vec(&new.b1, &base.b1, config),
            w2: EncodedTensor::encode(&new.w2, &base.w2, config),
            b2: EncodedTensor::encode_vec(&new.b2, &base.b2, config),
            weight,
        }
    }

    /// Decodes against the base expert.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] when any tensor's payload is malformed or
    /// its base shape mismatches (rogue upload).
    pub fn decode(&self, base: &Expert) -> Result<ExpertUpdate, DecodeError> {
        Ok(ExpertUpdate {
            key: self.key,
            expert: Expert {
                w1: self.w1.decode(&base.w1)?,
                b1: self.b1.decode_vec(&base.b1)?,
                w2: self.w2.decode(&base.w2)?,
                b2: self.b2.decode_vec(&base.b2)?,
            },
            weight: self.weight,
        })
    }

    /// Folds this update's key, weight and tensors into an FNV-1a hash.
    fn fold_checksum(&self, mut hash: u64) -> u64 {
        hash = fnv_u64(hash, self.key.layer as u64);
        hash = fnv_u64(hash, self.key.expert as u64);
        hash = fnv_f32(hash, self.weight);
        hash = self.w1.fold_checksum(hash);
        hash = self.b1.fold_checksum(hash);
        hash = self.w2.fold_checksum(hash);
        self.b2.fold_checksum(hash)
    }

    /// Simulated wire bytes of this update.
    pub fn encoded_bytes(&self) -> usize {
        self.w1.encoded_bytes()
            + self.b1.encoded_bytes()
            + self.w2.encoded_bytes()
            + self.b2.encoded_bytes()
    }

    /// Bytes the dense upload of the same tensors would take.
    pub fn dense_bytes(&self) -> usize {
        self.w1.dense_bytes()
            + self.b1.dense_bytes()
            + self.w2.dense_bytes()
            + self.b2.dense_bytes()
    }
}

/// What [`EncodedUpload::decode`] yields: the expert updates plus the
/// optional `(head, weight)` pair.
pub type DecodedUpload = (Vec<ExpertUpdate>, Option<(Matrix, f32)>);

/// One participant's full encoded upload: expert updates plus the optional
/// task head, sealed with an end-to-end FNV-1a content checksum.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EncodedUpload {
    /// Encoded expert updates.
    pub experts: Vec<EncodedExpertUpdate>,
    /// Encoded task head and its aggregation weight.
    pub head: Option<(EncodedTensor, f32)>,
    /// FNV-1a checksum over every key, weight, shape and payload word,
    /// stamped at encode time. [`EncodedUpload::decode`] verifies it before
    /// touching any tensor, so a bit flip anywhere in flight is rejected.
    pub checksum: u64,
}

impl EncodedUpload {
    /// Encodes a dense upload against the round-start snapshot `base`.
    ///
    /// Every update key must exist in `base` (participants derive their
    /// keys from the snapshot they downloaded, so this holds by
    /// construction).
    pub fn encode(
        updates: &[ExpertUpdate],
        head: Option<&(Matrix, f32)>,
        base: &MoeModel,
        config: CompressionConfig,
    ) -> Self {
        let experts = updates
            .iter()
            .map(|u| {
                EncodedExpertUpdate::encode(u.key, &u.expert, base.expert(u.key), u.weight, config)
            })
            .collect();
        let head = head.map(|(matrix, weight)| {
            (
                EncodedTensor::encode(matrix, base.active_head(), config),
                *weight,
            )
        });
        let mut upload = Self {
            experts,
            head,
            checksum: 0,
        };
        upload.checksum = upload.content_checksum();
        upload
    }

    /// FNV-1a hash over the upload's entire content (keys, weights, shapes
    /// and payload words) — what [`EncodedUpload::checksum`] must equal.
    pub fn content_checksum(&self) -> u64 {
        let mut hash = FNV_OFFSET;
        hash = fnv_u64(hash, self.experts.len() as u64);
        for expert in &self.experts {
            hash = expert.fold_checksum(hash);
        }
        match &self.head {
            Some((tensor, weight)) => {
                hash = fnv_u64(hash, 1);
                hash = tensor.fold_checksum(hash);
                hash = fnv_f32(hash, *weight);
            }
            None => hash = fnv_u64(hash, 0),
        }
        hash
    }

    /// Re-stamps the checksum from the current content. Only needed after
    /// deliberately mutating an upload (tests forging rogue keys).
    pub fn reseal(&mut self) {
        self.checksum = self.content_checksum();
    }

    /// Decodes against the round-start snapshot.
    ///
    /// The stored checksum is verified against the received content before
    /// any tensor is touched; then every expert key is range-checked
    /// against the base model and each tensor payload is validated.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] on checksum mismatch, rogue keys, or any
    /// malformed tensor payload. The upload is rejected as a unit — a
    /// partially-decoded upload never reaches the aggregator.
    pub fn decode(&self, base: &MoeModel) -> Result<DecodedUpload, DecodeError> {
        let actual = self.content_checksum();
        if actual != self.checksum {
            return Err(DecodeError::ChecksumMismatch {
                expected: self.checksum,
                actual,
            });
        }
        let per_layer = base.experts_per_layer();
        let mut updates = Vec::with_capacity(self.experts.len());
        for encoded in &self.experts {
            let in_range = per_layer
                .get(encoded.key.layer)
                .is_some_and(|&n| encoded.key.expert < n);
            if !in_range {
                return Err(DecodeError::KeyOutOfRange { key: encoded.key });
            }
            updates.push(encoded.decode(base.expert(encoded.key))?);
        }
        let head = match &self.head {
            Some((tensor, weight)) => Some((tensor.decode(base.active_head())?, *weight)),
            None => None,
        };
        Ok((updates, head))
    }

    /// A deterministically corrupted copy of this upload: one payload word
    /// (chosen by `seed`) is bit-flipped while the stored checksum is left
    /// untouched, so [`EncodedUpload::decode`] must reject the result.
    /// This is the fault-injection hook modeling in-flight corruption.
    pub fn corrupted(&self, seed: u64) -> Self {
        let mut out = self.clone();
        let mut state = seed;
        let r = splitmix(&mut state);
        let slots = out.experts.len() * 4 + usize::from(out.head.is_some());
        if slots == 0 {
            // Nothing in the payload to damage: flip the checksum itself.
            out.checksum ^= 1;
            return out;
        }
        let slot = (r as usize) % slots;
        let tensor = if slot < out.experts.len() * 4 {
            let expert = &mut out.experts[slot / 4];
            match slot % 4 {
                0 => &mut expert.w1,
                1 => &mut expert.b1,
                2 => &mut expert.w2,
                _ => &mut expert.b2,
            }
        } else {
            &mut out.head.as_mut().expect("slot implies head exists").0
        };
        tensor.corrupt(splitmix(&mut state));
        out
    }

    /// A deterministically truncated copy of this upload: one tensor's
    /// payload vector loses its tail (the stored checksum is left
    /// untouched), modeling a connection dropped mid-upload.
    pub fn truncated(&self, seed: u64) -> Self {
        let mut out = self.clone();
        let mut state = seed ^ 0x5bf0_3635;
        let r = splitmix(&mut state);
        let slots = out.experts.len() * 4 + usize::from(out.head.is_some());
        if slots == 0 {
            out.checksum ^= 1;
            return out;
        }
        let slot = (r as usize) % slots;
        let tensor = if slot < out.experts.len() * 4 {
            let expert = &mut out.experts[slot / 4];
            match slot % 4 {
                0 => &mut expert.w1,
                1 => &mut expert.b1,
                2 => &mut expert.w2,
                _ => &mut expert.b2,
            }
        } else {
            &mut out.head.as_mut().expect("slot implies head exists").0
        };
        tensor.truncate_payload(splitmix(&mut state));
        out
    }

    /// Simulated wire bytes of the whole upload.
    pub fn encoded_bytes(&self) -> usize {
        let experts: usize = self.experts.iter().map(|e| e.encoded_bytes()).sum();
        let head = self
            .head
            .as_ref()
            .map(|(t, _)| t.encoded_bytes())
            .unwrap_or(0);
        experts + head
    }

    /// Bytes the dense upload of the same payload would take.
    pub fn dense_bytes(&self) -> usize {
        let experts: usize = self.experts.iter().map(|e| e.dense_bytes()).sum();
        let head = self
            .head
            .as_ref()
            .map(|(t, _)| t.dense_bytes())
            .unwrap_or(0);
        experts + head
    }
}

/// Bytes a dense (uncompressed) upload payload occupies on the wire: 4 per
/// f32 across every expert tensor plus the optional head.
pub fn dense_upload_payload_bytes(updates: &[ExpertUpdate], head: Option<&(Matrix, f32)>) -> usize {
    let params: usize = updates.iter().map(|u| u.expert.num_params()).sum();
    let head_params = head.map(|(m, _)| m.len()).unwrap_or(0);
    (params + head_params) * 4
}

#[cfg(test)]
mod tests {
    use super::*;
    use flux_tensor::SeededRng;

    fn random_matrix(seed: u64, rows: usize, cols: usize) -> Matrix {
        let mut rng = SeededRng::new(seed);
        Matrix::random_normal(rows, cols, 1.0, &mut rng)
    }

    /// A "fine-tuned" variant: the base plus small perturbations on most
    /// entries (how real training deltas look).
    fn perturbed(base: &Matrix, seed: u64) -> Matrix {
        let mut rng = SeededRng::new(seed);
        let noise = Matrix::random_normal(base.shape().0, base.shape().1, 0.01, &mut rng);
        let mut out = base.clone();
        out.add_scaled(&noise, 1.0).unwrap();
        out
    }

    #[test]
    fn xor_delta_round_trips_bit_identically() {
        let base = random_matrix(1, 6, 9);
        let mut new = perturbed(&base, 2);
        // Special values must survive exactly too.
        new.set(0, 0, 0.0);
        new.set(0, 1, -0.0);
        new.set(1, 0, f32::MIN_POSITIVE / 2.0); // subnormal
        let encoded = EncodedTensor::encode(&new, &base, CompressionConfig::LosslessDelta);
        let decoded = encoded.decode(&base).unwrap();
        for (d, n) in decoded.as_slice().iter().zip(new.as_slice()) {
            assert_eq!(d.to_bits(), n.to_bits(), "bitwise mismatch");
        }
    }

    #[test]
    fn dense_payload_round_trips_without_base() {
        let base = random_matrix(3, 4, 4);
        let new = random_matrix(4, 4, 4);
        let encoded = EncodedTensor::encode(&new, &base, CompressionConfig::Dense);
        assert!(!encoded.needs_base());
        let decoded = encoded.decode(&Matrix::zeros(4, 4)).unwrap();
        assert_eq!(decoded, new);
    }

    #[test]
    fn xor_delta_of_training_style_update_undercuts_dense_bytes() {
        let base = random_matrix(5, 16, 32);
        let new = perturbed(&base, 6);
        let encoded = EncodedTensor::encode(&new, &base, CompressionConfig::LosslessDelta);
        assert!(
            encoded.encoded_bytes() < encoded.dense_bytes(),
            "xor delta {} should undercut dense {}",
            encoded.encoded_bytes(),
            encoded.dense_bytes()
        );
    }

    #[test]
    fn quantized_delta_error_shrinks_with_width() {
        let base = random_matrix(7, 12, 12);
        let new = perturbed(&base, 8);
        let mut errs = Vec::new();
        for width in [BitWidth::Int4, BitWidth::Int8] {
            let encoded = EncodedTensor::encode(&new, &base, CompressionConfig::quantized(width));
            let decoded = encoded.decode(&base).unwrap();
            let err = decoded.sub(&new).unwrap().frobenius_norm() / new.frobenius_norm();
            errs.push(err);
        }
        assert!(
            errs[0] > errs[1],
            "int4 err {} <= int8 err {}",
            errs[0],
            errs[1]
        );
        assert!(errs[1] < 0.01, "int8 delta error {} too large", errs[1]);
    }

    #[test]
    fn sparse_delta_keeps_only_top_k() {
        let base = Matrix::zeros(1, 8);
        let mut new = Matrix::zeros(1, 8);
        for (i, v) in [0.5f32, -3.0, 0.1, 2.0, 0.0, -0.2, 1.0, 0.05]
            .iter()
            .enumerate()
        {
            new.set(0, i, *v);
        }
        let encoded = EncodedTensor::encode(&new, &base, CompressionConfig::sparse(0.25));
        let decoded = encoded.decode(&base).unwrap();
        // ceil(8 * 0.25) = 2 survivors: -3.0 and 2.0.
        let expected = [0.0f32, -3.0, 0.0, 2.0, 0.0, 0.0, 0.0, 0.0];
        for (d, e) in decoded.as_slice().iter().zip(expected.iter()) {
            assert_eq!(d, e);
        }
    }

    #[test]
    fn encoded_bytes_shrink_with_width_and_sparsity() {
        let base = random_matrix(9, 16, 32);
        let new = perturbed(&base, 10);
        let dense = EncodedTensor::encode(&new, &base, CompressionConfig::Dense).encoded_bytes();
        let int8 = EncodedTensor::encode(&new, &base, CompressionConfig::quantized(BitWidth::Int8))
            .encoded_bytes();
        let int4 = EncodedTensor::encode(&new, &base, CompressionConfig::quantized(BitWidth::Int4))
            .encoded_bytes();
        let int4_sparse = EncodedTensor::encode(
            &new,
            &base,
            CompressionConfig::quantized_sparse(BitWidth::Int4, 0.25),
        )
        .encoded_bytes();
        assert!(dense > int8, "dense {dense} int8 {int8}");
        assert!(int8 > int4, "int8 {int8} int4 {int4}");
        assert!(int4 > int4_sparse, "int4 {int4} sparse {int4_sparse}");
    }

    #[test]
    fn quantized_byte_ratio_matches_configured_width() {
        // Satellite check: the compressed-vs-dense byte ratio tracks the
        // configured bit width — int8 ≈ 4×, int4 ≈ 8× smaller levels, with
        // per-row scale + header overhead on top.
        let base = random_matrix(11, 32, 32);
        let new = perturbed(&base, 12);
        let dense = (32 * 32 * 4) as f64;
        for (width, min_ratio) in [(BitWidth::Int8, 3.0), (BitWidth::Int4, 6.0)] {
            let enc = EncodedTensor::encode(&new, &base, CompressionConfig::quantized(width))
                .encoded_bytes() as f64;
            let ratio = dense / enc;
            assert!(
                ratio >= min_ratio && ratio <= width.compression_ratio() as f64 + 0.5,
                "{width:?}: ratio {ratio}"
            );
        }
        // Sparsity stacks on top: keeping 25% at int4 beats 8× alone.
        let sparse = EncodedTensor::encode(
            &new,
            &base,
            CompressionConfig::quantized_sparse(BitWidth::Int4, 0.25),
        )
        .encoded_bytes() as f64;
        assert!(dense / sparse > 10.0, "sparse ratio {}", dense / sparse);
    }

    #[test]
    fn lossy_delta_without_knobs_falls_back_to_lossless() {
        let base = random_matrix(13, 4, 4);
        let new = perturbed(&base, 14);
        let cfg = CompressionConfig::LossyDelta {
            quantization: None,
            top_k_fraction: 1.0,
        };
        assert!(cfg.is_lossless());
        let decoded = EncodedTensor::encode(&new, &base, cfg)
            .decode(&base)
            .unwrap();
        assert_eq!(decoded, new);
    }

    #[test]
    fn decode_rejects_mismatched_base_shape() {
        let base = random_matrix(15, 4, 4);
        let new = perturbed(&base, 16);
        let encoded = EncodedTensor::encode(&new, &base, CompressionConfig::LosslessDelta);
        let err = encoded.decode(&Matrix::zeros(3, 3)).unwrap_err();
        assert!(matches!(
            err,
            DecodeError::LengthMismatch {
                what: "base tensor",
                expected: 16,
                actual: 9,
            }
        ));
    }

    #[test]
    fn truncated_payload_yields_typed_error_not_panic() {
        let base = random_matrix(21, 6, 6);
        let new = perturbed(&base, 22);
        for config in [
            CompressionConfig::Dense,
            CompressionConfig::LosslessDelta,
            CompressionConfig::sparse(0.5),
            CompressionConfig::quantized_sparse(BitWidth::Int4, 0.5),
        ] {
            let mut encoded = EncodedTensor::encode(&new, &base, config);
            encoded.truncate_payload(3);
            let err = encoded.decode(&base).unwrap_err();
            assert!(
                matches!(err, DecodeError::LengthMismatch { .. }),
                "{config:?}: {err}"
            );
        }
    }

    #[test]
    fn sparse_index_out_of_range_is_rejected() {
        let base = Matrix::zeros(1, 4);
        let encoded = EncodedTensor {
            rows: 1,
            cols: 4,
            payload: DeltaPayload::Sparse {
                indices: vec![0, 9],
                values: vec![1.0, 2.0],
            },
        };
        let err = encoded.decode(&base).unwrap_err();
        assert!(matches!(
            err,
            DecodeError::IndexOutOfRange { index: 9, len: 4 }
        ));
    }

    #[test]
    fn bad_quantization_params_are_rejected() {
        let base = Matrix::zeros(1, 4);
        let encoded = EncodedTensor {
            rows: 1,
            cols: 4,
            payload: DeltaPayload::SparseQuantized {
                indices: vec![0],
                levels: vec![1],
                scale: f32::NAN,
                width: BitWidth::Int4,
            },
        };
        let err = encoded.decode(&base).unwrap_err();
        assert!(matches!(err, DecodeError::BadQuantization(_)));

        // A level that overflows the declared width is equally rejected.
        let encoded = EncodedTensor {
            rows: 1,
            cols: 4,
            payload: DeltaPayload::SparseQuantized {
                indices: vec![0],
                levels: vec![100],
                scale: 0.5,
                width: BitWidth::Int4,
            },
        };
        let err = encoded.decode(&base).unwrap_err();
        assert!(matches!(err, DecodeError::BadQuantization(_)));
    }

    #[test]
    fn expert_update_round_trip_and_bytes() {
        let mut rng = SeededRng::new(17);
        let base = Expert::new(6, 12, &mut rng);
        let mut new = base.clone();
        let (r, c) = new.w1.shape();
        new.w1.add_scaled(&random_matrix(18, r, c), 0.01).unwrap();
        new.b1[0] += 0.25;
        let key = ExpertKey::new(1, 2);
        let encoded =
            EncodedExpertUpdate::encode(key, &new, &base, 3.0, CompressionConfig::LosslessDelta);
        let decoded = encoded.decode(&base).unwrap();
        assert_eq!(decoded.key, key);
        assert_eq!(decoded.weight, 3.0);
        assert_eq!(decoded.expert.w1, new.w1);
        assert_eq!(decoded.expert.b1, new.b1);
        assert_eq!(decoded.expert.w2, new.w2);
        assert_eq!(decoded.expert.b2, new.b2);
        assert!(encoded.encoded_bytes() < encoded.dense_bytes());
        assert_eq!(encoded.dense_bytes(), new.num_params() * 4);
    }

    #[test]
    fn upload_decode_rejects_out_of_range_keys() {
        let mut rng = SeededRng::new(19);
        let model = MoeModel::new(flux_moe::MoeConfig::tiny(), &mut rng);
        let good_key = model.expert_keys()[0];
        let new = model.expert(good_key).clone();
        let updates = vec![ExpertUpdate {
            key: good_key,
            expert: new,
            weight: 1.0,
        }];
        let mut encoded =
            EncodedUpload::encode(&updates, None, &model, CompressionConfig::LosslessDelta);
        // Forge a rogue key far out of range. Without resealing, the
        // checksum catches the tampering first.
        encoded.experts[0].key = ExpertKey::new(good_key.layer, 10_000);
        let err = encoded.decode(&model).unwrap_err();
        assert!(matches!(err, DecodeError::ChecksumMismatch { .. }));
        // With a fresh seal the typed key validation fires instead.
        encoded.reseal();
        let err = encoded.decode(&model).unwrap_err();
        assert!(matches!(
            err,
            DecodeError::KeyOutOfRange { key } if key.expert == 10_000
        ));
    }

    #[test]
    fn upload_checksum_round_trip_and_corruption() {
        let mut rng = SeededRng::new(23);
        let model = MoeModel::new(flux_moe::MoeConfig::tiny(), &mut rng);
        let key = model.expert_keys()[0];
        let updates = vec![ExpertUpdate {
            key,
            expert: model.expert(key).clone(),
            weight: 2.0,
        }];
        let head = (model.active_head().clone(), 1.0f32);
        for config in [
            CompressionConfig::Dense,
            CompressionConfig::LosslessDelta,
            CompressionConfig::quantized(BitWidth::Int8),
            CompressionConfig::quantized_sparse(BitWidth::Int4, 0.25),
        ] {
            let encoded = EncodedUpload::encode(&updates, Some(&head), &model, config);
            assert_eq!(encoded.checksum, encoded.content_checksum());
            // Clean uploads decode.
            let (decoded, decoded_head) = encoded.decode(&model).unwrap();
            assert_eq!(decoded.len(), 1);
            assert!(decoded_head.is_some());
            // Every seeded corruption and truncation is rejected, never a
            // panic.
            for seed in 0..8 {
                let err = encoded.corrupted(seed).decode(&model).unwrap_err();
                assert!(
                    matches!(err, DecodeError::ChecksumMismatch { .. }),
                    "{config:?} seed {seed}: {err}"
                );
                assert!(
                    encoded.truncated(seed).decode(&model).is_err(),
                    "{config:?} seed {seed}: truncated upload decoded"
                );
            }
        }
    }

    #[test]
    fn dense_payload_byte_helper_matches_encoder() {
        let mut rng = SeededRng::new(20);
        let model = MoeModel::new(flux_moe::MoeConfig::tiny(), &mut rng);
        let key = model.expert_keys()[0];
        let updates = vec![ExpertUpdate {
            key,
            expert: model.expert(key).clone(),
            weight: 1.0,
        }];
        let head = (model.active_head().clone(), 1.0f32);
        let encoded = EncodedUpload::encode(
            &updates,
            Some(&head),
            &model,
            CompressionConfig::LosslessDelta,
        );
        assert_eq!(
            encoded.dense_bytes(),
            dense_upload_payload_bytes(&updates, Some(&head))
        );
    }
}
