//! Property-based tests for quantization round-trips.

use flux_quant::{quantization_relative_error, quantized_matmul, BitWidth, QuantizedMatrix};
use flux_tensor::{Matrix, SeededRng};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Dequantized values never exceed the original row maximum (symmetric
    /// scheme cannot overshoot the clamping range).
    #[test]
    fn dequantized_values_bounded_by_row_max(seed in 0u64..1000) {
        let mut rng = SeededRng::new(seed);
        let w = Matrix::random_normal(6, 10, 2.0, &mut rng);
        for &width in &BitWidth::all() {
            let q = QuantizedMatrix::quantize(&w, width).dequantize();
            for r in 0..w.rows() {
                let max_abs = w.row(r).iter().fold(0.0f32, |a, &x| a.max(x.abs()));
                for &v in q.row(r) {
                    prop_assert!(v.abs() <= max_abs + 1e-4);
                }
            }
        }
    }

    /// Round-trip error is bounded by half a quantization step per element.
    #[test]
    fn round_trip_error_bounded_by_step(seed in 0u64..1000) {
        let mut rng = SeededRng::new(seed);
        let w = Matrix::random_normal(4, 12, 1.5, &mut rng);
        for &width in &BitWidth::all() {
            let q = QuantizedMatrix::quantize(&w, width);
            let back = q.dequantize();
            for r in 0..w.rows() {
                let step = q.scales()[r];
                for (a, b) in w.row(r).iter().zip(back.row(r)) {
                    prop_assert!((a - b).abs() <= 0.5 * step + 1e-5);
                }
            }
        }
    }

    /// Higher precision never yields a larger relative error.
    #[test]
    fn precision_monotonicity(seed in 0u64..1000) {
        let mut rng = SeededRng::new(seed);
        let w = Matrix::random_normal(8, 8, 1.0, &mut rng);
        let e2 = quantization_relative_error(&w, BitWidth::Int2);
        let e4 = quantization_relative_error(&w, BitWidth::Int4);
        let e8 = quantization_relative_error(&w, BitWidth::Int8);
        prop_assert!(e2 + 1e-6 >= e4);
        prop_assert!(e4 + 1e-6 >= e8);
    }

    /// The quantized matmul equals the full-precision matmul against the
    /// dequantized weight (the quantization error lives in the weights only).
    #[test]
    fn quantized_matmul_equals_dequantized_matmul(seed in 0u64..1000) {
        let mut rng = SeededRng::new(seed);
        let x = Matrix::random_normal(3, 6, 1.0, &mut rng);
        let w = Matrix::random_normal(6, 4, 1.0, &mut rng);
        let q = QuantizedMatrix::quantize(&w, BitWidth::Int4);
        let a = quantized_matmul(&x, &q).unwrap();
        let b = x.matmul(&q.dequantize());
        for (x1, x2) in a.as_slice().iter().zip(b.as_slice()) {
            prop_assert!((x1 - x2).abs() < 1e-3);
        }
    }
}
