//! Durable per-shard checkpoints of a [`ShardedStore`].
//!
//! A tenant's on-disk checkpoint is a directory of versioned files:
//!
//! ```text
//! <dir>/
//!   MANIFEST.bin    head of the checkpoint: format version, round epoch,
//!                   per-file FNV-1a checksums + sizes, an opaque
//!                   run-state blob, and a trailing self-checksum.
//!                   Rewritten (atomically) on every checkpoint — LAST.
//!   frozen.bin      full model checkpoint (FLUXMOE1) written once; only
//!                   its frozen parameters (embedding, attention, gating)
//!                   and config matter — expert/head overlays supersede
//!                   the rest on load.
//!   shard_000.bin   every expert owned by store shard 0, sorted by key.
//!   ...             rewritten only when the shard's version counter moved
//!   shard_N.bin     since the last flush: a checkpoint costs O(dirty
//!                   shards), not O(model).
//!   head.bin        the task heads (generation + optional classification).
//! ```
//!
//! Every file is written to a temp name and atomically renamed into place;
//! the manifest is written after all content files, so a crash mid-
//! checkpoint leaves the previous manifest pointing at the previous
//! (complete) file set, or a manifest whose checksums expose any torn
//! file. Corruption is *detected and attributed* — [`SnapshotError`] names
//! the file whose content hash diverged.
//!
//! The manifest's meta blob is opaque to this module: the driver stores
//! its serialized round state there (round index, clock, records, and the
//! mid-round aggregator), making one directory the complete recovery
//! point for a run.

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

use bytes::{BufMut, BytesMut};

use flux_moe::checkpoint::{self, CheckpointError};
use flux_moe::ExpertKey;
use flux_tensor::Matrix;

use crate::aggregate::{ExpertUpdate, ShardedAggregator, StagedRound};
use crate::compress::{fnv_bytes, FNV_OFFSET};
use crate::store::ShardedStore;

/// Magic bytes of a shard file.
const SHARD_MAGIC: &[u8; 8] = b"FLUXSHD1";
/// Magic bytes of the head file.
const HEAD_MAGIC: &[u8; 8] = b"FLUXHED1";
/// Magic bytes of the manifest.
const MANIFEST_MAGIC: &[u8; 8] = b"FLUXMAN1";
/// Magic bytes of a serialized aggregator staging state.
const STAGED_MAGIC: &[u8; 8] = b"FLUXAGG1";
/// On-disk format version.
const FORMAT_VERSION: u32 = 1;

/// Manifest file name.
pub const MANIFEST_FILE: &str = "MANIFEST.bin";
/// Frozen-parameters file name.
pub const FROZEN_FILE: &str = "frozen.bin";
/// Head file name.
pub const HEAD_FILE: &str = "head.bin";

/// File name of shard `s`.
pub fn shard_file(s: usize) -> String {
    format!("shard_{s:03}.bin")
}

/// Errors produced while writing or loading durable checkpoints.
#[derive(Debug)]
pub enum SnapshotError {
    /// Underlying filesystem error.
    Io(std::io::Error),
    /// A file's structure could not be parsed.
    Corrupt(String),
    /// A file's content does not match the checksum the manifest recorded
    /// for it (torn write, bit rot, or tampering).
    ChecksumMismatch {
        /// The offending file (relative to the checkpoint directory).
        file: String,
    },
    /// A file the manifest references is missing.
    Missing(String),
    /// The checkpoint is internally valid but does not fit the requested
    /// restore (wrong shard count, wrong run fingerprint, …).
    Mismatch(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            SnapshotError::Corrupt(msg) => write!(f, "corrupt checkpoint: {msg}"),
            SnapshotError::ChecksumMismatch { file } => {
                write!(f, "checksum mismatch in checkpoint file {file}")
            }
            SnapshotError::Missing(file) => write!(f, "checkpoint file missing: {file}"),
            SnapshotError::Mismatch(msg) => write!(f, "checkpoint does not fit: {msg}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

impl From<CheckpointError> for SnapshotError {
    fn from(e: CheckpointError) -> Self {
        match e {
            CheckpointError::Io(io) => SnapshotError::Io(io),
            other => SnapshotError::Corrupt(other.to_string()),
        }
    }
}

/// What one durable file currently holds, as tracked in memory by the
/// store (to skip clean shards) and recorded in the manifest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct FileRecord {
    /// Store version counter the file was written at.
    pub version: u64,
    /// FNV-1a checksum of the file content.
    pub checksum: u64,
    /// File length in bytes.
    pub len: u64,
}

/// In-memory record of the on-disk checkpoint backing a store.
#[derive(Debug, Default)]
pub(crate) struct PersistState {
    /// Per-shard file records (`None` = never written).
    pub shards: Vec<Option<FileRecord>>,
    /// Head file record.
    pub head: Option<FileRecord>,
    /// Frozen-model file record (written once).
    pub frozen: Option<FileRecord>,
}

impl PersistState {
    /// A state with no files written yet.
    pub fn empty(num_shards: usize) -> Self {
        Self {
            shards: vec![None; num_shards],
            head: None,
            frozen: None,
        }
    }
}

/// Cost and coverage of one checkpoint flush.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointStats {
    /// Round epoch the manifest records (the store's completed rounds).
    pub epoch: u64,
    /// Shard files rewritten this flush.
    pub shards_written: usize,
    /// Shard files skipped because their version was unchanged on disk.
    pub shards_skipped: usize,
    /// Whether the head file was rewritten.
    pub head_written: bool,
    /// Whether the frozen-model file was written (first flush only).
    pub frozen_written: bool,
    /// Bytes written this flush (content files + manifest).
    pub bytes_written: u64,
}

/// A store loaded back from a checkpoint directory.
#[derive(Debug)]
pub struct LoadedSnapshot {
    /// The restored store (expert shards, heads, round epoch and persist
    /// bookkeeping all rebuilt).
    pub store: ShardedStore,
    /// Round epoch recorded in the manifest.
    pub epoch: u64,
    /// The opaque meta blob the checkpointing caller stored (the driver's
    /// serialized run state).
    pub meta: Vec<u8>,
}

/// FNV-1a checksum of a whole buffer.
fn content_checksum(data: &[u8]) -> u64 {
    fnv_bytes(FNV_OFFSET, data)
}

/// Writes `data` to `path` atomically: temp file in the same directory,
/// then rename.
fn write_atomic(path: &Path, data: &[u8]) -> Result<u64, SnapshotError> {
    let tmp = path.with_extension("tmp");
    fs::write(&tmp, data)?;
    fs::rename(&tmp, path)?;
    Ok(data.len() as u64)
}

/// Reads a checkpoint file, mapping a missing file to
/// [`SnapshotError::Missing`] (named, so recovery reports *which* piece of
/// the checkpoint is gone).
fn read_file(dir: &Path, name: &str) -> Result<Vec<u8>, SnapshotError> {
    let path = dir.join(name);
    match fs::read(&path) {
        Ok(data) => Ok(data),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            Err(SnapshotError::Missing(name.to_string()))
        }
        Err(e) => Err(e.into()),
    }
}

/// Verifies a file's content against the manifest's record for it.
fn verify(name: &str, data: &[u8], record: FileRecord) -> Result<(), SnapshotError> {
    if data.len() as u64 != record.len || content_checksum(data) != record.checksum {
        return Err(SnapshotError::ChecksumMismatch {
            file: name.to_string(),
        });
    }
    Ok(())
}

/// Serializes one shard: every expert it owns, sorted by key.
fn encode_shard(
    shard: usize,
    num_shards: usize,
    experts: &[(ExpertKey, &flux_moe::Expert)],
) -> Vec<u8> {
    let mut buf = BytesMut::new();
    buf.put_slice(SHARD_MAGIC);
    buf.put_u32_le(shard as u32);
    buf.put_u32_le(num_shards as u32);
    buf.put_u32_le(experts.len() as u32);
    for (key, expert) in experts {
        buf.put_u32_le(key.layer as u32);
        buf.put_u32_le(key.expert as u32);
        checkpoint::put_expert(&mut buf, expert);
    }
    buf.freeze().to_vec()
}

/// Parses a shard file into its key→expert entries.
fn decode_shard(
    name: &str,
    mut buf: &[u8],
    expected_shard: usize,
    expected_num_shards: usize,
) -> Result<Vec<(ExpertKey, flux_moe::Expert)>, SnapshotError> {
    let buf = &mut buf;
    let magic = checkpoint::take(buf, SHARD_MAGIC.len())?;
    if magic != SHARD_MAGIC {
        return Err(SnapshotError::Corrupt(format!("{name}: bad shard magic")));
    }
    let shard = checkpoint::get_u32(buf)? as usize;
    let num_shards = checkpoint::get_u32(buf)? as usize;
    if shard != expected_shard || num_shards != expected_num_shards {
        return Err(SnapshotError::Mismatch(format!(
            "{name}: holds shard {shard}/{num_shards}, expected {expected_shard}/{expected_num_shards}"
        )));
    }
    let count = checkpoint::get_u32(buf)? as usize;
    if count > 1_000_000 {
        return Err(SnapshotError::Corrupt(format!(
            "{name}: implausible expert count {count}"
        )));
    }
    let mut entries = Vec::with_capacity(count);
    for _ in 0..count {
        let layer = checkpoint::get_u32(buf)? as usize;
        let expert_idx = checkpoint::get_u32(buf)? as usize;
        let expert = checkpoint::get_expert(buf)?;
        entries.push((ExpertKey::new(layer, expert_idx), expert));
    }
    Ok(entries)
}

/// Serializes the head file.
fn encode_head(lm_head: &Matrix, cls_head: Option<&Matrix>) -> Vec<u8> {
    let mut buf = BytesMut::new();
    buf.put_slice(HEAD_MAGIC);
    checkpoint::put_matrix(&mut buf, lm_head);
    match cls_head {
        Some(h) => {
            buf.put_u8(1);
            checkpoint::put_matrix(&mut buf, h);
        }
        None => buf.put_u8(0),
    }
    buf.freeze().to_vec()
}

/// Parses the head file.
fn decode_head(mut buf: &[u8]) -> Result<(Matrix, Option<Matrix>), SnapshotError> {
    let buf = &mut buf;
    let magic = checkpoint::take(buf, HEAD_MAGIC.len())?;
    if magic != HEAD_MAGIC {
        return Err(SnapshotError::Corrupt("head.bin: bad magic".into()));
    }
    let lm_head = checkpoint::get_matrix(buf)?;
    let cls_head = if checkpoint::get_u8(buf)? == 1 {
        Some(checkpoint::get_matrix(buf)?)
    } else {
        None
    };
    Ok((lm_head, cls_head))
}

/// The manifest's parsed content.
struct Manifest {
    epoch: u64,
    num_shards: usize,
    frozen: FileRecord,
    head: FileRecord,
    shards: Vec<FileRecord>,
    meta: Vec<u8>,
}

fn encode_manifest(m: &Manifest) -> Vec<u8> {
    let mut buf = BytesMut::new();
    buf.put_slice(MANIFEST_MAGIC);
    buf.put_u32_le(FORMAT_VERSION);
    buf.put_u64_le(m.epoch);
    buf.put_u32_le(m.num_shards as u32);
    for record in std::iter::once(&m.frozen)
        .chain(std::iter::once(&m.head))
        .chain(m.shards.iter())
    {
        buf.put_u64_le(record.version);
        buf.put_u64_le(record.checksum);
        buf.put_u64_le(record.len);
    }
    buf.put_u32_le(m.meta.len() as u32);
    buf.put_slice(&m.meta);
    let self_checksum = content_checksum(&buf);
    buf.put_u64_le(self_checksum);
    buf.freeze().to_vec()
}

fn decode_manifest(data: &[u8]) -> Result<Manifest, SnapshotError> {
    if data.len() < 8 {
        return Err(SnapshotError::Corrupt("MANIFEST.bin: truncated".into()));
    }
    let (body, tail) = data.split_at(data.len() - 8);
    let stored = u64::from_le_bytes(tail.try_into().expect("split_at leaves 8 bytes"));
    if content_checksum(body) != stored {
        return Err(SnapshotError::ChecksumMismatch {
            file: MANIFEST_FILE.to_string(),
        });
    }
    let buf = &mut &body[..];
    let magic = checkpoint::take(buf, MANIFEST_MAGIC.len())?;
    if magic != MANIFEST_MAGIC {
        return Err(SnapshotError::Corrupt("MANIFEST.bin: bad magic".into()));
    }
    let version = checkpoint::get_u32(buf)?;
    if version != FORMAT_VERSION {
        return Err(SnapshotError::Mismatch(format!(
            "MANIFEST.bin: format version {version}, this build reads {FORMAT_VERSION}"
        )));
    }
    let epoch = checkpoint::get_u64(buf)?;
    let num_shards = checkpoint::get_u32(buf)? as usize;
    if num_shards == 0 || num_shards > 65_536 {
        return Err(SnapshotError::Corrupt(format!(
            "MANIFEST.bin: implausible shard count {num_shards}"
        )));
    }
    let get_record = |buf: &mut &[u8]| -> Result<FileRecord, SnapshotError> {
        Ok(FileRecord {
            version: checkpoint::get_u64(buf)?,
            checksum: checkpoint::get_u64(buf)?,
            len: checkpoint::get_u64(buf)?,
        })
    };
    let frozen = get_record(buf)?;
    let head = get_record(buf)?;
    let mut shards = Vec::with_capacity(num_shards);
    for _ in 0..num_shards {
        shards.push(get_record(buf)?);
    }
    let meta_len = checkpoint::get_u32(buf)? as usize;
    let meta = checkpoint::take(buf, meta_len)?.to_vec();
    Ok(Manifest {
        epoch,
        num_shards,
        frozen,
        head,
        shards,
        meta,
    })
}

impl ShardedStore {
    /// Flushes this store to `dir` as a durable checkpoint, rewriting only
    /// shard files whose version moved since the last flush (plus the head
    /// when dirty, the frozen model on the first flush, and the manifest
    /// always). `meta` is an opaque blob stored in the manifest — the
    /// driver keeps its serialized run state there.
    ///
    /// Files are written atomically (temp + rename) with the manifest
    /// last, so a crash mid-flush never leaves a manifest pointing at
    /// missing or half-written content.
    ///
    /// # Errors
    ///
    /// Returns a [`SnapshotError`] on filesystem failure.
    pub fn checkpoint(
        &self,
        dir: impl AsRef<Path>,
        meta: &[u8],
    ) -> Result<CheckpointStats, SnapshotError> {
        let dir = dir.as_ref();
        fs::create_dir_all(dir)?;
        // The persist lock serializes concurrent checkpoints of one store.
        let mut persist = self.persist.lock();
        let mut bytes_written = 0u64;

        // Frozen parameters: written once. Which round's snapshot seeds it
        // is irrelevant — the shard/head files supersede every trainable
        // parameter on load.
        let mut frozen_written = false;
        if persist.frozen.is_none() || !dir.join(FROZEN_FILE).exists() {
            let model = self.snapshot();
            let data = flux_moe::checkpoint::to_bytes(&model);
            bytes_written += write_atomic(&dir.join(FROZEN_FILE), &data)?;
            persist.frozen = Some(FileRecord {
                version: 0,
                checksum: content_checksum(&data),
                len: data.len() as u64,
            });
            frozen_written = true;
        }

        // Dirty shards only: skip every shard whose version is already on
        // disk. O(dirty shards), not O(model).
        let mut shards_written = 0usize;
        let mut shards_skipped = 0usize;
        for s in 0..self.num_shards {
            let version = self.shards[s].read().version;
            let clean = persist.shards[s].is_some_and(|r| r.version == version)
                && dir.join(shard_file(s)).exists();
            if clean {
                shards_skipped += 1;
                continue;
            }
            let data = {
                let guard = self.shards[s].read();
                let mut entries: Vec<(ExpertKey, &flux_moe::Expert)> =
                    guard.experts.iter().map(|(k, e)| (*k, e)).collect();
                entries.sort_by_key(|(k, _)| (k.layer, k.expert));
                encode_shard(s, self.num_shards, &entries)
            };
            bytes_written += write_atomic(&dir.join(shard_file(s)), &data)?;
            persist.shards[s] = Some(FileRecord {
                version,
                checksum: content_checksum(&data),
                len: data.len() as u64,
            });
            shards_written += 1;
        }

        // The head file, when dirty.
        let head_version = self.head.read().version;
        let mut head_written = false;
        if !(persist.head.is_some_and(|r| r.version == head_version)
            && dir.join(HEAD_FILE).exists())
        {
            let data = {
                let guard = self.head.read();
                encode_head(&guard.lm_head, guard.cls_head.as_ref())
            };
            bytes_written += write_atomic(&dir.join(HEAD_FILE), &data)?;
            persist.head = Some(FileRecord {
                version: head_version,
                checksum: content_checksum(&data),
                len: data.len() as u64,
            });
            head_written = true;
        }

        // The manifest goes last: it only ever references complete files.
        let epoch = self.rounds_completed() as u64;
        let manifest = Manifest {
            epoch,
            num_shards: self.num_shards,
            frozen: persist.frozen.expect("frozen written above"),
            head: persist.head.expect("head written above"),
            shards: (0..self.num_shards)
                .map(|s| persist.shards[s].expect("every shard flushed or recorded"))
                .collect(),
            meta: meta.to_vec(),
        };
        let data = encode_manifest(&manifest);
        bytes_written += write_atomic(&dir.join(MANIFEST_FILE), &data)?;

        Ok(CheckpointStats {
            epoch,
            shards_written,
            shards_skipped,
            head_written,
            frozen_written,
            bytes_written,
        })
    }
}

/// Loads a store back from a checkpoint directory, verifying every file's
/// checksum against the manifest.
///
/// # Errors
///
/// Returns a [`SnapshotError`] naming the offending file on checksum
/// mismatch or missing content, or describing the structural problem.
pub fn load_store(dir: impl AsRef<Path>) -> Result<LoadedSnapshot, SnapshotError> {
    let dir = dir.as_ref();
    let manifest = decode_manifest(&read_file(dir, MANIFEST_FILE)?)?;

    let frozen_bytes = read_file(dir, FROZEN_FILE)?;
    verify(FROZEN_FILE, &frozen_bytes, manifest.frozen)?;
    let mut model = flux_moe::checkpoint::from_bytes(&frozen_bytes)?;
    let per_layer = model.experts_per_layer();

    for s in 0..manifest.num_shards {
        let name = shard_file(s);
        let data = read_file(dir, &name)?;
        verify(&name, &data, manifest.shards[s])?;
        for (key, expert) in decode_shard(&name, &data, s, manifest.num_shards)? {
            let in_range = per_layer.get(key.layer).is_some_and(|&n| key.expert < n);
            if !in_range {
                return Err(SnapshotError::Corrupt(format!(
                    "{name}: expert key ({}, {}) out of range",
                    key.layer, key.expert
                )));
            }
            if crate::store::shard_of_key(key, manifest.num_shards) != s {
                return Err(SnapshotError::Corrupt(format!(
                    "{name}: expert key ({}, {}) routed to the wrong shard",
                    key.layer, key.expert
                )));
            }
            model.set_expert(key, expert);
        }
    }

    let head_bytes = read_file(dir, HEAD_FILE)?;
    verify(HEAD_FILE, &head_bytes, manifest.head)?;
    let (lm_head, cls_head) = decode_head(&head_bytes)?;
    if lm_head.shape() != model.lm_head.shape() {
        return Err(SnapshotError::Mismatch(
            "head.bin: generation head shape differs from the frozen model".into(),
        ));
    }
    if cls_head.as_ref().map(Matrix::shape) != model.cls_head.as_ref().map(Matrix::shape) {
        return Err(SnapshotError::Mismatch(
            "head.bin: classification head presence/shape differs from the frozen model".into(),
        ));
    }
    model.lm_head = lm_head;
    model.cls_head = cls_head;

    // Rebuild the persist bookkeeping at the restored store's version
    // counters (all zero), so the next checkpoint skips clean shards.
    let mut persist = PersistState::empty(manifest.num_shards);
    persist.frozen = Some(manifest.frozen);
    persist.head = Some(FileRecord {
        version: 0,
        ..manifest.head
    });
    for (s, record) in manifest.shards.iter().enumerate() {
        persist.shards[s] = Some(FileRecord {
            version: 0,
            ..*record
        });
    }

    let store =
        ShardedStore::from_persisted(model, manifest.num_shards, manifest.epoch as usize, persist);
    Ok(LoadedSnapshot {
        store,
        epoch: manifest.epoch,
        meta: manifest.meta,
    })
}

/// Serializes the staged (mid-round) state of an aggregator: per-shard
/// `(pid, update)` pairs, staged heads, and the submitted-pid set — the
/// set that keeps rejecting re-delivered uploads after a restore.
pub fn encode_staged_aggregator(aggregator: &ShardedAggregator) -> Vec<u8> {
    let state = aggregator.staged_state();
    let mut buf = BytesMut::new();
    buf.put_slice(STAGED_MAGIC);
    buf.put_u32_le(state.shards.len() as u32);
    for shard in &state.shards {
        buf.put_u32_le(shard.len() as u32);
        for (pid, update) in shard {
            buf.put_u64_le(*pid as u64);
            buf.put_u32_le(update.key.layer as u32);
            buf.put_u32_le(update.key.expert as u32);
            buf.put_f32_le(update.weight);
            checkpoint::put_expert(&mut buf, &update.expert);
        }
    }
    buf.put_u32_le(state.heads.len() as u32);
    for (pid, head, weight) in &state.heads {
        buf.put_u64_le(*pid as u64);
        buf.put_f32_le(*weight);
        checkpoint::put_matrix(&mut buf, head);
    }
    buf.put_u32_le(state.submitted.len() as u32);
    for pid in &state.submitted {
        buf.put_u64_le(*pid as u64);
    }
    buf.freeze().to_vec()
}

/// Rebuilds an aggregator from [`encode_staged_aggregator`] output.
///
/// # Errors
///
/// Returns a [`SnapshotError`] when the buffer is truncated or corrupt.
pub fn decode_staged_aggregator(mut data: &[u8]) -> Result<ShardedAggregator, SnapshotError> {
    let buf = &mut data;
    let magic = checkpoint::take(buf, STAGED_MAGIC.len())?;
    if magic != STAGED_MAGIC {
        return Err(SnapshotError::Corrupt(
            "staged aggregator: bad magic".into(),
        ));
    }
    let num_shards = checkpoint::get_u32(buf)? as usize;
    if num_shards == 0 || num_shards > 65_536 {
        return Err(SnapshotError::Corrupt(format!(
            "staged aggregator: implausible shard count {num_shards}"
        )));
    }
    let mut shards = Vec::with_capacity(num_shards);
    for _ in 0..num_shards {
        let count = checkpoint::get_u32(buf)? as usize;
        if count > 1_000_000 {
            return Err(SnapshotError::Corrupt(
                "staged aggregator: implausible staged count".into(),
            ));
        }
        let mut staged = Vec::with_capacity(count);
        for _ in 0..count {
            let pid = checkpoint::get_u64(buf)? as usize;
            let layer = checkpoint::get_u32(buf)? as usize;
            let expert_idx = checkpoint::get_u32(buf)? as usize;
            let weight = checkpoint::get_f32(buf)?;
            let expert = checkpoint::get_expert(buf)?;
            staged.push((
                pid,
                ExpertUpdate {
                    key: ExpertKey::new(layer, expert_idx),
                    expert,
                    weight,
                },
            ));
        }
        shards.push(staged);
    }
    let head_count = checkpoint::get_u32(buf)? as usize;
    if head_count > 1_000_000 {
        return Err(SnapshotError::Corrupt(
            "staged aggregator: implausible head count".into(),
        ));
    }
    let mut heads = Vec::with_capacity(head_count);
    for _ in 0..head_count {
        let pid = checkpoint::get_u64(buf)? as usize;
        let weight = checkpoint::get_f32(buf)?;
        let head = checkpoint::get_matrix(buf)?;
        heads.push((pid, head, weight));
    }
    let submitted_count = checkpoint::get_u32(buf)? as usize;
    if submitted_count > 10_000_000 {
        return Err(SnapshotError::Corrupt(
            "staged aggregator: implausible submitted count".into(),
        ));
    }
    let mut submitted = Vec::with_capacity(submitted_count);
    for _ in 0..submitted_count {
        submitted.push(checkpoint::get_u64(buf)? as usize);
    }
    Ok(ShardedAggregator::from_staged(StagedRound {
        shards,
        heads,
        submitted,
    }))
}

/// Deterministically corrupts one byte of `path` (for tests and the fault
/// harness): byte at `offset % len` gets XORed with a nonzero mask.
///
/// # Errors
///
/// Returns a [`SnapshotError`] when the file cannot be read or written.
pub fn corrupt_file_byte(path: impl AsRef<Path>, offset: u64) -> Result<(), SnapshotError> {
    let path: PathBuf = path.as_ref().to_path_buf();
    let mut data = fs::read(&path)?;
    if data.is_empty() {
        return Err(SnapshotError::Corrupt(
            "cannot corrupt an empty file".into(),
        ));
    }
    let i = (offset as usize) % data.len();
    data[i] ^= 0x5A;
    fs::write(&path, data)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use flux_moe::{MoeConfig, MoeModel};
    use flux_tensor::SeededRng;
    use std::collections::HashMap;

    fn tiny_model(seed: u64) -> MoeModel {
        let mut rng = SeededRng::new(seed);
        MoeModel::new(MoeConfig::tiny(), &mut rng)
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("flux_snapshot_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn checkpoint_and_load_round_trip_bit_identical() {
        let dir = temp_dir("round_trip");
        let store = ShardedStore::new(tiny_model(1), 4);
        let checksum = store.snapshot().param_checksum();
        let stats = store.checkpoint(&dir, b"meta-blob").unwrap();
        assert_eq!(stats.epoch, 0);
        assert_eq!(stats.shards_written, 4);
        assert!(stats.frozen_written);
        assert!(stats.head_written);

        let loaded = load_store(&dir).unwrap();
        assert_eq!(loaded.epoch, 0);
        assert_eq!(loaded.meta, b"meta-blob");
        assert_eq!(loaded.store.snapshot().param_checksum(), checksum);
        assert_eq!(loaded.store.rounds_completed(), 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn second_checkpoint_rewrites_only_dirty_shards() {
        let dir = temp_dir("incremental");
        let store = ShardedStore::new(tiny_model(2), 4);
        store.checkpoint(&dir, b"").unwrap();

        // Dirty exactly one shard.
        let key = ExpertKey::new(0, 1);
        let shard = crate::store::shard_of_key(key, 4);
        let mut rng = SeededRng::new(3);
        let expert = flux_moe::Expert::new(16, 32, &mut rng);
        store.install_shard(shard, HashMap::from([(key, expert.clone())]));
        store.complete_round();

        let stats = store.checkpoint(&dir, b"round-1").unwrap();
        assert_eq!(stats.epoch, 1);
        assert_eq!(stats.shards_written, 1, "only the dirty shard flushes");
        assert_eq!(stats.shards_skipped, 3);
        assert!(!stats.frozen_written, "frozen model written once");
        assert!(!stats.head_written, "head untouched");

        let loaded = load_store(&dir).unwrap();
        assert_eq!(loaded.epoch, 1);
        assert_eq!(loaded.store.expert(key), expert);
        assert_eq!(
            loaded.store.snapshot().param_checksum(),
            store.snapshot().param_checksum()
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupting_one_shard_is_detected_and_attributed() {
        let dir = temp_dir("corrupt");
        let store = ShardedStore::new(tiny_model(4), 4);
        store.checkpoint(&dir, b"").unwrap();
        corrupt_file_byte(dir.join(shard_file(2)), 100).unwrap();
        let err = load_store(&dir).unwrap_err();
        match err {
            SnapshotError::ChecksumMismatch { file } => assert_eq!(file, shard_file(2)),
            other => panic!("expected checksum mismatch, got {other}"),
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupting_the_manifest_is_detected() {
        let dir = temp_dir("manifest");
        let store = ShardedStore::new(tiny_model(5), 2);
        store.checkpoint(&dir, b"abc").unwrap();
        corrupt_file_byte(dir.join(MANIFEST_FILE), 40).unwrap();
        let err = load_store(&dir).unwrap_err();
        assert!(matches!(err, SnapshotError::ChecksumMismatch { file } if file == MANIFEST_FILE));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_shard_file_is_named() {
        let dir = temp_dir("missing");
        let store = ShardedStore::new(tiny_model(6), 3);
        store.checkpoint(&dir, b"").unwrap();
        fs::remove_file(dir.join(shard_file(1))).unwrap();
        let err = load_store(&dir).unwrap_err();
        assert!(matches!(err, SnapshotError::Missing(f) if f == shard_file(1)));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn staged_aggregator_round_trips() {
        let store = ShardedStore::new(tiny_model(7), 4);
        let agg = store.begin_round();
        let model = store.snapshot();
        let keys = model.expert_keys();
        for pid in [4usize, 1, 2] {
            let updates: Vec<ExpertUpdate> = keys
                .iter()
                .take(3)
                .map(|&key| ExpertUpdate {
                    key,
                    expert: model.expert(key).clone(),
                    weight: 1.0 + pid as f32,
                })
                .collect();
            let head = Some((model.lm_head.clone(), pid as f32 + 0.5));
            assert!(agg.submit(pid, updates, head));
        }
        let restored = decode_staged_aggregator(&encode_staged_aggregator(&agg)).unwrap();
        assert_eq!(restored.num_shards(), 4);
        assert_eq!(restored.submitted_participants(), 3);
        // The submitted set survives: duplicates still rejected.
        assert!(!restored.submit(2, Vec::new(), None));
        // And both aggregators finalize to identical results.
        let pool = threadpool::ThreadPool::new(2);
        let (ea, ha) = agg.finalize(&pool);
        let (eb, hb) = restored.finalize(&pool);
        assert_eq!(ea.len(), eb.len());
        for (k, e) in &ea {
            assert_eq!(e.w1, eb[k].w1);
            assert_eq!(e.b2, eb[k].b2);
        }
        assert_eq!(ha, hb);
    }

    #[test]
    fn staged_aggregator_rejects_garbage() {
        assert!(decode_staged_aggregator(b"not an aggregator").is_err());
        let data = encode_staged_aggregator(&ShardedAggregator::new(2));
        assert!(decode_staged_aggregator(&data[..data.len() / 2]).is_err());
    }
}
