//! Offline stub of `proptest`.
//!
//! The build environment cannot reach a crates registry, so this crate
//! implements the property-testing surface the workspace's `proptest!` test
//! suites use: numeric range strategies, tuple strategies,
//! `prop::collection::vec`, `prop_map`/`prop_flat_map` combinators, the
//! `proptest!`/`prop_assert!`/`prop_assert_eq!`/`prop_assume!` macros, and
//! `ProptestConfig::with_cases`. The runner is deterministic (per-test
//! seeded, no environment input) and does **not** shrink failing inputs —
//! a failure reports the panicking assertion directly. Swapping the real
//! proptest back in requires only a manifest change.

pub mod strategy {
    //! Value-generation strategies and combinators.

    use crate::test_runner::TestRng;
    use core::ops::{Range, RangeInclusive};

    /// A recipe for generating values of type [`Strategy::Value`].
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Builds a dependent strategy from each generated value.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;

        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Strategy returned by [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;

        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Strategy generating a fixed value every time, mirroring `proptest::strategy::Just`.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty integer range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.u64_below(span) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty inclusive range strategy");
                    let span = (hi - lo) as u64 + 1;
                    lo + rng.u64_below(span) as $t
                }
            }
        )*};
    }

    int_range_strategy!(usize, u8, u16, u32, u64, i32, i64);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty float range strategy");
                    self.start + (self.end - self.start) * rng.unit_f32() as $t
                }
            }
        )*};
    }

    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($($name:ident),+)),*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy!((A, B), (A, B, C), (A, B, C, D));
}

pub mod collection {
    //! Collection strategies, mirroring `proptest::collection`.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use core::ops::{Range, RangeInclusive};

    /// Number of elements a collection strategy may generate.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            Self {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy generating a `Vec` whose elements come from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_inclusive - self.size.lo) as u64 + 1;
            let len = self.size.lo + rng.u64_below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Creates a strategy generating vectors of `size` elements drawn from
    /// `element`. `size` may be a fixed length or a range of lengths.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod test_runner {
    //! Deterministic case runner configuration and RNG.

    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Creates a config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    /// Deterministic splitmix64 generator driving all strategies.
    ///
    /// Seeded from the property's full path and the case index, so every
    /// case is reproducible run-to-run and independent of execution order.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates the generator for case `case` of the property named `name`.
        pub fn for_case(name: &str, case: u32) -> Self {
            // FNV-1a over the property path, mixed with the case index.
            let mut h: u64 = 0xCBF2_9CE4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            Self {
                state: h ^ ((case as u64) << 1 | 1),
            }
        }

        /// Returns the next 64 random bits (splitmix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `u64` in `[0, n)`; `n` must be nonzero.
        pub fn u64_below(&mut self, n: u64) -> u64 {
            assert!(n > 0, "u64_below(0) is undefined");
            self.next_u64() % n
        }

        /// Uniform `f32` in `[0, 1)`.
        pub fn unit_f32(&mut self) -> f32 {
            (self.next_u64() >> 40) as f32 / (1u64 << 24) as f32
        }
    }
}

pub mod prelude {
    //! One-stop imports mirroring `proptest::prelude`.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Namespace alias mirroring `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Asserts a condition inside a property; panics (failing the case) when
/// false. Accepts an optional format message like `assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond, "property assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+)
    };
}

/// Asserts two values are equal inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_eq!($left, $right, $($fmt)+)
    };
}

/// Asserts two values are unequal inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        assert_ne!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_ne!($left, $right, $($fmt)+)
    };
}

/// Skips the current generated case when the precondition does not hold.
///
/// In this stub a rejected case simply counts as passed (no rejection
/// budget), which matches how the workspace's suites use it: to discard the
/// occasional degenerate input.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

/// Declares property tests. Supports the subset of the real macro grammar
/// the workspace uses: an optional `#![proptest_config(...)]` header
/// followed by `#[test] fn name(arg in strategy, ...) { body }` items
/// (doc comments and other attributes are carried through).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            #[allow(unused_imports)]
            use $crate::strategy::Strategy as _;
            let config: $crate::test_runner::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut rng = $crate::test_runner::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                $(let $arg = ($strat).generate(&mut rng);)+
                // The closure gives `prop_assume!` an early exit that skips
                // just this case; assertion failures panic through it.
                #[allow(clippy::redundant_closure_call)]
                (|| $body)();
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn int_ranges_in_bounds(x in 3usize..9, y in 0u64..1000, z in 1usize..=4) {
            prop_assert!((3..9).contains(&x));
            prop_assert!(y < 1000);
            prop_assert!((1..=4).contains(&z));
        }

        #[test]
        fn float_range_in_bounds(x in -2.5f32..2.5) {
            prop_assert!((-2.5..2.5).contains(&x), "{x} out of range");
        }

        #[test]
        fn vec_respects_size_range(v in prop::collection::vec(0.0f32..1.0, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| (0.0..1.0).contains(&x)));
        }

        #[test]
        fn flat_map_and_map_compose(
            pair in (1usize..=4, 1usize..=4).prop_flat_map(|(r, c)| {
                prop::collection::vec(0u32..10, r * c).prop_map(move |v| (r, c, v))
            }),
        ) {
            let (r, c, v) = pair;
            prop_assert_eq!(v.len(), r * c);
        }

        #[test]
        fn assume_skips_cases(x in 0usize..10) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        use crate::strategy::Strategy;
        let strat = 0u64..1_000_000;
        let a = strat.generate(&mut crate::test_runner::TestRng::for_case("p", 0));
        let b = strat.generate(&mut crate::test_runner::TestRng::for_case("p", 0));
        let c = strat.generate(&mut crate::test_runner::TestRng::for_case("p", 1));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn just_returns_fixed_value() {
        use crate::strategy::{Just, Strategy};
        let mut rng = crate::test_runner::TestRng::for_case("just", 0);
        assert_eq!(Just(7usize).generate(&mut rng), 7);
    }
}
