//! Dataset, sample and task definitions.

use serde::{Deserialize, Serialize};

/// The four benchmark datasets the paper evaluates on, as synthetic
/// analogues.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DatasetKind {
    /// Dolly-style open instruction following (generation, ROUGE-L 0.5).
    Dolly,
    /// GSM8K-style grade-school math (classification over answer buckets,
    /// accuracy target 0.62, short sequences).
    Gsm8k,
    /// MMLU-style broad multiple choice (4 choices, accuracy target 0.75).
    Mmlu,
    /// PIQA-style physical commonsense (2 choices, accuracy target 0.8).
    Piqa,
}

impl DatasetKind {
    /// All four datasets in the order the paper lists them.
    pub fn all() -> [DatasetKind; 4] {
        [
            DatasetKind::Dolly,
            DatasetKind::Gsm8k,
            DatasetKind::Mmlu,
            DatasetKind::Piqa,
        ]
    }

    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            DatasetKind::Dolly => "Dolly",
            DatasetKind::Gsm8k => "GSM8K",
            DatasetKind::Mmlu => "MMLU",
            DatasetKind::Piqa => "PIQA",
        }
    }

    /// The paper's target score for time-to-accuracy (§8.1).
    pub fn target_score(self) -> f32 {
        match self {
            DatasetKind::Dolly => 0.5,
            DatasetKind::Gsm8k => 0.62,
            DatasetKind::Mmlu => 0.75,
            DatasetKind::Piqa => 0.8,
        }
    }

    /// Whether the dataset is scored with ROUGE-L (true) or accuracy (false).
    pub fn uses_rouge(self) -> bool {
        matches!(self, DatasetKind::Dolly)
    }

    /// Number of output classes for the classification datasets, or the
    /// vocabulary-sized generation head for Dolly (`None`).
    pub fn num_classes(self) -> Option<usize> {
        match self {
            DatasetKind::Dolly => None,
            DatasetKind::Gsm8k => Some(8),
            DatasetKind::Mmlu => Some(4),
            DatasetKind::Piqa => Some(2),
        }
    }

    /// Typical (mean) sequence length of the synthetic analogue. GSM8K is
    /// deliberately the shortest, matching the paper's observation that its
    /// shorter sequences shrink both fine-tuning time and merging error.
    pub fn mean_seq_len(self) -> usize {
        match self {
            DatasetKind::Dolly => 48,
            DatasetKind::Gsm8k => 20,
            DatasetKind::Mmlu => 36,
            DatasetKind::Piqa => 28,
        }
    }

    /// Default number of synthetic samples, proportional to the real
    /// dataset sizes (Dolly 15K, GSM8K 8.5K, ...), scaled down ~50×.
    pub fn default_num_samples(self) -> usize {
        match self {
            DatasetKind::Dolly => 300,
            DatasetKind::Gsm8k => 170,
            DatasetKind::Mmlu => 280,
            DatasetKind::Piqa => 220,
        }
    }

    /// Number of latent topics used by the generator. MMLU spans the most
    /// knowledge domains, so it gets the most topics.
    pub fn num_topics(self) -> usize {
        match self {
            DatasetKind::Dolly => 8,
            DatasetKind::Gsm8k => 4,
            DatasetKind::Mmlu => 12,
            DatasetKind::Piqa => 6,
        }
    }
}

/// The supervised target attached to a sample.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Task {
    /// Generate a continuation; scored with ROUGE-L against the reference.
    Generation {
        /// Reference continuation token ids.
        reference: Vec<u32>,
    },
    /// Predict a class label; scored with exact-match accuracy.
    Classification {
        /// Gold label.
        label: usize,
        /// Total number of classes.
        num_classes: usize,
    },
}

/// One training or evaluation sample.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    /// Input token ids.
    pub tokens: Vec<u32>,
    /// Latent topic the sample was drawn from (used by analysis code and the
    /// non-IID partitioner; a real system would not observe this).
    pub topic: usize,
    /// Supervision target.
    pub task: Task,
}

impl Sample {
    /// Sequence length of the input.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// Returns `true` when the sample has no input tokens.
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// The class label if this is a classification sample.
    pub fn label(&self) -> Option<usize> {
        match &self.task {
            Task::Classification { label, .. } => Some(*label),
            Task::Generation { .. } => None,
        }
    }
}

/// An in-memory dataset: a list of samples plus its kind and vocabulary size.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dataset {
    /// Which benchmark this synthesizes.
    pub kind: DatasetKind,
    /// Vocabulary size used by the generator (token ids are `< vocab_size`).
    pub vocab_size: usize,
    /// The samples.
    pub samples: Vec<Sample>,
}

impl Dataset {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Returns `true` when the dataset holds no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Splits into `(train, test)` with the given train fraction, preserving
    /// order (callers shuffle during generation). The paper uses 80/20.
    pub fn train_test_split(&self, train_fraction: f32) -> (Dataset, Dataset) {
        let cut = ((self.samples.len() as f32) * train_fraction.clamp(0.0, 1.0)).round() as usize;
        let cut = cut.min(self.samples.len());
        let train = Dataset {
            kind: self.kind,
            vocab_size: self.vocab_size,
            samples: self.samples[..cut].to_vec(),
        };
        let test = Dataset {
            kind: self.kind,
            vocab_size: self.vocab_size,
            samples: self.samples[cut..].to_vec(),
        };
        (train, test)
    }

    /// Returns a dataset containing the selected sample indices.
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        Dataset {
            kind: self.kind,
            vocab_size: self.vocab_size,
            samples: indices
                .iter()
                .filter_map(|&i| self.samples.get(i).cloned())
                .collect(),
        }
    }

    /// Mean sequence length across samples (0 when empty).
    pub fn mean_seq_len(&self) -> f32 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().map(|s| s.len() as f32).sum::<f32>() / self.samples.len() as f32
    }

    /// Histogram of topics across samples.
    pub fn topic_histogram(&self) -> Vec<usize> {
        let max_topic = self.samples.iter().map(|s| s.topic).max().unwrap_or(0);
        let mut hist = vec![0usize; max_topic + 1];
        for s in &self.samples {
            hist[s.topic] += 1;
        }
        hist
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(topic: usize, label: usize) -> Sample {
        Sample {
            tokens: vec![1, 2, 3],
            topic,
            task: Task::Classification {
                label,
                num_classes: 4,
            },
        }
    }

    #[test]
    fn kind_properties_match_paper() {
        assert_eq!(DatasetKind::Dolly.target_score(), 0.5);
        assert_eq!(DatasetKind::Gsm8k.target_score(), 0.62);
        assert_eq!(DatasetKind::Mmlu.target_score(), 0.75);
        assert_eq!(DatasetKind::Piqa.target_score(), 0.8);
        assert!(DatasetKind::Dolly.uses_rouge());
        assert!(!DatasetKind::Gsm8k.uses_rouge());
        assert_eq!(DatasetKind::Mmlu.num_classes(), Some(4));
        assert_eq!(DatasetKind::Piqa.num_classes(), Some(2));
        assert_eq!(DatasetKind::Dolly.num_classes(), None);
    }

    #[test]
    fn gsm8k_is_shortest() {
        let others = [DatasetKind::Dolly, DatasetKind::Mmlu, DatasetKind::Piqa];
        assert!(others
            .iter()
            .all(|k| k.mean_seq_len() > DatasetKind::Gsm8k.mean_seq_len()));
    }

    #[test]
    fn all_lists_four() {
        assert_eq!(DatasetKind::all().len(), 4);
    }

    #[test]
    fn sample_accessors() {
        let s = sample(2, 1);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert_eq!(s.label(), Some(1));
        let g = Sample {
            tokens: vec![],
            topic: 0,
            task: Task::Generation {
                reference: vec![5, 6],
            },
        };
        assert!(g.is_empty());
        assert_eq!(g.label(), None);
    }

    #[test]
    fn train_test_split_sizes() {
        let ds = Dataset {
            kind: DatasetKind::Mmlu,
            vocab_size: 100,
            samples: (0..10).map(|i| sample(0, i % 4)).collect(),
        };
        let (train, test) = ds.train_test_split(0.8);
        assert_eq!(train.len(), 8);
        assert_eq!(test.len(), 2);
        let (all, none) = ds.train_test_split(1.5);
        assert_eq!(all.len(), 10);
        assert_eq!(none.len(), 0);
    }

    #[test]
    fn subset_ignores_out_of_range() {
        let ds = Dataset {
            kind: DatasetKind::Piqa,
            vocab_size: 10,
            samples: (0..3).map(|i| sample(i, 0)).collect(),
        };
        let sub = ds.subset(&[0, 2, 99]);
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.samples[1].topic, 2);
    }

    #[test]
    fn topic_histogram_counts() {
        let ds = Dataset {
            kind: DatasetKind::Dolly,
            vocab_size: 10,
            samples: vec![sample(0, 0), sample(0, 1), sample(2, 0)],
        };
        assert_eq!(ds.topic_histogram(), vec![2, 0, 1]);
    }

    #[test]
    fn mean_seq_len_empty_and_nonempty() {
        let empty = Dataset {
            kind: DatasetKind::Dolly,
            vocab_size: 10,
            samples: vec![],
        };
        assert_eq!(empty.mean_seq_len(), 0.0);
        let ds = Dataset {
            kind: DatasetKind::Dolly,
            vocab_size: 10,
            samples: vec![sample(0, 0)],
        };
        assert_eq!(ds.mean_seq_len(), 3.0);
    }
}
