//! Figure 5: activation-frequency estimation error of quantized profiling.
//!
//! The paper profiles with 2/4/8-bit models on four datasets and reports
//! errors of roughly 7–15%, decreasing as the bit width grows. The
//! reproduction measures the same quantity against the full-precision
//! profile of the scaled model.

use flux_bench::{fmt, llama_config, print_header, Scale, EXPERIMENT_SEED};
use flux_core::profiling::{LocalProfiler, ProfilingConfig};
use flux_data::{DatasetConfig, DatasetGenerator, DatasetKind};
use flux_moe::MoeModel;
use flux_quant::BitWidth;
use flux_tensor::SeededRng;

fn main() {
    let scale = Scale::from_env();
    let config = llama_config(scale);
    let mut rng = SeededRng::new(EXPERIMENT_SEED);
    let model = MoeModel::new(config.clone(), &mut rng);
    // Paper-reported estimation errors (percent) for comparison.
    let paper: [(DatasetKind, [f32; 3]); 4] = [
        (DatasetKind::Dolly, [15.25, 14.76, 12.97]),
        (DatasetKind::Gsm8k, [9.74, 7.22, 6.84]),
        (DatasetKind::Mmlu, [12.19, 10.73, 9.26]),
        (DatasetKind::Piqa, [12.63, 11.36, 10.21]),
    ];

    print_header(
        &format!(
            "Figure 5: activation-frequency estimation error (%) ({})",
            scale.label()
        ),
        &["Dataset", "bit-2", "bit-4", "bit-8", "paper bit-2/4/8"],
    );
    for (kind, paper_errors) in paper {
        let data_cfg = DatasetConfig::for_kind(kind, config.vocab_size).with_num_samples(48);
        let data = DatasetGenerator::new(data_cfg).generate(&mut rng.derive(kind as u64));
        let mut measured = Vec::new();
        for width in BitWidth::all() {
            let profiler = LocalProfiler::new(ProfilingConfig::default().with_width(width));
            measured.push(profiler.estimation_error_pct(&model, &data));
        }
        println!(
            "{}\t{}\t{}\t{}\t{:.2}/{:.2}/{:.2}",
            kind.name(),
            fmt(measured[0] as f64),
            fmt(measured[1] as f64),
            fmt(measured[2] as f64),
            paper_errors[0],
            paper_errors[1],
            paper_errors[2]
        );
    }
}
