//! Golden-trace determinism suite for the concurrent-run scheduler.
//!
//! Many independent federated jobs execute against one multi-tenant
//! parameter server and one worker pool. Whatever the scheduler interleaves
//! — round-robin or fully concurrent rounds, staggered arrivals, mixed
//! methods and datasets, per-run straggler profiles — every job's per-round
//! losses, scores, and final weight checksum must be **bit-identical** to
//! running that job alone, at every thread count. The CI determinism legs
//! re-run this suite under `FLUX_THREADS` 1, 4 and 8.

use flux_core::driver::{ExecutionMode, FederatedRun, Method, RunConfig, RunResult};
use flux_core::scheduler::{JobSpec, SchedulePolicy, Scheduler};
use flux_data::DatasetKind;
use flux_fl::ParameterServer;
use flux_moe::MoeConfig;
use threadpool::ThreadPool;

fn quick(dataset: DatasetKind) -> RunConfig {
    RunConfig::quick_demo(MoeConfig::tiny(), dataset)
}

/// The golden trace of one run: (train_loss, score) per round plus the
/// final weight checksum.
#[derive(Debug, Clone, PartialEq)]
struct Trace {
    rounds: Vec<(f32, f32)>,
    checksum: u64,
}

fn trace_of(result: &RunResult) -> Trace {
    Trace {
        rounds: result
            .rounds
            .iter()
            .map(|r| (r.train_loss, r.score))
            .collect(),
        checksum: result.final_model.param_checksum(),
    }
}

/// The two standard jobs of the multi-run scenarios: different seeds,
/// different data partitions, same quick-demo scale.
fn two_jobs() -> Vec<JobSpec> {
    vec![
        JobSpec::new(
            "flux-a",
            FederatedRun::new(quick(DatasetKind::Gsm8k), 501),
            Method::Flux,
        ),
        JobSpec::new(
            "flux-b",
            FederatedRun::new(quick(DatasetKind::Gsm8k), 502),
            Method::Flux,
        ),
    ]
}

#[test]
fn interleaved_runs_match_solo_traces_across_threads_and_policies() {
    // Solo references, fully sequential.
    let solo: Vec<Trace> = [501u64, 502]
        .iter()
        .map(|&seed| {
            trace_of(
                &FederatedRun::new(quick(DatasetKind::Gsm8k), seed)
                    .with_threads(1)
                    .run(Method::Flux),
            )
        })
        .collect();

    for threads in [1usize, 4, 8] {
        for policy in [SchedulePolicy::RoundRobin, SchedulePolicy::Concurrent] {
            let scheduler = Scheduler::on_pool(ThreadPool::new(threads), policy);
            let results = scheduler.run_all(two_jobs());
            for (scheduled, reference) in results.iter().zip(&solo) {
                assert_eq!(
                    &trace_of(&scheduled.result),
                    reference,
                    "job {} diverged from its solo trace ({policy:?}, {threads} threads)",
                    scheduled.name
                );
            }
        }
    }
}

#[test]
fn mixed_workloads_share_the_server_without_interference() {
    // Four jobs, four methods, two datasets, one of them barriered —
    // the most heterogeneous schedule the driver supports.
    let specs = || {
        vec![
            JobSpec::new(
                "flux",
                FederatedRun::new(quick(DatasetKind::Gsm8k), 601),
                Method::Flux,
            ),
            JobSpec::new(
                "fmd",
                FederatedRun::new(quick(DatasetKind::Piqa), 602),
                Method::Fmd,
            ),
            JobSpec::new(
                "fmq-barriered",
                FederatedRun::new(quick(DatasetKind::Gsm8k), 603)
                    .with_mode(ExecutionMode::Barriered),
                Method::Fmq,
            ),
            JobSpec::new(
                "fmes",
                FederatedRun::new(quick(DatasetKind::Piqa), 604),
                Method::Fmes,
            ),
        ]
    };
    let solo: Vec<Trace> = specs()
        .into_iter()
        .map(|spec| trace_of(&spec.run.run(spec.method)))
        .collect();

    let server = ParameterServer::empty(8);
    let scheduler = Scheduler::on_pool(ThreadPool::from_env(), SchedulePolicy::Concurrent);
    let results = scheduler.run_all_on(&server, specs());
    // Every finished job deregistered its tenant from the shared server.
    assert_eq!(server.num_tenants(), 0);
    for (scheduled, reference) in results.iter().zip(&solo) {
        assert_eq!(
            &trace_of(&scheduled.result),
            reference,
            "job {} diverged under the mixed-workload schedule",
            scheduled.name
        );
    }
}

#[test]
fn staggered_arrivals_and_stragglers_preserve_traces() {
    // Job B arrives two ticks late and carries a straggler + a dropout;
    // job A is healthy. Neither job's trace may depend on the other's
    // presence or on the wall-clock perturbations.
    let job_a = || FederatedRun::new(quick(DatasetKind::Gsm8k), 701);
    let job_b = || {
        FederatedRun::new(quick(DatasetKind::Gsm8k), 702)
            .with_behavior(1, flux_fl::ParticipantBehavior::Straggler { delay_ms: 15 })
            .with_behavior(2, flux_fl::ParticipantBehavior::DropoutAt { round: 1 })
    };
    let solo_a = trace_of(&job_a().run(Method::Flux));
    let solo_b = trace_of(&job_b().run(Method::Flux));

    let scheduler = Scheduler::on_pool(ThreadPool::from_env(), SchedulePolicy::Concurrent);
    let results = scheduler.run_all(vec![
        JobSpec::new("healthy", job_a(), Method::Flux),
        JobSpec::new("faulty-late", job_b(), Method::Flux).with_arrival(2),
    ]);
    assert_eq!(trace_of(&results[0].result), solo_a);
    assert_eq!(trace_of(&results[1].result), solo_b);
    assert_eq!(results[1].started_tick, 2);
    assert!(results[1].finished_tick > results[0].finished_tick);
}

#[test]
fn state_machine_poll_sequence_matches_run() {
    // Drive the resumable state machine by hand through poll() and compare
    // against the one-shot loop.
    use flux_core::driver::RunPhase;
    let reference = FederatedRun::new(quick(DatasetKind::Gsm8k), 801).run(Method::Fmes);
    let pool = ThreadPool::from_env();
    let mut active = FederatedRun::new(quick(DatasetKind::Gsm8k), 801).start(Method::Fmes);
    let mut started = 0;
    loop {
        match active.poll() {
            RunPhase::ReadyToStart { round } => {
                assert_eq!(round, started);
                active.start_round(&pool);
                started += 1;
            }
            RunPhase::ReadyToFinish { round } => {
                assert_eq!(round + 1, started);
                active.finish_round(&pool);
            }
            RunPhase::Done => break,
        }
    }
    assert_eq!(started, 3);
    let result = active.finish();
    assert_eq!(result.rounds, reference.rounds);
    assert_eq!(
        result.final_model.param_checksum(),
        reference.final_model.param_checksum()
    );
}
